#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "core/order.h"
#include "core/prefix_filter.h"
#include "core/predicate.h"
#include "core/sets.h"

namespace ssjoin::core {
namespace {

bool IsPermutationRank(const ElementOrder& order, size_t n) {
  std::vector<bool> seen(n, false);
  for (text::TokenId e = 0; e < n; ++e) {
    uint32_t r = order.Rank(e);
    if (r >= n || seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

TEST(ElementOrderTest, ByDecreasingWeightRanksHeaviestFirst) {
  WeightVector w{1.0, 5.0, 3.0};
  ElementOrder order = ElementOrder::ByDecreasingWeight(w);
  EXPECT_EQ(order.Rank(1), 0u);
  EXPECT_EQ(order.Rank(2), 1u);
  EXPECT_EQ(order.Rank(0), 2u);
  EXPECT_TRUE(IsPermutationRank(order, 3));
}

TEST(ElementOrderTest, ByIncreasingWeightIsReverse) {
  WeightVector w{1.0, 5.0, 3.0};
  ElementOrder order = ElementOrder::ByIncreasingWeight(w);
  EXPECT_EQ(order.Rank(0), 0u);
  EXPECT_EQ(order.Rank(1), 2u);
}

TEST(ElementOrderTest, TiesBrokenById) {
  WeightVector w{2.0, 2.0, 2.0};
  ElementOrder order = ElementOrder::ByDecreasingWeight(w);
  EXPECT_EQ(order.Rank(0), 0u);
  EXPECT_EQ(order.Rank(1), 1u);
  EXPECT_EQ(order.Rank(2), 2u);
}

TEST(ElementOrderTest, ByIncreasingFrequency) {
  text::TokenDictionary dict;
  dict.EncodeDocument({"common", "rare"});
  dict.EncodeDocument({"common"});
  ElementOrder order = ElementOrder::ByIncreasingFrequency(dict);
  EXPECT_LT(order.Rank(dict.Find("rare")), order.Rank(dict.Find("common")));
}

TEST(ElementOrderTest, RandomIsPermutationAndDeterministic) {
  ElementOrder a = ElementOrder::Random(100, 5);
  ElementOrder b = ElementOrder::Random(100, 5);
  ElementOrder c = ElementOrder::Random(100, 6);
  EXPECT_TRUE(IsPermutationRank(a, 100));
  int same_ac = 0;
  for (text::TokenId e = 0; e < 100; ++e) {
    EXPECT_EQ(a.Rank(e), b.Rank(e));
    same_ac += (a.Rank(e) == c.Rank(e));
  }
  EXPECT_LT(same_ac, 20);
}

TEST(ElementOrderTest, ById) {
  ElementOrder order = ElementOrder::ById(5);
  for (text::TokenId e = 0; e < 5; ++e) EXPECT_EQ(order.Rank(e), e);
}

TEST(ComputePrefixTest, PaperUnweightedExample) {
  // §4.2: s1 = {1,2,3,4,5}, overlap threshold 4 -> beta = 5 - 4 = 1; the
  // size-(5-4+1)=2 prefix {1,2} under the natural order.
  WeightVector w(6, 1.0);
  ElementOrder order = ElementOrder::ById(6);
  std::vector<text::TokenId> s1{1, 2, 3, 4, 5};
  auto prefix = ComputePrefix(s1, w, order, 1.0);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[0], 1u);
  EXPECT_EQ(prefix[1], 2u);
}

TEST(ComputePrefixTest, WholeSetWhenBetaIsTotalWeight) {
  WeightVector w(4, 1.0);
  ElementOrder order = ElementOrder::ById(4);
  std::vector<text::TokenId> s{0, 1, 2, 3};
  // beta = wt(s): weights never *exceed* it -> whole set (no filtering).
  EXPECT_EQ(ComputePrefix(s, w, order, 4.0).size(), 4u);
}

TEST(ComputePrefixTest, NegativeBetaPrunes) {
  WeightVector w(4, 1.0);
  ElementOrder order = ElementOrder::ById(4);
  std::vector<text::TokenId> s{0, 1};
  EXPECT_TRUE(ComputePrefix(s, w, order, -1.0).empty());
}

TEST(ComputePrefixTest, ZeroBetaKeepsOneElement) {
  WeightVector w(4, 1.0);
  ElementOrder order = ElementOrder::ById(4);
  std::vector<text::TokenId> s{2, 3};
  EXPECT_EQ(ComputePrefix(s, w, order, 0.0).size(), 1u);
}

TEST(ComputePrefixTest, FollowsOrderNotIds) {
  WeightVector w{1.0, 1.0, 1.0};
  // Order: 2 first, then 0, then 1.
  WeightVector order_weights{2.0, 1.0, 3.0};
  ElementOrder order = ElementOrder::ByDecreasingWeight(order_weights);
  std::vector<text::TokenId> s{0, 1, 2};
  auto prefix = ComputePrefix(s, w, order, 1.0);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[0], 2u);
  EXPECT_EQ(prefix[1], 0u);
}

/// Lemma 1 property: for random weighted sets with wt(s1 ∩ s2) >= alpha,
/// prefix_{wt(s1)-alpha}(s1) and prefix_{wt(s2)-alpha}(s2) intersect.
TEST(PrefixFilterPropertyTest, Lemma1HoldsOnRandomSets) {
  Rng rng(2024);
  const size_t kUniverse = 40;
  WeightVector weights(kUniverse);
  for (double& w : weights) w = 0.1 + rng.NextDouble() * 3.0;
  // Lemma 1 holds for ANY ordering; exercise several.
  std::vector<ElementOrder> orders;
  orders.push_back(ElementOrder::ByDecreasingWeight(weights));
  orders.push_back(ElementOrder::ByIncreasingWeight(weights));
  orders.push_back(ElementOrder::Random(kUniverse, 77));

  for (int iter = 0; iter < 400; ++iter) {
    std::vector<text::TokenId> s1;
    std::vector<text::TokenId> s2;
    for (text::TokenId e = 0; e < kUniverse; ++e) {
      if (rng.Bernoulli(0.35)) s1.push_back(e);
      if (rng.Bernoulli(0.35)) s2.push_back(e);
    }
    if (s1.empty() || s2.empty()) continue;
    double inter = 0.0;
    for (text::TokenId e : s1) {
      if (std::find(s2.begin(), s2.end(), e) != s2.end()) inter += weights[e];
    }
    if (inter <= 0.0) continue;
    double wt1 = 0.0;
    for (text::TokenId e : s1) wt1 += weights[e];
    double wt2 = 0.0;
    for (text::TokenId e : s2) wt2 += weights[e];
    // Use alpha = the actual intersection weight (the tightest case) and a
    // couple of looser thresholds.
    for (double alpha : {inter, inter * 0.7, inter * 0.3}) {
      for (const ElementOrder& order : orders) {
        auto p1 = ComputePrefix(s1, weights, order, wt1 - alpha);
        auto p2 = ComputePrefix(s2, weights, order, wt2 - alpha);
        std::set<text::TokenId> set1(p1.begin(), p1.end());
        bool intersects = false;
        for (text::TokenId e : p2) {
          if (set1.count(e)) {
            intersects = true;
            break;
          }
        }
        EXPECT_TRUE(intersects)
            << "iter=" << iter << " alpha=" << alpha << " |p1|=" << p1.size()
            << " |p2|=" << p2.size();
      }
    }
  }
}

/// Property 8: unweighted sets of size h with |s1 ∩ s2| >= k: any
/// (h-k+1)-subset of s1 intersects s2. Check for the prefix specifically.
TEST(PrefixFilterPropertyTest, Property8UnweightedPrefixSize) {
  Rng rng(5150);
  const size_t kUniverse = 30;
  WeightVector weights(kUniverse, 1.0);
  ElementOrder order = ElementOrder::Random(kUniverse, 3);
  for (int iter = 0; iter < 200; ++iter) {
    // Random set of fixed size h.
    std::vector<text::TokenId> universe(kUniverse);
    std::iota(universe.begin(), universe.end(), 0);
    rng.Shuffle(&universe);
    size_t h = 5 + rng.Uniform(10);
    std::vector<text::TokenId> s(universe.begin(), universe.begin() + h);
    size_t k = 1 + rng.Uniform(h);
    // beta = h - k: the prefix should contain exactly h - k + 1 elements.
    auto prefix = ComputePrefix(s, weights, order,
                                static_cast<double>(h) - static_cast<double>(k));
    EXPECT_EQ(prefix.size(), h - k + 1);
  }
}

TEST(PrefixFilterRelationTest, AppliesSideSpecificBounds) {
  WeightVector weights{1.0, 1.0, 1.0, 1.0};
  ElementOrder order = ElementOrder::ById(4);
  SetsRelation rel = *BuildSetsRelation({{0, 1, 2, 3}, {0, 1}}, weights);
  OverlapPredicate pred = OverlapPredicate::OneSidedNormalized(0.5);
  // R side: required = 0.5 * norm -> beta = norm/2 -> prefix just over half.
  PrefixFilteredRelation r_pref =
      PrefixFilterRelation(rel, weights, order, pred, JoinSide::kR);
  EXPECT_EQ(r_pref.prefixes.elements(0).size(), 3u);  // cum > 2 after 3 elements
  EXPECT_EQ(r_pref.prefixes.elements(1).size(), 2u);  // cum > 1 after 2 elements
  // S side: unboundable -> whole sets.
  PrefixFilteredRelation s_pref =
      PrefixFilterRelation(rel, weights, order, pred, JoinSide::kS);
  EXPECT_EQ(s_pref.prefixes.elements(0).size(), 4u);
  EXPECT_EQ(s_pref.total_prefix_elements(), 6u);
}

TEST(BuildSetsRelationTest, CanonicalizesAndComputesWeights) {
  WeightVector weights{1.0, 2.0, 4.0};
  SetsRelation rel = *BuildSetsRelation({{2, 0, 2, 1}}, weights);
  EXPECT_EQ(std::vector<text::TokenId>(rel.set(0).begin(), rel.set(0).end()),
            (std::vector<text::TokenId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(rel.set_weights[0], 7.0);
  EXPECT_DOUBLE_EQ(rel.norms[0], 7.0);
  EXPECT_EQ(rel.total_elements(), 3u);
}

TEST(BuildSetsRelationTest, CustomNorms) {
  WeightVector weights{1.0};
  SetsRelation rel = *BuildSetsRelation({{0}}, weights, {{42.0}});
  EXPECT_DOUBLE_EQ(rel.norms[0], 42.0);
  EXPECT_DOUBLE_EQ(rel.set_weights[0], 1.0);
}

TEST(BuildSetsRelationTest, RejectsBadInputs) {
  WeightVector weights{1.0};
  EXPECT_FALSE(BuildSetsRelation({{5}}, weights).ok());
  EXPECT_FALSE(BuildSetsRelation({{0}}, weights, {{1.0, 2.0}}).ok());
  EXPECT_FALSE(BuildSetsRelation({{text::kInvalidToken}}, weights).ok());
}

}  // namespace
}  // namespace ssjoin::core
