/// End-to-end integration tests: CSV in -> similarity join -> CSV out;
/// the full dedup pipeline against generator ground truth; the relational
/// plans running over generated data; cross-checks between the high-level
/// joins and the SSJoin primitive driven manually.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/relational_ssjoin.h"
#include "datagen/address_gen.h"
#include "engine/csv.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "sim/edit_distance.h"
#include "simjoin/prep.h"
#include "simjoin/string_joins.h"
#include "text/tokenizer.h"

namespace ssjoin {
namespace {

TEST(IntegrationTest, CsvToJoinToCsv) {
  // A small dirty org table as CSV.
  std::string csv =
      "id,org\n"
      "1,Microsoft Corp\n"
      "2,Mcrosoft Corp\n"
      "3,\"Oracle, Corporation\"\n"
      "4,Orcale Corporation\n"
      "5,Apple Inc\n";
  engine::Table table = *engine::ParseCsv(csv);
  ASSERT_EQ(table.num_rows(), 5u);
  auto org_col = *table.ColumnByName("org");
  std::vector<std::string> orgs = (*org_col).strings();

  auto matches = *simjoin::EditSimilarityJoin(orgs, orgs, 0.8, 3);
  engine::Table out{engine::Schema({{"left", engine::DataType::kString},
                                    {"right", engine::DataType::kString},
                                    {"sim", engine::DataType::kFloat64}})};
  for (const auto& m : matches) {
    if (m.r >= m.s) continue;
    ASSERT_TRUE(out.AppendRow({orgs[m.r], orgs[m.s], m.similarity}).ok());
  }
  ASSERT_EQ(out.num_rows(), 2u);

  // Round-trip the result through CSV.
  engine::Table reloaded = *engine::ParseCsv(engine::ToCsv(out));
  EXPECT_TRUE(reloaded.ContentEquals(out));
  EXPECT_NE(engine::ToCsv(out).find("Microsoft Corp,Mcrosoft Corp"),
            std::string::npos);
}

TEST(IntegrationTest, DedupPipelineRecoversInjectedDuplicates) {
  datagen::AddressGenOptions gen;
  gen.num_records = 1500;
  gen.duplicate_fraction = 0.3;
  gen.errors.char_edits_mean = 1.0;
  gen.errors.abbreviation_prob = 0.0;  // keep duplicates close in edit space
  gen.errors.token_drop_prob = 0.0;
  gen.errors.token_swap_prob = 0.0;
  datagen::AddressDataset data = datagen::GenerateAddresses(gen);

  auto matches = *simjoin::EditSimilarityJoin(data.records, data.records, 0.85, 3);
  std::set<std::pair<uint32_t, uint32_t>> found;
  for (const auto& m : matches) found.insert({m.r, m.s});

  size_t recovered = 0;
  size_t eligible = 0;
  for (uint32_t i = 0; i < data.records.size(); ++i) {
    if (data.duplicate_of[i] < 0) continue;
    uint32_t src = static_cast<uint32_t>(data.duplicate_of[i]);
    // Only score pairs that truly stayed above the threshold.
    if (sim::EditSimilarity(data.records[i], data.records[src]) < 0.85) continue;
    ++eligible;
    recovered += found.count({i, src});
  }
  ASSERT_GT(eligible, 100u);
  EXPECT_EQ(recovered, eligible);  // the join is exact: every eligible pair found
}

TEST(IntegrationTest, RelationalPlansRunOnGeneratedData) {
  datagen::AddressGenOptions gen;
  gen.num_records = 120;
  gen.duplicate_fraction = 0.4;
  datagen::AddressDataset data = datagen::GenerateAddresses(gen);
  text::WordTokenizer tokenizer;
  simjoin::Prepared prep =
      simjoin::PrepareStrings(data.records, data.records, tokenizer,
                              simjoin::WeightMode::kIdf)
          .MoveValueUnsafe();
  engine::Table rt = *core::ToNormalizedTable(prep.r, prep.weights, prep.order);
  engine::Table st = *core::ToNormalizedTable(prep.s, prep.weights, prep.order);
  core::OverlapPredicate pred = core::OverlapPredicate::TwoSidedNormalized(0.8);

  engine::Table basic = *core::BasicSSJoinPlan(rt, st, pred);
  engine::Table prefix = *core::PrefixFilterSSJoinPlan(rt, st, pred);
  // Same rows (order may differ): compare canonical (r,s) pair sets.
  auto pair_set = [](const engine::Table& t) {
    std::set<std::pair<int64_t, int64_t>> pairs;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      pairs.insert({t.GetValue(0, r).int64(), t.GetValue(1, r).int64()});
    }
    return pairs;
  };
  EXPECT_EQ(pair_set(basic), pair_set(prefix));
  // Every record resembles itself: at least the diagonal is present.
  EXPECT_GE(basic.num_rows(), data.records.size());

  // And the columnar executor agrees with both.
  auto pairs = *core::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilterInline,
                                    prep.r, prep.s, pred, prep.Context(), nullptr);
  EXPECT_EQ(pairs.size(), basic.num_rows());
}

TEST(IntegrationTest, ExpressionsOverJoinResults) {
  // Build a join-result table and post-process it declaratively.
  std::vector<std::string> orgs = {"Microsoft Corp", "Mcrosoft Corp",
                                   "Microsft Corp", "Apple Inc"};
  auto matches = *simjoin::EditSimilarityJoin(orgs, orgs, 0.8, 3);
  engine::Table t{engine::Schema({{"r", engine::DataType::kInt64},
                                  {"s", engine::DataType::kInt64},
                                  {"sim", engine::DataType::kFloat64}})};
  for (const auto& m : matches) {
    ASSERT_TRUE(t.AppendRow({static_cast<int64_t>(m.r), static_cast<int64_t>(m.s),
                             m.similarity})
                    .ok());
  }
  // Keep strictly-upper-triangle pairs with similarity >= 0.9.
  engine::Table strong = *engine::FilterWhere(
      t, engine::And(engine::Lt(engine::Col("r"), engine::Col("s")),
                     engine::Ge(engine::Col("sim"), engine::Lit(0.9))));
  for (size_t r = 0; r < strong.num_rows(); ++r) {
    EXPECT_LT(strong.GetValue(0, r).int64(), strong.GetValue(1, r).int64());
    EXPECT_GE(strong.GetValue(2, r).float64(), 0.9);
  }
  EXPECT_GT(strong.num_rows(), 0u);
  EXPECT_LT(strong.num_rows(), t.num_rows());
}

}  // namespace
}  // namespace ssjoin
