#include <gtest/gtest.h>

#include <set>

#include "datagen/address_gen.h"
#include "sim/edit_distance.h"
#include "simjoin/gravano.h"
#include "simjoin/string_joins.h"

namespace ssjoin::simjoin {
namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

PairSet ToPairSet(const std::vector<MatchPair>& matches) {
  PairSet out;
  for (const MatchPair& m : matches) out.insert({m.r, m.s});
  return out;
}

std::vector<std::string> Corpus(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.35;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

TEST(GravanoTest, EditSimilarityMatchesCrossProduct) {
  std::vector<std::string> data = Corpus(150, 19);
  for (double alpha : {0.8, 0.9}) {
    SCOPED_TRACE(alpha);
    auto custom = *GravanoEditSimilarityJoin(data, data, alpha, 3);
    auto brute = *CrossProductEditSimilarityJoin(data, data, alpha);
    EXPECT_EQ(ToPairSet(custom), ToPairSet(brute));
  }
}

TEST(GravanoTest, EditDistanceMatchesDirect) {
  std::vector<std::string> data = Corpus(120, 29);
  size_t max_distance = 2;
  auto custom = *GravanoEditDistanceJoin(data, data, max_distance, 3);
  PairSet expected;
  for (uint32_t i = 0; i < data.size(); ++i) {
    for (uint32_t j = 0; j < data.size(); ++j) {
      if (sim::EditDistanceAtMost(data[i], data[j], max_distance)) {
        expected.insert({i, j});
      }
    }
  }
  EXPECT_EQ(ToPairSet(custom), expected);
}

TEST(GravanoTest, ShortStringsMatchCrossProduct) {
  // Regression: Property 4's count filter only prunes when its bound
  // max(|s1|,|s2|) - q + 1 - q*k is >= 1. Short and empty strings fall below
  // that, can share no q-gram with a true match, and used to be silently
  // dropped by the gram-driven candidate enumeration.
  std::vector<std::string> data = {"",   "",    "a",   "ab",  "cb",
                                   "ba", "abc", "abd", "xyz", "q"};
  for (double alpha : {0.3, 0.5, 0.8}) {
    for (size_t q : {2, 3, 4}) {
      SCOPED_TRACE(testing::Message() << "alpha=" << alpha << " q=" << q);
      auto custom = *GravanoEditSimilarityJoin(data, data, alpha, q);
      auto brute = *CrossProductEditSimilarityJoin(data, data, alpha);
      EXPECT_EQ(ToPairSet(custom), ToPairSet(brute));
    }
  }
}

TEST(GravanoTest, EmptyTimesEmptyIsAMatch) {
  // ED("", "") = 0 => similarity 1 at any threshold; the pair shares no
  // q-gram, so it only surfaces via the short-string bucket.
  std::vector<std::string> empties = {"", ""};
  auto sim_join = *GravanoEditSimilarityJoin(empties, empties, 0.9, 3);
  EXPECT_EQ(sim_join.size(), 4u);
  for (const MatchPair& m : sim_join) EXPECT_EQ(m.similarity, 1.0);
  auto dist_join = *GravanoEditDistanceJoin(empties, empties, 0, 3);
  EXPECT_EQ(dist_join.size(), 4u);
}

TEST(GravanoTest, EditDistanceBelowQMatches) {
  // "ab" vs "cb" at q=3, k=1: both tokenize to a single whole-string gram
  // ("ab" != "cb"), yet ED = 1 <= k. The bound 2 - 3 + 1 - 3 = -3 < 1 means
  // the gram filter is unsound here.
  std::vector<std::string> r = {"ab"};
  std::vector<std::string> s = {"cb"};
  auto join = *GravanoEditDistanceJoin(r, s, 1, 3);
  ASSERT_EQ(join.size(), 1u);
  EXPECT_EQ(join[0].similarity, -1.0);
}

TEST(GravanoTest, LongStringsStillUseGramFilter) {
  // Sanity: the short-string bucket must not degrade long-string joins into
  // cross products. Two long strings sharing nothing should produce no
  // verifier call beyond the bucket-free baseline.
  std::vector<std::string> data = {"aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb"};
  SimJoinStats stats;
  auto join = *GravanoEditDistanceJoin(data, data, 1, 3, &stats);
  EXPECT_EQ(join.size(), 2u);  // only the self-pairs
  // Budget 1, q 3 => bound 16 - 3 + 1 - 3 = 11 >= 1: no bucket candidates;
  // each string's only candidate is itself via shared grams.
  EXPECT_EQ(stats.verifier_calls, 2u);
}

TEST(GravanoTest, DoesManyMoreComparisonsThanSSJoin) {
  // Table 1's headline: the customized join verifies orders of magnitude
  // more pairs than the SSJoin-based plan at the same threshold.
  std::vector<std::string> data = Corpus(400, 37);
  double alpha = 0.85;
  SimJoinStats custom_stats;
  auto custom = *GravanoEditSimilarityJoin(data, data, alpha, 3, &custom_stats);
  SimJoinStats ssjoin_stats;
  auto ssjoin = *EditSimilarityJoin(data, data, alpha, 3, {}, &ssjoin_stats);
  EXPECT_EQ(ToPairSet(custom), ToPairSet(ssjoin));
  EXPECT_GT(custom_stats.verifier_calls, 5 * ssjoin_stats.verifier_calls);
}

TEST(GravanoTest, PhasesRecorded) {
  std::vector<std::string> data = Corpus(100, 41);
  SimJoinStats stats;
  GravanoEditSimilarityJoin(data, data, 0.85, 3, &stats).ValueOrDie();
  EXPECT_GT(stats.phases.Millis("Prep"), 0.0);
  EXPECT_GT(stats.phases.Millis("Candidate-enumeration"), 0.0);
  EXPECT_GE(stats.phases.Millis("EditSim-Filter"), 0.0);
}

TEST(GravanoTest, InvalidArguments) {
  std::vector<std::string> data{"x"};
  EXPECT_FALSE(GravanoEditSimilarityJoin(data, data, 2.0, 3).ok());
  EXPECT_FALSE(GravanoEditSimilarityJoin(data, data, 0.8, 0).ok());
  EXPECT_FALSE(CrossProductEditSimilarityJoin(data, data, -1.0).ok());
}

TEST(CrossProductTest, VerifiesEveryPair) {
  std::vector<std::string> data = Corpus(40, 43);
  SimJoinStats stats;
  CrossProductEditSimilarityJoin(data, data, 0.9, &stats).ValueOrDie();
  EXPECT_EQ(stats.verifier_calls, data.size() * data.size());
}

}  // namespace
}  // namespace ssjoin::simjoin
