/// End-to-end tests of the ssjoin_cli and ssjoin_served tools: writes CSV
/// inputs, invokes the binaries (paths injected by CMake as SSJOIN_CLI_PATH
/// and SSJOIN_SERVED_PATH), and checks outputs. Exercises argument
/// validation, the snapshot/lookup subcommands, and a live socket round
/// trip against ssjoin_served.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>

#include "engine/csv.h"

#ifndef SSJOIN_CLI_PATH
#error "SSJOIN_CLI_PATH must be defined by the build"
#endif
#ifndef SSJOIN_SERVED_PATH
#error "SSJOIN_SERVED_PATH must be defined by the build"
#endif

namespace ssjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out << content;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int RunCli(const std::string& args) {
  std::string cmd = std::string(SSJOIN_CLI_PATH) + " " + args + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

// Runs the CLI and captures its stdout into *out.
int RunCliCapture(const std::string& args, std::string* out) {
  // Per-process name: ctest runs sibling tests as concurrent processes.
  std::string out_path =
      TempPath("cli_capture_" + std::to_string(::getpid()) + ".txt");
  std::string cmd = std::string(SSJOIN_CLI_PATH) + " " + args + " >" +
                    out_path + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  *out = ReadWholeFile(out_path);
  std::remove(out_path.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::milliseconds budget) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

TEST(CliTest, EditJoinEndToEnd) {
  std::string in = TempPath("cli_orgs.csv");
  std::string out = TempPath("cli_matches.csv");
  WriteFile(in,
            "name\n"
            "Microsoft Corp\n"
            "Mcrosoft Corp\n"
            "Oracle Corporation\n"
            "Apple Inc\n");
  int rc = RunCli("join --left " + in + " --left-col name --sim edit "
                  "--threshold 0.8 --out " + out);
  ASSERT_EQ(rc, 0);
  auto table = *engine::ReadCsvFile(out);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.GetValue(2, 0).string(), "Microsoft Corp");
  EXPECT_EQ(table.GetValue(3, 0).string(), "Mcrosoft Corp");
  EXPECT_GE(table.GetValue(4, 0).float64(), 0.8);
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(CliTest, TwoTableJaccardJoin) {
  std::string left = TempPath("cli_left.csv");
  std::string right = TempPath("cli_right.csv");
  std::string out = TempPath("cli_out2.csv");
  WriteFile(left, "org\nInternational Business Machines\nOracle Corp\n");
  WriteFile(right,
            "company\nInternational Business Machines Corp\nApple Inc\n");
  int rc = RunCli("join --left " + left + " --left-col org --right " + right +
                  " --right-col company --sim jaccard --threshold 0.5 --out " + out);
  ASSERT_EQ(rc, 0);
  auto table = *engine::ReadCsvFile(out);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.GetValue(0, 0).int64(), 0);
  EXPECT_EQ(table.GetValue(1, 0).int64(), 0);
  std::remove(left.c_str());
  std::remove(right.c_str());
  std::remove(out.c_str());
}

TEST(CliTest, UsageAndErrorPaths) {
  EXPECT_NE(RunCli(""), 0);                       // no command
  EXPECT_NE(RunCli("join"), 0);                   // missing flags
  EXPECT_NE(RunCli("join --left /nope.csv --left-col x"), 0);  // bad file
  std::string in = TempPath("cli_err.csv");
  WriteFile(in, "name\nfoo\n");
  EXPECT_NE(RunCli("join --left " + in + " --left-col missing"), 0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --sim bogus"), 0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --algorithm bogus"), 0);
  std::remove(in.c_str());
}

const char kReferenceCsv[] =
    "name\n"
    "Microsoft Corp\n"
    "Oracle Corporation\n"
    "Apple Inc\n"
    "International Business Machines\n";

TEST(CliTest, SnapshotAndDirectLookup) {
  std::string in = TempPath("cli_ref.csv");
  std::string snap = TempPath("cli_ref.snap");
  WriteFile(in, kReferenceCsv);
  ASSERT_EQ(RunCli("snapshot --reference " + in + " --col name --alpha 0.4 "
                   "--out " + snap),
            0);

  // Lookup against the snapshot must find the corrupted string's source.
  std::string out;
  ASSERT_EQ(RunCliCapture("lookup --snapshot " + snap +
                              " --query \"International Business Machines Inc\" --k 2",
                          &out),
            0);
  EXPECT_NE(out.find("International Business Machines"), std::string::npos) << out;

  // The same lookup straight from the CSV (no snapshot) must agree.
  std::string direct;
  ASSERT_EQ(RunCliCapture("lookup --reference " + in +
                              " --col name --alpha 0.4 "
                              "--query \"International Business Machines Inc\" --k 2",
                          &direct),
            0);
  EXPECT_EQ(out, direct);

  std::remove(in.c_str());
  std::remove(snap.c_str());
}

TEST(CliTest, SnapshotAndLookupErrorPaths) {
  std::string in = TempPath("cli_ref_err.csv");
  WriteFile(in, kReferenceCsv);
  EXPECT_NE(RunCli("snapshot --reference " + in + " --col name"), 0);  // no --out
  EXPECT_NE(RunCli("snapshot --reference /nope.csv --col name --out x.snap"), 0);
  EXPECT_NE(RunCli("lookup --snapshot /nope.snap --query x"), 0);
  EXPECT_NE(RunCli("lookup --query x"), 0);  // no index source
  std::remove(in.c_str());
}

TEST(CliTest, ServedSocketRoundTrip) {
  std::string in = TempPath("served_ref.csv");
  std::string snap = TempPath("served_ref.snap");
  std::string sock = TempPath("served.sock");
  WriteFile(in, kReferenceCsv);
  std::remove(sock.c_str());
  ASSERT_EQ(RunCli("snapshot --reference " + in + " --col name --alpha 0.4 "
                   "--out " + snap),
            0);

  std::string server_log = TempPath("served.log");
  std::string server_cmd = std::string(SSJOIN_SERVED_PATH) + " --snapshot " +
                           snap + " --socket " + sock + " >" + server_log +
                           " 2>&1 &";
  ASSERT_EQ(std::system(server_cmd.c_str()), 0);
  ASSERT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) == 0; },
                      std::chrono::seconds(10)))
      << ReadWholeFile(server_log);

  std::string out;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock +
                              " --query \"International Business Machines Inc\" --k 2",
                          &out),
            0)
      << ReadWholeFile(server_log);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  EXPECT_NE(out.find("International Business Machines"), std::string::npos) << out;

  // Repeat the query: second time must be served from the cache.
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock +
                              " --query \"International Business Machines Inc\" --k 2",
                          &out),
            0);
  std::string stats;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --stats", &stats), 0);
  EXPECT_NE(stats.find("\"requests\": 2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_hits\": 1"), std::string::npos) << stats;

  // Ping, then orderly shutdown; the server removes its socket on exit.
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --ping", &out), 0);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --shutdown", &out), 0);
  EXPECT_NE(out.find("\"stopping\": true"), std::string::npos) << out;
  EXPECT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) != 0; },
                      std::chrono::seconds(10)))
      << ReadWholeFile(server_log);

  // A client against the dead socket fails cleanly.
  EXPECT_NE(RunCli("lookup --socket " + sock + " --ping"), 0);

  std::remove(in.c_str());
  std::remove(snap.c_str());
  std::remove(server_log.c_str());
}

}  // namespace
}  // namespace ssjoin
