/// End-to-end test of the ssjoin_cli tool: writes CSV inputs, invokes the
/// binary (path injected by CMake as SSJOIN_CLI_PATH), and checks the
/// output CSV. Exercises argument validation as well.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "engine/csv.h"

#ifndef SSJOIN_CLI_PATH
#error "SSJOIN_CLI_PATH must be defined by the build"
#endif

namespace ssjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out << content;
}

int RunCli(const std::string& args) {
  std::string cmd = std::string(SSJOIN_CLI_PATH) + " " + args + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(CliTest, EditJoinEndToEnd) {
  std::string in = TempPath("cli_orgs.csv");
  std::string out = TempPath("cli_matches.csv");
  WriteFile(in,
            "name\n"
            "Microsoft Corp\n"
            "Mcrosoft Corp\n"
            "Oracle Corporation\n"
            "Apple Inc\n");
  int rc = RunCli("join --left " + in + " --left-col name --sim edit "
                  "--threshold 0.8 --out " + out);
  ASSERT_EQ(rc, 0);
  auto table = *engine::ReadCsvFile(out);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.GetValue(2, 0).string(), "Microsoft Corp");
  EXPECT_EQ(table.GetValue(3, 0).string(), "Mcrosoft Corp");
  EXPECT_GE(table.GetValue(4, 0).float64(), 0.8);
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(CliTest, TwoTableJaccardJoin) {
  std::string left = TempPath("cli_left.csv");
  std::string right = TempPath("cli_right.csv");
  std::string out = TempPath("cli_out2.csv");
  WriteFile(left, "org\nInternational Business Machines\nOracle Corp\n");
  WriteFile(right,
            "company\nInternational Business Machines Corp\nApple Inc\n");
  int rc = RunCli("join --left " + left + " --left-col org --right " + right +
                  " --right-col company --sim jaccard --threshold 0.5 --out " + out);
  ASSERT_EQ(rc, 0);
  auto table = *engine::ReadCsvFile(out);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.GetValue(0, 0).int64(), 0);
  EXPECT_EQ(table.GetValue(1, 0).int64(), 0);
  std::remove(left.c_str());
  std::remove(right.c_str());
  std::remove(out.c_str());
}

TEST(CliTest, UsageAndErrorPaths) {
  EXPECT_NE(RunCli(""), 0);                       // no command
  EXPECT_NE(RunCli("join"), 0);                   // missing flags
  EXPECT_NE(RunCli("join --left /nope.csv --left-col x"), 0);  // bad file
  std::string in = TempPath("cli_err.csv");
  WriteFile(in, "name\nfoo\n");
  EXPECT_NE(RunCli("join --left " + in + " --left-col missing"), 0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --sim bogus"), 0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --algorithm bogus"), 0);
  std::remove(in.c_str());
}

}  // namespace
}  // namespace ssjoin
