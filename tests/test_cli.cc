/// End-to-end tests of the ssjoin_cli and ssjoin_served tools: writes CSV
/// inputs, invokes the binaries (paths injected by CMake as SSJOIN_CLI_PATH
/// and SSJOIN_SERVED_PATH), and checks outputs. Exercises argument
/// validation, the snapshot/lookup subcommands, and a live socket round
/// trip against ssjoin_served.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>

#include "engine/csv.h"
#include "serve/wire.h"

#ifndef SSJOIN_CLI_PATH
#error "SSJOIN_CLI_PATH must be defined by the build"
#endif
#ifndef SSJOIN_SERVED_PATH
#error "SSJOIN_SERVED_PATH must be defined by the build"
#endif
#ifndef SSJOIN_FUZZ_PATH
#error "SSJOIN_FUZZ_PATH must be defined by the build"
#endif

namespace ssjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out << content;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int RunCli(const std::string& args) {
  std::string cmd = std::string(SSJOIN_CLI_PATH) + " " + args + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

// Runs an arbitrary binary and captures its stderr into *err.
int RunCaptureStderr(const std::string& binary, const std::string& args,
                     std::string* err) {
  std::string err_path =
      TempPath("cli_stderr_" + std::to_string(::getpid()) + ".txt");
  std::string cmd =
      binary + " " + args + " >/dev/null 2>" + err_path;
  int rc = std::system(cmd.c_str());
  *err = ReadWholeFile(err_path);
  std::remove(err_path.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

// Runs the CLI and captures its stdout into *out.
int RunCliCapture(const std::string& args, std::string* out) {
  // Per-process name: ctest runs sibling tests as concurrent processes.
  std::string out_path =
      TempPath("cli_capture_" + std::to_string(::getpid()) + ".txt");
  std::string cmd = std::string(SSJOIN_CLI_PATH) + " " + args + " >" +
                    out_path + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  *out = ReadWholeFile(out_path);
  std::remove(out_path.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::milliseconds budget) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

TEST(CliTest, EditJoinEndToEnd) {
  std::string in = TempPath("cli_orgs.csv");
  std::string out = TempPath("cli_matches.csv");
  WriteFile(in,
            "name\n"
            "Microsoft Corp\n"
            "Mcrosoft Corp\n"
            "Oracle Corporation\n"
            "Apple Inc\n");
  int rc = RunCli("join --left " + in + " --left-col name --sim edit "
                  "--threshold 0.8 --out " + out);
  ASSERT_EQ(rc, 0);
  auto table = *engine::ReadCsvFile(out);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.GetValue(2, 0).string(), "Microsoft Corp");
  EXPECT_EQ(table.GetValue(3, 0).string(), "Mcrosoft Corp");
  EXPECT_GE(table.GetValue(4, 0).float64(), 0.8);
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(CliTest, TwoTableJaccardJoin) {
  std::string left = TempPath("cli_left.csv");
  std::string right = TempPath("cli_right.csv");
  std::string out = TempPath("cli_out2.csv");
  WriteFile(left, "org\nInternational Business Machines\nOracle Corp\n");
  WriteFile(right,
            "company\nInternational Business Machines Corp\nApple Inc\n");
  int rc = RunCli("join --left " + left + " --left-col org --right " + right +
                  " --right-col company --sim jaccard --threshold 0.5 --out " + out);
  ASSERT_EQ(rc, 0);
  auto table = *engine::ReadCsvFile(out);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.GetValue(0, 0).int64(), 0);
  EXPECT_EQ(table.GetValue(1, 0).int64(), 0);
  std::remove(left.c_str());
  std::remove(right.c_str());
  std::remove(out.c_str());
}

TEST(CliTest, UsageAndErrorPaths) {
  EXPECT_NE(RunCli(""), 0);                       // no command
  EXPECT_NE(RunCli("join"), 0);                   // missing flags
  EXPECT_NE(RunCli("join --left /nope.csv --left-col x"), 0);  // bad file
  std::string in = TempPath("cli_err.csv");
  WriteFile(in, "name\nfoo\n");
  EXPECT_NE(RunCli("join --left " + in + " --left-col missing"), 0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --sim bogus"), 0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --algorithm bogus"), 0);
  std::remove(in.c_str());
}

TEST(CliTest, UnknownAlgorithmListsValidNames) {
  std::string in = TempPath("cli_alg_err.csv");
  WriteFile(in, "name\nfoo\nfood\n");
  std::string err;
  int rc = RunCaptureStderr(SSJOIN_CLI_PATH,
                            "join --left " + in + " --left-col name "
                            "--threshold 0.5 --algorithm bogus", &err);
  EXPECT_NE(rc, 0);
  // The error must name the offender and enumerate every valid spelling.
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
  for (const char* name : {"basic", "inverted-index", "prefix-filter",
                           "inline", "approx", "hybrid", "cost"}) {
    EXPECT_NE(err.find(name), std::string::npos) << "missing " << name
                                                 << " in: " << err;
  }
  std::remove(in.c_str());
}

TEST(CliTest, ApproxAndHybridAlgorithmsJoin) {
  std::string in = TempPath("cli_approx.csv");
  std::string out = TempPath("cli_approx_out.csv");
  WriteFile(in,
            "name\n"
            "Microsoft Corp\n"
            "Mcrosoft Corp\n"
            "Oracle Corporation\n"
            "Apple Inc\n");
  for (std::string algorithm : {"approx", "hybrid"}) {
    int rc = RunCli("join --left " + in + " --left-col name --sim jaccard "
                    "--threshold 0.1 --algorithm " + algorithm +
                    " --target-recall 0.9 --out " + out);
    ASSERT_EQ(rc, 0) << algorithm;
    auto table = *engine::ReadCsvFile(out);
    // At this scale the exact floor fires, so the approximate tier returns
    // the full exact result: the one Microsoft/Mcrosoft pair.
    ASSERT_EQ(table.num_rows(), 1u) << algorithm;
    std::remove(out.c_str());
  }
  // Recall knob validation: out-of-range values die loudly.
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --sim jaccard "
                   "--threshold 0.4 --algorithm approx --target-recall 0"),
            0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --sim jaccard "
                   "--threshold 0.4 --algorithm approx --target-recall 1.5"),
            0);
  EXPECT_NE(RunCli("join --left " + in + " --left-col name --sim jaccard "
                   "--threshold 0.4 --algorithm approx --target-recall abc"),
            0);
  std::remove(in.c_str());
}

TEST(CliTest, FuzzToolRejectsMalformedNumericFlags) {
  std::string err;
  // std::atoi previously turned these into 0 silently; each must now be a
  // loud usage error naming the flag.
  EXPECT_EQ(RunCaptureStderr(SSJOIN_FUZZ_PATH, "--seeds=abc", &err), 2);
  EXPECT_NE(err.find("--seeds"), std::string::npos) << err;
  EXPECT_EQ(RunCaptureStderr(SSJOIN_FUZZ_PATH, "--start-seed=1x", &err), 2);
  EXPECT_NE(err.find("--start-seed"), std::string::npos) << err;
  EXPECT_EQ(RunCaptureStderr(SSJOIN_FUZZ_PATH, "--max-failures=-3", &err), 2);
  EXPECT_NE(err.find("--max-failures"), std::string::npos) << err;
  EXPECT_EQ(
      RunCaptureStderr(SSJOIN_FUZZ_PATH,
                       "--seeds=99999999999999999999999999", &err),
      2);
}

int RunServed(const std::string& args) {
  std::string cmd = std::string(SSJOIN_SERVED_PATH) + " " + args + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(CliTest, RejectsMalformedNumericFlags) {
  std::string in = TempPath("cli_flags.csv");
  WriteFile(in, "name\nfoo\nfood\n");
  std::string base = "join --left " + in + " --left-col name --sim edit ";

  // Positive control first: the command is fine with well-formed values.
  EXPECT_EQ(RunCli(base + "--threshold 0.8 --threads=2"), 0);

  // std::atoi silently turned these into 0 (or wrapped negatives); every
  // one must now be a loud nonzero-exit error.
  EXPECT_NE(RunCli(base + "--threshold 0.8 --threads=abc"), 0);
  EXPECT_NE(RunCli(base + "--threshold 0.8 --threads abc"), 0);
  EXPECT_NE(RunCli(base + "--threshold 0.8 --threads -1"), 0);
  EXPECT_NE(RunCli(base + "--threshold 0.8 --threads 2x"), 0);
  EXPECT_NE(RunCli(base + "--threshold 0.8 --threads ''"), 0);
  EXPECT_NE(RunCli(base + "--threshold 0.8 --threads 99999999999999999999"), 0);
  EXPECT_NE(RunCli(base + "--threshold abc"), 0);
  EXPECT_NE(RunCli(base + "--threshold 1e999"), 0);
  EXPECT_NE(RunCli(base + "--threshold 0.8 --q=x"), 0);
  EXPECT_NE(RunCli(base + "--threshold 0.8 --morsel=-4"), 0);

  // ssjoin_served validates its numeric flags before loading anything, so a
  // bad value fails in milliseconds even alongside other broken flags.
  EXPECT_NE(RunServed("--snapshot /nope.snap --socket /tmp/unused.sock "
                      "--threads=abc"),
            0);
  EXPECT_NE(RunServed("--snapshot /nope.snap --socket /tmp/unused.sock "
                      "--max-queue -5"),
            0);

  std::remove(in.c_str());
}

TEST(CliTest, StatsJsonDumpsMetricRegistry) {
  std::string in = TempPath("cli_statsjson.csv");
  std::string stats_path = TempPath("cli_stats.ndjson");
  WriteFile(in, "name\nMicrosoft Corp\nMcrosoft Corp\nApple Inc\n");
  ASSERT_EQ(RunCli("join --left " + in + " --left-col name --sim jaccard "
                   "--threshold 0.5 --threads=2 --stats-json " + stats_path),
            0);

  std::string ndjson = ReadWholeFile(stats_path);
  ASSERT_FALSE(ndjson.empty());
  // Every line is a flat JSON object naming a metric; the run must have
  // touched all three layers' registries (serve is absent in a local join).
  bool saw_core_joins = false;
  bool saw_exec = false;
  std::istringstream lines(ndjson);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto obj = serve::ParseJsonObject(line);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString() << " line: " << line;
    ASSERT_TRUE(obj->count("metric")) << line;
    const std::string& name = obj->at("metric").str;
    if (name == "core.joins") {
      saw_core_joins = true;
      EXPECT_GE(obj->at("value").num, 1.0) << line;
    }
    if (name == "exec.tasks_executed") saw_exec = true;
  }
  EXPECT_TRUE(saw_core_joins) << ndjson;
  EXPECT_TRUE(saw_exec) << ndjson;

  std::remove(in.c_str());
  std::remove(stats_path.c_str());
}

const char kReferenceCsv[] =
    "name\n"
    "Microsoft Corp\n"
    "Oracle Corporation\n"
    "Apple Inc\n"
    "International Business Machines\n";

TEST(CliTest, SnapshotAndDirectLookup) {
  std::string in = TempPath("cli_ref.csv");
  std::string snap = TempPath("cli_ref.snap");
  WriteFile(in, kReferenceCsv);
  ASSERT_EQ(RunCli("snapshot --reference " + in + " --col name --alpha 0.4 "
                   "--out " + snap),
            0);

  // Lookup against the snapshot must find the corrupted string's source.
  std::string out;
  ASSERT_EQ(RunCliCapture("lookup --snapshot " + snap +
                              " --query \"International Business Machines Inc\" --k 2",
                          &out),
            0);
  EXPECT_NE(out.find("International Business Machines"), std::string::npos) << out;

  // The same lookup straight from the CSV (no snapshot) must agree.
  std::string direct;
  ASSERT_EQ(RunCliCapture("lookup --reference " + in +
                              " --col name --alpha 0.4 "
                              "--query \"International Business Machines Inc\" --k 2",
                          &direct),
            0);
  EXPECT_EQ(out, direct);

  std::remove(in.c_str());
  std::remove(snap.c_str());
}

TEST(CliTest, SnapshotAndLookupErrorPaths) {
  std::string in = TempPath("cli_ref_err.csv");
  WriteFile(in, kReferenceCsv);
  EXPECT_NE(RunCli("snapshot --reference " + in + " --col name"), 0);  // no --out
  EXPECT_NE(RunCli("snapshot --reference /nope.csv --col name --out x.snap"), 0);
  EXPECT_NE(RunCli("lookup --snapshot /nope.snap --query x"), 0);
  EXPECT_NE(RunCli("lookup --query x"), 0);  // no index source
  std::remove(in.c_str());
}

TEST(CliTest, ServedSocketRoundTrip) {
  std::string in = TempPath("served_ref.csv");
  std::string snap = TempPath("served_ref.snap");
  std::string sock = TempPath("served.sock");
  WriteFile(in, kReferenceCsv);
  std::remove(sock.c_str());
  ASSERT_EQ(RunCli("snapshot --reference " + in + " --col name --alpha 0.4 "
                   "--out " + snap),
            0);

  std::string server_log = TempPath("served.log");
  std::string server_cmd = std::string(SSJOIN_SERVED_PATH) + " --snapshot " +
                           snap + " --socket " + sock + " >" + server_log +
                           " 2>&1 &";
  ASSERT_EQ(std::system(server_cmd.c_str()), 0);
  ASSERT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) == 0; },
                      std::chrono::seconds(10)))
      << ReadWholeFile(server_log);

  std::string out;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock +
                              " --query \"International Business Machines Inc\" --k 2",
                          &out),
            0)
      << ReadWholeFile(server_log);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  EXPECT_NE(out.find("International Business Machines"), std::string::npos) << out;

  // Repeat the query: second time must be served from the cache.
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock +
                              " --query \"International Business Machines Inc\" --k 2",
                          &out),
            0);
  std::string stats;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --stats", &stats), 0);
  EXPECT_NE(stats.find("\"requests\": 2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_hits\": 1"), std::string::npos) << stats;

  // The metrics op streams the server's full obs registry as NDJSON; every
  // line must parse and the three layers (core, exec, serve) must all show.
  std::string metrics;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --metrics", &metrics), 0);
  bool saw_core = false;
  bool saw_exec = false;
  bool saw_serve_requests = false;
  std::istringstream metric_lines(metrics);
  std::string line;
  while (std::getline(metric_lines, line)) {
    if (line.empty()) continue;
    auto obj = serve::ParseJsonObject(line);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString() << " line: " << line;
    ASSERT_TRUE(obj->count("metric")) << line;
    const std::string& name = obj->at("metric").str;
    if (name.rfind("core.", 0) == 0) saw_core = true;
    if (name.rfind("exec.", 0) == 0) saw_exec = true;
    if (name == "serve.requests") {
      saw_serve_requests = true;
      EXPECT_GE(obj->at("value").num, 2.0) << line;
    }
  }
  EXPECT_TRUE(saw_core) << metrics;
  EXPECT_TRUE(saw_exec) << metrics;
  EXPECT_TRUE(saw_serve_requests) << metrics;

  // Ping, then orderly shutdown; the server removes its socket on exit.
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --ping", &out), 0);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --shutdown", &out), 0);
  EXPECT_NE(out.find("\"stopping\": true"), std::string::npos) << out;
  EXPECT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) != 0; },
                      std::chrono::seconds(10)))
      << ReadWholeFile(server_log);

  // A client against the dead socket fails cleanly.
  EXPECT_NE(RunCli("lookup --socket " + sock + " --ping"), 0);

  std::remove(in.c_str());
  std::remove(snap.c_str());
  std::remove(server_log.c_str());
}

/// Raw-socket client that misbehaves on purpose: connects, sends `bytes`
/// (possibly a partial request), optionally reads `read_bytes` of response,
/// then slams the connection shut.
void TruncatedClient(const std::string& sock, const std::string& bytes,
                     size_t read_bytes) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  if (read_bytes > 0) {
    std::string buf(read_bytes, '\0');
    (void)!::read(fd, buf.data(), buf.size());
  }
  ::close(fd);  // no clean goodbye: the server's write hits a dead peer
}

TEST(CliTest, ServedSurvivesTruncatedClients) {
  std::string in = TempPath("trunc_ref.csv");
  std::string snap = TempPath("trunc_ref.snap");
  std::string sock = TempPath("trunc.sock");
  WriteFile(in, kReferenceCsv);
  std::remove(sock.c_str());
  ASSERT_EQ(RunCli("snapshot --reference " + in + " --col name --alpha 0.4 "
                   "--out " + snap),
            0);
  std::string server_log = TempPath("trunc_served.log");
  std::string server_cmd = std::string(SSJOIN_SERVED_PATH) + " --snapshot " +
                           snap + " --socket " + sock + " >" + server_log +
                           " 2>&1 &";
  ASSERT_EQ(std::system(server_cmd.c_str()), 0);
  ASSERT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) == 0; },
                      std::chrono::seconds(10)))
      << ReadWholeFile(server_log);

  const std::string lookup =
      "{\"op\": \"lookup\", \"query\": \"International Business Machines\", "
      "\"k\": 3}\n";
  for (int round = 0; round < 5; ++round) {
    // Full request, zero response bytes read: the server's response write
    // lands on a closed peer (EPIPE path of the write loop).
    TruncatedClient(sock, lookup, 0);
    // Full request, response truncated after 1 byte (close mid-response).
    TruncatedClient(sock, lookup, 1);
    // Half a request and no newline: EOF mid-line must not be treated as a
    // request, and must not wedge the connection thread.
    TruncatedClient(sock, lookup.substr(0, lookup.size() / 2), 0);
  }

  // The server is still healthy for well-behaved clients afterwards.
  std::string out;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock +
                              " --query \"International Business Machines\" --k 2",
                          &out),
            0)
      << ReadWholeFile(server_log);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --shutdown", &out), 0);
  EXPECT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) != 0; },
                      std::chrono::seconds(10)))
      << ReadWholeFile(server_log);

  std::remove(in.c_str());
  std::remove(snap.c_str());
  std::remove(server_log.c_str());
}

TEST(CliTest, ServedChurnKillRestartRecovers) {
  std::string in = TempPath("churn_ref.csv");
  std::string sock = TempPath("churn.sock");
  std::string data = TempPath("churn_data");
  std::string pid_path = TempPath("churn.pid");
  WriteFile(in, kReferenceCsv);
  std::filesystem::remove_all(data);
  std::remove(sock.c_str());

  auto start_server = [&](const std::string& log) {
    std::string cmd = std::string(SSJOIN_SERVED_PATH) + " --reference " + in +
                      " --col name --alpha 0.4 --data " + data + " --socket " +
                      sock + " >" + log + " 2>&1 & echo $! > " + pid_path;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    ASSERT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) == 0; },
                        std::chrono::seconds(10)))
        << ReadWholeFile(log);
  };

  std::string log1 = TempPath("churn1.log");
  start_server(log1);

  // Churn through the CLI: a new doc, a replacement, a delete, a compaction,
  // then one more unsealed upsert the restart must replay from the WAL.
  std::string out;
  ASSERT_EQ(RunCliCapture("upsert --socket " + sock +
                              " --id 100 --value "
                              "\"International Business Machines Corp\"",
                          &out),
            0)
      << ReadWholeFile(log1);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"epoch\""), std::string::npos) << out;
  ASSERT_EQ(RunCli("upsert --socket " + sock + " --id 1 --value \"Oracle Corp\""),
            0);
  ASSERT_EQ(RunCli("delete --socket " + sock + " --id 2"), 0);
  ASSERT_EQ(RunCliCapture("compact --socket " + sock, &out), 0);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos) << out;
  ASSERT_EQ(RunCli("upsert --socket " + sock +
                   " --id 101 --value \"Apple Computer Inc\""),
            0);

  const std::vector<std::string> lookups = {
      "lookup --socket " + sock +
          " --query \"International Business Machines Inc\" --k 3",
      "lookup --socket " + sock + " --query \"Oracle Corp\" --k 3",
      "lookup --socket " + sock + " --query \"Apple Computer\" --k 3",
  };
  std::vector<std::string> before;
  for (const std::string& cmd : lookups) {
    ASSERT_EQ(RunCliCapture(cmd, &out), 0);
    before.push_back(out);
  }
  // The churn is visible pre-kill: the upserted doc matches, the deleted
  // original "Apple Inc" row is gone in favor of the replayed-tail doc.
  EXPECT_NE(before[0].find("International Business Machines Corp"),
            std::string::npos)
      << before[0];
  EXPECT_NE(before[2].find("Apple Computer Inc"), std::string::npos)
      << before[2];

  // Kill -9: no orderly shutdown, no final seal. Durability now rests
  // entirely on the manifest + WAL.
  int pid = std::atoi(ReadWholeFile(pid_path).c_str());
  ASSERT_GT(pid, 1);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  WaitFor([&] { return ::kill(pid, 0) != 0; }, std::chrono::seconds(5));
  std::remove(sock.c_str());

  // Restart against the same data dir: the manifest wins over --reference,
  // so the server reopens sealed segments and replays the unsealed WAL.
  std::string log2 = TempPath("churn2.log");
  start_server(log2);
  for (size_t i = 0; i < lookups.size(); ++i) {
    ASSERT_EQ(RunCliCapture(lookups[i], &out), 0) << ReadWholeFile(log2);
    EXPECT_EQ(out, before[i]) << "lookup " << i
                              << " diverged after kill+restart";
  }

  ASSERT_EQ(RunCliCapture("lookup --socket " + sock + " --shutdown", &out), 0);
  EXPECT_TRUE(WaitFor([&] { return ::access(sock.c_str(), F_OK) != 0; },
                      std::chrono::seconds(10)))
      << ReadWholeFile(log2);

  std::remove(in.c_str());
  std::remove(pid_path.c_str());
  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::filesystem::remove_all(data);
}

}  // namespace
}  // namespace ssjoin
