#include <gtest/gtest.h>

#include "engine/schema.h"
#include "engine/table.h"
#include "engine/value.h"

namespace ssjoin::engine {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{7});
  EXPECT_TRUE(i.is_int64());
  EXPECT_EQ(i.int64(), 7);
  EXPECT_DOUBLE_EQ(i.AsDouble(), 7.0);

  Value d(2.5);
  EXPECT_TRUE(d.is_float64());
  EXPECT_DOUBLE_EQ(d.float64(), 2.5);

  Value s("abc");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.string(), "abc");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value(1.0));  // types differ
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value("a") < Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("xyz").Hash(), Value("xyz").Hash());
  EXPECT_EQ(Value(3.14).Hash(), Value(3.14).Hash());
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FindField("b"), 1);
  EXPECT_EQ(s.FindField("zz"), -1);
  EXPECT_EQ(*s.FieldIndex("a"), 0u);
  EXPECT_FALSE(s.FieldIndex("zz").ok());
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_TRUE(s.AddField({"b", DataType::kString}).ok());
  EXPECT_FALSE(s.AddField({"a", DataType::kFloat64}).ok());
}

TEST(SchemaTest, ConcatRenamesClashes) {
  Schema left({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Schema right({{"a", DataType::kInt64}, {"c", DataType::kString}});
  Schema both = left.Concat(right);
  EXPECT_EQ(both.num_fields(), 4u);
  EXPECT_GE(both.FindField("a_r"), 0);
  EXPECT_GE(both.FindField("c"), 0);
}

TEST(SchemaTest, ToStringRendersTypes) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_EQ(s.ToString(), "(a: int64)");
}

Table MakeSample() {
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kFloat64}});
  auto result = Table::FromRows(schema, {{1, "alice", 0.5},
                                         {2, "bob", 1.5},
                                         {3, "carol", 2.5}});
  return *result;
}

TEST(TableTest, FromRowsBuildsColumns) {
  Table t = MakeSample();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.column(0).int64s()[1], 2);
  EXPECT_EQ(t.column(1).strings()[2], "carol");
  EXPECT_DOUBLE_EQ(t.column(2).float64s()[0], 0.5);
}

TEST(TableTest, FromRowsRejectsTypeMismatch) {
  Schema schema({{"id", DataType::kInt64}});
  auto result = Table::FromRows(schema, {{Value("oops")}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(TableTest, AppendRowRejectsArityMismatch) {
  Table t = MakeSample();
  EXPECT_FALSE(t.AppendRow({1, "x"}).ok());
}

TEST(TableTest, ColumnByName) {
  Table t = MakeSample();
  auto col = t.ColumnByName("name");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->strings()[0], "alice");
  EXPECT_FALSE(t.ColumnByName("nope").ok());
}

TEST(TableTest, TakeSelectsRowsInOrder) {
  Table t = MakeSample();
  Table picked = t.Take({2, 0});
  EXPECT_EQ(picked.num_rows(), 2u);
  EXPECT_EQ(picked.GetValue(1, 0).string(), "carol");
  EXPECT_EQ(picked.GetValue(1, 1).string(), "alice");
}

TEST(TableTest, TakeEmpty) {
  Table t = MakeSample();
  Table picked = t.Take({});
  EXPECT_EQ(picked.num_rows(), 0u);
  EXPECT_EQ(picked.schema(), t.schema());
}

TEST(TableTest, AppendRowFrom) {
  Table t = MakeSample();
  Table other(t.schema());
  other.AppendRowFrom(t, 1);
  EXPECT_EQ(other.num_rows(), 1u);
  EXPECT_EQ(other.GetValue(1, 0).string(), "bob");
}

TEST(TableTest, AppendConcatRow) {
  Table t = MakeSample();
  Schema joined_schema = t.schema().Concat(t.schema());
  Table joined(joined_schema);
  joined.AppendConcatRow(t, 0, t, 2);
  EXPECT_EQ(joined.num_rows(), 1u);
  EXPECT_EQ(joined.GetValue(1, 0).string(), "alice");
  EXPECT_EQ(joined.GetValue(4, 0).string(), "carol");
}

TEST(TableTest, ContentEquals) {
  Table a = MakeSample();
  Table b = MakeSample();
  EXPECT_TRUE(a.ContentEquals(b));
  ASSERT_TRUE(b.AppendRow({4, "dan", 3.5}).ok());
  EXPECT_FALSE(a.ContentEquals(b));
}

TEST(TableTest, ToStringShowsHeaderAndRows) {
  Table t = MakeSample();
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alice"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeSample();
  std::string s = t.ToString(1);
  EXPECT_NE(s.find("3 rows total"), std::string::npos);
}

}  // namespace
}  // namespace ssjoin::engine
