#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "datagen/address_gen.h"
#include "sim/edit_distance.h"
#include "sim/set_overlap.h"
#include "simjoin/gravano.h"
#include "simjoin/string_joins.h"

namespace ssjoin::simjoin {
namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

PairSet ToPairSet(const std::vector<MatchPair>& matches) {
  PairSet out;
  for (const MatchPair& m : matches) out.insert({m.r, m.s});
  return out;
}

std::vector<std::string> SmallAddressCorpus(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.35;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

/// Adapter exposing a WeightVector as a WeightProvider for brute-force
/// similarity computation.
class VectorWeights final : public text::WeightProvider {
 public:
  explicit VectorWeights(const core::WeightVector& w) : w_(w) {}
  double Weight(text::TokenId id) const override { return w_[id]; }

 private:
  const core::WeightVector& w_;
};

class AlgorithmSweep : public ::testing::TestWithParam<core::SSJoinAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AlgorithmSweep,
    ::testing::Values(core::SSJoinAlgorithm::kBasic,
                      core::SSJoinAlgorithm::kInvertedIndex,
                      core::SSJoinAlgorithm::kPrefixFilter,
                      core::SSJoinAlgorithm::kPrefixFilterInline),
    [](const auto& info) {
      std::string name = core::SSJoinAlgorithmName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(AlgorithmSweep, EditSimilarityJoinMatchesBruteForce) {
  std::vector<std::string> data = SmallAddressCorpus(150, 31);
  JoinExecution exec{GetParam(), false};
  for (double alpha : {0.8, 0.9}) {
    SCOPED_TRACE(alpha);
    SimJoinStats stats;
    auto matches = *EditSimilarityJoin(data, data, alpha, 3, exec, &stats);
    auto brute = *CrossProductEditSimilarityJoin(data, data, alpha);
    EXPECT_EQ(ToPairSet(matches), ToPairSet(brute));
    EXPECT_EQ(stats.result_pairs, matches.size());
    // Exactness of reported similarity.
    for (const MatchPair& m : matches) {
      EXPECT_NEAR(m.similarity, sim::EditSimilarity(data[m.r], data[m.s]), 1e-9);
      EXPECT_GE(m.similarity, alpha - 1e-9);
    }
  }
}

TEST_P(AlgorithmSweep, EditDistanceJoinMatchesBruteForce) {
  std::vector<std::string> data = SmallAddressCorpus(120, 77);
  JoinExecution exec{GetParam(), false};
  for (size_t max_distance : {1u, 3u}) {
    SCOPED_TRACE(max_distance);
    auto matches = *EditDistanceJoin(data, data, max_distance, 3, exec);
    PairSet expected;
    for (uint32_t i = 0; i < data.size(); ++i) {
      for (uint32_t j = 0; j < data.size(); ++j) {
        if (sim::EditDistanceAtMost(data[i], data[j], max_distance)) {
          expected.insert({i, j});
        }
      }
    }
    EXPECT_EQ(ToPairSet(matches), expected);
    for (const MatchPair& m : matches) {
      EXPECT_NEAR(-m.similarity,
                  static_cast<double>(sim::EditDistance(data[m.r], data[m.s])),
                  1e-12);
    }
  }
}

TEST_P(AlgorithmSweep, JaccardResemblanceJoinMatchesBruteForce) {
  std::vector<std::string> data = SmallAddressCorpus(200, 5);
  JoinExecution exec{GetParam(), false};
  SetJoinOptions opts;  // word tokens, IDF weights
  for (double alpha : {0.6, 0.85}) {
    SCOPED_TRACE(alpha);
    auto matches = *JaccardResemblanceJoin(data, data, alpha, opts, exec);

    // Independent brute force over the same Prep outputs.
    text::WordTokenizer tok;
    Prepared prep = PrepareStrings(data, data, tok, WeightMode::kIdf).MoveValueUnsafe();
    VectorWeights weights(prep.weights);
    PairSet expected;
    for (uint32_t i = 0; i < data.size(); ++i) {
      for (uint32_t j = 0; j < data.size(); ++j) {
        double jr = sim::JaccardResemblance(prep.r.set(i), prep.s.set(j), weights);
        if (jr >= alpha - 1e-12) expected.insert({i, j});
      }
    }
    EXPECT_EQ(ToPairSet(matches), expected);
  }
}

TEST_P(AlgorithmSweep, JaccardContainmentJoinMatchesBruteForce) {
  std::vector<std::string> data = SmallAddressCorpus(150, 9);
  JoinExecution exec{GetParam(), false};
  SetJoinOptions opts;
  double alpha = 0.7;
  auto matches = *JaccardContainmentJoin(data, data, alpha, opts, exec);
  text::WordTokenizer tok;
  Prepared prep = PrepareStrings(data, data, tok, WeightMode::kIdf).MoveValueUnsafe();
  VectorWeights weights(prep.weights);
  PairSet expected;
  for (uint32_t i = 0; i < data.size(); ++i) {
    for (uint32_t j = 0; j < data.size(); ++j) {
      if (prep.r.set(i).empty()) continue;  // zero-weight sets never emitted
      double jc = sim::JaccardContainment(prep.r.set(i), prep.s.set(j), weights);
      if (jc >= alpha - 1e-12) expected.insert({i, j});
    }
  }
  EXPECT_EQ(ToPairSet(matches), expected);
  for (const MatchPair& m : matches) {
    EXPECT_GE(m.similarity, alpha - 1e-9);
    EXPECT_LE(m.similarity, 1.0 + 1e-9);
  }
}

TEST(StringJoinsTest, JaccardWithQGramTokens) {
  std::vector<std::string> data = SmallAddressCorpus(100, 13);
  SetJoinOptions opts;
  opts.word_tokens = false;
  opts.q = 3;
  auto matches = *JaccardResemblanceJoin(data, data, 0.8, opts);
  // Every string resembles itself at 1.0.
  PairSet pairs = ToPairSet(matches);
  for (uint32_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(pairs.count({i, i})) << i;
  }
}

TEST_P(AlgorithmSweep, CosineJoinMatchesBruteForce) {
  std::vector<std::string> data = SmallAddressCorpus(150, 21);
  JoinExecution exec{GetParam(), false};
  double alpha = 0.8;
  auto matches = *CosineJoin(data, data, alpha, {}, exec);
  text::WordTokenizer tok;
  Prepared prep = PrepareStrings(data, data, tok, WeightMode::kIdfSquared).MoveValueUnsafe();
  VectorWeights weights(prep.weights);
  PairSet expected;
  for (uint32_t i = 0; i < data.size(); ++i) {
    for (uint32_t j = 0; j < data.size(); ++j) {
      if (prep.r.set(i).empty() || prep.s.set(j).empty()) continue;
      double cos = sim::CosineSimilarity(prep.r.set(i), prep.s.set(j), weights);
      if (cos >= alpha - 1e-12) expected.insert({i, j});
    }
  }
  EXPECT_EQ(ToPairSet(matches), expected);
}

TEST_P(AlgorithmSweep, HammingJoinMatchesBruteForce) {
  // Fixed-length-ish codes: zip-like strings.
  Rng rng(3);
  std::vector<std::string> data;
  for (int i = 0; i < 200; ++i) {
    std::string s;
    for (int d = 0; d < 7; ++d) s += static_cast<char>('0' + rng.Uniform(4));
    data.push_back(s);
  }
  JoinExecution exec{GetParam(), false};
  for (size_t max_distance : {1u, 2u}) {
    SCOPED_TRACE(max_distance);
    auto matches = *HammingJoin(data, data, max_distance, exec);
    PairSet expected;
    for (uint32_t i = 0; i < data.size(); ++i) {
      for (uint32_t j = 0; j < data.size(); ++j) {
        if (sim::HammingDistance(data[i], data[j]) <= max_distance) {
          expected.insert({i, j});
        }
      }
    }
    EXPECT_EQ(ToPairSet(matches), expected);
  }
}

TEST(StringJoinsTest, HammingJoinMixedLengths) {
  std::vector<std::string> data{"abcd", "abc", "abcde", "xbcd"};
  auto matches = *HammingJoin(data, data, 1);
  PairSet pairs = ToPairSet(matches);
  EXPECT_TRUE(pairs.count({0, 1}));   // tail position counts as 1 mismatch
  EXPECT_TRUE(pairs.count({0, 3}));   // 1 substitution
  EXPECT_FALSE(pairs.count({1, 2}));  // 2 tail positions
}

TEST(StringJoinsTest, SoundexJoinGroupsHomophones) {
  std::vector<std::string> names{"Robert", "Rupert", "Smith", "Smyth", "Jones"};
  auto matches = *SoundexJoin(names, names);
  PairSet pairs = ToPairSet(matches);
  EXPECT_TRUE(pairs.count({0, 1}));
  EXPECT_TRUE(pairs.count({2, 3}));
  EXPECT_FALSE(pairs.count({0, 2}));
  EXPECT_FALSE(pairs.count({4, 0}));
  for (uint32_t i = 0; i < names.size(); ++i) EXPECT_TRUE(pairs.count({i, i}));
}

TEST(StringJoinsTest, CostModelExecutionProducesSameResult) {
  std::vector<std::string> data = SmallAddressCorpus(150, 41);
  JoinExecution fixed{core::SSJoinAlgorithm::kPrefixFilterInline, false};
  JoinExecution costed{core::SSJoinAlgorithm::kBasic, /*use_cost_model=*/true};
  auto a = *JaccardResemblanceJoin(data, data, 0.8, {}, fixed);
  auto b = *JaccardResemblanceJoin(data, data, 0.8, {}, costed);
  EXPECT_EQ(ToPairSet(a), ToPairSet(b));
}

TEST(StringJoinsTest, InvalidArguments) {
  std::vector<std::string> data{"x"};
  EXPECT_FALSE(EditSimilarityJoin(data, data, 1.5, 3).ok());
  EXPECT_FALSE(EditSimilarityJoin(data, data, -0.1, 3).ok());
  EXPECT_FALSE(EditSimilarityJoin(data, data, 0.8, 0).ok());
  EXPECT_FALSE(EditDistanceJoin(data, data, 2, 0).ok());
}

TEST(StringJoinsTest, EmptyInputs) {
  std::vector<std::string> empty;
  std::vector<std::string> one{"hello"};
  EXPECT_TRUE(EditSimilarityJoin(empty, one, 0.8, 3)->empty());
  EXPECT_TRUE(JaccardResemblanceJoin(one, empty, 0.8)->empty());
  EXPECT_TRUE(SoundexJoin(empty, empty)->empty());
}

TEST(StringJoinsTest, VerifierCallsTrackSSJoinOutput) {
  std::vector<std::string> data = SmallAddressCorpus(150, 63);
  SimJoinStats stats;
  auto matches = *EditSimilarityJoin(data, data, 0.85, 3, {}, &stats);
  // Every SSJoin survivor goes through the UDF exactly once (Table 1's
  // SSJoin column); the final result can only be smaller.
  EXPECT_EQ(stats.verifier_calls, stats.ssjoin.result_pairs);
  EXPECT_GE(stats.verifier_calls, matches.size());
  // Phase breakdown is recorded (Figure 10's stacking).
  EXPECT_GT(stats.phases.Millis("Prep"), 0.0);
  EXPECT_GE(stats.phases.Millis("Prefix-filter"), 0.0);
  EXPECT_GT(stats.phases.TotalMillis(), 0.0);
}

}  // namespace
}  // namespace ssjoin::simjoin
