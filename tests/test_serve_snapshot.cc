/// Snapshot round-trip and robustness: a reloaded index must answer
/// bit-identically to the index it was saved from, and every corruption mode
/// (truncation, bad magic, future version, bit flips) must yield a clean
/// Status error — never UB or a partially initialized index.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "serve/snapshot.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::serve {
namespace {

using simjoin::FuzzyMatchIndex;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectIdenticalLookups(const FuzzyMatchIndex& a, const FuzzyMatchIndex& b,
                            const std::vector<std::string>& queries, size_t k) {
  for (const std::string& q : queries) {
    auto ma = a.Lookup(q, k);
    auto mb = b.Lookup(q, k);
    ASSERT_EQ(ma.size(), mb.size()) << "query: " << q;
    for (size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].ref_index, mb[i].ref_index) << "query: " << q;
      // Bit-identical, not just approximately equal: the snapshot stores the
      // exact weights, order and sets the original index computed with.
      EXPECT_EQ(ma[i].similarity, mb[i].similarity) << "query: " << q;
    }
  }
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n) {
  Rng rng(99);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

TEST(SnapshotTest, RoundTripWordTokens) {
  auto master = Master(400, 21);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  std::string path = TempPath("fm_word.snap");
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->size(), index.size());
  EXPECT_EQ(loaded->options().alpha, index.options().alpha);
  EXPECT_EQ(loaded->options().word_tokens, index.options().word_tokens);
  EXPECT_EQ(loaded->dictionary().num_elements(), index.dictionary().num_elements());
  EXPECT_EQ(loaded->weights(), index.weights());
  EXPECT_EQ(loaded->order().ranks(), index.order().ranks());
  EXPECT_EQ(loaded->prefix_offsets(), index.prefix_offsets());
  EXPECT_EQ(loaded->prefix_postings(), index.prefix_postings());

  auto queries = DirtyQueries(master, 100);
  queries.push_back(master[0]);
  queries.push_back("completely unknown vocabulary");
  ExpectIdenticalLookups(index, *loaded, queries, 5);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripQGramTokens) {
  auto master = Master(200, 22);
  FuzzyMatchIndex::Options options;
  options.word_tokens = false;
  options.q = 3;
  options.alpha = 0.4;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  std::string path = TempPath("fm_qgram.snap");
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->options().word_tokens);
  EXPECT_EQ(loaded->options().q, 3u);
  ExpectIdenticalLookups(index, *loaded, DirtyQueries(master, 50), 3);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripEmptyReference) {
  auto index = FuzzyMatchIndex::Build({}, {}).MoveValueUnsafe();
  std::string path = TempPath("fm_empty.snap");
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_TRUE(loaded->Lookup("anything", 5).empty());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFile) {
  auto loaded = LoadSnapshot(TempPath("does_not_exist.snap"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto master = Master(150, 23);
    FuzzyMatchIndex::Options options;
    options.alpha = 0.4;
    auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
    // Unique per test: ctest runs fixture tests as parallel processes.
    path_ = TempPath(std::string("fm_corrupt_") +
                     ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                     ".snap");
    ASSERT_TRUE(SaveSnapshot(index, path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), kSnapshotHeaderSize + sizeof(uint64_t));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, TruncatedAtEveryRegion) {
  // Sample truncation points across the whole file: inside the header,
  // inside the payload, and just short of the checksum.
  std::vector<size_t> cuts = {0,
                              4,
                              kSnapshotHeaderSize - 1,
                              kSnapshotHeaderSize,
                              kSnapshotHeaderSize + 5,
                              bytes_.size() / 2,
                              bytes_.size() - sizeof(uint64_t),
                              bytes_.size() - 1};
  for (size_t cut : cuts) {
    WriteFile(path_, bytes_.substr(0, cut));
    auto loaded = LoadSnapshot(path_);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
}

TEST_F(SnapshotCorruptionTest, WrongMagic) {
  std::string bad = bytes_;
  bad[0] = 'X';
  WriteFile(path_, bad);
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, FutureVersion) {
  std::string bad = bytes_;
  bad[8] = static_cast<char>(kSnapshotVersion + 1);
  WriteFile(path_, bad);
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, FlippedPayloadByteFailsChecksum) {
  // Flip one byte at several payload positions; the checksum must catch all
  // of them before any decoding happens.
  for (size_t pos : {kSnapshotHeaderSize, kSnapshotHeaderSize + 17,
                     bytes_.size() / 2, bytes_.size() - sizeof(uint64_t) - 1}) {
    std::string bad = bytes_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    WriteFile(path_, bad);
    auto loaded = LoadSnapshot(path_);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError) << "flip at " << pos;
    EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
        << "flip at " << pos;
  }
}

TEST_F(SnapshotCorruptionTest, FlippedChecksumByte) {
  std::string bad = bytes_;
  bad[bytes_.size() - 1] = static_cast<char>(bad[bytes_.size() - 1] ^ 0x01);
  WriteFile(path_, bad);
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageRejected) {
  WriteFile(path_, bytes_ + std::string(16, '\0'));
  auto loaded = LoadSnapshot(path_);
  // Appending bytes shifts the checksum read, so this fails one way or the
  // other; the point is it fails cleanly.
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace ssjoin::serve
