/// Snapshot round-trip and robustness: a reloaded index must answer
/// bit-identically to the index it was saved from, and every corruption mode
/// (truncation, bad magic, future version, bit flips) must yield a clean
/// Status error — never UB or a partially initialized index.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/hash.h"
#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "serve/snapshot.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::serve {
namespace {

using simjoin::FuzzyMatchIndex;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectIdenticalLookups(const FuzzyMatchIndex& a, const FuzzyMatchIndex& b,
                            const std::vector<std::string>& queries, size_t k) {
  for (const std::string& q : queries) {
    auto ma = a.Lookup(q, k);
    auto mb = b.Lookup(q, k);
    ASSERT_EQ(ma.size(), mb.size()) << "query: " << q;
    for (size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].ref_index, mb[i].ref_index) << "query: " << q;
      // Bit-identical, not just approximately equal: the snapshot stores the
      // exact weights, order and sets the original index computed with.
      EXPECT_EQ(ma[i].similarity, mb[i].similarity) << "query: " << q;
    }
  }
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n) {
  Rng rng(99);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

TEST(SnapshotTest, RoundTripWordTokens) {
  auto master = Master(400, 21);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  std::string path = TempPath("fm_word.snap");
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->size(), index.size());
  EXPECT_EQ(loaded->options().alpha, index.options().alpha);
  EXPECT_EQ(loaded->options().word_tokens, index.options().word_tokens);
  EXPECT_EQ(loaded->dictionary().num_elements(), index.dictionary().num_elements());
  EXPECT_EQ(loaded->weights(), index.weights());
  EXPECT_EQ(loaded->order().ranks(), index.order().ranks());
  EXPECT_EQ(loaded->prefix_offsets(), index.prefix_offsets());
  EXPECT_EQ(loaded->prefix_postings(), index.prefix_postings());

  auto queries = DirtyQueries(master, 100);
  queries.push_back(master[0]);
  queries.push_back("completely unknown vocabulary");
  ExpectIdenticalLookups(index, *loaded, queries, 5);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripQGramTokens) {
  auto master = Master(200, 22);
  FuzzyMatchIndex::Options options;
  options.word_tokens = false;
  options.q = 3;
  options.alpha = 0.4;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  std::string path = TempPath("fm_qgram.snap");
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->options().word_tokens);
  EXPECT_EQ(loaded->options().q, 3u);
  ExpectIdenticalLookups(index, *loaded, DirtyQueries(master, 50), 3);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripEmptyReference) {
  auto index = FuzzyMatchIndex::Build({}, {}).MoveValueUnsafe();
  std::string path = TempPath("fm_empty.snap");
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_TRUE(loaded->Lookup("anything", 5).empty());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFile) {
  auto loaded = LoadSnapshot(TempPath("does_not_exist.snap"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto master = Master(150, 23);
    FuzzyMatchIndex::Options options;
    options.alpha = 0.4;
    auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
    // Unique per test: ctest runs fixture tests as parallel processes.
    path_ = TempPath(std::string("fm_corrupt_") +
                     ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                     ".snap");
    ASSERT_TRUE(SaveSnapshot(index, path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), kSnapshotHeaderSize + sizeof(uint64_t));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, TruncatedAtEveryRegion) {
  // Sample truncation points across the whole file: inside the header,
  // inside the payload, and just short of the checksum.
  std::vector<size_t> cuts = {0,
                              4,
                              kSnapshotHeaderSize - 1,
                              kSnapshotHeaderSize,
                              kSnapshotHeaderSize + 5,
                              bytes_.size() / 2,
                              bytes_.size() - sizeof(uint64_t),
                              bytes_.size() - 1};
  for (size_t cut : cuts) {
    WriteFile(path_, bytes_.substr(0, cut));
    auto loaded = LoadSnapshot(path_);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
}

TEST_F(SnapshotCorruptionTest, WrongMagic) {
  std::string bad = bytes_;
  bad[0] = 'X';
  WriteFile(path_, bad);
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, FutureVersion) {
  std::string bad = bytes_;
  bad[8] = static_cast<char>(kSnapshotVersion + 1);
  WriteFile(path_, bad);
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, FlippedPayloadByteFailsChecksum) {
  // Flip one byte at several payload positions; the checksum must catch all
  // of them before any decoding happens.
  for (size_t pos : {kSnapshotHeaderSize, kSnapshotHeaderSize + 17,
                     bytes_.size() / 2, bytes_.size() - sizeof(uint64_t) - 1}) {
    std::string bad = bytes_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    WriteFile(path_, bad);
    auto loaded = LoadSnapshot(path_);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError) << "flip at " << pos;
    EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
        << "flip at " << pos;
  }
}

TEST_F(SnapshotCorruptionTest, FlippedChecksumByte) {
  std::string bad = bytes_;
  bad[bytes_.size() - 1] = static_cast<char>(bad[bytes_.size() - 1] ^ 0x01);
  WriteFile(path_, bad);
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageRejected) {
  WriteFile(path_, bytes_ + std::string(16, '\0'));
  auto loaded = LoadSnapshot(path_);
  // Appending bytes shifts the checksum read, so this fails one way or the
  // other; the point is it fails cleanly.
  EXPECT_FALSE(loaded.ok());
}

// ---------------------------------------------------------------------------
// Format v2 (flat CSR sets section): decode-level corruption and v1 compat.

/// Patches payload bytes in a full snapshot image and rewrites the FNV
/// trailer so the corruption reaches the decoder instead of tripping the
/// checksum — these tests target the CSR validation behind the checksum.
std::string PatchPayloadAndRechecksum(std::string bytes, size_t payload_pos,
                                      const std::string& patch) {
  size_t abs = kSnapshotHeaderSize + payload_pos;
  bytes.replace(abs, patch.size(), patch);
  size_t payload_size = bytes.size() - kSnapshotHeaderSize - sizeof(uint64_t);
  uint64_t checksum = HashString(
      std::string_view(bytes.data() + kSnapshotHeaderSize, payload_size));
  bytes.replace(bytes.size() - sizeof(uint64_t), sizeof(uint64_t),
                std::string(reinterpret_cast<const char*>(&checksum),
                            sizeof(checksum)));
  return bytes;
}

template <typename T>
std::string LE(T v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// A v2 snapshot of a small index plus the computed payload positions of the
/// sets section's CSR arrays (derived from the tail sections' known sizes).
class SnapshotV2CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto master = Master(60, 29);
    FuzzyMatchIndex::Options options;
    options.alpha = 0.4;
    index_ = std::make_unique<FuzzyMatchIndex>(
        FuzzyMatchIndex::Build(master, options).MoveValueUnsafe());
    path_ = TempPath(std::string("fm_v2_") +
                     ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                     ".snap");
    ASSERT_TRUE(SaveSnapshot(*index_, path_).ok());
    bytes_ = ReadFile(path_);

    // Walk back from the payload end over the fixed-size tail sections to
    // locate the sets section. Each Vec is an 8-byte count + raw data.
    const auto& sets = index_->sets();
    size_t payload_size = bytes_.size() - kSnapshotHeaderSize - sizeof(uint64_t);
    size_t pos = payload_size;
    auto skip_back = [&pos](size_t elem_size, size_t count) {
      pos -= sizeof(uint64_t) + elem_size * count;
    };
    skip_back(sizeof(core::GroupId), index_->prefix_postings().size());
    skip_back(sizeof(uint32_t), index_->prefix_offsets().size());
    skip_back(sizeof(double), sets.set_weights.size());
    skip_back(sizeof(double), sets.norms.size());
    skip_back(sizeof(double), sets.store.weights().size());  // element weights
    skip_back(sizeof(text::TokenId), sets.store.token_ids().size());
    token_ids_vec_pos_ = pos;
    skip_back(sizeof(uint32_t), sets.store.offsets().size());
    offsets_vec_pos_ = pos;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Payload position of offsets entry `i` (past the count header).
  size_t OffsetEntryPos(size_t i) const {
    return offsets_vec_pos_ + sizeof(uint64_t) + i * sizeof(uint32_t);
  }

  std::unique_ptr<FuzzyMatchIndex> index_;
  std::string path_;
  std::string bytes_;
  size_t offsets_vec_pos_ = 0;
  size_t token_ids_vec_pos_ = 0;
};

TEST_F(SnapshotV2CorruptionTest, WritesCurrentVersion) {
  uint32_t version = 0;
  std::memcpy(&version, bytes_.data() + 8, sizeof(version));
  EXPECT_EQ(version, kSnapshotVersion);
  EXPECT_EQ(kSnapshotVersion, 2u);
}

TEST_F(SnapshotV2CorruptionTest, SanityCheckSectionPositions) {
  // The walk-back must land the count headers on the real array lengths.
  uint64_t offsets_count = 0;
  std::memcpy(&offsets_count,
              bytes_.data() + kSnapshotHeaderSize + offsets_vec_pos_,
              sizeof(offsets_count));
  EXPECT_EQ(offsets_count, index_->sets().store.offsets().size());
  uint64_t token_count = 0;
  std::memcpy(&token_count,
              bytes_.data() + kSnapshotHeaderSize + token_ids_vec_pos_,
              sizeof(token_count));
  EXPECT_EQ(token_count, index_->sets().store.token_ids().size());
}

TEST_F(SnapshotV2CorruptionTest, TruncatedOffsetsArrayRejected) {
  // Claim more offsets entries than the payload holds: the bounds-checked
  // reader must fail cleanly before any CSR assembly.
  WriteFile(path_, PatchPayloadAndRechecksum(bytes_, offsets_vec_pos_,
                                             LE<uint64_t>(UINT64_MAX / 8)));
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(SnapshotV2CorruptionTest, NonMonotoneOffsetsRejected) {
  ASSERT_GE(index_->sets().num_groups(), 2u);
  // offsets[1] beyond the final offset breaks monotonicity mid-array.
  uint32_t huge = static_cast<uint32_t>(index_->sets().total_elements() + 1);
  WriteFile(path_, PatchPayloadAndRechecksum(bytes_, OffsetEntryPos(1),
                                             LE<uint32_t>(huge)));
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotV2CorruptionTest, NonZeroFirstOffsetRejected) {
  WriteFile(path_, PatchPayloadAndRechecksum(bytes_, OffsetEntryPos(0),
                                             LE<uint32_t>(1)));
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotV2CorruptionTest, ChecksumCoversFlatArrays) {
  // A bit flip inside the CSR arrays without a rewritten trailer must be
  // caught by the checksum, exactly like v1 payload corruption.
  std::string bad = bytes_;
  size_t abs = kSnapshotHeaderSize + token_ids_vec_pos_ + sizeof(uint64_t);
  bad[abs] = static_cast<char>(bad[abs] ^ 0x10);
  WriteFile(path_, bad);
  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotCompatTest, V1SnapshotLoadsIdentically) {
  // A snapshot written in the legacy nested format (version 1, as produced
  // before the CSR refactor) must load into an index answering
  // bit-identically to both the source index and its v2 snapshot.
  auto master = Master(250, 31);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  std::string v1_path = TempPath("fm_compat_v1.snap");
  std::string v2_path = TempPath("fm_compat_v2.snap");
  ASSERT_TRUE(SaveSnapshotAtVersion(index, v1_path, 1).ok());
  ASSERT_TRUE(SaveSnapshot(index, v2_path).ok());

  std::string v1_bytes = ReadFile(v1_path);
  uint32_t version = 0;
  std::memcpy(&version, v1_bytes.data() + 8, sizeof(version));
  ASSERT_EQ(version, 1u);

  auto v1 = LoadSnapshot(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto v2 = LoadSnapshot(v2_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();

  // Both decode to the same flat store, norms and weights.
  EXPECT_TRUE(v1->sets().store == index.sets().store);
  EXPECT_TRUE(v2->sets().store == index.sets().store);
  EXPECT_EQ(v1->sets().norms, index.sets().norms);
  EXPECT_EQ(v1->sets().set_weights, index.sets().set_weights);

  auto queries = DirtyQueries(master, 60);
  queries.push_back(master[7]);
  ExpectIdenticalLookups(index, *v1, queries, 5);
  ExpectIdenticalLookups(*v1, *v2, queries, 5);
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(SnapshotCompatTest, SaveAtUnknownVersionRejected) {
  auto index = FuzzyMatchIndex::Build({}, {}).MoveValueUnsafe();
  std::string path = TempPath("fm_bad_version.snap");
  EXPECT_FALSE(SaveSnapshotAtVersion(index, path, 3).ok());
  EXPECT_FALSE(SaveSnapshotAtVersion(index, path, 0).ok());
}

// ---------------------------------------------------------------------------
// Atomic-write failure injection: a failed SaveSnapshot must leave no stray
// temp file behind and must never clobber the previous snapshot.

size_t CountTempFiles(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") ++n;
  }
  return n;
}

TEST(SnapshotAtomicWriteTest, FailedSaveLeavesNoTempStrays) {
  auto master = Master(80, 71);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.4;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  std::string dir = TempPath("atomic_fail");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  std::string path = dir + "/index.snap";

  // A good snapshot first, so a failed rewrite has something to preserve.
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  std::string good_bytes = ReadFile(path);

  using common::AtomicWriteFailure;
  for (AtomicWriteFailure mode :
       {AtomicWriteFailure::kOpen, AtomicWriteFailure::kWrite,
        AtomicWriteFailure::kRename}) {
    common::InjectAtomicWriteFailureForTest(mode, 1);
    Status s = SaveSnapshot(index, path);
    EXPECT_FALSE(s.ok()) << "mode " << static_cast<int>(mode);
    // Cleanup contract: no *.tmp stray, old snapshot byte-identical.
    EXPECT_EQ(CountTempFiles(dir), 0u) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(ReadFile(path), good_bytes) << "mode " << static_cast<int>(mode);
    // The loaded snapshot still works after the failed overwrite.
    auto loaded = LoadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  }

  // Injection is spent: the next save succeeds and replaces the file.
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  EXPECT_EQ(CountTempFiles(dir), 0u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotAtomicWriteTest, InjectedCountDecrements) {
  std::string dir = TempPath("atomic_count");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  std::string path = dir + "/file.bin";

  common::InjectAtomicWriteFailureForTest(common::AtomicWriteFailure::kWrite, 2);
  EXPECT_FALSE(common::WriteFileAtomic(path, "payload").ok());
  EXPECT_FALSE(common::WriteFileAtomic(path, "payload").ok());
  EXPECT_TRUE(common::WriteFileAtomic(path, "payload").ok());
  EXPECT_EQ(ReadFile(path), "payload");
  EXPECT_EQ(CountTempFiles(dir), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ssjoin::serve
