/// Filter subsystem tests: attribute values and validation, predicate
/// canonicalization and match semantics, the BE-index k-of-n evaluator
/// (differentially against FilterPredicate::Matches), wire conversions, and
/// the filtered-lookup bit-identity contract — a filtered lookup must equal
/// the unfiltered lookup with unbounded k, post-filtered by Matches and
/// truncated to k — across the immutable index, the mutable index (fresh,
/// sealed, compacted and WAL-replayed), the lookup service at several
/// thread counts, and the sharded coordinator at N ∈ {1, 3}.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/payload.h"
#include "common/rng.h"
#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "filter/attr.h"
#include "filter/be_index.h"
#include "filter/predicate.h"
#include "index/mutable_index.h"
#include "serve/lookup_service.h"
#include "serve/wire.h"
#include "shard/sharded_index.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::filter {
namespace {

using index::MutableFuzzyIndex;
using index::MutableIndexOptions;
using simjoin::FuzzyMatchIndex;

// ---------------------------------------------------------------------------
// AttrValue + validation

TEST(AttrValueTest, EqualityIsTypeSensitive) {
  EXPECT_EQ(AttrValue::String("1"), AttrValue::String("1"));
  EXPECT_EQ(AttrValue::Int64(1), AttrValue::Int64(1));
  EXPECT_NE(AttrValue::String("1"), AttrValue::Int64(1));
  EXPECT_NE(AttrValue::String("a"), AttrValue::String("b"));
  EXPECT_NE(AttrValue::Int64(1), AttrValue::Int64(2));
}

TEST(AttrValueTest, TotalOrderSortsTypeFirst) {
  std::vector<AttrValue> values = {AttrValue::Int64(2), AttrValue::String("b"),
                                   AttrValue::Int64(-1), AttrValue::String("a")};
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values[0], AttrValue::String("a"));
  EXPECT_EQ(values[1], AttrValue::String("b"));
  EXPECT_EQ(values[2], AttrValue::Int64(-1));
  EXPECT_EQ(values[3], AttrValue::Int64(2));
}

TEST(AttrValidationTest, NameRules) {
  EXPECT_TRUE(ValidateAttrName("country").ok());
  EXPECT_TRUE(ValidateAttrName("a b").ok());       // interior space is fine
  EXPECT_TRUE(ValidateAttrName("x!y").ok());       // '!' only banned leading
  EXPECT_FALSE(ValidateAttrName("").ok());
  EXPECT_FALSE(ValidateAttrName("!country").ok()); // reserved for NOT-IN
  EXPECT_FALSE(ValidateAttrName(std::string("a\0b", 3)).ok());
  EXPECT_FALSE(ValidateAttrName("a\tb").ok());
  EXPECT_FALSE(ValidateAttrName("a\nb").ok());
  EXPECT_FALSE(ValidateAttrName("a\x7f b").ok());
  EXPECT_TRUE(ValidateAttrName(std::string(256, 'x')).ok());
  EXPECT_FALSE(ValidateAttrName(std::string(257, 'x')).ok());
}

TEST(AttrValidationTest, StringValueRules) {
  EXPECT_TRUE(ValidateAttrStringValue("").ok());     // empty value is legal
  EXPECT_TRUE(ValidateAttrStringValue("!lead").ok()); // '!' only reserved in names
  EXPECT_FALSE(ValidateAttrStringValue(std::string("a\0b", 3)).ok());
  EXPECT_FALSE(ValidateAttrStringValue("a\x01z").ok());
  EXPECT_FALSE(ValidateAttrStringValue("a\x7f").ok());
  EXPECT_TRUE(ValidateAttrValue(AttrValue::Int64(-7)).ok());
  EXPECT_FALSE(ValidateAttrValue(AttrValue::String("\x1f")).ok());
}

TEST(AttrSetTest, SetReplacesAndKeepsSorted) {
  AttrSet attrs;
  ASSERT_TRUE(attrs.Set("z", AttrValue::Int64(1)).ok());
  ASSERT_TRUE(attrs.Set("a", AttrValue::String("x")).ok());
  ASSERT_TRUE(attrs.Set("z", AttrValue::Int64(2)).ok());  // replace
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs.entries()[0].first, "a");
  EXPECT_EQ(attrs.entries()[1].first, "z");
  ASSERT_NE(attrs.Find("z"), nullptr);
  EXPECT_EQ(*attrs.Find("z"), AttrValue::Int64(2));
  EXPECT_EQ(attrs.Find("missing"), nullptr);
}

TEST(AttrSetTest, SetValidates) {
  AttrSet attrs;
  EXPECT_FALSE(attrs.Set("", AttrValue::Int64(1)).ok());
  EXPECT_FALSE(attrs.Set("!neg", AttrValue::Int64(1)).ok());
  EXPECT_FALSE(attrs.Set(std::string("a\0", 2), AttrValue::Int64(1)).ok());
  EXPECT_FALSE(attrs.Set("k", AttrValue::String(std::string("\0", 1))).ok());
  EXPECT_TRUE(attrs.empty());
}

TEST(AttrSetTest, EncodeDecodeRoundTrip) {
  AttrSet attrs;
  ASSERT_TRUE(attrs.Set("country", AttrValue::String("DE")).ok());
  ASSERT_TRUE(attrs.Set("tier", AttrValue::Int64(-3)).ok());
  common::PayloadWriter w;
  attrs.EncodeTo(&w);
  common::PayloadReader r(w.buffer());
  AttrSet decoded;
  ASSERT_TRUE(AttrSet::DecodeFrom(&r, &decoded).ok());
  EXPECT_EQ(decoded, attrs);
}

TEST(AttrSetTest, DecodeRejectsSmuggledControlBytes) {
  // Hand-craft a payload whose name has a control byte: decode must refuse
  // it even though the upsert-time check never saw it.
  common::PayloadWriter w;
  w.U64(1);                        // count
  w.Str(std::string("a\x01", 2));  // name with control byte
  w.U8(1);                         // kInt64
  w.U64(0);
  common::PayloadReader r(w.buffer());
  AttrSet out;
  EXPECT_FALSE(AttrSet::DecodeFrom(&r, &out).ok());
}

// ---------------------------------------------------------------------------
// FilterPredicate

FilterConjunct In(std::string name, std::vector<AttrValue> values) {
  FilterConjunct c;
  c.name = std::move(name);
  c.values = std::move(values);
  return c;
}

FilterConjunct NotIn(std::string name, std::vector<AttrValue> values) {
  FilterConjunct c = In(std::move(name), std::move(values));
  c.negated = true;
  return c;
}

TEST(FilterPredicateTest, AddConjunctCanonicalizesValues) {
  FilterPredicate pred;
  ASSERT_TRUE(pred.AddConjunct(In("k", {AttrValue::Int64(3), AttrValue::Int64(1),
                                        AttrValue::Int64(3)}))
                  .ok());
  ASSERT_EQ(pred.conjuncts().size(), 1u);
  const auto& values = pred.conjuncts()[0].values;
  ASSERT_EQ(values.size(), 2u);  // deduplicated
  EXPECT_EQ(values[0], AttrValue::Int64(1));
  EXPECT_EQ(values[1], AttrValue::Int64(3));
}

TEST(FilterPredicateTest, RejectsEmptyValueSetAndDuplicates) {
  FilterPredicate pred;
  EXPECT_FALSE(pred.AddConjunct(In("k", {})).ok());
  ASSERT_TRUE(pred.AddConjunct(In("k", {AttrValue::Int64(1)})).ok());
  EXPECT_FALSE(pred.AddConjunct(In("k", {AttrValue::Int64(2)})).ok());
  // Same name with the other sign is a distinct conjunct.
  EXPECT_TRUE(pred.AddConjunct(NotIn("k", {AttrValue::Int64(9)})).ok());
  EXPECT_FALSE(pred.AddConjunct(NotIn("k", {AttrValue::Int64(8)})).ok());
  EXPECT_EQ(pred.num_positive(), 1u);
}

TEST(FilterPredicateTest, RejectsInvalidNamesAndValues) {
  FilterPredicate pred;
  EXPECT_FALSE(pred.AddConjunct(In("!bad", {AttrValue::Int64(1)})).ok());
  EXPECT_FALSE(pred.AddConjunct(In("", {AttrValue::Int64(1)})).ok());
  EXPECT_FALSE(
      pred.AddConjunct(In("k", {AttrValue::String(std::string("\0", 1))})).ok());
}

TEST(FilterPredicateTest, MatchSemantics) {
  AttrSet de;
  ASSERT_TRUE(de.Set("country", AttrValue::String("DE")).ok());
  ASSERT_TRUE(de.Set("tier", AttrValue::Int64(1)).ok());
  AttrSet bare;  // no attributes at all

  FilterPredicate empty;
  EXPECT_TRUE(empty.Matches(de));
  EXPECT_TRUE(empty.Matches(bare));

  FilterPredicate in_de;
  ASSERT_TRUE(in_de.AddConjunct(In("country", {AttrValue::String("DE"),
                                               AttrValue::String("FR")}))
                  .ok());
  EXPECT_TRUE(in_de.Matches(de));
  EXPECT_FALSE(in_de.Matches(bare));  // positive conjunct needs presence

  // Type-sensitive: Int64(1) never matches String("1").
  FilterPredicate str_one;
  ASSERT_TRUE(str_one.AddConjunct(In("tier", {AttrValue::String("1")})).ok());
  EXPECT_FALSE(str_one.Matches(de));

  // Negated: absent attribute matches; present-but-excluded fails.
  FilterPredicate not_de;
  ASSERT_TRUE(
      not_de.AddConjunct(NotIn("country", {AttrValue::String("DE")})).ok());
  EXPECT_FALSE(not_de.Matches(de));
  EXPECT_TRUE(not_de.Matches(bare));

  // Conjunction: all conjuncts must hold.
  FilterPredicate both;
  ASSERT_TRUE(
      both.AddConjunct(In("country", {AttrValue::String("DE")})).ok());
  ASSERT_TRUE(both.AddConjunct(NotIn("tier", {AttrValue::Int64(1)})).ok());
  EXPECT_FALSE(both.Matches(de));  // tier=1 violates the NOT-IN
}

TEST(FilterPredicateTest, CanonicalJsonIsOrderIndependent) {
  FilterPredicate a;
  ASSERT_TRUE(a.AddConjunct(NotIn("status", {AttrValue::Int64(3)})).ok());
  ASSERT_TRUE(a.AddConjunct(In("country", {AttrValue::String("FR"),
                                           AttrValue::String("DE")}))
                  .ok());
  FilterPredicate b;
  ASSERT_TRUE(b.AddConjunct(In("country", {AttrValue::String("DE"),
                                           AttrValue::String("FR")}))
                  .ok());
  ASSERT_TRUE(b.AddConjunct(NotIn("status", {AttrValue::Int64(3)})).ok());

  EXPECT_EQ(a.CanonicalJson(), "{\"country\":[\"DE\",\"FR\"],\"!status\":[3]}");
  EXPECT_EQ(a.CanonicalJson(), b.CanonicalJson());
  EXPECT_EQ(a, b);
  EXPECT_EQ(FilterPredicate{}.CanonicalJson(), "{}");
}

// ---------------------------------------------------------------------------
// EligibleSet

TEST(EligibleSetTest, AllAndNone) {
  EligibleSet all = EligibleSet::All();
  EXPECT_EQ(all.kind(), EligibleSet::Kind::kAll);
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(1'000'000));
  std::vector<uint32_t> v = {1, 5, 9};
  all.FilterSorted(&v);
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 5, 9}));

  EligibleSet none = EligibleSet::None();
  EXPECT_EQ(none.kind(), EligibleSet::Kind::kNone);
  EXPECT_EQ(none.count(), 0u);
  EXPECT_FALSE(none.Contains(0));
  none.FilterSorted(&v);
  EXPECT_TRUE(v.empty());
}

TEST(EligibleSetTest, SparseBecomesListDenseBecomesBitmap) {
  EligibleSet sparse = EligibleSet::FromSorted({3, 70, 900}, 1000);
  EXPECT_EQ(sparse.kind(), EligibleSet::Kind::kList);
  EXPECT_EQ(sparse.count(), 3u);
  EXPECT_TRUE(sparse.Contains(70));
  EXPECT_FALSE(sparse.Contains(71));

  std::vector<uint32_t> dense_ids;
  for (uint32_t i = 0; i < 900; ++i) dense_ids.push_back(i);
  EligibleSet dense = EligibleSet::FromSorted(dense_ids, 1000);
  EXPECT_EQ(dense.kind(), EligibleSet::Kind::kBitmap);
  EXPECT_EQ(dense.count(), 900u);
  EXPECT_TRUE(dense.Contains(899));
  EXPECT_FALSE(dense.Contains(950));
}

TEST(EligibleSetTest, FilterSortedPreservesOrderForBothForms) {
  std::vector<uint32_t> eligible;
  for (uint32_t i = 0; i < 100; i += 2) eligible.push_back(i);
  // Same logical set, both representations.
  EligibleSet as_list = EligibleSet::FromSorted(eligible, 100'000);
  EligibleSet as_bitmap = EligibleSet::FromSorted(eligible, 100);
  ASSERT_EQ(as_list.kind(), EligibleSet::Kind::kList);
  ASSERT_EQ(as_bitmap.kind(), EligibleSet::Kind::kBitmap);

  std::vector<uint32_t> a = {1, 2, 4, 7, 8, 50, 98, 99};
  std::vector<uint32_t> b = a;
  as_list.FilterSorted(&a);
  as_bitmap.FilterSorted(&b);
  EXPECT_EQ(a, (std::vector<uint32_t>{2, 4, 8, 50, 98}));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// AttrIndex: the BE-index evaluator vs the exact Matches oracle

std::vector<AttrSet> RandomAttrs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<AttrSet> docs(n);
  const std::vector<std::string> countries = {"DE", "FR", "US", "JP"};
  for (auto& attrs : docs) {
    if (rng.Bernoulli(0.2)) continue;  // some docs carry no attributes
    if (rng.Bernoulli(0.8)) {
      EXPECT_TRUE(attrs.Set("country",
                            AttrValue::String(countries[rng.Uniform(4)]))
                      .ok());
    }
    if (rng.Bernoulli(0.6)) {
      EXPECT_TRUE(
          attrs.Set("tier", AttrValue::Int64(rng.UniformInt(0, 3))).ok());
    }
  }
  return docs;
}

FilterPredicate RandomPredicate(Rng* rng) {
  FilterPredicate pred;
  const std::vector<std::string> countries = {"DE", "FR", "US", "JP", "XX"};
  if (rng->Bernoulli(0.7)) {
    std::vector<AttrValue> in;
    size_t n = 1 + rng->Uniform(3);
    for (size_t i = 0; i < n; ++i) {
      in.push_back(AttrValue::String(countries[rng->Uniform(5)]));
    }
    FilterConjunct c = In("country", std::move(in));
    c.negated = rng->Bernoulli(0.4);
    EXPECT_TRUE(pred.AddConjunct(std::move(c)).ok());
  }
  if (rng->Bernoulli(0.7)) {
    FilterConjunct c = In("tier", {AttrValue::Int64(rng->UniformInt(0, 4))});
    c.negated = rng->Bernoulli(0.4);
    EXPECT_TRUE(pred.AddConjunct(std::move(c)).ok());
  }
  if (rng->Bernoulli(0.2)) {
    // An attribute no document carries.
    FilterConjunct c = In("ghost", {AttrValue::Int64(1)});
    c.negated = rng->Bernoulli(0.5);
    EXPECT_TRUE(pred.AddConjunct(std::move(c)).ok());
  }
  return pred;
}

TEST(AttrIndexTest, PostingsAreSortedPerValue) {
  std::vector<AttrSet> docs(5);
  ASSERT_TRUE(docs[4].Set("k", AttrValue::Int64(1)).ok());
  ASSERT_TRUE(docs[1].Set("k", AttrValue::Int64(1)).ok());
  ASSERT_TRUE(docs[2].Set("k", AttrValue::Int64(2)).ok());
  AttrIndex index = AttrIndex::Build(docs);
  EXPECT_EQ(index.doc_count(), 5u);
  auto ones = index.Postings("k", AttrValue::Int64(1));
  ASSERT_EQ(ones.size(), 2u);
  EXPECT_EQ(ones[0], 1u);
  EXPECT_EQ(ones[1], 4u);
  EXPECT_TRUE(index.Postings("k", AttrValue::Int64(9)).empty());
  EXPECT_TRUE(index.Postings("other", AttrValue::Int64(1)).empty());
}

TEST(AttrIndexTest, EvalAgreesWithMatchesOracle) {
  auto docs = RandomAttrs(300, 77);
  AttrIndex index = AttrIndex::Build(docs);
  Rng rng(78);
  for (int trial = 0; trial < 200; ++trial) {
    FilterPredicate pred = RandomPredicate(&rng);
    EligibleSet eligible = index.Eval(pred);
    for (uint32_t local = 0; local < docs.size(); ++local) {
      ASSERT_EQ(eligible.Contains(local), pred.Matches(docs[local]))
          << "trial " << trial << " local " << local << " pred "
          << pred.CanonicalJson();
    }
  }
}

TEST(AttrIndexTest, NotInOnlyComplementsOverUniverse) {
  // n == 0: the eligible set is the complement of the negated postings,
  // including over an attribute-less universe where it matches everything.
  std::vector<AttrSet> docs(4);
  ASSERT_TRUE(docs[2].Set("k", AttrValue::Int64(7)).ok());
  AttrIndex index = AttrIndex::Build(docs);
  FilterPredicate not7;
  ASSERT_TRUE(not7.AddConjunct(NotIn("k", {AttrValue::Int64(7)})).ok());
  EligibleSet eligible = index.Eval(not7);
  EXPECT_TRUE(eligible.Contains(0));
  EXPECT_TRUE(eligible.Contains(1));
  EXPECT_FALSE(eligible.Contains(2));
  EXPECT_TRUE(eligible.Contains(3));

  AttrIndex empty = AttrIndex::Empty(3);
  EligibleSet all = empty.Eval(not7);
  EXPECT_EQ(all.count(), 3u);
  for (uint32_t i = 0; i < 3; ++i) EXPECT_TRUE(all.Contains(i));
}

TEST(AttrIndexTest, PositiveOnAbsentAttributeMatchesNothing) {
  AttrIndex index = AttrIndex::Empty(10);
  FilterPredicate pred;
  ASSERT_TRUE(pred.AddConjunct(In("ghost", {AttrValue::Int64(1)})).ok());
  EligibleSet eligible = index.Eval(pred);
  EXPECT_EQ(eligible.kind(), EligibleSet::Kind::kNone);
  EXPECT_EQ(eligible.count(), 0u);
}

// ---------------------------------------------------------------------------
// Wire conversions

serve::JsonValue ParseNested(const std::string& inner) {
  auto parsed = serve::ParseJsonRequest("{\"filter\": " + inner + "}");
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return (*parsed)["filter"];
}

TEST(WireFilterTest, ScalarAndArrayConjuncts) {
  auto pred = serve::FilterFromWire(
      ParseNested("{\"country\": [\"DE\", \"FR\"], \"tier\": 2}"));
  ASSERT_TRUE(pred.ok()) << pred.status().message();
  EXPECT_EQ(pred->CanonicalJson(),
            "{\"country\":[\"DE\",\"FR\"],\"tier\":[2]}");

  AttrSet de2;
  ASSERT_TRUE(de2.Set("country", AttrValue::String("DE")).ok());
  ASSERT_TRUE(de2.Set("tier", AttrValue::Int64(2)).ok());
  EXPECT_TRUE(pred->Matches(de2));
}

TEST(WireFilterTest, BangPrefixMeansNotIn) {
  auto pred = serve::FilterFromWire(ParseNested("{\"!tier\": [1, 2]}"));
  ASSERT_TRUE(pred.ok());
  ASSERT_EQ(pred->conjuncts().size(), 1u);
  EXPECT_TRUE(pred->conjuncts()[0].negated);
  EXPECT_EQ(pred->conjuncts()[0].name, "tier");
  EXPECT_EQ(pred->num_positive(), 0u);
}

TEST(WireFilterTest, RejectsNonAttributeScalars) {
  EXPECT_FALSE(serve::FilterFromWire(ParseNested("{\"k\": true}")).ok());
  EXPECT_FALSE(serve::FilterFromWire(ParseNested("{\"k\": null}")).ok());
  EXPECT_FALSE(serve::FilterFromWire(ParseNested("{\"k\": 1.5}")).ok());
  EXPECT_FALSE(serve::FilterFromWire(ParseNested("{\"k\": []}")).ok());
  // Duplicate (name, negated) across '!k' spelled twice is caught by the
  // JSON parser's unique-key rule; positive + negated coexist fine.
  EXPECT_TRUE(
      serve::FilterFromWire(ParseNested("{\"k\": 1, \"!k\": 2}")).ok());
}

TEST(WireFilterTest, IntegralBoundIsTwoToTheFiftyThree) {
  EXPECT_TRUE(
      serve::FilterFromWire(ParseNested("{\"k\": 9007199254740992}")).ok());
  // Above 2^53 the wire double cannot represent every integer exactly, so
  // anything past the bound is refused (1e300 is integral but too big).
  EXPECT_FALSE(serve::FilterFromWire(ParseNested("{\"k\": 1e300}")).ok());
  EXPECT_FALSE(
      serve::FilterFromWire(ParseNested("{\"k\": 18014398509481984}")).ok());
}

TEST(WireAttrsTest, ScalarsOnlyAndByteRules) {
  auto attrs = serve::AttrsFromWire(
      ParseNested("{\"country\": \"DE\", \"tier\": 3}"));
  ASSERT_TRUE(attrs.ok()) << attrs.status().message();
  ASSERT_NE(attrs->Find("tier"), nullptr);
  EXPECT_EQ(*attrs->Find("tier"), AttrValue::Int64(3));

  // Arrays are records-hold-one-value-per-attribute violations.
  EXPECT_FALSE(serve::AttrsFromWire(ParseNested("{\"k\": [1, 2]}")).ok());
  // Control bytes are rejected at the conversion (escaped in the JSON so the
  // parser passes them through to validation).
  EXPECT_FALSE(
      serve::AttrsFromWire(ParseNested("{\"k\": \"a\\u0001b\"}")).ok());
  EXPECT_FALSE(serve::AttrsFromWire(ParseNested("{\"!k\": 1}")).ok());
}

TEST(WireAttrsTest, AttrsToJsonRoundTrips) {
  AttrSet attrs;
  ASSERT_TRUE(attrs.Set("country", AttrValue::String("D\"E")).ok());
  ASSERT_TRUE(attrs.Set("tier", AttrValue::Int64(-2)).ok());
  std::string json = serve::AttrsToJson(attrs);
  auto back = serve::AttrsFromWire(ParseNested(json));
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(*back, attrs);
}

// ---------------------------------------------------------------------------
// Filtered lookup: shared corpus helpers

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n, uint64_t seed) {
  Rng rng(seed);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

/// The predicates every differential below runs: empty (≡ unfiltered), a
/// selective IN, a zero-match IN, a positive conjunct on an attribute no doc
/// carries, and a NOT-IN-only conjunction.
std::vector<FilterPredicate> EdgePredicates() {
  std::vector<FilterPredicate> preds;
  preds.emplace_back();  // empty

  FilterPredicate in_de;
  EXPECT_TRUE(in_de.AddConjunct(In("country", {AttrValue::String("DE"),
                                               AttrValue::String("FR")}))
                  .ok());
  preds.push_back(in_de);

  FilterPredicate zero;
  EXPECT_TRUE(
      zero.AddConjunct(In("country", {AttrValue::String("ZZ")})).ok());
  preds.push_back(zero);

  FilterPredicate ghost;
  EXPECT_TRUE(ghost.AddConjunct(In("ghost", {AttrValue::Int64(1)})).ok());
  preds.push_back(ghost);

  FilterPredicate not_only;
  EXPECT_TRUE(
      not_only.AddConjunct(NotIn("country", {AttrValue::String("DE")})).ok());
  EXPECT_TRUE(not_only.AddConjunct(NotIn("tier", {AttrValue::Int64(0)})).ok());
  preds.push_back(not_only);

  FilterPredicate mixed;
  EXPECT_TRUE(mixed.AddConjunct(In("country", {AttrValue::String("DE"),
                                               AttrValue::String("US")}))
                  .ok());
  EXPECT_TRUE(mixed.AddConjunct(NotIn("tier", {AttrValue::Int64(2)})).ok());
  preds.push_back(mixed);

  return preds;
}

// --- Immutable FuzzyMatchIndex ---

TEST(FuzzyMatchFilterTest, FilteredEqualsPostFilteredOracle) {
  auto master = Master(300, 101);
  auto queries = DirtyQueries(master, 50, 102);
  auto attrs = RandomAttrs(master.size(), 103);

  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->AssignAttributes(attrs).ok());

  const size_t k = 5;
  for (const FilterPredicate& pred : EdgePredicates()) {
    for (const std::string& q : queries) {
      auto got = index->Lookup(q, k, pred);
      // Oracle: unfiltered with unbounded k, post-filter, truncate.
      auto all = index->Lookup(q, master.size());
      std::vector<FuzzyMatchIndex::Match> want;
      for (const auto& m : all) {
        if (pred.Matches(attrs[m.ref_index])) want.push_back(m);
        if (want.size() == k) break;
      }
      ASSERT_EQ(got.size(), want.size())
          << "pred " << pred.CanonicalJson() << " query " << q;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].ref_index, want[i].ref_index);
        EXPECT_EQ(got[i].similarity, want[i].similarity);  // bit-identical
      }
    }
  }
}

TEST(FuzzyMatchFilterTest, EmptyFilterIsByteIdenticalToUnfiltered) {
  auto master = Master(120, 104);
  auto queries = DirtyQueries(master, 30, 105);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->AssignAttributes(RandomAttrs(master.size(), 106)).ok());
  for (const std::string& q : queries) {
    auto plain = index->Lookup(q, 5);
    auto filtered = index->Lookup(q, 5, FilterPredicate{});
    ASSERT_EQ(plain.size(), filtered.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].ref_index, filtered[i].ref_index);
      EXPECT_EQ(plain[i].similarity, filtered[i].similarity);
    }
  }
}

TEST(FuzzyMatchFilterTest, AttributelessIndexStillAnswersFilters) {
  // No AssignAttributes call at all: positive filters match nothing,
  // NOT-IN-only filters match everything.
  auto master = Master(80, 107);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options);
  ASSERT_TRUE(index.ok());

  FilterPredicate positive;
  ASSERT_TRUE(
      positive.AddConjunct(In("country", {AttrValue::String("DE")})).ok());
  FilterPredicate negated;
  ASSERT_TRUE(
      negated.AddConjunct(NotIn("country", {AttrValue::String("DE")})).ok());

  const std::string q = master[0];
  EXPECT_TRUE(index->Lookup(q, 5, positive).empty());
  auto plain = index->Lookup(q, 5);
  auto kept = index->Lookup(q, 5, negated);
  ASSERT_EQ(plain.size(), kept.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].ref_index, kept[i].ref_index);
    EXPECT_EQ(plain[i].similarity, kept[i].similarity);
  }
}

// --- MutableFuzzyIndex across its whole lifecycle ---

/// Asserts the 5-arg LookupAt equals the post-filtered unfiltered oracle on
/// the same epoch, for every edge predicate and query.
void ExpectFilteredOracle(const MutableFuzzyIndex& index,
                          const std::vector<std::string>& queries, size_t k,
                          const std::string& context) {
  auto state = index.Snapshot();
  for (const FilterPredicate& pred : EdgePredicates()) {
    for (const std::string& q : queries) {
      auto got = index.LookupAt(*state, q, k, 1.0, pred);
      auto all = index.LookupAt(*state, q, state->live_docs + 1);
      std::vector<MutableFuzzyIndex::Match> want;
      for (const auto& m : all) {
        auto attrs = index.AttrsAt(*state, m.id);
        ASSERT_TRUE(attrs.has_value()) << context;
        if (pred.Matches(*attrs)) want.push_back(m);
        if (want.size() == k) break;
      }
      ASSERT_EQ(got.size(), want.size())
          << context << " pred " << pred.CanonicalJson() << " query " << q;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
        EXPECT_EQ(got[i].similarity, want[i].similarity)
            << context << " rank " << i;
      }
    }
  }
}

MutableIndexOptions ManualOptions() {
  MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.seal_threshold = 0;   // explicit Seal only
  options.max_generations = 0;  // explicit Compact only
  return options;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/filter_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Status UpsertWithAttrs(MutableFuzzyIndex* index,
                       const std::vector<std::string>& master,
                       const std::vector<AttrSet>& attrs) {
  for (size_t i = 0; i < master.size(); ++i) {
    SSJOIN_RETURN_NOT_OK(index->Upsert(i, master[i], attrs[i]));
  }
  return Status::OK();
}

TEST(MutableFilterTest, FreshTailSealCompact) {
  auto master = Master(200, 111);
  auto queries = DirtyQueries(master, 30, 112);
  auto attrs = RandomAttrs(master.size(), 113);

  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  ASSERT_TRUE(UpsertWithAttrs(index.get(), master, attrs).ok());
  ExpectFilteredOracle(*index, queries, 5, "mutable tail");

  ASSERT_TRUE(index->Seal().ok());
  ExpectFilteredOracle(*index, queries, 5, "after seal");

  // A second wave into a fresh tail, then compact everything into one
  // generation: attributes must survive both the segment write and the merge.
  auto extra = Master(60, 114);
  auto extra_attrs = RandomAttrs(extra.size(), 115);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        index->Upsert(master.size() + i, extra[i], extra_attrs[i]).ok());
  }
  ExpectFilteredOracle(*index, queries, 5, "sealed + tail");
  ASSERT_TRUE(index->Compact().ok());
  ExpectFilteredOracle(*index, queries, 5, "after compact");
}

TEST(MutableFilterTest, ReupsertWithoutAttrsClearsThem) {
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  AttrSet de;
  ASSERT_TRUE(de.Set("country", AttrValue::String("DE")).ok());
  ASSERT_TRUE(index->Upsert(1, "first version", de).ok());
  ASSERT_TRUE(index->Upsert(1, "second version").ok());
  auto state = index->Snapshot();
  auto attrs = index->AttrsAt(*state, 1);
  ASSERT_TRUE(attrs.has_value());
  EXPECT_TRUE(attrs->empty());
}

TEST(MutableFilterTest, SurvivesWalReplayAndSealedReopen) {
  std::string dir = FreshDir("replay");
  auto master = Master(150, 116);
  auto queries = DirtyQueries(master, 25, 117);
  auto attrs = RandomAttrs(master.size(), 118);

  MutableIndexOptions options = ManualOptions();
  options.data_dir = dir;
  {
    auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
    // Seal half (segment file path), leave half in the WAL tail.
    for (size_t i = 0; i < master.size() / 2; ++i) {
      ASSERT_TRUE(index->Upsert(i, master[i], attrs[i]).ok());
    }
    ASSERT_TRUE(index->Seal().ok());
    for (size_t i = master.size() / 2; i < master.size(); ++i) {
      ASSERT_TRUE(index->Upsert(i, master[i], attrs[i]).ok());
    }
    ExpectFilteredOracle(*index, queries, 5, "before reopen");
    // Destructor = unclean-enough shutdown; WAL carries the tail.
  }
  auto reopened = MutableFuzzyIndex::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ExpectFilteredOracle(**reopened, queries, 5, "after WAL replay");

  // Attribute spot check across the reopen boundary.
  auto state = (*reopened)->Snapshot();
  for (uint64_t id : {uint64_t{0}, master.size() - 1}) {
    auto got = (*reopened)->AttrsAt(*state, id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, attrs[id]) << "doc " << id;
  }
  std::filesystem::remove_all(dir);
}

// --- LookupService: thread counts and cache interaction ---

TEST(ServeFilterTest, FilteredLookupsAcrossThreadCounts) {
  auto master = Master(150, 121);
  auto queries = DirtyQueries(master, 20, 122);
  auto attrs = RandomAttrs(master.size(), 123);
  auto preds = EdgePredicates();

  // Reference answers from a bare index (no service, no cache).
  auto reference = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  ASSERT_TRUE(UpsertWithAttrs(reference.get(), master, attrs).ok());
  auto ref_state = reference->Snapshot();

  for (size_t threads : {1u, 2u, 8u}) {
    auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
    ASSERT_TRUE(UpsertWithAttrs(index.get(), master, attrs).ok());
    serve::LookupServiceOptions sopts;
    sopts.exec.num_threads = threads;
    auto service = serve::LookupService::Create(std::move(index), sopts);
    ASSERT_TRUE(service.ok());
    for (const FilterPredicate& pred : preds) {
      for (const std::string& q : queries) {
        auto got = (*service)->Lookup(q, 5, std::chrono::milliseconds::zero(),
                                      1.0, pred);
        ASSERT_TRUE(got.ok()) << got.status().message();
        auto want = reference->LookupAt(*ref_state, q, 5, 1.0, pred);
        ASSERT_EQ(got->size(), want.size()) << "threads " << threads;
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ((*got)[i].id, want[i].id);
          EXPECT_EQ((*got)[i].similarity, want[i].similarity);
        }
        // Second call: served from cache, still identical.
        auto again = (*service)->Lookup(q, 5, std::chrono::milliseconds::zero(),
                                        1.0, pred);
        ASSERT_TRUE(again.ok());
        ASSERT_EQ(again->size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ((*again)[i].id, want[i].id);
          EXPECT_EQ((*again)[i].similarity, want[i].similarity);
        }
      }
    }
  }
}

TEST(ServeFilterTest, FilteredAndUnfilteredNeverAliasInCache) {
  auto master = Master(100, 124);
  auto attrs = RandomAttrs(master.size(), 125);
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  ASSERT_TRUE(UpsertWithAttrs(index.get(), master, attrs).ok());
  auto service = serve::LookupService::Create(std::move(index), {});
  ASSERT_TRUE(service.ok());

  FilterPredicate zero;
  ASSERT_TRUE(zero.AddConjunct(In("country", {AttrValue::String("ZZ")})).ok());
  const std::string q = master[0];

  // Prime the cache with the unfiltered result, then demand the filtered
  // lookup of the SAME query not be served from that entry (and vice versa).
  auto plain = (*service)->Lookup(q, 5);
  ASSERT_TRUE(plain.ok());
  ASSERT_FALSE(plain->empty());
  auto filtered =
      (*service)->Lookup(q, 5, std::chrono::milliseconds::zero(), 1.0, zero);
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(filtered->empty());
  auto plain_again = (*service)->Lookup(q, 5);
  ASSERT_TRUE(plain_again.ok());
  EXPECT_EQ(plain_again->size(), plain->size());
}

// --- Sharded coordinator: N ∈ {1, 3} ---

TEST(ShardFilterTest, FilteredLookupIsShardCountInvariant) {
  auto master = Master(180, 131);
  auto queries = DirtyQueries(master, 15, 132);
  auto attrs = RandomAttrs(master.size(), 133);
  auto preds = EdgePredicates();

  // Unsharded reference.
  auto reference = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  ASSERT_TRUE(UpsertWithAttrs(reference.get(), master, attrs).ok());
  auto ref_state = reference->Snapshot();

  for (uint32_t num_shards : {1u, 3u}) {
    shard::ShardedIndexOptions options;
    options.num_shards = num_shards;
    options.match.alpha = 0.35;
    options.seal_threshold = 0;
    options.max_generations = 0;
    auto sharded = shard::ShardedLookupIndex::Create(options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    for (size_t i = 0; i < master.size(); ++i) {
      ASSERT_TRUE((*sharded)->Upsert(i, master[i], attrs[i]).ok());
    }
    for (const FilterPredicate& pred : preds) {
      for (const std::string& q : queries) {
        auto got = (*sharded)->Lookup(q, 5, std::chrono::milliseconds::zero(),
                                      1.0, pred);
        ASSERT_TRUE(got.ok()) << got.status().message();
        auto want = reference->LookupAt(*ref_state, q, 5, 1.0, pred);
        ASSERT_EQ(got->size(), want.size())
            << "shards " << num_shards << " pred " << pred.CanonicalJson()
            << " query " << q;
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ((*got)[i].id, want[i].id) << "shards " << num_shards;
          EXPECT_EQ((*got)[i].similarity, want[i].similarity)
              << "shards " << num_shards;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ssjoin::filter
