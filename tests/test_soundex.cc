#include <gtest/gtest.h>

#include "sim/soundex.h"

namespace ssjoin::sim {
namespace {

TEST(SoundexTest, ClassicReferenceCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // h transparent between s and c
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
  EXPECT_EQ(Soundex("Jackson"), "J250");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("ROBERT"), Soundex("robert"));
}

TEST(SoundexTest, ShortNamesPadWithZeros) {
  EXPECT_EQ(Soundex("Lee"), "L000");
  EXPECT_EQ(Soundex("A"), "A000");
}

TEST(SoundexTest, NonAlphaIgnored) {
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBrien"));
  EXPECT_EQ(Soundex("123"), "0000");
  EXPECT_EQ(Soundex(""), "0000");
  EXPECT_EQ(Soundex("  Smith  "), Soundex("Smith"));
}

TEST(SoundexTest, VowelSeparatedRepeatsAreCoded) {
  // Both 'p's in "Tpope"... use a canonical case: "Sese" -> S200:
  // s(skip first), e resets, s coded again? No: adjacent same digits
  // across a vowel ARE coded twice.
  EXPECT_EQ(Soundex("Gauss"), "G200");
  EXPECT_EQ(Soundex("Ghosh"), "G200");
}

TEST(SoundexEqualTest, MatchesCodes) {
  EXPECT_TRUE(SoundexEqual("Robert", "Rupert"));
  EXPECT_FALSE(SoundexEqual("Robert", "Smith"));
}

}  // namespace
}  // namespace ssjoin::sim
