/// LatencyHistogram and StatsSnapshot unit tests — bucket edges, quantile
/// interpolation and its edge cases (empty, single sample, overflow bucket).

#include <gtest/gtest.h>

#include <cstdint>

#include "serve/metrics.h"

namespace ssjoin::serve {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(10);  // bucket 3: [8, 16)
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum_micros(), 10u);
  EXPECT_EQ(h.max_micros(), 10u);
  // Every quantile must stay inside [bucket lo, recorded max]: the recorded
  // maximum caps interpolation, so a 10us sample can never report p99 = 16us.
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    double v = h.Quantile(q);
    EXPECT_GE(v, 8.0) << "q=" << q;
    EXPECT_LE(v, 10.0) << "q=" << q;
  }
  EXPECT_EQ(h.Quantile(1.0), 10.0);
}

TEST(LatencyHistogramTest, SubMicrosecondSamplesLandInBucketZero) {
  LatencyHistogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_micros(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(LatencyHistogramTest, OverflowBucketUsesRecordedMax) {
  LatencyHistogram h;
  // Way beyond the last bucket edge (2^32us): the overflow bucket absorbs
  // it, and quantiles must report up to the recorded max, not the bucket's
  // meaningless nominal edge.
  const uint64_t huge = uint64_t{1} << 40;
  h.Record(huge);
  EXPECT_EQ(h.max_micros(), huge);
  EXPECT_EQ(h.Quantile(1.0), static_cast<double>(huge));
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, static_cast<double>(uint64_t{1} << 32));
  EXPECT_LE(p50, static_cast<double>(huge));
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneAcrossBuckets) {
  LatencyHistogram h;
  for (uint64_t v : {1u, 2u, 4u, 9u, 17u, 33u, 100u, 1000u, 100000u}) {
    h.Record(v);
  }
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_LE(v, 100000.0) << "q=" << q;
    prev = v;
  }
  EXPECT_EQ(h.Quantile(1.0), 100000.0);
}

TEST(LatencyHistogramTest, QuantileClampsArgument) {
  LatencyHistogram h;
  h.Record(100);
  EXPECT_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(1.5), h.Quantile(1.0));
}

TEST(ServiceMetricsTest, SnapshotCopiesCounters) {
  ServiceMetrics m;
  m.requests.store(7);
  m.rejected_overload.store(1);
  m.rejected_deadline.store(2);
  m.cache_hits.store(3);
  m.latency.Record(50);
  StatsSnapshot s = SnapshotMetrics(m);
  EXPECT_EQ(s.requests, 7u);
  EXPECT_EQ(s.rejected_overload, 1u);
  EXPECT_EQ(s.rejected_deadline, 2u);
  EXPECT_EQ(s.cache_hits, 3u);
  EXPECT_EQ(s.latency_count, 1u);
  EXPECT_EQ(s.latency_mean_us, 50.0);
  EXPECT_EQ(s.latency_max_us, 50u);
}

}  // namespace
}  // namespace ssjoin::serve
