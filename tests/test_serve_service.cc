/// LookupService tests: serving-path results must be bit-identical to direct
/// FuzzyMatchIndex::Lookup (fresh and snapshot-reloaded), overload must be
/// rejected explicitly (never queued unboundedly), deadlines must expire
/// queued requests, and metrics must add up.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "serve/lookup_service.h"
#include "serve/snapshot.h"

namespace ssjoin::serve {
namespace {

using simjoin::FuzzyMatchIndex;

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n, uint64_t seed) {
  Rng rng(seed);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

FuzzyMatchIndex BuildIndex(const std::vector<std::string>& master) {
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  return FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
}

/// The service-owned side of every test: a mutable index over the same rows
/// (doc_id = row index), which the equivalence contract makes bit-identical
/// to the immutable build.
std::unique_ptr<index::MutableFuzzyIndex> BuildMutable(
    const std::vector<std::string>& master) {
  index::MutableIndexOptions options;
  options.match.alpha = 0.35;
  auto index = index::MutableFuzzyIndex::Create(options).MoveValueUnsafe();
  std::vector<std::pair<uint64_t, std::string>> records;
  records.reserve(master.size());
  for (size_t i = 0; i < master.size(); ++i) records.emplace_back(i, master[i]);
  EXPECT_TRUE(index->BulkLoad(records).ok());
  return index;
}

void ExpectSameMatches(const std::vector<FuzzyMatchIndex::Match>& direct,
                       const std::vector<LookupService::Match>& served,
                       const std::string& query) {
  ASSERT_EQ(direct.size(), served.size()) << "query: " << query;
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].ref_index, served[i].id) << "query: " << query;
    EXPECT_EQ(direct[i].similarity, served[i].similarity) << "query: " << query;
  }
}

void ExpectSameMatches(const std::vector<LookupService::Match>& a,
                       const std::vector<LookupService::Match>& b,
                       const std::string& query) {
  ASSERT_EQ(a.size(), b.size()) << "query: " << query;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "query: " << query;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << "query: " << query;
  }
}

TEST(LookupServiceTest, BitIdenticalToDirectLookup) {
  auto master = Master(400, 31);
  auto queries = DirtyQueries(master, 150, 7);
  auto index = BuildIndex(master);

  LookupServiceOptions options;
  options.exec.num_threads = 2;
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();
  for (const std::string& q : queries) {
    auto served = service->Lookup(q, 5);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ExpectSameMatches(index.Lookup(q, 5), *served, q);
  }
  // Replay: now every query is a cache hit and still bit-identical.
  StatsSnapshot before = service->Stats();
  for (const std::string& q : queries) {
    auto served = service->Lookup(q, 5);
    ASSERT_TRUE(served.ok());
    ExpectSameMatches(index.Lookup(q, 5), *served, q);
  }
  StatsSnapshot after = service->Stats();
  EXPECT_EQ(after.cache_hits - before.cache_hits, queries.size());
}

TEST(LookupServiceTest, BitIdenticalFromReloadedSnapshot) {
  auto master = Master(300, 32);
  auto queries = DirtyQueries(master, 100, 8);
  auto index = BuildIndex(master);

  std::string path = ::testing::TempDir() + "/service_reload.snap";
  ASSERT_TRUE(SaveSnapshot(index, path).ok());
  auto loaded = UpgradeSnapshotToMutable(path, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  auto service =
      LookupService::Create(std::move(*loaded), {}).MoveValueUnsafe();
  for (const std::string& q : queries) {
    auto served = service->Lookup(q, 3);
    ASSERT_TRUE(served.ok());
    ExpectSameMatches(index.Lookup(q, 3), *served, q);
  }
}

TEST(LookupServiceTest, ConcurrentClientsAgreeWithDirectLookup) {
  auto master = Master(400, 33);
  auto queries = DirtyQueries(master, 200, 9);
  auto index = BuildIndex(master);

  LookupServiceOptions options;
  options.exec.num_threads = 2;
  options.max_batch = 8;
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < queries.size(); i += 4) {
        auto served = service->Lookup(queries[i], 4);
        ASSERT_TRUE(served.ok());
        ExpectSameMatches(index.Lookup(queries[i], 4), *served, queries[i]);
      }
    });
  }
  for (auto& t : clients) t.join();
  StatsSnapshot stats = service->Stats();
  EXPECT_EQ(stats.requests, queries.size());
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_lookups, stats.cache_misses);
  EXPECT_EQ(stats.latency_count, queries.size());
}

TEST(LookupServiceTest, OverloadRejectsWithUnavailable) {
  auto master = Master(100, 34);
  LookupServiceOptions options;
  options.max_queue = 2;
  options.max_batch = 1;
  options.cache_capacity = 0;  // every request must go through the queue
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();

  // Hold the dispatcher once it has claimed its first batch, so subsequent
  // requests pile up in the admission queue deterministically.
  std::promise<void> entered_promise;
  std::shared_future<void> entered(entered_promise.get_future());
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> first_batch{true};
  service->SetDispatchHookForTest([&] {
    if (first_batch.exchange(false)) {
      entered_promise.set_value();
      release.wait();
    }
  });

  // First request: claimed by the dispatcher, then stalled in the hook.
  std::thread blocked([&] {
    auto r = service->Lookup(master[0], 1);
    EXPECT_TRUE(r.ok());
  });
  entered.wait();

  // Saturate the admission queue (capacity 2) with two more requests.
  std::vector<std::thread> queued;
  for (int i = 1; i <= 2; ++i) {
    queued.emplace_back([&, i] {
      auto r = service->Lookup(master[static_cast<size_t>(i)], 1);
      EXPECT_TRUE(r.ok());
    });
  }
  while (service->Stats().queue_depth < 2) {
    std::this_thread::yield();
  }

  // The queue is full: this request must be rejected immediately with
  // Unavailable — explicit backpressure instead of blocking or growing the
  // queue.
  auto rejected = service->Lookup(master[50], 1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service->Stats().rejected_overload, 1u);

  release_promise.set_value();
  blocked.join();
  for (auto& t : queued) t.join();
  EXPECT_EQ(service->Stats().requests, 3u);
}

TEST(LookupServiceTest, DeadlineExpiresQueuedRequest) {
  auto master = Master(100, 35);
  LookupServiceOptions options;
  options.max_queue = 8;
  options.max_batch = 1;
  options.cache_capacity = 0;
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();

  std::promise<void> entered_promise;
  std::shared_future<void> entered(entered_promise.get_future());
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> first_batch{true};
  service->SetDispatchHookForTest([&] {
    if (first_batch.exchange(false)) {
      entered_promise.set_value();
      release.wait();
    }
  });

  std::thread blocked([&] {
    auto r = service->Lookup(master[0], 1);
    EXPECT_TRUE(r.ok());
  });
  entered.wait();

  // Queued behind the stalled batch with a 5ms deadline; by the time the
  // dispatcher gets to it, the deadline has long expired.
  std::thread expired([&] {
    auto r = service->Lookup(master[1], 1, std::chrono::milliseconds(5));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (service->Stats().queue_depth < 1) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_promise.set_value();
  blocked.join();
  expired.join();
  EXPECT_EQ(service->Stats().rejected_deadline, 1u);
  // Deadline expiries are answered requests, not shed load: both lookups
  // count toward requests.
  EXPECT_EQ(service->Stats().requests, 2u);
}

TEST(LookupServiceTest, AlreadyExpiredDeadlineRejectedAtAdmission) {
  auto master = Master(100, 42);
  LookupServiceOptions options;
  options.cache_capacity = 0;
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();

  // A negative deadline is expired before the call even starts. Regression:
  // it used to be admitted as if it had no deadline and ran a full lookup;
  // it must be rejected at admission without queueing or touching the index.
  auto r = service->Lookup(master[0], 1, std::chrono::milliseconds(-1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  StatsSnapshot stats = service->Stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.requests, 1u);           // answered, with an error
  EXPECT_EQ(stats.batched_lookups, 0u);    // never dispatched
  EXPECT_EQ(stats.cache_misses, 0u);       // never looked up
  EXPECT_EQ(stats.latency_count, 0u);      // no successful lookup recorded

  // The service still works normally afterwards.
  auto ok = service->Lookup(master[0], 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(service->Stats().requests, 2u);
}

TEST(LookupServiceTest, DeadlineExpiringMidBatchRejectsOnlyThatItem) {
  auto master = Master(100, 37);
  LookupServiceOptions options;
  options.max_queue = 8;
  options.max_batch = 4;
  options.cache_capacity = 0;
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();

  // Stall the first batch so two more requests land in the SAME second
  // batch: one unbounded, one with a budget that is still valid at batch
  // claim but expires while the first item of the batch executes.
  std::promise<void> entered_promise;
  std::shared_future<void> entered(entered_promise.get_future());
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  std::atomic<bool> first_batch{true};
  service->SetDispatchHookForTest([&] {
    if (first_batch.exchange(false)) {
      entered_promise.set_value();
      release.wait();
    }
  });
  // Burn 150ms inside item 0's execution slot, well past item 1's 60ms
  // budget; the per-item recheck must catch it at execution start.
  service->SetItemHookForTest([](size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });

  std::thread stalled([&] {
    auto r = service->Lookup(master[0], 1);
    EXPECT_TRUE(r.ok());
  });
  entered.wait();

  std::thread unbounded([&] {
    auto r = service->Lookup(master[1], 1);
    EXPECT_TRUE(r.ok());  // the slow item itself still succeeds
  });
  while (service->Stats().queue_depth < 1) std::this_thread::yield();
  std::thread bounded([&] {
    auto r = service->Lookup(master[2], 1, std::chrono::milliseconds(60));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (service->Stats().queue_depth < 2) std::this_thread::yield();

  release_promise.set_value();
  stalled.join();
  unbounded.join();
  bounded.join();

  StatsSnapshot stats = service->Stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.requests, 3u);
  // Exactly the two surviving lookups touched the index.
  EXPECT_EQ(stats.latency_count, 2u);
}

TEST(LookupServiceTest, ShutdownFailsPendingAndRejectsNew) {
  auto master = Master(100, 36);
  LookupServiceOptions options;
  options.cache_capacity = 0;
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();
  auto ok = service->Lookup(master[0], 1);
  EXPECT_TRUE(ok.ok());
  service->Shutdown();
  auto rejected = service->Lookup(master[1], 1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  service->Shutdown();  // idempotent
}

TEST(LookupServiceTest, CacheKeyCoalescesTokenizationOnly) {
  auto master = Master(100, 37);
  auto service = LookupService::Create(BuildMutable(master), {}).MoveValueUnsafe();
  auto a = service->Lookup(master[0], 2);
  ASSERT_TRUE(a.ok());
  // Same token sequence, different whitespace: must hit the cache and be
  // bit-identical (tokenization cannot distinguish the strings).
  auto b = service->Lookup("  " + master[0] + "  ", 2);
  ASSERT_TRUE(b.ok());
  ExpectSameMatches(*a, *b, master[0]);
  EXPECT_EQ(service->Stats().cache_hits, 1u);
  // Different k misses: k is part of the key.
  auto c = service->Lookup(master[0], 1);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(service->Stats().cache_hits, 1u);
  EXPECT_EQ(service->Stats().cache_misses, 2u);
}

TEST(LookupServiceTest, MutationNeverServesStaleCacheHits) {
  auto master = Master(200, 43);
  LookupServiceOptions options;
  options.cache_capacity = 256;
  auto service = LookupService::Create(BuildMutable(master), options)
                     .MoveValueUnsafe();

  // Warm the cache: the exact reference string is its own best match.
  const std::string query = master[0];
  auto first = service->Lookup(query, 3);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->empty());
  EXPECT_EQ((*first)[0].id, 0u);
  auto hit = service->Lookup(query, 3);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(service->Stats().cache_hits, 1u);

  // Delete the top match. The epoch changes, so the cached entry's key no
  // longer matches: the next lookup must be a miss and must not return doc 0.
  uint64_t epoch_before = service->epoch();
  ASSERT_TRUE(service->Delete(0).ok());
  EXPECT_GT(service->epoch(), epoch_before);
  auto after_delete = service->Lookup(query, 3);
  ASSERT_TRUE(after_delete.ok());
  for (const auto& m : *after_delete) EXPECT_NE(m.id, 0u);
  EXPECT_EQ(service->Stats().cache_hits, 1u);  // no stale hit

  // Upsert a new doc with the query's exact value: it must surface at the
  // top immediately, again bypassing the now-stale cached entries.
  ASSERT_TRUE(service->Upsert(999, query).ok());
  auto after_upsert = service->Lookup(query, 3);
  ASSERT_TRUE(after_upsert.ok());
  ASSERT_FALSE(after_upsert->empty());
  EXPECT_EQ((*after_upsert)[0].id, 999u);
  EXPECT_EQ((*after_upsert)[0].similarity, 1.0);
  EXPECT_EQ(service->ValueOf(999).value_or(""), query);

  // Within one epoch the cache works as before: an immediate replay hits.
  auto replay = service->Lookup(query, 3);
  ASSERT_TRUE(replay.ok());
  ExpectSameMatches(*after_upsert, *replay, query);
  EXPECT_EQ(service->Stats().cache_hits, 2u);

  // Seal/compact also advance the epoch without changing the answers.
  ASSERT_TRUE(service->Seal().ok());
  ASSERT_TRUE(service->Compact().ok());
  auto after_compact = service->Lookup(query, 3);
  ASSERT_TRUE(after_compact.ok());
  ExpectSameMatches(*after_upsert, *after_compact, query);
}

TEST(LookupServiceTest, RejectsZeroSizedKnobs) {
  auto master = Master(10, 38);
  LookupServiceOptions options;
  options.max_queue = 0;
  EXPECT_FALSE(LookupService::Create(BuildMutable(master), options).ok());
  options.max_queue = 1;
  options.max_batch = 0;
  EXPECT_FALSE(LookupService::Create(BuildMutable(master), options).ok());
}

TEST(LookupServiceTest, StatsJsonIsWellFormed) {
  auto master = Master(50, 39);
  auto service = LookupService::Create(BuildMutable(master), {}).MoveValueUnsafe();
  (void)service->Lookup(master[0], 1);
  std::string json = service->Stats().ToJson();
  // Parseable by our own flat parser except the nested latency object —
  // check shape with plain string probes instead.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* field :
       {"\"requests\"", "\"rejected_overload\"", "\"rejected_deadline\"",
        "\"cache_hits\"", "\"cache_misses\"", "\"cache_evictions\"",
        "\"batches\"", "\"queue_depth\"", "\"latency_us\"", "\"p50\"",
        "\"p95\"", "\"p99\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace ssjoin::serve
