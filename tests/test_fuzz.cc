/// Differential-fuzz harness unit tests: reproducer format round-trips,
/// generator determinism, the delta-debugging shrinker, and a smoke sweep of
/// every scenario's differential check.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/oracles.h"
#include "fuzz/reproducer.h"
#include "fuzz/scenarios.h"
#include "fuzz/shrink.h"
#include "fuzz/workload.h"

namespace ssjoin::fuzz {
namespace {

TEST(ReproducerTest, FormatParseRoundTrip) {
  Reproducer rp;
  rp.scenario = "edit_similarity_joins";
  rp.Set("alpha", 0.87654321);
  rp.Set("q", uint64_t{3});
  rp.Set("word_tokens", true);
  std::string binary = "high";
  binary += '\x80';
  binary += '\xff';
  binary += '\0';
  binary += "byte";
  rp.r = {"", "plain", "with \"quotes\"", "back\\slash", binary, "tab\there"};
  rp.s = {"only one"};

  Result<Reproducer> parsed = ParseReproducer(FormatReproducer(rp));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->scenario, rp.scenario);
  EXPECT_EQ(parsed->r, rp.r);
  EXPECT_EQ(parsed->s, rp.s);
  EXPECT_EQ(*parsed->GetDouble("alpha", 0.0), 0.87654321);
  EXPECT_EQ(*parsed->GetUint("q", 0), 3u);
  EXPECT_TRUE(*parsed->GetBool("word_tokens", false));
}

TEST(ReproducerTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseReproducer("").ok());
  EXPECT_FALSE(ParseReproducer("not a repro").ok());
  EXPECT_FALSE(ParseReproducer("ssjoin-fuzz-repro v999\nscenario: x\n").ok());
  // String count that the body does not honor.
  EXPECT_FALSE(
      ParseReproducer("ssjoin-fuzz-repro v1\nscenario: x\nr 2\n\"a\"\n").ok());
}

TEST(ReproducerTest, TypedAccessorsFallBack) {
  Reproducer rp;
  EXPECT_EQ(*rp.GetDouble("missing", 0.5), 0.5);
  EXPECT_EQ(*rp.GetUint("missing", 7), 7u);
  EXPECT_TRUE(*rp.GetBool("missing", true));
}

// A present-but-malformed param must be a loud error naming the key, never
// a silent fallback (the strtod-nullptr regression: "0.x5" replayed as 0.0).
TEST(ReproducerTest, TypedAccessorsRejectMalformedValues) {
  Reproducer rp;
  rp.params["alpha"] = "0.x5";
  rp.params["q"] = "3junk";
  rp.params["neg"] = "-1";
  rp.params["huge"] = "1e999";
  rp.params["flag"] = " 1";

  Result<double> alpha = rp.GetDouble("alpha", 0.0);
  ASSERT_FALSE(alpha.ok());
  EXPECT_NE(alpha.status().message().find("alpha"), std::string::npos);

  Result<uint64_t> q = rp.GetUint("q", 0);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("'q'"), std::string::npos);

  EXPECT_FALSE(rp.GetUint("neg", 0).ok());
  EXPECT_FALSE(rp.GetDouble("huge", 0.0).ok());  // 1e999 -> inf is an error
  EXPECT_FALSE(rp.GetBool("flag", false).ok());  // leading space rejected
}

// The count line of the r/s sections parses strictly too: trailing junk
// after the count is a parse error, not a truncated read.
TEST(ReproducerTest, RejectsMalformedCountLine) {
  EXPECT_FALSE(
      ParseReproducer("ssjoin-fuzz-repro v1\nscenario: x\nr 1junk\n\"a\"\n")
          .ok());
}

TEST(WorkloadTest, GeneratorIsDeterministic) {
  for (uint64_t seed : {0u, 1u, 42u}) {
    Rng a(seed);
    Rng b(seed);
    WorkloadOptions opts;
    EXPECT_EQ(GenerateStrings(&a, opts), GenerateStrings(&b, opts));
  }
}

TEST(WorkloadTest, ProducesAdversarialClasses) {
  // Over many draws the generator must exercise empty strings, strings
  // shorter than a typical q, and high bytes — the classes that historically
  // hide join bugs.
  Rng rng(7);
  WorkloadOptions opts;
  bool saw_empty = false;
  bool saw_short = false;
  bool saw_high_byte = false;
  for (int i = 0; i < 2000; ++i) {
    std::string s = GenerateString(&rng, opts);
    if (s.empty()) saw_empty = true;
    if (!s.empty() && s.size() < 3) saw_short = true;
    for (unsigned char c : s) {
      if (c >= 0x80) saw_high_byte = true;
    }
  }
  EXPECT_TRUE(saw_empty);
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_high_byte);
}

TEST(ScenarioTest, GenerateCaseIsDeterministic) {
  for (const std::string& scenario : AllScenarios()) {
    Reproducer a = GenerateCase(scenario, 123);
    Reproducer b = GenerateCase(scenario, 123);
    EXPECT_EQ(FormatReproducer(a), FormatReproducer(b)) << scenario;
    Reproducer c = GenerateCase(scenario, 124);
    EXPECT_NE(FormatReproducer(a), FormatReproducer(c)) << scenario;
  }
}

TEST(ShrinkTest, RemovesIrrelevantRecordsAndBytes) {
  Reproducer rp;
  rp.scenario = "synthetic";
  rp.r = {"aaa", "needle-x", "bbb", "ccc"};
  rp.s = {"ddd", "eee", "fff"};
  // Failure: some r string contains 'x' and s is non-empty. The minimal
  // reproducer is one r string shrunk to "x" and one s string shrunk to "".
  auto still_fails = [](const Reproducer& cand) {
    if (cand.s.empty()) return false;
    for (const std::string& str : cand.r) {
      if (str.find('x') != std::string::npos) return true;
    }
    return false;
  };
  ShrinkStats stats;
  Reproducer shrunk = ShrinkReproducer(rp, still_fails, 4000, &stats);
  ASSERT_EQ(shrunk.r.size(), 1u);
  EXPECT_EQ(shrunk.r[0], "x");
  ASSERT_EQ(shrunk.s.size(), 1u);
  EXPECT_EQ(shrunk.s[0], "");
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_GT(stats.records_removed, 0u);
  EXPECT_GT(stats.bytes_removed, 0u);
}

TEST(ShrinkTest, RespectsCheckBudget) {
  Reproducer rp;
  rp.r = std::vector<std::string>(64, "aaaa");
  rp.s = rp.r;
  size_t calls = 0;
  auto still_fails = [&calls](const Reproducer&) {
    ++calls;
    return true;
  };
  ShrinkStats stats;
  ShrinkReproducer(rp, still_fails, 10, &stats);
  EXPECT_LE(calls, 10u);
  EXPECT_EQ(stats.checks_run, calls);
}

TEST(OracleTest, QGramCountBound) {
  // Property 4: max(|s1|,|s2|) - q + 1 - q*k.
  EXPECT_EQ(QGramCountBound(14, 13, 3, 1), 9);   // the paper's regime
  EXPECT_EQ(QGramCountBound(2, 2, 3, 1), -3);    // "ab"/"cb": unsound
  EXPECT_EQ(QGramCountBound(0, 0, 3, 0), -2);    // empty strings
  EXPECT_EQ(QGramCountBound(5, 3, 1, 1), 4);
}

TEST(ScenarioTest, AllScenariosPassOnFreshSeeds) {
  // The whole point of this PR: every differential check holds on the
  // current code. A handful of seeds per scenario keeps this fast; the CI
  // fuzz job sweeps hundreds.
  for (const std::string& scenario : AllScenarios()) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      SCOPED_TRACE(scenario + " seed=" + std::to_string(seed));
      Reproducer rp = GenerateCase(scenario, seed);
      Result<CheckResult> res = CheckCase(rp);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_TRUE(res->pass) << res->detail;
    }
  }
}

TEST(ScenarioTest, UnknownScenarioIsAnError) {
  Reproducer rp;
  rp.scenario = "no_such_scenario";
  EXPECT_FALSE(CheckCase(rp).ok());
  FuzzOptions options;
  options.scenario = "no_such_scenario";
  EXPECT_FALSE(RunFuzz(options).ok());
}

TEST(ScenarioTest, RunFuzzReportsCleanSweep) {
  FuzzOptions options;
  options.seeds = 2;
  options.scenario = "jaccard_joins";
  options.out_dir.clear();  // don't write files from tests
  Result<FuzzReport> report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->cases_run, 2u);
  EXPECT_EQ(report->failures, 0u);
  EXPECT_TRUE(report->reproducer_paths.empty());
}

}  // namespace
}  // namespace ssjoin::fuzz
