#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "sim/edit_distance.h"

namespace ssjoin::sim {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "xy"), 2u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("intention", "execution"), 5u);
}

TEST(EditDistanceTest, PaperExample) {
  // §3.1: "the edit distance between 'microsoft' and 'mcrosoft' is 1".
  EXPECT_EQ(EditDistance("microsoft", "mcrosoft"), 1u);
  EXPECT_EQ(EditDistance("Microsoft Corp", "Mcrosoft Corp"), 1u);
}

TEST(EditDistanceTest, Symmetry) {
  EXPECT_EQ(EditDistance("abcdef", "azced"), EditDistance("azced", "abcdef"));
}

TEST(EditDistanceTest, LengthDifferenceLowerBound) {
  EXPECT_GE(EditDistance("a", "abcdefg"), 6u);
}

TEST(EditDistanceBoundedTest, ExactWhenWithinBound) {
  EXPECT_EQ(EditDistanceBounded("kitten", "sitting", 3), 3u);
  EXPECT_EQ(EditDistanceBounded("kitten", "sitting", 5), 3u);
  EXPECT_EQ(EditDistanceBounded("abc", "abc", 0), 0u);
}

TEST(EditDistanceBoundedTest, CapsWhenExceeded) {
  EXPECT_GT(EditDistanceBounded("kitten", "sitting", 2), 2u);
  EXPECT_GT(EditDistanceBounded("aaaa", "bbbb", 3), 3u);
  EXPECT_GT(EditDistanceBounded("", "abcdef", 2), 2u);
}

TEST(EditDistanceAtMostTest, Thresholds) {
  EXPECT_TRUE(EditDistanceAtMost("kitten", "sitting", 3));
  EXPECT_FALSE(EditDistanceAtMost("kitten", "sitting", 2));
  EXPECT_TRUE(EditDistanceAtMost("", "", 0));
}

TEST(EditDistanceBoundedTest, RandomizedAgreesWithFullDP) {
  Rng rng(99);
  const std::string alphabet = "abcd";  // small alphabet: many near-misses
  for (int iter = 0; iter < 500; ++iter) {
    std::string a;
    std::string b;
    size_t la = rng.Uniform(12);
    size_t lb = rng.Uniform(12);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(alphabet.size())];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(alphabet.size())];
    size_t full = EditDistance(a, b);
    for (size_t k = 0; k <= 12; ++k) {
      size_t bounded = EditDistanceBounded(a, b, k);
      if (full <= k) {
        EXPECT_EQ(bounded, full) << a << " vs " << b << " k=" << k;
      } else {
        EXPECT_GT(bounded, k) << a << " vs " << b << " k=" << k;
      }
    }
  }
}

TEST(EditSimilarityTest, Definition2) {
  // ES = 1 - ED/max(len): 'microsoft'(9) vs 'mcrosoft'(8): 1 - 1/9.
  EXPECT_NEAR(EditSimilarity("microsoft", "mcrosoft"), 1.0 - 1.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
}

TEST(EditSimilarityAtLeastTest, MatchesDirectComputation) {
  Rng rng(7);
  const std::string alphabet = "abcde";
  for (int iter = 0; iter < 300; ++iter) {
    std::string a;
    std::string b;
    size_t la = 1 + rng.Uniform(10);
    size_t lb = 1 + rng.Uniform(10);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(alphabet.size())];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(alphabet.size())];
    for (double alpha : {0.0, 0.3, 0.5, 0.8, 1.0}) {
      bool expected = EditSimilarity(a, b) >= alpha - 1e-12;
      EXPECT_EQ(EditSimilarityAtLeast(a, b, alpha), expected)
          << a << " vs " << b << " alpha=" << alpha;
    }
  }
}

TEST(EditSimilarityAtLeastTest, EmptyStrings) {
  EXPECT_TRUE(EditSimilarityAtLeast("", "", 1.0));
  EXPECT_FALSE(EditSimilarityAtLeast("", "abc", 0.5));
}

}  // namespace
}  // namespace ssjoin::sim
