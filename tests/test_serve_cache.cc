/// QueryCache unit tests: LRU behaviour, sharding, counters, and the wire
/// helpers' flat-JSON parser that the server builds on.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/query_cache.h"
#include "serve/wire.h"

namespace ssjoin::serve {
namespace {

using Match = index::MutableFuzzyIndex::Match;

std::vector<Match> Matches(uint32_t ref) { return {{ref, 0.5}}; }

TEST(QueryCacheTest, HitMissAndCounters) {
  QueryCache cache(8, 1);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.Put("a", 1, Matches(1));
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].id, 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCache cache(2, 1);  // single shard, capacity 2
  cache.Put("a", 1, Matches(1));
  cache.Put("b", 1, Matches(2));
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh a; b is now LRU
  cache.Put("c", 1, Matches(3));               // evicts b
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
}

TEST(QueryCacheTest, PutRefreshesExistingKey) {
  QueryCache cache(2, 1);
  cache.Put("a", 1, Matches(1));
  cache.Put("a", 1, Matches(9));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].id, 9u);
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  QueryCache cache(0, 8);
  EXPECT_FALSE(cache.enabled());
  cache.Put("a", 1, Matches(1));
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
  // A disabled cache records no misses either — the service reports the
  // miss, not the cache.
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(QueryCacheTest, TotalCapacityNeverExceeded) {
  // Regression: ceil-rounding the per-shard capacity let a capacity-10 cache
  // with 8 shards hold 16 entries (2 per shard). The remainder must instead
  // be spread so the shard capacities sum exactly to the requested total.
  for (auto [capacity, shards] : {std::pair<size_t, size_t>{10, 8},
                                  {7, 4},
                                  {8, 8},
                                  {3, 8},
                                  {1, 8},
                                  {100, 16}}) {
    QueryCache cache(capacity, shards);
    for (int i = 0; i < 1000; ++i) {
      cache.Put("key" + std::to_string(i), 1, Matches(static_cast<uint32_t>(i)));
    }
    EXPECT_LE(cache.size(), capacity)
        << "capacity=" << capacity << " shards=" << shards;
  }
}

TEST(QueryCacheTest, SingleShardUsesFullCapacity) {
  QueryCache cache(10, 1);
  for (int i = 0; i < 10; ++i) {
    cache.Put("k" + std::to_string(i), 1, Matches(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(cache.size(), 10u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Put("one-more", 1, Matches(99));
  EXPECT_EQ(cache.size(), 10u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(QueryCacheTest, PurgeReclaimsStaleEpochCapacity) {
  // Regression: entries keyed to superseded epochs are unreachable (the
  // epoch is in the key) but used to hold their capacity slots until LRU
  // pressure happened to reach them. After churn plus a purge, the full
  // capacity must be available to the current epoch again.
  QueryCache cache(8, 1);
  for (int e = 1; e <= 4; ++e) {
    for (int i = 0; i < 2; ++i) {
      cache.Put("e" + std::to_string(e) + "q" + std::to_string(i),
                static_cast<uint64_t>(e), Matches(static_cast<uint32_t>(i)));
    }
  }
  ASSERT_EQ(cache.size(), 8u);  // full: 6 of 8 slots are dead weight
  cache.PurgeEpochsBelow(4);
  EXPECT_EQ(cache.stale_purged(), 6u);
  EXPECT_EQ(cache.size(), 2u);
  // The reclaimed capacity really is usable: 6 current-epoch entries fit
  // without evicting the surviving ones.
  for (int i = 0; i < 6; ++i) {
    cache.Put("new" + std::to_string(i), 4, Matches(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.Get("e4q0").has_value());
  EXPECT_TRUE(cache.Get("e4q1").has_value());
}

TEST(QueryCacheTest, PurgeFloorDropsLateStalePuts) {
  // A request admitted at epoch 2 may finish after the purge that advanced
  // the floor to 5; its Put must be dropped, not re-parked as dead weight.
  QueryCache cache(8, 1);
  cache.PurgeEpochsBelow(5);
  cache.Put("late", 2, Matches(1));
  EXPECT_EQ(cache.size(), 0u);
  cache.Put("fresh", 5, Matches(2));
  EXPECT_EQ(cache.size(), 1u);
  // The floor is monotonic: an older purge cannot lower it.
  cache.PurgeEpochsBelow(3);
  EXPECT_TRUE(cache.Get("fresh").has_value());
}

TEST(QueryCacheTest, ShardedConcurrentAccess) {
  QueryCache cache(1024, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string(i % 100);
        if ((i + t) % 3 == 0) {
          cache.Put(key, 1, Matches(static_cast<uint32_t>(i % 100)));
        } else if (auto hit = cache.Get(key)) {
          EXPECT_EQ((*hit)[0].id, static_cast<uint32_t>(i % 100));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), 100u);
  EXPECT_EQ(cache.hits() + cache.misses(), 4u * 500u * 2u / 3u);
}

TEST(WireTest, ParsesFlatObject) {
  auto obj = ParseJsonObject(
      R"({"op": "lookup", "query": "Mcrosoft \"Corp\"", "k": 3, "fast": true, "x": null})");
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ(obj->at("op").str, "lookup");
  EXPECT_EQ(obj->at("query").str, "Mcrosoft \"Corp\"");
  EXPECT_EQ(obj->at("k").num, 3.0);
  EXPECT_TRUE(obj->at("fast").boolean);
  EXPECT_EQ(obj->at("x").type, JsonScalar::Type::kNull);
}

TEST(WireTest, ParsesEscapesAndNumbers) {
  auto obj = ParseJsonObject(R"({"s": "a\tbéc", "n": -2.5e1})");
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ(obj->at("s").str, "a\tb\xc3\xa9" "c");
  EXPECT_EQ(obj->at("n").num, -25.0);
}

TEST(WireTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJsonObject("").ok());
  EXPECT_FALSE(ParseJsonObject("not json").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": 1").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": {\"nested\": 1}}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": [1, 2]}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": 1, \"a\": 2}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": \"unterminated}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": 12..5}").ok());
}

TEST(WireTest, RejectsEveryStrictPrefix) {
  // Truncation hardening: a line cut anywhere before its final '}' must be
  // rejected, never silently accepted as a shorter request.
  const std::string line =
      R"({"op": "lookup", "query": "a\"b\\c", "k": 3, "deadline_ms": 50})";
  ASSERT_TRUE(ParseJsonObject(line).ok());
  for (size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(ParseJsonObject(std::string_view(line).substr(0, len)).ok())
        << "prefix of length " << len << " parsed";
  }
}

TEST(WireTest, RejectsTruncatedEscapesAndLiterals) {
  // End-of-buffer paths: every one of these used to either read past the
  // token or fall into a generic error; all must fail cleanly.
  EXPECT_FALSE(ParseJsonObject("{\"a\": \"x\\").ok());      // escape at EOF
  EXPECT_FALSE(ParseJsonObject("{\"a\": \"x\\u00").ok());   // \u cut short
  EXPECT_FALSE(ParseJsonObject("{\"a\": tru").ok());        // literal cut short
  EXPECT_FALSE(ParseJsonObject("{\"a\": nul").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": ").ok());           // value missing
  EXPECT_FALSE(ParseJsonObject("{\"a\": 1,").ok());         // key missing
  EXPECT_FALSE(ParseJsonObject("{").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\"").ok());             // ':' missing
}

TEST(WireTest, StrictNumberGrammar) {
  // The old scan handed any number-ish run to strtod, silently accepting
  // "+1", "01", ".5", "1." and turning "1e999" into infinity.
  EXPECT_FALSE(ParseJsonObject("{\"n\": +1}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"n\": 01}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"n\": .5}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"n\": 1.}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"n\": 1e}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"n\": 1e+}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"n\": 1e999}").ok());    // overflows to inf
  EXPECT_FALSE(ParseJsonObject("{\"n\": --1}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"n\": -}").ok());

  for (const char* valid : {"0", "-0", "-0.5", "10", "1.25", "1e5", "1E+5",
                            "1e-5", "0.0", "123e2"}) {
    auto obj = ParseJsonObject(std::string("{\"n\": ") + valid + "}");
    EXPECT_TRUE(obj.ok()) << valid << ": " << obj.status().ToString();
  }
  EXPECT_EQ(ParseJsonObject("{\"n\": -2.5e1}")->at("n").num, -25.0);
}

TEST(WireTest, RejectsRawControlCharactersInStrings) {
  // A line-framed protocol must never let a raw control byte (NUL, tab,
  // embedded newline) hide inside a string; JSON requires escapes.
  std::string nul_line = "{\"a\": \"x";
  nul_line.push_back('\0');
  nul_line += "y\"}";
  EXPECT_FALSE(ParseJsonObject(nul_line).ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": \"x\ty\"}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\": \"x\ny\"}").ok());
  // The escaped forms of the same bytes are fine.
  auto obj = ParseJsonObject(R"({"a": "x\u0000y", "b": "x\ty"})");
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ(obj->at("a").str, std::string("x\0y", 3));
  EXPECT_EQ(obj->at("b").str, "x\ty");
}

TEST(WireTest, EscapeRoundTrip) {
  std::string raw = "tab\t quote\" backslash\\ newline\n";
  auto obj = ParseJsonObject("{\"s\": \"" + JsonEscape(raw) + "\"}");
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ(obj->at("s").str, raw);
}

}  // namespace
}  // namespace ssjoin::serve
