/// MutableFuzzyIndex differential tests: after ANY sequence of
/// Upsert/Delete/Seal/Compact/restart, lookups must be bitwise identical
/// (ids AND similarities) to a freshly built immutable FuzzyMatchIndex over
/// the live records sorted by ascending doc_id — the subsystem's equivalence
/// contract. Also covers epoch pinning, auto-maintenance thresholds and WAL
/// replay after an unclean shutdown.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "index/mutable_index.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::index {
namespace {

using simjoin::FuzzyMatchIndex;

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n, uint64_t seed) {
  Rng rng(seed);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

/// The oracle: rebuild an immutable index from scratch over the live docs
/// (ascending doc_id) and demand bitwise-equal lookups for every query.
void ExpectOracleEquivalent(const MutableFuzzyIndex& index,
                            const std::map<uint64_t, std::string>& live,
                            const std::vector<std::string>& queries, size_t k,
                            const std::string& context) {
  std::vector<uint64_t> ids;
  std::vector<std::string> refs;
  ids.reserve(live.size());
  refs.reserve(live.size());
  for (const auto& [id, value] : live) {
    ids.push_back(id);
    refs.push_back(value);
  }
  auto oracle = FuzzyMatchIndex::Build(refs, index.options().match);
  ASSERT_TRUE(oracle.ok()) << context;
  for (const std::string& q : queries) {
    auto got = index.Lookup(q, k);
    auto want = oracle->Lookup(q, k);
    ASSERT_EQ(got.size(), want.size()) << context << " query: " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, ids[want[i].ref_index])
          << context << " query: " << q << " rank " << i;
      EXPECT_EQ(got[i].similarity, want[i].similarity)
          << context << " query: " << q << " rank " << i;
    }
  }
}

MutableIndexOptions ManualOptions() {
  MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.seal_threshold = 0;    // explicit Seal only
  options.max_generations = 0;   // explicit Compact only
  return options;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/mutable_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(MutableIndexTest, UpsertsMatchFreshBuild) {
  auto master = Master(200, 41);
  auto queries = DirtyQueries(master, 60, 5);
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();

  std::map<uint64_t, std::string> live;
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_TRUE(index->Upsert(i, master[i]).ok());
    live[i] = master[i];
  }
  ExpectOracleEquivalent(*index, live, queries, 5, "after upserts");
  EXPECT_EQ(index->GetStats().live_docs, master.size());
}

TEST(MutableIndexTest, BulkLoadMatchesIncrementalUpserts) {
  auto master = Master(250, 42);
  auto queries = DirtyQueries(master, 60, 6);

  auto bulk = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  std::vector<std::pair<uint64_t, std::string>> records;
  std::map<uint64_t, std::string> live;
  for (size_t i = 0; i < master.size(); ++i) {
    records.emplace_back(i, master[i]);
    live[i] = master[i];
  }
  uint64_t epoch_before = bulk->epoch();
  ASSERT_TRUE(bulk->BulkLoad(records).ok());
  ExpectOracleEquivalent(*bulk, live, queries, 5, "bulk load");
  // One publish for the whole batch, not one per record.
  EXPECT_EQ(bulk->epoch(), epoch_before + 1);
}

TEST(MutableIndexTest, ReplaceAndDeleteMatchOracle) {
  auto master = Master(150, 43);
  auto replacements = Master(150, 44);
  auto queries = DirtyQueries(master, 40, 7);
  auto more = DirtyQueries(replacements, 40, 8);
  queries.insert(queries.end(), more.begin(), more.end());

  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  std::map<uint64_t, std::string> live;
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_TRUE(index->Upsert(i, master[i]).ok());
    live[i] = master[i];
  }
  // Replace every third doc, delete every seventh.
  for (size_t i = 0; i < master.size(); i += 3) {
    ASSERT_TRUE(index->Upsert(i, replacements[i]).ok());
    live[i] = replacements[i];
  }
  for (size_t i = 0; i < master.size(); i += 7) {
    ASSERT_TRUE(index->Delete(i).ok());
    live.erase(i);
  }
  ExpectOracleEquivalent(*index, live, queries, 5, "replace+delete");
  EXPECT_EQ(index->GetStats().live_docs, live.size());
}

TEST(MutableIndexTest, DeleteIsIdempotentAndUnknownIdIsNoop) {
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  ASSERT_TRUE(index->Upsert(7, "main st springfield").ok());
  ASSERT_TRUE(index->Delete(7).ok());
  ASSERT_TRUE(index->Delete(7).ok());
  ASSERT_TRUE(index->Delete(12345).ok());
  EXPECT_EQ(index->GetStats().live_docs, 0u);
  EXPECT_TRUE(index->Lookup("main st springfield", 3).empty());
}

TEST(MutableIndexTest, SealPreservesResultsAcrossGenerations) {
  auto master = Master(180, 45);
  auto queries = DirtyQueries(master, 50, 9);
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();

  std::map<uint64_t, std::string> live;
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_TRUE(index->Upsert(i, master[i]).ok());
    live[i] = master[i];
    if (i % 60 == 59) ASSERT_TRUE(index->Seal().ok());
  }
  auto stats = index->GetStats();
  EXPECT_EQ(stats.sealed_segments, 3u);
  EXPECT_EQ(stats.seals, 3u);
  ExpectOracleEquivalent(*index, live, queries, 5, "multi-generation");

  // Deletes and replacements that cross generation boundaries.
  for (size_t i = 0; i < 60; i += 5) {
    ASSERT_TRUE(index->Delete(i).ok());
    live.erase(i);
  }
  ASSERT_TRUE(index->Upsert(3, "replacement row three").ok());
  live[3] = "replacement row three";
  ExpectOracleEquivalent(*index, live, queries, 5, "cross-generation churn");
}

TEST(MutableIndexTest, CompactDropsTombstonesAndPreservesResults) {
  auto master = Master(160, 46);
  auto queries = DirtyQueries(master, 50, 10);
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();

  std::map<uint64_t, std::string> live;
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_TRUE(index->Upsert(i, master[i]).ok());
    live[i] = master[i];
  }
  ASSERT_TRUE(index->Seal().ok());
  for (size_t i = 0; i < master.size(); i += 4) {
    ASSERT_TRUE(index->Delete(i).ok());
    live.erase(i);
  }
  ASSERT_TRUE(index->Seal().ok());
  EXPECT_GT(index->GetStats().tombstones, 0u);

  auto before = index->Snapshot();
  ASSERT_TRUE(index->Compact().ok());
  auto stats = index->GetStats();
  EXPECT_EQ(stats.sealed_segments, 1u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.live_docs, live.size());
  ExpectOracleEquivalent(*index, live, queries, 5, "post-compaction");

  // Compaction changed the epoch but not the answers.
  EXPECT_GT(index->epoch(), before->epoch);
  for (const std::string& q : queries) {
    auto old_view = index->LookupAt(*before, q, 5);
    auto new_view = index->Lookup(q, 5);
    ASSERT_EQ(old_view.size(), new_view.size());
    for (size_t i = 0; i < old_view.size(); ++i) {
      EXPECT_EQ(old_view[i].id, new_view[i].id);
      EXPECT_EQ(old_view[i].similarity, new_view[i].similarity);
    }
  }
}

TEST(MutableIndexTest, SnapshotPinsAnEpochAgainstLaterMutation) {
  auto master = Master(120, 47);
  auto queries = DirtyQueries(master, 30, 11);
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_TRUE(index->Upsert(i, master[i]).ok());
  }

  auto pinned = index->Snapshot();
  std::vector<std::vector<MutableFuzzyIndex::Match>> want;
  for (const std::string& q : queries) want.push_back(index->LookupAt(*pinned, q, 5));

  // Mutate heavily: the pinned epoch must keep answering exactly as before.
  for (size_t i = 0; i < master.size(); i += 2) ASSERT_TRUE(index->Delete(i).ok());
  ASSERT_TRUE(index->Upsert(500, "brand new record after pin").ok());
  ASSERT_TRUE(index->Seal().ok());
  ASSERT_TRUE(index->Compact().ok());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto got = index->LookupAt(*pinned, queries[qi], 5);
    ASSERT_EQ(got.size(), want[qi].size()) << queries[qi];
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[qi][i].id);
      EXPECT_EQ(got[i].similarity, want[qi][i].similarity);
    }
  }
}

TEST(MutableIndexTest, EpochIncreasesOnEveryMutation) {
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  uint64_t last = index->epoch();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(index->Upsert(i, "record " + std::to_string(i)).ok());
    EXPECT_GT(index->epoch(), last);
    last = index->epoch();
  }
  ASSERT_TRUE(index->Delete(0).ok());
  EXPECT_GT(index->epoch(), last);
}

TEST(MutableIndexTest, AutoSealAndAutoCompactThresholds) {
  MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.seal_threshold = 16;
  options.max_generations = 3;
  auto master = Master(140, 48);
  auto queries = DirtyQueries(master, 40, 12);
  auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();

  std::map<uint64_t, std::string> live;
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_TRUE(index->Upsert(i, master[i]).ok());
    live[i] = master[i];
  }
  auto stats = index->GetStats();
  EXPECT_GT(stats.seals, 0u);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_LE(stats.sealed_segments, options.max_generations + 1);
  ExpectOracleEquivalent(*index, live, queries, 5, "auto-maintained");
}

TEST(MutableIndexTest, BackgroundMaintenanceKeepsEquivalence) {
  MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.seal_threshold = 16;
  options.max_generations = 2;
  options.background_maintenance = true;
  auto master = Master(120, 49);
  auto queries = DirtyQueries(master, 40, 13);
  auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();

  std::map<uint64_t, std::string> live;
  for (size_t i = 0; i < master.size(); ++i) {
    ASSERT_TRUE(index->Upsert(i, master[i]).ok());
    live[i] = master[i];
    if (i % 9 == 0) {
      ASSERT_TRUE(index->Delete(i).ok());
      live.erase(i);
    }
  }
  // Regardless of where the background thread is in its seal/compact cycle,
  // answers must match the oracle (maintenance never changes results).
  ExpectOracleEquivalent(*index, live, queries, 5, "background maintenance");
}

TEST(MutableIndexTest, RandomChurnDifferential) {
  auto master = Master(300, 50);
  auto queries = DirtyQueries(master, 25, 14);
  queries.push_back("completely unknown vocabulary");
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();

  Rng rng(77);
  std::map<uint64_t, std::string> live;
  for (size_t step = 0; step < 400; ++step) {
    uint32_t op = rng.Uniform(10);
    uint64_t id = rng.Uniform(80);
    if (op < 6) {
      const std::string& value = master[rng.Uniform(master.size())];
      ASSERT_TRUE(index->Upsert(id, value).ok());
      live[id] = value;
    } else if (op < 8) {
      ASSERT_TRUE(index->Delete(id).ok());
      live.erase(id);
    } else if (op == 8) {
      ASSERT_TRUE(index->Seal().ok());
    } else {
      ASSERT_TRUE(index->Compact().ok());
    }
    if (step % 80 == 79) {
      ExpectOracleEquivalent(*index, live, queries, 5,
                             "churn step " + std::to_string(step));
    }
  }
  ExpectOracleEquivalent(*index, live, queries, 5, "churn end");
}

TEST(MutableIndexTest, CreateRejectsBadAlpha) {
  MutableIndexOptions options;
  options.match.alpha = 0.0;
  EXPECT_FALSE(MutableFuzzyIndex::Create(options).ok());
  options.match.alpha = 1.5;
  EXPECT_FALSE(MutableFuzzyIndex::Create(options).ok());
}

TEST(MutableIndexTest, ValueAtTracksLatestVersion) {
  auto index = MutableFuzzyIndex::Create(ManualOptions()).MoveValueUnsafe();
  ASSERT_TRUE(index->Upsert(4, "first value").ok());
  ASSERT_TRUE(index->Seal().ok());
  ASSERT_TRUE(index->Upsert(4, "second value").ok());
  auto state = index->Snapshot();
  EXPECT_EQ(index->ValueAt(*state, 4).value_or(""), "second value");
  EXPECT_FALSE(index->ValueAt(*state, 99).has_value());
  ASSERT_TRUE(index->Delete(4).ok());
  EXPECT_FALSE(index->ValueAt(*index->Snapshot(), 4).has_value());
}

// ---------------------------------------------------------------------------
// Durability: WAL replay and manifest recovery across restarts.

TEST(MutableIndexDurabilityTest, ReopenAfterUncleanShutdownReplaysWal) {
  auto master = Master(90, 51);
  auto queries = DirtyQueries(master, 30, 15);
  MutableIndexOptions options = ManualOptions();
  options.data_dir = FreshDir("wal_replay");

  std::map<uint64_t, std::string> live;
  {
    auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
    for (size_t i = 0; i < master.size(); ++i) {
      ASSERT_TRUE(index->Upsert(i, master[i]).ok());
      live[i] = master[i];
    }
    for (size_t i = 0; i < 20; i += 2) {
      ASSERT_TRUE(index->Delete(i).ok());
      live.erase(i);
    }
    // No Seal: everything lives only in the WAL. Dropping the object is the
    // closest in-process stand-in for a crash (the WAL is flushed per append).
  }
  auto reopened = MutableFuzzyIndex::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->GetStats().live_docs, live.size());
  ExpectOracleEquivalent(**reopened, live, queries, 5, "wal replay");
  std::filesystem::remove_all(options.data_dir);
}

TEST(MutableIndexDurabilityTest, ReopenAfterSealAndChurnRestoresExactState) {
  auto master = Master(120, 52);
  auto queries = DirtyQueries(master, 30, 16);
  MutableIndexOptions options = ManualOptions();
  options.data_dir = FreshDir("seal_churn");

  std::map<uint64_t, std::string> live;
  uint64_t epoch_before = 0;
  std::vector<std::vector<MutableFuzzyIndex::Match>> want;
  {
    auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
    for (size_t i = 0; i < 60; ++i) {
      ASSERT_TRUE(index->Upsert(i, master[i]).ok());
      live[i] = master[i];
    }
    ASSERT_TRUE(index->Seal().ok());
    for (size_t i = 60; i < master.size(); ++i) {
      ASSERT_TRUE(index->Upsert(i, master[i]).ok());
      live[i] = master[i];
    }
    for (size_t i = 5; i < 70; i += 9) {
      ASSERT_TRUE(index->Delete(i).ok());
      live.erase(i);
    }
    epoch_before = index->epoch();
    for (const std::string& q : queries) want.push_back(index->Lookup(q, 5));
  }
  auto reopened = MutableFuzzyIndex::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectOracleEquivalent(**reopened, live, queries, 5, "seal+churn reopen");
  // The recovered answers equal the pre-shutdown answers bit for bit.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto got = (*reopened)->Lookup(queries[qi], 5);
    ASSERT_EQ(got.size(), want[qi].size()) << queries[qi];
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[qi][i].id) << queries[qi];
      EXPECT_EQ(got[i].similarity, want[qi][i].similarity) << queries[qi];
    }
  }
  // Epochs are not required to match across restart, but must keep moving.
  ASSERT_TRUE((*reopened)->Upsert(999, "post-restart record").ok());
  EXPECT_GT((*reopened)->epoch(), 0u);
  (void)epoch_before;
  std::filesystem::remove_all(options.data_dir);
}

TEST(MutableIndexDurabilityTest, ReopenAfterCompactionAndContinueChurn) {
  auto master = Master(100, 53);
  auto queries = DirtyQueries(master, 25, 17);
  MutableIndexOptions options = ManualOptions();
  options.data_dir = FreshDir("compact_reopen");

  std::map<uint64_t, std::string> live;
  {
    auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
    for (size_t i = 0; i < master.size(); ++i) {
      ASSERT_TRUE(index->Upsert(i, master[i]).ok());
      live[i] = master[i];
    }
    ASSERT_TRUE(index->Seal().ok());
    for (size_t i = 0; i < 40; i += 3) {
      ASSERT_TRUE(index->Delete(i).ok());
      live.erase(i);
    }
    ASSERT_TRUE(index->Compact().ok());
  }
  auto reopened = MutableFuzzyIndex::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectOracleEquivalent(**reopened, live, queries, 5, "compaction reopen");

  // Keep mutating after the restart, then survive a second restart.
  {
    auto& index = *reopened;
    ASSERT_TRUE(index->Upsert(1, "post restart replacement").ok());
    live[1] = "post restart replacement";
    ASSERT_TRUE(index->Delete(50).ok());
    live.erase(50);
  }
  reopened->reset();
  auto again = MutableFuzzyIndex::Open(options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ExpectOracleEquivalent(**again, live, queries, 5, "second reopen");
  std::filesystem::remove_all(options.data_dir);
}

TEST(MutableIndexDurabilityTest, CreateRefusesExistingManifest) {
  MutableIndexOptions options = ManualOptions();
  options.data_dir = FreshDir("create_twice");
  {
    auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
    ASSERT_TRUE(index->Upsert(0, "hello world").ok());
  }
  auto second = MutableFuzzyIndex::Create(options);
  EXPECT_FALSE(second.ok());
  std::filesystem::remove_all(options.data_dir);
}

TEST(MutableIndexDurabilityTest, OpenWithoutManifestFails) {
  MutableIndexOptions options = ManualOptions();
  options.data_dir = FreshDir("open_missing");
  EXPECT_FALSE(MutableFuzzyIndex::Open(options).ok());
  std::filesystem::remove_all(options.data_dir);
}

}  // namespace
}  // namespace ssjoin::index
