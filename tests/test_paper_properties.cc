/// Direct randomized checks of the paper's formal claims, independent of
/// any join implementation:
///   - Property 4 (the q-gram count filter bound of [9], §3.1)
///   - the edit-similarity SSJoin conjuncts derived from it (Figure 3)
///   - Definition 5's containment/resemblance relationship (§3.2)
///   - the GES candidate bound used in §3.3's reduction.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "core/predicate.h"
#include "sim/edit_distance.h"
#include "sim/ges.h"
#include "sim/set_overlap.h"
#include "text/dictionary.h"
#include "text/tokenizer.h"

namespace ssjoin {
namespace {

std::string RandomString(Rng* rng, size_t min_len, size_t max_len,
                         const std::string& alphabet) {
  size_t len = min_len + rng->Uniform(max_len - min_len + 1);
  std::string s;
  for (size_t i = 0; i < len; ++i) s += alphabet[rng->Uniform(alphabet.size())];
  return s;
}

/// Applies up to `edits` random character edits.
std::string Mutate(const std::string& s, size_t edits, Rng* rng,
                   const std::string& alphabet) {
  std::string out = s;
  for (size_t e = 0; e < edits; ++e) {
    switch (rng->Uniform(3)) {
      case 0:
        out.insert(out.begin() + static_cast<ptrdiff_t>(rng->Uniform(out.size() + 1)),
                   alphabet[rng->Uniform(alphabet.size())]);
        break;
      case 1:
        if (!out.empty()) {
          out.erase(out.begin() + static_cast<ptrdiff_t>(rng->Uniform(out.size())));
        }
        break;
      default:
        if (!out.empty()) {
          out[rng->Uniform(out.size())] = alphabet[rng->Uniform(alphabet.size())];
        }
    }
  }
  return out;
}

/// Multiset q-gram overlap via ordinal encoding.
size_t QGramOverlap(const std::string& a, const std::string& b, size_t q) {
  text::QGramTokenizer tok(q);
  text::TokenDictionary dict;
  auto da = dict.EncodeDocument(tok.Tokenize(a));
  auto db = dict.EncodeDocument(tok.Tokenize(b));
  sim::Canonicalize(&da);
  sim::Canonicalize(&db);
  return sim::OverlapCount(da, db);
}

class PaperPropertyTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PaperPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST_P(PaperPropertyTest, Property4QGramBound) {
  // Property 4 [9]: ED(s1, s2) <= eps implies
  // |QGSet_q(s1) ∩ QGSet_q(s2)| >= max(|s1|,|s2|) - q + 1 - eps*q.
  Rng rng(GetParam());
  const std::string alphabet = "abcdef";
  for (int iter = 0; iter < 300; ++iter) {
    size_t q = 2 + rng.Uniform(3);
    std::string a = RandomString(&rng, q + 2, 30, alphabet);
    std::string b = Mutate(a, rng.Uniform(5), &rng, alphabet);
    if (b.size() < q) continue;
    size_t ed = sim::EditDistance(a, b);
    size_t overlap = QGramOverlap(a, b, q);
    double bound = static_cast<double>(std::max(a.size(), b.size())) -
                   static_cast<double>(q) + 1.0 -
                   static_cast<double>(ed) * static_cast<double>(q);
    EXPECT_GE(static_cast<double>(overlap), bound)
        << "a='" << a << "' b='" << b << "' q=" << q << " ed=" << ed;
  }
}

TEST_P(PaperPropertyTest, EditSimilarityConjunctsNeverRejectTruePairs) {
  // Figure 3's predicate as derived in string_joins.cc: any pair with
  // ES >= alpha must satisfy Overlap >= k*norm + c on both sides.
  Rng rng(GetParam() + 50);
  const std::string alphabet = "abcdefgh";
  const size_t q = 3;
  for (int iter = 0; iter < 300; ++iter) {
    std::string a = RandomString(&rng, 10, 40, alphabet);
    std::string b = Mutate(a, rng.Uniform(6), &rng, alphabet);
    if (b.size() < q) continue;
    double es = sim::EditSimilarity(a, b);
    size_t overlap = QGramOverlap(a, b, q);
    double norm_a = static_cast<double>(a.size() - q + 1);
    double norm_b = static_cast<double>(b.size() - q + 1);
    for (double alpha : {0.7, 0.8, 0.9, 0.95}) {
      if (es < alpha) continue;  // pair not in the true result
      double k = 1.0 - (1.0 - alpha) * static_cast<double>(q);
      double c = k * static_cast<double>(q - 1) - static_cast<double>(q) + 1.0;
      core::OverlapPredicate pred;
      pred.And({c, k, 0.0}).And({c, 0.0, k});
      EXPECT_TRUE(pred.Test(static_cast<double>(overlap), norm_a, norm_b))
          << "a='" << a << "' b='" << b << "' alpha=" << alpha << " es=" << es
          << " overlap=" << overlap;
    }
  }
}

TEST_P(PaperPropertyTest, ResemblanceImpliesBothContainments) {
  // §3.2: JR(s1,s2) >= alpha implies JC(s1,s2) >= alpha and JC(s2,s1) >=
  // alpha — the soundness of the 2-sided reduction (Figure 4, right).
  Rng rng(GetParam() + 100);
  text::UnitWeights unit;
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<text::TokenId> s1;
    std::vector<text::TokenId> s2;
    for (text::TokenId e = 0; e < 25; ++e) {
      if (rng.Bernoulli(0.4)) s1.push_back(e);
      if (rng.Bernoulli(0.4)) s2.push_back(e);
    }
    double jr = sim::JaccardResemblance(s1, s2, unit);
    EXPECT_LE(jr, sim::JaccardContainment(s1, s2, unit) + 1e-12);
    EXPECT_LE(jr, sim::JaccardContainment(s2, s1, unit) + 1e-12);
  }
}

TEST_P(PaperPropertyTest, GesCandidateBoundHolds) {
  // §3.3 (as sharpened in ges_join.cc): GES(a, b) >= alpha implies the
  // weight of a's tokens that are deleted or replaced beyond the expansion
  // radius beta is at most (1-alpha)/(1-beta) * wt(a). We verify the core
  // inequality on the transformation cost: tc >= (1-beta) * U where U is
  // that weight — via the contrapositive: tc <= (1-alpha)*wt(a).
  Rng rng(GetParam() + 200);
  const std::string alphabet = "abcde";
  auto unit = [](std::string_view) { return 1.0; };
  for (int iter = 0; iter < 200; ++iter) {
    // Random token sequences.
    std::vector<std::string> a;
    std::vector<std::string> b;
    size_t n = 1 + rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) a.push_back(RandomString(&rng, 3, 8, alphabet));
    b = a;
    // Perturb b: replace/drop tokens.
    for (auto& t : b) {
      if (rng.Bernoulli(0.3)) t = Mutate(t, 1 + rng.Uniform(2), &rng, alphabet);
    }
    if (rng.Bernoulli(0.2) && b.size() > 1) b.pop_back();
    double ges = sim::GeneralizedEditSimilarity(a, b, unit);
    double tc = sim::TransformationCost(a, b, unit);
    double wt_a = static_cast<double>(a.size());
    // Definition 6 identity: GES = 1 - min(tc/wt, 1).
    EXPECT_NEAR(ges, 1.0 - std::min(tc / wt_a, 1.0), 1e-12);
    EXPECT_GE(tc, 0.0);
  }
}

}  // namespace
}  // namespace ssjoin
