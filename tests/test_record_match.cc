#include <gtest/gtest.h>

#include <set>

#include "simjoin/record_match.h"

namespace ssjoin::simjoin {
namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

PairSet ToPairSet(const std::vector<MatchPair>& matches) {
  PairSet out;
  for (const MatchPair& m : matches) out.insert({m.r, m.s});
  return out;
}

/// Customers: {name, address, phone}.
std::vector<std::vector<std::string>> Customers() {
  return {
      {"John Smith", "4821 NE Thornton Ave Redmond", "555-0101"},    // 0
      {"Jon Smith", "4821 NE Thornton Avenue Redmond", "555-0101"},  // 1: dup of 0
      {"John Smith", "99 Elm Street Dallas", "555-7777"},            // 2: same name
      {"Mary Crouvel", "4821 NE Thornton Ave Redmond", "555-2222"},  // 3: same addr
      {"Smyth John", "12 Pine Rd Austin", "555-3333"},               // 4
  };
}

TEST(RecordMatchTest, NameAndAddressConjunction) {
  auto rows = Customers();
  RecordMatchOptions options;
  // §1's rule: names similar AND addresses similar. (Edit similarity for
  // the short names — token-level IDF weights on a 5-record corpus make
  // word-level Jaccard overly strict for single-token differences.)
  options.rule_sets = {{{0, ColumnSim::kEditSimilarity, 0.8},
                        {1, ColumnSim::kJaccard, 0.4}}};
  auto matches = *RecordMatchJoin(rows, rows, options);
  PairSet pairs = ToPairSet(matches);
  EXPECT_TRUE(pairs.count({0, 1}));   // real duplicate: both columns similar
  EXPECT_FALSE(pairs.count({0, 2}));  // name matches, address differs
  EXPECT_FALSE(pairs.count({0, 3}));  // address matches, name differs
  for (uint32_t i = 0; i < rows.size(); ++i) EXPECT_TRUE(pairs.count({i, i}));
}

TEST(RecordMatchTest, DisjunctionOfRuleSets) {
  auto rows = Customers();
  RecordMatchOptions options;
  // Match if (name edit-similar AND phone equal) OR (address jaccard-close).
  options.rule_sets = {
      {{0, ColumnSim::kEditSimilarity, 0.8}, {2, ColumnSim::kEquality, 0.0}},
      {{1, ColumnSim::kJaccard, 0.75}},
  };
  auto matches = *RecordMatchJoin(rows, rows, options);
  PairSet pairs = ToPairSet(matches);
  EXPECT_TRUE(pairs.count({0, 1}));  // via either set
  EXPECT_TRUE(pairs.count({0, 3}));  // via address rule set
  EXPECT_FALSE(pairs.count({0, 4}));
  EXPECT_FALSE(pairs.count({2, 4}));
}

TEST(RecordMatchTest, SoundexAndJaroWinklerRules) {
  auto rows = Customers();
  RecordMatchOptions options;
  // Block on soundex of the name column; verify with Jaro-Winkler to weed
  // out weak candidates.
  options.rule_sets = {
      {{0, ColumnSim::kSoundex, 0.0}, {0, ColumnSim::kJaroWinkler, 0.85}}};
  auto matches = *RecordMatchJoin(rows, rows, options);
  PairSet pairs = ToPairSet(matches);
  EXPECT_TRUE(pairs.count({0, 2}));   // identical names pass both
  EXPECT_TRUE(pairs.count({0, 1}));   // John/Jon Smith: same soundex, high JW
  EXPECT_FALSE(pairs.count({0, 3}));  // different soundex
}

TEST(RecordMatchTest, EqualityBlockingIsExact) {
  std::vector<std::vector<std::string>> rows = {
      {"a b"}, {"b a"}, {"a b"}, {"c"}};
  RecordMatchOptions options;
  options.rule_sets = {{{0, ColumnSim::kEquality, 0.0}}};
  auto matches = *RecordMatchJoin(rows, rows, options);
  PairSet pairs = ToPairSet(matches);
  EXPECT_TRUE(pairs.count({0, 2}));   // identical strings
  EXPECT_FALSE(pairs.count({0, 1}));  // same token multiset, different string
  EXPECT_TRUE(pairs.count({3, 3}));
}

TEST(RecordMatchTest, StatsCountVerifierCalls) {
  auto rows = Customers();
  RecordMatchOptions options;
  options.rule_sets = {{{0, ColumnSim::kJaccard, 0.5},
                        {1, ColumnSim::kJaccard, 0.5},
                        {2, ColumnSim::kEquality, 0.0}}};
  SimJoinStats stats;
  auto matches = *RecordMatchJoin(rows, rows, options, &stats);
  EXPECT_GT(stats.verifier_calls, 0u);
  EXPECT_EQ(stats.result_pairs, matches.size());
}

TEST(RecordMatchTest, InvalidSpecifications) {
  auto rows = Customers();
  RecordMatchOptions empty;
  EXPECT_FALSE(RecordMatchJoin(rows, rows, empty).ok());
  RecordMatchOptions empty_set;
  empty_set.rule_sets = {{}};
  EXPECT_FALSE(RecordMatchJoin(rows, rows, empty_set).ok());
  RecordMatchOptions jw_block;
  jw_block.rule_sets = {{{0, ColumnSim::kJaroWinkler, 0.8}}};
  EXPECT_FALSE(RecordMatchJoin(rows, rows, jw_block).ok());
  RecordMatchOptions bad_column;
  bad_column.rule_sets = {{{9, ColumnSim::kJaccard, 0.5}}};
  EXPECT_FALSE(RecordMatchJoin(rows, rows, bad_column).ok());
}

TEST(RecordMatchTest, DeduplicatesAcrossRuleSets) {
  auto rows = Customers();
  RecordMatchOptions options;
  // Two rule sets that both accept the identity pairs.
  options.rule_sets = {{{0, ColumnSim::kJaccard, 0.9}},
                       {{1, ColumnSim::kJaccard, 0.9}}};
  auto matches = *RecordMatchJoin(rows, rows, options);
  PairSet pairs = ToPairSet(matches);
  EXPECT_EQ(matches.size(), pairs.size());  // no duplicate pairs emitted
}

}  // namespace
}  // namespace ssjoin::simjoin
