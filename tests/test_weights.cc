#include <gtest/gtest.h>

#include <cmath>

#include "text/dictionary.h"
#include "text/weights.h"

namespace ssjoin::text {
namespace {

TEST(UnitWeightsTest, AllOnes) {
  UnitWeights w;
  EXPECT_DOUBLE_EQ(w.Weight(0), 1.0);
  EXPECT_DOUBLE_EQ(w.Weight(12345), 1.0);
  EXPECT_DOUBLE_EQ(w.SetWeight({1, 2, 3}), 3.0);
}

TEST(IdfWeightsTest, MatchesPaperFormula) {
  // §5: w(t) = log((|R| + |S|) / f_t). Encode 4 documents; the token "rare"
  // appears in 1, "mid" in 2, "common" in all 4.
  TokenDictionary dict;
  TokenId rare = dict.EncodeDocument({"rare", "mid", "common"})[0];
  TokenId mid = dict.Find("mid");
  TokenId common = dict.Find("common");
  dict.EncodeDocument({"mid", "common"});
  dict.EncodeDocument({"common"});
  dict.EncodeDocument({"common"});

  IdfWeights idf(dict);
  EXPECT_NEAR(idf.Weight(rare), std::log(4.0 / 1.0), 1e-12);
  EXPECT_NEAR(idf.Weight(mid), std::log(4.0 / 2.0), 1e-12);
  // f_t = |docs| would give log(1) = 0; floored to a small positive value
  // (the paper assumes strictly positive weights).
  EXPECT_GT(idf.Weight(common), 0.0);
  EXPECT_LT(idf.Weight(common), 1e-3);
}

TEST(IdfWeightsTest, RarerTokensWeighMore) {
  TokenDictionary dict;
  dict.EncodeDocument({"a", "b"});
  dict.EncodeDocument({"a"});
  dict.EncodeDocument({"a", "c"});
  IdfWeights idf(dict);
  EXPECT_GT(idf.Weight(dict.Find("b")), idf.Weight(dict.Find("a")));
  EXPECT_DOUBLE_EQ(idf.Weight(dict.Find("b")), idf.Weight(dict.Find("c")));
}

TEST(IdfWeightsTest, SnapshotIgnoresLaterGrowth) {
  TokenDictionary dict;
  dict.EncodeDocument({"x"});
  IdfWeights idf(dict);
  size_t before = idf.size();
  dict.EncodeDocument({"y", "z"});
  EXPECT_EQ(idf.size(), before);
}

TEST(IdfWeightsTest, ZeroDocFrequencyGetsFiniteFloor) {
  // Regression: a dictionary rebuilt through Restore can carry entries whose
  // doc_frequency is 0 (e.g. hand-edited or version-skewed snapshots).
  // log(n/0) = +inf passed the `idf > kMinWeight` clamp and poisoned every
  // set weight containing the element; it must floor like f_t = n does.
  std::vector<TokenDictionary::EntryData> entries = {
      {"alive", 0, 2},
      {"ghost", 0, 0},
  };
  auto dict = TokenDictionary::Restore(std::move(entries), 4);
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  IdfWeights idf(*dict);
  EXPECT_NEAR(idf.Weight(0), std::log(4.0 / 2.0), 1e-12);
  EXPECT_TRUE(std::isfinite(idf.Weight(1)));
  EXPECT_GT(idf.Weight(1), 0.0);
  EXPECT_LT(idf.Weight(1), 1e-3);
  // The poisoned sum was the user-visible symptom: wt({alive, ghost}) must
  // stay finite and close to wt({alive}).
  EXPECT_TRUE(std::isfinite(idf.SetWeight({0, 1})));
  EXPECT_NEAR(idf.SetWeight({0, 1}), idf.Weight(0), 1e-3);
}

TEST(IdfWeightsTest, SetWeightSums) {
  TokenDictionary dict;
  auto ids = dict.EncodeDocument({"p", "q"});
  dict.EncodeDocument({"p"});
  IdfWeights idf(dict);
  EXPECT_NEAR(idf.SetWeight(ids), idf.Weight(ids[0]) + idf.Weight(ids[1]), 1e-12);
}

}  // namespace
}  // namespace ssjoin::text
