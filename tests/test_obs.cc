/// Unit tests for the unified observability layer (src/obs): metric
/// primitives, the registry with its provider protocol, span accumulation,
/// and the NDJSON / flat-JSON export forms (validated with the serve wire
/// parser, the same one the stats command's consumers use).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/wire.h"

namespace ssjoin::obs {
namespace {

TEST(CounterTest, AddsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add(3);
  c.Add(0);
  c.Add(39);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentAddsAllLand) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(GaugeTest, SetAddAndHighWater) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.SetMax(5);  // below current: no-op
  EXPECT_EQ(g.value(), 7);
  g.SetMax(100);
  EXPECT_EQ(g.value(), 100);
  g.Set(-1);  // Set always overwrites, even downward
  EXPECT_EQ(g.value(), -1);
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  for (uint64_t v : {1u, 2u, 4u, 100u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.max_value(), 100u);
}

TEST(HistogramTest, QuantilesBracketedByData) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i);
  // Log2 buckets bound the relative error by the bucket width (factor 2).
  double p50 = h.Quantile(0.50);
  double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, p50);
  // No quantile can exceed the recorded maximum.
  EXPECT_LE(h.Quantile(1.0), 1000.0);
  EXPECT_LE(p99, 1000.0);
}

TEST(HistogramTest, SummarizeMatchesAccessors) {
  Histogram h;
  h.Record(10);
  h.Record(30);
  HistogramData d = SummarizeHistogram(h);
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, 40u);
  EXPECT_EQ(d.max, 30u);
  EXPECT_DOUBLE_EQ(d.mean, 20.0);
  EXPECT_LE(d.p50, d.p95);
  EXPECT_LE(d.p95, d.p99);
}

TEST(RegistryTest, LazyCreationWithStableAddresses) {
  Registry reg;
  Counter* a1 = reg.GetCounter("a");
  a1->Add(5);
  Counter* a2 = reg.GetCounter("a");
  EXPECT_EQ(a1, a2);  // same metric, cacheable pointer
  EXPECT_EQ(a2->value(), 5u);
  // The three kinds live in separate namespaces: one name per kind is fine.
  EXPECT_NE(static_cast<void*>(reg.GetGauge("a")), static_cast<void*>(a1));
}

TEST(RegistryTest, SnapshotSortedByName) {
  Registry reg;
  reg.GetCounter("zeta")->Add(1);
  reg.GetGauge("alpha")->Set(2);
  reg.GetHistogram("mid")->Record(3);
  std::vector<MetricPoint> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
  EXPECT_EQ(snap[0].type, MetricPoint::Type::kGauge);
  EXPECT_EQ(snap[0].gauge, 2);
  EXPECT_EQ(snap[1].type, MetricPoint::Type::kHistogram);
  EXPECT_EQ(snap[1].hist.count, 1u);
  EXPECT_EQ(snap[2].type, MetricPoint::Type::kCounter);
  EXPECT_EQ(snap[2].counter, 1u);
}

TEST(RegistryTest, ProviderContributesAndUnregisters) {
  Registry reg;
  reg.GetCounter("owned")->Add(1);
  uint64_t id = reg.RegisterProvider([](std::vector<MetricPoint>* out) {
    out->push_back(MetricPoint::FromCounter("provided", 7));
  });
  std::vector<MetricPoint> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "owned");
  EXPECT_EQ(snap[1].name, "provided");
  EXPECT_EQ(snap[1].counter, 7u);

  reg.UnregisterProvider(id);
  EXPECT_EQ(reg.Snapshot().size(), 1u);
  // Unregistering twice (or a bogus id) is harmless.
  reg.UnregisterProvider(id);
  reg.UnregisterProvider(999);
}

TEST(RegistryTest, NdjsonLinesParseWithWireParser) {
  Registry reg;
  reg.GetCounter("core.result_pairs")->Add(12);
  reg.GetGauge("exec.queue_depth_hwm")->Set(4);
  reg.GetHistogram("serve.latency_us")->Record(150);
  std::string ndjson = reg.ToNdjson();

  // Each line must be a flat JSON object the wire parser accepts — the
  // served stats command streams exactly these lines to clients.
  size_t lines = 0;
  size_t pos = 0;
  while (pos < ndjson.size()) {
    size_t eol = ndjson.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    std::string line = ndjson.substr(pos, eol - pos);
    pos = eol + 1;
    ++lines;
    auto obj = serve::ParseJsonObject(line);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString() << " line: " << line;
    ASSERT_TRUE(obj->count("metric"));
    ASSERT_TRUE(obj->count("type"));
    const std::string& type = obj->at("type").str;
    if (type == "histogram") {
      for (const char* key : {"count", "sum", "max", "mean", "p50", "p95", "p99"}) {
        EXPECT_TRUE(obj->count(key)) << key << " missing: " << line;
      }
    } else {
      EXPECT_TRUE(type == "counter" || type == "gauge") << line;
      EXPECT_TRUE(obj->count("value")) << line;
    }
  }
  EXPECT_EQ(lines, 3u);
}

TEST(RegistryTest, FlatJsonFlattensHistograms) {
  Registry reg;
  reg.GetCounter("core.joins")->Add(2);
  reg.GetHistogram("serve.latency_us")->Record(64);
  std::string flat = reg.ToFlatJson();
  auto obj = serve::ParseJsonObject(flat);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString() << " json: " << flat;
  EXPECT_EQ(obj->at("core.joins").num, 2.0);
  EXPECT_EQ(obj->at("serve.latency_us.count").num, 1.0);
  EXPECT_EQ(obj->at("serve.latency_us.sum").num, 64.0);
  EXPECT_EQ(obj->at("serve.latency_us.max").num, 64.0);
  EXPECT_TRUE(obj->count("serve.latency_us.p99"));
}

TEST(SpanSetTest, KeepsFirstRecordedOrderAndMerges) {
  SpanSet a;
  a.Add("prefix_filter", 100);
  a.Add("ssjoin", 200);
  a.Add("prefix_filter", 50);  // folds into the existing entry
  ASSERT_EQ(a.entries().size(), 2u);
  EXPECT_EQ(a.entries()[0].name, "prefix_filter");
  EXPECT_EQ(a.entries()[0].total_micros, 150u);
  EXPECT_EQ(a.entries()[0].count, 2u);
  EXPECT_EQ(a.entries()[1].name, "ssjoin");

  SpanSet b;
  b.Add("ssjoin", 10);
  b.Add("verify", 5);
  a.Merge(b);
  ASSERT_EQ(a.entries().size(), 3u);
  // Merge appends unseen names after existing ones — merging per-morsel sets
  // in morsel order therefore yields a scheduling-independent name sequence.
  EXPECT_EQ(a.entries()[1].total_micros, 210u);
  EXPECT_EQ(a.entries()[2].name, "verify");

  Registry reg;
  a.PublishTo(&reg, "core.phase.");
  EXPECT_EQ(reg.GetCounter("core.phase.prefix_filter.us")->value(), 150u);
  EXPECT_EQ(reg.GetCounter("core.phase.prefix_filter.count")->value(), 2u);
  EXPECT_EQ(reg.GetCounter("core.phase.ssjoin.us")->value(), 210u);
  EXPECT_EQ(reg.GetCounter("core.phase.verify.count")->value(), 1u);
}

TEST(ObsSpanTest, RecordsIntoEachTargetOnce) {
  Counter c;
  {
    ObsSpan span(&c);
  }  // destructor stops

  Histogram h;
  {
    ObsSpan span(&h);
    uint64_t first = span.Stop();
    EXPECT_EQ(span.Stop(), 0u) << "Stop must be idempotent";
    (void)first;
  }
  EXPECT_EQ(h.count(), 1u) << "destructor after Stop must not double-record";

  SpanSet set;
  {
    ObsSpan span(&set, "lookup");
  }
  ASSERT_EQ(set.entries().size(), 1u);
  EXPECT_EQ(set.entries()[0].name, "lookup");
  EXPECT_EQ(set.entries()[0].count, 1u);
}

TEST(GlobalRegistryTest, SingletonIsStable) {
  Registry& a = Registry::Global();
  Registry& b = Registry::Global();
  EXPECT_EQ(&a, &b);
  // Touching a test-scoped name must not disturb anything else and the
  // pointer must be stable across lookups.
  Counter* c = a.GetCounter("test_obs.touch");
  c->Add(1);
  EXPECT_EQ(b.GetCounter("test_obs.touch"), c);
}

}  // namespace
}  // namespace ssjoin::obs
