#include <gtest/gtest.h>

#include <set>

#include "datagen/address_gen.h"
#include "simjoin/ges_join.h"

namespace ssjoin::simjoin {
namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

PairSet ToPairSet(const std::vector<MatchPair>& matches) {
  PairSet out;
  for (const MatchPair& m : matches) out.insert({m.r, m.s});
  return out;
}

std::vector<std::string> Corpus(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.35;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

TEST(GESJoinTest, MatchesBruteForce) {
  std::vector<std::string> data = Corpus(120, 17);
  for (double alpha : {0.85, 0.9}) {
    SCOPED_TRACE(alpha);
    SimJoinStats stats;
    auto matches = *GESJoin(data, data, alpha, {}, &stats);
    auto brute = *GESJoinBruteForce(data, data, alpha);
    EXPECT_EQ(ToPairSet(matches), ToPairSet(brute));
    // The exact UDF guarantees precision...
    for (const MatchPair& m : matches) EXPECT_GE(m.similarity, alpha - 1e-9);
    // ...and the SSJoin stage did dramatically fewer verifications than the
    // cross product.
    EXPECT_LT(stats.verifier_calls, data.size() * data.size() / 4);
  }
}

TEST(GESJoinTest, SelfPairsAlwaysFound) {
  std::vector<std::string> data = Corpus(80, 23);
  auto matches = *GESJoin(data, data, 0.95);
  PairSet pairs = ToPairSet(matches);
  for (uint32_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(pairs.count({i, i})) << data[i];
  }
}

TEST(GESJoinTest, AbbreviationTolerance) {
  // §3.3's motivating behaviour: low-weight token variation ("Corp" vs
  // "Corporation") matters less than high-weight token identity.
  std::vector<std::string> r{"microsoft corp"};
  std::vector<std::string> s{"microsft corporation", "oracle corp"};
  // Pad the corpus so IDF has signal: many unrelated strings mentioning
  // corp/corporation make those tokens cheap.
  for (int i = 0; i < 20; ++i) {
    s.push_back("company" + std::to_string(i) + " corp");
    s.push_back("enterprise" + std::to_string(i) + " corporation");
  }
  GESJoinOptions opts;
  opts.token_sim_threshold = 0.5;
  auto matches = *GESJoin(r, s, 0.75, opts);
  PairSet pairs = ToPairSet(matches);
  EXPECT_TRUE(pairs.count({0, 0}));   // microsft corporation matches
  EXPECT_FALSE(pairs.count({0, 1}));  // oracle corp does not
}

TEST(GESJoinTest, InvalidAlphaRejected) {
  std::vector<std::string> data{"x"};
  EXPECT_FALSE(GESJoin(data, data, 1.5).ok());
}

TEST(GESJoinTest, EmptyInputs) {
  std::vector<std::string> empty;
  std::vector<std::string> one{"hello world"};
  EXPECT_TRUE(GESJoin(empty, one, 0.8)->empty());
  EXPECT_TRUE(GESJoin(one, empty, 0.8)->empty());
}

TEST(GESJoinBruteForceTest, CountsAllPairs) {
  std::vector<std::string> data = Corpus(30, 3);
  SimJoinStats stats;
  GESJoinBruteForce(data, data, 0.9, &stats).ValueOrDie();
  EXPECT_EQ(stats.verifier_calls, data.size() * data.size());
}

}  // namespace
}  // namespace ssjoin::simjoin
