#include <gtest/gtest.h>

#include <cmath>

#include "sim/ges.h"

namespace ssjoin::sim {
namespace {

double UnitWeight(std::string_view) { return 1.0; }

TEST(NormalizedEditDistanceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "abc"), 0.0);
  EXPECT_NEAR(NormalizedEditDistance("microsoft", "microsft"), 1.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("ab", ""), 1.0);
}

TEST(TransformationCostTest, IdenticalSequencesCostZero) {
  EXPECT_DOUBLE_EQ(TransformationCost({"a", "b"}, {"a", "b"}, UnitWeight), 0.0);
}

TEST(TransformationCostTest, PureInsertionsAndDeletions) {
  // Transforming {} to {x, y} inserts both: cost = wt(x) + wt(y) = 2.
  EXPECT_DOUBLE_EQ(TransformationCost({}, {"x", "y"}, UnitWeight), 2.0);
  EXPECT_DOUBLE_EQ(TransformationCost({"x", "y"}, {}, UnitWeight), 2.0);
}

TEST(TransformationCostTest, ReplacementUsesNormalizedEditDistance) {
  // Replacing "microsoft" by "microsft" costs ed * wt = (1/9) * 1.
  EXPECT_NEAR(TransformationCost({"microsoft"}, {"microsft"}, UnitWeight),
              1.0 / 9.0, 1e-12);
}

TEST(TransformationCostTest, WeightsScaleCosts) {
  auto weight = [](std::string_view t) { return t == "corp" ? 0.1 : 1.0; };
  // Dropping the low-weight "corp" is cheap.
  EXPECT_NEAR(TransformationCost({"microsoft", "corp"}, {"microsoft"}, weight), 0.1,
              1e-12);
}

TEST(TransformationCostTest, PrefersCheapestEditScript) {
  // {"aaa"} -> {"aab","zzz"}: replace aaa->aab (1/3) + insert zzz (1)
  // beats delete aaa (1) + insert both (2).
  EXPECT_NEAR(TransformationCost({"aaa"}, {"aab", "zzz"}, UnitWeight), 1.0 + 1.0 / 3.0,
              1e-12);
}

TEST(GESTest, IdenticalStringsScoreOne) {
  EXPECT_DOUBLE_EQ(
      GeneralizedEditSimilarity({"microsoft", "corp"}, {"microsoft", "corp"},
                                UnitWeight),
      1.0);
}

TEST(GESTest, EmptyBehaviour) {
  EXPECT_DOUBLE_EQ(GeneralizedEditSimilarity({}, {}, UnitWeight), 1.0);
  EXPECT_DOUBLE_EQ(GeneralizedEditSimilarity({}, {"x"}, UnitWeight), 0.0);
  // Cost of deleting everything = wt(set): normalized cost 1 -> GES 0.
  EXPECT_DOUBLE_EQ(GeneralizedEditSimilarity({"x"}, {}, UnitWeight), 0.0);
}

TEST(GESTest, BoundedInUnitInterval) {
  double g = GeneralizedEditSimilarity({"a"}, {"completely", "different", "words"},
                                       UnitWeight);
  EXPECT_GE(g, 0.0);
  EXPECT_LE(g, 1.0);
}

TEST(GESTest, PaperMotivation) {
  // §3.3: "microsoft corp" and "microsft corporation" should be close when
  // 'corp'/'corporation' carry low weight, closer than to "mic corp".
  auto weight = [](std::string_view t) {
    return (t == "corp" || t == "corporation") ? 0.2 : 1.0;
  };
  double close = GeneralizedEditSimilarity({"microsoft", "corp"},
                                           {"microsft", "corporation"}, weight);
  double far = GeneralizedEditSimilarity({"microsoft", "corp"}, {"mic", "corp"},
                                         weight);
  EXPECT_GT(close, far);
  EXPECT_GT(close, 0.8);
}

TEST(GESTest, AsymmetryNormalizesByFirstArgument) {
  auto weight = UnitWeight;
  // tc is symmetric-ish here but normalization differs: wt({a}) = 1 vs
  // wt({a,b,c}) = 3.
  double g1 = GeneralizedEditSimilarity({"a"}, {"a", "b", "c"}, weight);
  double g2 = GeneralizedEditSimilarity({"a", "b", "c"}, {"a"}, weight);
  EXPECT_DOUBLE_EQ(g1, 0.0);       // cost 2 / wt 1, clamped at 1 -> GES 0
  EXPECT_NEAR(g2, 1.0 / 3.0, 1e-12);  // cost 2 / wt 3
}

}  // namespace
}  // namespace ssjoin::sim
