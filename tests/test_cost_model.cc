#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost_model.h"

namespace ssjoin::core {
namespace {

struct Fixture {
  WeightVector weights;
  ElementOrder order;
  SetsRelation rel;

  SSJoinContext Context() const { return {&weights, &order}; }
};

/// A skewed self-join workload: a few very frequent elements plus a long
/// tail, the regime where the prefix filter pays off.
Fixture SkewedFixture(uint64_t seed, size_t groups) {
  Rng rng(seed);
  Fixture f;
  const size_t kUniverse = 200;
  f.weights.resize(kUniverse);
  for (size_t e = 0; e < kUniverse; ++e) {
    // Element e's frequency will be ~Zipf; give it an IDF-like weight.
    f.weights[e] = 0.1 + 3.0 * static_cast<double>(e) / kUniverse;
  }
  f.order = ElementOrder::ByDecreasingWeight(f.weights);
  ZipfTable zipf(kUniverse, 1.0);
  std::vector<std::vector<text::TokenId>> docs(groups);
  for (auto& doc : docs) {
    size_t size = 4 + rng.Uniform(8);
    for (size_t i = 0; i < size; ++i) {
      doc.push_back(static_cast<text::TokenId>(zipf.Sample(&rng)));
    }
  }
  f.rel = *BuildSetsRelation(std::move(docs), f.weights);
  return f;
}

TEST(CostModelTest, BasicJoinRowsIsExact) {
  WeightVector weights{1.0, 1.0, 1.0};
  ElementOrder order = ElementOrder::ById(3);
  SetsRelation r = *BuildSetsRelation({{0, 1}, {0}}, weights);
  SetsRelation s = *BuildSetsRelation({{0}, {0, 2}}, weights);
  SSJoinContext ctx{&weights, &order};
  CostEstimate est = EstimateCosts(r, s, OverlapPredicate::Absolute(1.0), ctx);
  // Element 0: fR=2, fS=2 -> 4 rows; element 1: fS=0; element 2: fR=0.
  EXPECT_EQ(est.basic_join_rows, 4u);
}

TEST(CostModelTest, PrefixRowsShrinkWithThreshold) {
  Fixture f = SkewedFixture(3, 300);
  SSJoinContext ctx = f.Context();
  CostEstimate loose =
      EstimateCosts(f.rel, f.rel, OverlapPredicate::TwoSidedNormalized(0.5), ctx);
  CostEstimate tight =
      EstimateCosts(f.rel, f.rel, OverlapPredicate::TwoSidedNormalized(0.95), ctx);
  EXPECT_LE(tight.prefix_join_rows, loose.prefix_join_rows);
  EXPECT_EQ(tight.basic_join_rows, loose.basic_join_rows);
  EXPECT_LT(tight.prefix_join_rows, tight.basic_join_rows);
}

TEST(CostModelTest, HighThresholdChoosesPrefixFilter) {
  Fixture f = SkewedFixture(7, 500);
  SSJoinContext ctx = f.Context();
  SSJoinAlgorithm chosen =
      ChooseAlgorithm(f.rel, f.rel, OverlapPredicate::TwoSidedNormalized(0.95), ctx);
  EXPECT_EQ(chosen, SSJoinAlgorithm::kPrefixFilterInline);
}

TEST(CostModelTest, VacuousPredicateChoosesBasic) {
  // With required overlap ~0 the prefixes are the whole sets: the prefix
  // plan does strictly more work, so the model must pick basic.
  Fixture f = SkewedFixture(9, 200);
  SSJoinContext ctx = f.Context();
  OverlapPredicate trivial;  // required overlap 0 everywhere
  CostEstimate est = EstimateCosts(f.rel, f.rel, trivial, ctx);
  EXPECT_EQ(est.prefix_join_rows, est.basic_join_rows);
  EXPECT_EQ(est.chosen, SSJoinAlgorithm::kBasic);
}

TEST(CostModelTest, EstimatesAreInternallyConsistent) {
  Fixture f = SkewedFixture(11, 250);
  SSJoinContext ctx = f.Context();
  CostEstimate est =
      EstimateCosts(f.rel, f.rel, OverlapPredicate::TwoSidedNormalized(0.8), ctx);
  EXPECT_GT(est.basic_cost, 0.0);
  EXPECT_GT(est.prefix_cost, 0.0);
  SSJoinAlgorithm expected =
      (est.prefix_join_rows * 10 >= est.basic_join_rows * 9 ||
       est.basic_cost <= est.prefix_cost)
          ? SSJoinAlgorithm::kBasic
          : SSJoinAlgorithm::kPrefixFilterInline;
  EXPECT_EQ(est.chosen, expected);
  std::string s = est.ToString();
  EXPECT_NE(s.find("chosen="), std::string::npos);
}

}  // namespace
}  // namespace ssjoin::core
