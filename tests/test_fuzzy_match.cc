#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "sim/set_overlap.h"
#include "simjoin/fuzzy_match.h"
#include "simjoin/string_joins.h"

namespace ssjoin::simjoin {
namespace {

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

TEST(FuzzyMatchTest, ExactStringIsTopMatch) {
  auto master = Master(500, 3);
  auto index = FuzzyMatchIndex::Build(master, {}).MoveValueUnsafe();
  for (uint32_t i : {0u, 17u, 499u}) {
    auto matches = index.Lookup(master[i], 1);
    ASSERT_FALSE(matches.empty());
    EXPECT_EQ(matches[0].ref_index, i);
    EXPECT_NEAR(matches[0].similarity, 1.0, 1e-9);
  }
}

TEST(FuzzyMatchTest, CorruptedQueriesFindSources) {
  auto master = Master(800, 5);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
  Rng rng(7);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.0;  // light typo load (heavier edits destroy
                                 // whole word tokens and sink resemblance)
  size_t correct = 0;
  const size_t kQueries = 200;
  for (size_t i = 0; i < kQueries; ++i) {
    uint32_t src = static_cast<uint32_t>(rng.Uniform(master.size()));
    std::string query = datagen::CorruptRecord(master[src], {}, errors, &rng);
    auto matches = index.Lookup(query, 1);
    if (!matches.empty() && matches[0].ref_index == src) ++correct;
  }
  EXPECT_GT(correct, kQueries * 9 / 10);
}

TEST(FuzzyMatchTest, MatchesBatchJoinResults) {
  // Lookups against the index must agree with a batch resemblance join over
  // the same data for queries drawn from the reference itself (no unseen
  // tokens, so the weight models coincide).
  auto master = Master(300, 11);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.6;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  text::WordTokenizer tok;
  Prepared prep =
      PrepareStrings(master, master, tok, WeightMode::kIdf).MoveValueUnsafe();
  class VW final : public text::WeightProvider {
   public:
    explicit VW(const core::WeightVector& w) : w_(w) {}
    double Weight(text::TokenId id) const override { return w_[id]; }

   private:
    const core::WeightVector& w_;
  } weights(prep.weights);

  for (uint32_t q : {0u, 5u, 100u, 299u}) {
    auto matches = index.Lookup(master[q], master.size());
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < master.size(); ++i) {
      double jr = sim::JaccardResemblance(prep.r.set(q), prep.s.set(i), weights);
      if (jr >= options.alpha - 1e-12) expected.push_back(i);
    }
    std::vector<uint32_t> got;
    for (const auto& m : matches) got.push_back(m.ref_index);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST(FuzzyMatchTest, RespectsK) {
  auto master = Master(300, 13);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.1;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
  auto matches = index.Lookup(master[0], 3);
  EXPECT_LE(matches.size(), 3u);
  // Descending similarity.
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].similarity, matches[i].similarity);
  }
  EXPECT_TRUE(index.Lookup(master[0], 0).empty());
}

TEST(FuzzyMatchTest, UnseenTokensDiluteButDontCrash) {
  std::vector<std::string> master = {"alpha beta gamma", "delta epsilon"};
  FuzzyMatchIndex::Options options;
  options.alpha = 0.3;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
  // Half the query is vocabulary the index has never seen.
  auto matches = index.Lookup("alpha beta gamma zzz qqq www", 5);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].ref_index, 0u);
  EXPECT_LT(matches[0].similarity, 1.0);  // unseen tokens dilute
  // A fully-unseen query matches nothing.
  EXPECT_TRUE(index.Lookup("totally unknown words", 5).empty());
}

TEST(FuzzyMatchTest, QGramMode) {
  std::vector<std::string> master = {"Microsoft Corp", "Oracle Corp", "Apple Inc"};
  FuzzyMatchIndex::Options options;
  options.word_tokens = false;
  options.q = 3;
  options.alpha = 0.5;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
  auto matches = index.Lookup("Mcrosoft Corp", 1);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].ref_index, 0u);
}

TEST(FuzzyMatchTest, InvalidAlphaRejected) {
  std::vector<std::string> master = {"x"};
  EXPECT_FALSE(FuzzyMatchIndex::Build(master, {true, 3, 0.0}).ok());
  EXPECT_FALSE(FuzzyMatchIndex::Build(master, {true, 3, 1.5}).ok());
}

TEST(FuzzyMatchTest, ConcurrentLookupsMatchSerial) {
  // Lookup is const and documented thread-safe; run it from many threads at
  // once (under TSan in the Debug CI job) and require the concurrent results
  // to be bit-identical to serial ones.
  auto master = Master(400, 17);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  Rng rng(23);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < 120; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }

  std::vector<std::vector<FuzzyMatchIndex::Match>> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    serial[i] = index.Lookup(queries[i], 4);
  }

  const size_t kThreads = 4;
  std::vector<std::vector<std::vector<FuzzyMatchIndex::Match>>> concurrent(
      kThreads,
      std::vector<std::vector<FuzzyMatchIndex::Match>>(queries.size()));
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread runs every query so lookups genuinely overlap.
      for (size_t i = 0; i < queries.size(); ++i) {
        concurrent[t][i] = index.Lookup(queries[i], 4);
      }
    });
  }
  for (auto& t : threads) t.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(concurrent[t][i].size(), serial[i].size())
          << "thread " << t << " query " << i;
      for (size_t m = 0; m < serial[i].size(); ++m) {
        EXPECT_EQ(concurrent[t][i][m].ref_index, serial[i][m].ref_index);
        EXPECT_EQ(concurrent[t][i][m].similarity, serial[i][m].similarity);
      }
    }
  }
}

TEST(FuzzyMatchTest, EmptyReference) {
  auto index = FuzzyMatchIndex::Build({}, {}).MoveValueUnsafe();
  EXPECT_TRUE(index.Lookup("anything", 5).empty());
  EXPECT_EQ(index.size(), 0u);
}

}  // namespace
}  // namespace ssjoin::simjoin
