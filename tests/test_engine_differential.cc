/// Randomized differential tests: every engine operator is checked against
/// a trivially-correct row-at-a-time reference implementation on random
/// tables (multiple seeds, duplicate-heavy key distributions).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "common/rng.h"
#include "engine/operators.h"
#include "engine/table.h"

namespace ssjoin::engine {
namespace {

/// Random table with skewed int keys, floats and short strings.
Table RandomTable(uint64_t seed, size_t rows) {
  Rng rng(seed);
  Schema schema({{"k", DataType::kInt64},
                 {"v", DataType::kFloat64},
                 {"tag", DataType::kString}});
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(8));  // heavy duplication
    double v = static_cast<double>(rng.Uniform(100)) / 4.0;
    std::string tag(1, static_cast<char>('a' + rng.Uniform(4)));
    SSJOIN_CHECK(t.AppendRow({k, v, tag}).ok());
  }
  return t;
}

/// Canonical row multiset for order-insensitive comparison.
std::multiset<std::string> RowMultiset(const Table& t) {
  std::multiset<std::string> rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      row += t.GetValue(c, r).ToString();
      row += '\x01';
    }
    rows.insert(row);
  }
  return rows;
}

class EngineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_P(EngineDifferentialTest, HashJoinMatchesNestedLoop) {
  Table left = RandomTable(GetParam(), 60);
  Table right = RandomTable(GetParam() + 1000, 50);
  Table joined = *HashEquiJoin(left, right, {"k", "tag"}, {"k", "tag"});

  // Reference: nested loop.
  Schema out_schema = left.schema().Concat(right.schema());
  Table expected(out_schema);
  for (size_t l = 0; l < left.num_rows(); ++l) {
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (left.GetValue(0, l) == right.GetValue(0, r) &&
          left.GetValue(2, l) == right.GetValue(2, r)) {
        expected.AppendConcatRow(left, l, right, r);
      }
    }
  }
  EXPECT_EQ(RowMultiset(joined), RowMultiset(expected));
  ASSERT_GT(joined.num_rows(), 0u);  // the key skew guarantees matches

  Table merged = *SortMergeJoin(left, right, {"k", "tag"}, {"k", "tag"});
  EXPECT_EQ(RowMultiset(merged), RowMultiset(expected));
}

TEST_P(EngineDifferentialTest, GroupByMatchesReference) {
  Table t = RandomTable(GetParam() + 77, 80);
  Table grouped = *HashGroupBy(t, {"k"},
                               {{AggKind::kSum, "v", "sum_v"},
                                {AggKind::kCount, "", "n"},
                                {AggKind::kMin, "v", "min_v"},
                                {AggKind::kMax, "tag", "max_tag"}});

  std::map<int64_t, std::tuple<double, int64_t, double, std::string>> ref;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    int64_t k = t.GetValue(0, r).int64();
    double v = t.GetValue(1, r).float64();
    // Copy: GetValue returns a temporary Value and string() borrows from it.
    std::string tag = t.GetValue(2, r).string();
    auto it = ref.find(k);
    if (it == ref.end()) {
      ref.emplace(k, std::make_tuple(v, int64_t{1}, v, tag));
    } else {
      std::get<0>(it->second) += v;
      std::get<1>(it->second) += 1;
      std::get<2>(it->second) = std::min(std::get<2>(it->second), v);
      std::get<3>(it->second) = std::max(std::get<3>(it->second), tag);
    }
  }
  ASSERT_EQ(grouped.num_rows(), ref.size());
  for (size_t r = 0; r < grouped.num_rows(); ++r) {
    int64_t k = grouped.GetValue(0, r).int64();
    const auto& [sum, n, mn, mx] = ref.at(k);
    EXPECT_NEAR(grouped.GetValue(1, r).float64(), sum, 1e-9);
    EXPECT_EQ(grouped.GetValue(2, r).int64(), n);
    EXPECT_DOUBLE_EQ(grouped.GetValue(3, r).float64(), mn);
    EXPECT_EQ(grouped.GetValue(4, r).string(), mx);
  }
}

TEST_P(EngineDifferentialTest, DistinctMatchesReference) {
  Table t = RandomTable(GetParam() + 200, 100);
  Table distinct = *Distinct(t);
  auto rows = RowMultiset(t);
  std::set<std::string> unique(rows.begin(), rows.end());
  EXPECT_EQ(distinct.num_rows(), unique.size());
  auto drows = RowMultiset(distinct);
  EXPECT_TRUE(std::equal(unique.begin(), unique.end(), drows.begin(), drows.end()));
}

TEST_P(EngineDifferentialTest, OrderByProducesSortedPermutation) {
  Table t = RandomTable(GetParam() + 300, 70);
  Table ordered = *OrderBy(t, {"k", "v"});
  EXPECT_EQ(RowMultiset(ordered), RowMultiset(t));
  for (size_t r = 1; r < ordered.num_rows(); ++r) {
    int64_t pk = ordered.GetValue(0, r - 1).int64();
    int64_t ck = ordered.GetValue(0, r).int64();
    EXPECT_LE(pk, ck);
    if (pk == ck) {
      EXPECT_LE(ordered.GetValue(1, r - 1).float64(),
                ordered.GetValue(1, r).float64());
    }
  }
}

TEST_P(EngineDifferentialTest, GroupwiseApplyPartitionIsLossless) {
  Table t = RandomTable(GetParam() + 400, 90);
  // Identity subquery: the union of groups must be a permutation of the
  // input.
  Table result = *GroupwiseApply(t, {"k"},
                                 [](const Table& g) -> Result<Table> { return g; });
  EXPECT_EQ(RowMultiset(result), RowMultiset(t));
}

TEST_P(EngineDifferentialTest, FilterProjectComposition) {
  Table t = RandomTable(GetParam() + 500, 60);
  Table filtered = *Filter(t, [](const Table& tab, size_t r) {
    return tab.GetValue(0, r).int64() % 2 == 0;
  });
  Table projected = *Project(filtered, {"tag", "k"});
  size_t expected = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    expected += (t.GetValue(0, r).int64() % 2 == 0);
  }
  EXPECT_EQ(projected.num_rows(), expected);
  EXPECT_EQ(projected.num_columns(), 2u);
  for (size_t r = 0; r < projected.num_rows(); ++r) {
    EXPECT_EQ(projected.GetValue(1, r).int64() % 2, 0);
  }
}

}  // namespace
}  // namespace ssjoin::engine
