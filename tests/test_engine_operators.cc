#include <gtest/gtest.h>

#include <algorithm>

#include "engine/operators.h"
#include "engine/table.h"

namespace ssjoin::engine {
namespace {

Table Left() {
  Schema schema({{"k", DataType::kInt64}, {"name", DataType::kString}});
  return *Table::FromRows(schema, {{1, "a"}, {2, "b"}, {2, "b2"}, {3, "c"}});
}

Table Right() {
  Schema schema({{"k", DataType::kInt64}, {"val", DataType::kFloat64}});
  return *Table::FromRows(schema, {{2, 10.0}, {2, 20.0}, {3, 30.0}, {4, 40.0}});
}

/// Canonical multiset of joined (k, name, val) triples for comparison
/// independent of output row order.
std::vector<std::tuple<int64_t, std::string, double>> JoinTriples(const Table& t) {
  std::vector<std::tuple<int64_t, std::string, double>> rows;
  size_t k = *t.schema().FieldIndex("k");
  size_t name = *t.schema().FieldIndex("name");
  size_t val = *t.schema().FieldIndex("val");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    rows.emplace_back(t.GetValue(k, r).int64(), t.GetValue(name, r).string(),
                      t.GetValue(val, r).float64());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ProjectTest, SelectsAndReorders) {
  Table projected = *Project(Left(), {"name", "k"});
  EXPECT_EQ(projected.num_columns(), 2u);
  EXPECT_EQ(projected.schema().field(0).name, "name");
  EXPECT_EQ(projected.GetValue(0, 0).string(), "a");
  EXPECT_EQ(projected.GetValue(1, 3).int64(), 3);
}

TEST(ProjectTest, UnknownColumnFails) {
  EXPECT_FALSE(Project(Left(), {"zz"}).ok());
}

TEST(RenameTest, RenamesColumns) {
  Table renamed = *Rename(Left(), {{"k", "key"}});
  EXPECT_GE(renamed.schema().FindField("key"), 0);
  EXPECT_EQ(renamed.schema().FindField("k"), -1);
  EXPECT_TRUE(renamed.column(0).int64s() == Left().column(0).int64s());
}

TEST(RenameTest, UnknownColumnFails) {
  EXPECT_FALSE(Rename(Left(), {{"zz", "q"}}).ok());
}

TEST(RenameTest, DuplicateResultNameFails) {
  EXPECT_FALSE(Rename(Left(), {{"k", "name"}}).ok());
}

TEST(FilterTest, KeepsMatchingRows) {
  Table filtered = *Filter(Left(), [](const Table& t, size_t r) {
    return t.GetValue(0, r).int64() == 2;
  });
  EXPECT_EQ(filtered.num_rows(), 2u);
  EXPECT_EQ(filtered.GetValue(1, 0).string(), "b");
}

TEST(FilterTest, NullPredicateFails) {
  EXPECT_FALSE(Filter(Left(), nullptr).ok());
}

TEST(HashEquiJoinTest, InnerJoinSemantics) {
  Table joined = *HashEquiJoin(Left(), Right(), {"k"}, {"k"});
  // k=2 matches 2x2, k=3 matches 1x1; k=1 and k=4 drop out.
  EXPECT_EQ(joined.num_rows(), 5u);
  auto triples = JoinTriples(joined);
  EXPECT_EQ(std::get<0>(triples.front()), 2);
  EXPECT_EQ(std::get<0>(triples.back()), 3);
}

TEST(HashEquiJoinTest, MatchesSortMergeJoin) {
  Table h = *HashEquiJoin(Left(), Right(), {"k"}, {"k"});
  Table m = *SortMergeJoin(Left(), Right(), {"k"}, {"k"});
  EXPECT_EQ(JoinTriples(h), JoinTriples(m));
}

TEST(HashEquiJoinTest, CompositeKeys) {
  Schema schema({{"x", DataType::kInt64}, {"y", DataType::kString}});
  Table a = *Table::FromRows(schema, {{1, "p"}, {1, "q"}, {2, "p"}});
  Table b = *Table::FromRows(schema, {{1, "p"}, {2, "p"}, {2, "q"}});
  Table joined = *HashEquiJoin(a, b, {"x", "y"}, {"x", "y"});
  EXPECT_EQ(joined.num_rows(), 2u);
}

TEST(HashEquiJoinTest, KeyTypeMismatchFails) {
  EXPECT_FALSE(HashEquiJoin(Left(), Right(), {"name"}, {"val"}).ok());
}

TEST(HashEquiJoinTest, EmptyKeysFail) {
  EXPECT_FALSE(HashEquiJoin(Left(), Right(), {}, {}).ok());
}

TEST(HashEquiJoinTest, EmptyInputs) {
  Table empty(Left().schema());
  Table joined = *HashEquiJoin(empty, Right(), {"k"}, {"k"});
  EXPECT_EQ(joined.num_rows(), 0u);
  EXPECT_EQ(joined.num_columns(), 4u);
}

TEST(SortMergeJoinTest, DuplicateRuns) {
  Schema schema({{"k", DataType::kInt64}});
  Table a = *Table::FromRows(schema, {{5}, {5}, {5}});
  Table b = *Table::FromRows(schema, {{5}, {5}});
  Table joined = *SortMergeJoin(a, b, {"k"}, {"k"});
  EXPECT_EQ(joined.num_rows(), 6u);
}

TEST(HashGroupByTest, SumCountMinMax) {
  Schema schema({{"g", DataType::kString}, {"v", DataType::kInt64}});
  Table t = *Table::FromRows(schema, {{"a", 1}, {"a", 5}, {"b", 3}});
  Table grouped = *HashGroupBy(t, {"g"},
                               {{AggKind::kSum, "v", "sum"},
                                {AggKind::kCount, "", "cnt"},
                                {AggKind::kMin, "v", "lo"},
                                {AggKind::kMax, "v", "hi"}});
  ASSERT_EQ(grouped.num_rows(), 2u);
  Table ordered = *OrderBy(grouped, {"g"});
  EXPECT_EQ(ordered.GetValue(0, 0).string(), "a");
  EXPECT_DOUBLE_EQ(ordered.GetValue(1, 0).float64(), 6.0);
  EXPECT_EQ(ordered.GetValue(2, 0).int64(), 2);
  EXPECT_EQ(ordered.GetValue(3, 0).int64(), 1);
  EXPECT_EQ(ordered.GetValue(4, 0).int64(), 5);
  EXPECT_DOUBLE_EQ(ordered.GetValue(1, 1).float64(), 3.0);
}

TEST(HashGroupByTest, HavingFiltersGroups) {
  Schema schema({{"g", DataType::kInt64}, {"v", DataType::kFloat64}});
  Table t = *Table::FromRows(schema, {{1, 1.0}, {1, 2.0}, {2, 0.5}});
  Table grouped = *HashGroupBy(
      t, {"g"}, {{AggKind::kSum, "v", "sum"}},
      [](const Table& g, size_t r) { return g.GetValue(1, r).float64() > 1.0; });
  EXPECT_EQ(grouped.num_rows(), 1u);
  EXPECT_EQ(grouped.GetValue(0, 0).int64(), 1);
}

TEST(HashGroupByTest, SumOfStringsFails) {
  Table t = Left();
  EXPECT_FALSE(HashGroupBy(t, {"k"}, {{AggKind::kSum, "name", "s"}}).ok());
}

TEST(HashGroupByTest, EmptyInputYieldsNoGroups) {
  Table empty(Left().schema());
  Table grouped = *HashGroupBy(empty, {"k"}, {{AggKind::kCount, "", "c"}});
  EXPECT_EQ(grouped.num_rows(), 0u);
}

TEST(OrderByTest, SortsByCompositeKeys) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  Table t = *Table::FromRows(schema, {{2, "x"}, {1, "z"}, {1, "a"}, {2, "a"}});
  Table ordered = *OrderBy(t, {"a", "b"});
  EXPECT_EQ(ordered.GetValue(0, 0).int64(), 1);
  EXPECT_EQ(ordered.GetValue(1, 0).string(), "a");
  EXPECT_EQ(ordered.GetValue(1, 1).string(), "z");
  EXPECT_EQ(ordered.GetValue(1, 3).string(), "x");
}

TEST(OrderByTest, StableOnTies) {
  Schema schema({{"a", DataType::kInt64}, {"tag", DataType::kString}});
  Table t = *Table::FromRows(schema, {{1, "first"}, {1, "second"}});
  Table ordered = *OrderBy(t, {"a"});
  EXPECT_EQ(ordered.GetValue(1, 0).string(), "first");
}

TEST(DistinctTest, RemovesDuplicateRows) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  Table t = *Table::FromRows(schema, {{1, "x"}, {1, "x"}, {1, "y"}, {1, "x"}});
  Table d = *Distinct(t);
  EXPECT_EQ(d.num_rows(), 2u);
}

TEST(GroupwiseApplyTest, PerGroupTopOne) {
  Schema schema({{"g", DataType::kInt64}, {"v", DataType::kInt64}});
  Table t = *Table::FromRows(schema, {{1, 9}, {1, 3}, {2, 7}, {2, 8}});
  // Subquery: keep each group's minimum-v row.
  Table result = *GroupwiseApply(t, {"g"}, [](const Table& g) -> Result<Table> {
    SSJOIN_ASSIGN_OR_RETURN(Table ordered, OrderBy(g, {"v"}));
    return ordered.Take({0});
  });
  EXPECT_EQ(result.num_rows(), 2u);
  Table ordered = *OrderBy(result, {"g"});
  EXPECT_EQ(ordered.GetValue(1, 0).int64(), 3);
  EXPECT_EQ(ordered.GetValue(1, 1).int64(), 7);
}

TEST(GroupwiseApplyTest, EmptyInput) {
  Table empty(Left().schema());
  Table result = *GroupwiseApply(empty, {"k"},
                                 [](const Table& g) -> Result<Table> { return g; });
  EXPECT_EQ(result.num_rows(), 0u);
}

TEST(UnionAllTest, ConcatenatesRows) {
  Table a = Left();
  Table u = *UnionAll(a, a);
  EXPECT_EQ(u.num_rows(), 8u);
}

TEST(UnionAllTest, SchemaMismatchFails) {
  EXPECT_FALSE(UnionAll(Left(), Right()).ok());
}

}  // namespace
}  // namespace ssjoin::engine
