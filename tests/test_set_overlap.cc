#include <gtest/gtest.h>

#include "sim/set_overlap.h"
#include "text/weights.h"

namespace ssjoin::sim {
namespace {

class FixedWeights final : public text::WeightProvider {
 public:
  explicit FixedWeights(std::vector<double> w) : w_(std::move(w)) {}
  double Weight(text::TokenId id) const override { return w_[id]; }

 private:
  std::vector<double> w_;
};

TEST(CanonicalizeTest, SortsAndDedups) {
  std::vector<text::TokenId> s{5, 1, 3, 1, 5};
  Canonicalize(&s);
  EXPECT_EQ(s, (std::vector<text::TokenId>{1, 3, 5}));
}

TEST(OverlapTest, UnweightedCount) {
  EXPECT_EQ(OverlapCount({1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}), 4u);
  EXPECT_EQ(OverlapCount({1, 2}, {3, 4}), 0u);
  EXPECT_EQ(OverlapCount({}, {1}), 0u);
}

TEST(OverlapTest, WeightedUsesElementWeights) {
  FixedWeights w({0.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(WeightedOverlap({1, 2, 3}, {2, 3}, w), 6.0);
  EXPECT_DOUBLE_EQ(WeightedOverlap({1}, {2}, w), 0.0);
}

TEST(OverlapTest, UnitWeightsMatchCount) {
  text::UnitWeights unit;
  std::vector<text::TokenId> a{1, 3, 5, 7};
  std::vector<text::TokenId> b{3, 4, 5};
  EXPECT_DOUBLE_EQ(WeightedOverlap(a, b, unit),
                   static_cast<double>(OverlapCount(a, b)));
}

TEST(JaccardContainmentTest, Definition5) {
  text::UnitWeights unit;
  // JC({1,2,3,4}, {1,2}) = 2/4.
  EXPECT_DOUBLE_EQ(JaccardContainment({1, 2, 3, 4}, {1, 2}, unit), 0.5);
  // Containment is asymmetric.
  EXPECT_DOUBLE_EQ(JaccardContainment({1, 2}, {1, 2, 3, 4}, unit), 1.0);
  // Empty first set is fully contained by convention.
  EXPECT_DOUBLE_EQ(JaccardContainment({}, {1}, unit), 1.0);
}

TEST(JaccardResemblanceTest, Definition5) {
  text::UnitWeights unit;
  EXPECT_DOUBLE_EQ(JaccardResemblance({1, 2, 3}, {2, 3, 4}, unit), 0.5);
  EXPECT_DOUBLE_EQ(JaccardResemblance({1}, {2}, unit), 0.0);
  EXPECT_DOUBLE_EQ(JaccardResemblance({}, {}, unit), 1.0);
  EXPECT_DOUBLE_EQ(JaccardResemblance({1, 2}, {1, 2}, unit), 1.0);
}

TEST(JaccardTest, ResemblanceNeverExceedsContainment) {
  text::UnitWeights unit;
  std::vector<text::TokenId> a{1, 2, 3, 5, 8};
  std::vector<text::TokenId> b{2, 3, 5, 9};
  double jr = JaccardResemblance(a, b, unit);
  // §3.2: JC(s1,s2) >= JR(s1,s2) — the basis of the 2-sided reduction.
  EXPECT_LE(jr, JaccardContainment(a, b, unit));
  EXPECT_LE(jr, JaccardContainment(b, a, unit));
}

TEST(DiceTest, KnownValues) {
  text::UnitWeights unit;
  EXPECT_DOUBLE_EQ(DiceCoefficient({1, 2}, {2, 3}, unit), 0.5);
  EXPECT_DOUBLE_EQ(DiceCoefficient({}, {}, unit), 1.0);
}

TEST(CosineTest, KnownValues) {
  text::UnitWeights unit;
  // cos({1,2},{2,3}) = 1/sqrt(4) = 0.5 with unit weights.
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 2}, {2, 3}, unit), 0.5);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1}, {1}, unit), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}, unit), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {1}, unit), 0.0);
}

TEST(CosineTest, BoundedByOne) {
  FixedWeights w({0.0, 0.5, 2.0, 9.0});
  double c = CosineSimilarity({1, 2, 3}, {1, 2, 3}, w);
  EXPECT_NEAR(c, 1.0, 1e-12);
}

TEST(HammingTest, EqualLength) {
  EXPECT_EQ(HammingDistance("karolin", "kathrin"), 3u);
  EXPECT_EQ(HammingDistance("abc", "abc"), 0u);
}

TEST(HammingTest, UnequalLengthCountsTail) {
  EXPECT_EQ(HammingDistance("abc", "abcde"), 2u);
  EXPECT_EQ(HammingDistance("", "xy"), 2u);
  EXPECT_EQ(HammingDistance("axc", "abcd"), 2u);
}

}  // namespace
}  // namespace ssjoin::sim
