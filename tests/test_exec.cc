/// Tests for the morsel-driven execution runtime (src/exec): thread pool
/// lifecycle, task queue, ParallelFor scheduling/exception semantics, and —
/// the load-bearing property — that the parallel SSJoin executors produce
/// output and stats identical to the serial ones for every algorithm and
/// thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "core/ssjoin.h"
#include "exec/parallel_for.h"
#include "exec/parallel_ssjoin.h"
#include "exec/task_queue.h"
#include "exec/thread_pool.h"
#include "simjoin/string_joins.h"

namespace ssjoin::exec {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / TaskQueue

TEST(ThreadPoolTest, StartAndStop) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  pool.Shutdown();
  // Shutdown is idempotent; Submit after shutdown is rejected.
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, InWorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  std::atomic<bool> seen_in_worker{false};
  {
    ThreadPool pool(1);
    ASSERT_TRUE(pool.Submit(
        [&] { seen_in_worker = ThreadPool::InWorkerThread(); }));
  }
  EXPECT_TRUE(seen_in_worker.load());
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(TaskQueueTest, PushPopClose) {
  TaskQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  auto a = q.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(3));  // rejected after close...
  auto b = q.Pop();         // ...but queued items still drain
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(q.Pop().has_value());  // empty + closed -> nullopt
}

// ---------------------------------------------------------------------------
// ParallelFor

/// Runs ParallelFor over [0, n) and checks every index is visited exactly
/// once, morsels are contiguous, and morsel indices are dense.
void CheckCoverage(size_t n, size_t threads, size_t morsel_size) {
  ExecContext ctx;
  ctx.num_threads = threads;
  ctx.morsel_size = morsel_size;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  std::mutex mu;
  std::set<size_t> morsels;
  ParallelFor(ctx, n, [&](size_t /*worker*/, size_t morsel, size_t begin,
                          size_t end) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end, n);
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(morsels.insert(morsel).second) << "duplicate morsel";
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
  // Morsel indices are dense 0..k-1.
  size_t expected = n == 0 ? 0 : (n + morsel_size - 1) / morsel_size;
  EXPECT_EQ(morsels.size(), expected);
  if (!morsels.empty()) {
    EXPECT_EQ(*morsels.rbegin(), expected - 1);
  }
}

TEST(ParallelForTest, EmptyRange) { CheckCoverage(0, 4, 8); }
TEST(ParallelForTest, SingleElement) { CheckCoverage(1, 4, 8); }
TEST(ParallelForTest, OddSizedRange) { CheckCoverage(1237, 4, 100); }
TEST(ParallelForTest, MorselLargerThanRange) { CheckCoverage(5, 8, 1000); }
TEST(ParallelForTest, SerialDegenerate) { CheckCoverage(100, 1, 7); }
TEST(ParallelForTest, MoreThreadsThanMorsels) { CheckCoverage(10, 16, 4); }

TEST(ParallelForTest, PropagatesException) {
  ExecContext ctx;
  ctx.num_threads = 4;
  ctx.morsel_size = 1;
  EXPECT_THROW(
      ParallelFor(ctx, 64,
                  [](size_t, size_t morsel, size_t, size_t) {
                    if (morsel == 7) throw std::runtime_error("morsel 7 died");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, LowestFailingMorselWins) {
  // Several morsels throw; the rethrown error must be the lowest-indexed one
  // so failures are deterministic regardless of scheduling.
  ExecContext ctx;
  ctx.num_threads = 8;
  ctx.morsel_size = 1;
  for (int round = 0; round < 10; ++round) {
    try {
      ParallelFor(ctx, 100, [](size_t, size_t morsel, size_t, size_t) {
        if (morsel == 13 || morsel == 57 || morsel == 90) {
          throw std::runtime_error("morsel " + std::to_string(morsel));
        }
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "morsel 13");
    }
  }
}

TEST(ParallelForTest, NestedCallRunsInline) {
  // ParallelFor issued from inside a pool worker must not deadlock; it
  // degrades to inline execution on the calling thread.
  ExecContext ctx;
  ctx.num_threads = 4;
  ctx.morsel_size = 2;
  std::atomic<size_t> total{0};
  ParallelFor(ctx, 8, [&](size_t, size_t, size_t begin, size_t end) {
    ParallelFor(ctx, 10, [&](size_t, size_t, size_t b, size_t e) {
      total.fetch_add((e - b) * (end - begin));
    });
  });
  EXPECT_EQ(total.load(), 80u);
}

// ---------------------------------------------------------------------------
// Stats merging

TEST(StatsMergeTest, CountersAndPhasesSum) {
  core::SSJoinStats a, b;
  a.candidate_pairs = 3;
  a.result_pairs = 2;
  a.equijoin_rows = 10;
  a.phases.Add("SSJoin", 1.5);
  b.candidate_pairs = 4;
  b.result_pairs = 1;
  b.r_prefix_elements = 7;
  b.phases.Add("SSJoin", 2.5);
  b.phases.Add("Prefix-filter", 1.0);
  a.Merge(b);
  EXPECT_EQ(a.candidate_pairs, 7u);
  EXPECT_EQ(a.result_pairs, 3u);
  EXPECT_EQ(a.equijoin_rows, 10u);
  EXPECT_EQ(a.r_prefix_elements, 7u);
  EXPECT_DOUBLE_EQ(a.phases.Millis("SSJoin"), 4.0);
  EXPECT_DOUBLE_EQ(a.phases.Millis("Prefix-filter"), 1.0);
}

// ---------------------------------------------------------------------------
// Determinism: parallel == serial, bit for bit

constexpr core::SSJoinAlgorithm kAllAlgorithms[] = {
    core::SSJoinAlgorithm::kNaive, core::SSJoinAlgorithm::kBasic,
    core::SSJoinAlgorithm::kInvertedIndex, core::SSJoinAlgorithm::kPrefixFilter,
    core::SSJoinAlgorithm::kPrefixFilterInline};

struct Fixture {
  core::WeightVector weights;
  core::ElementOrder order;
  core::SetsRelation r;
  core::SetsRelation s;
};

Fixture RandomFixture(uint64_t seed, size_t universe, size_t r_groups,
                      size_t s_groups, bool unit_weights) {
  Rng rng(seed);
  Fixture f;
  f.weights.resize(universe);
  for (double& w : f.weights) {
    w = unit_weights ? 1.0 : 0.05 + rng.NextDouble() * 2.0;
  }
  f.order = core::ElementOrder::ByDecreasingWeight(f.weights);
  auto make_docs = [&](size_t n) {
    std::vector<std::vector<text::TokenId>> docs(n);
    for (auto& doc : docs) {
      size_t size = 1 + rng.Uniform(12);
      for (size_t i = 0; i < size; ++i) {
        doc.push_back(static_cast<text::TokenId>(rng.Uniform(universe)));
      }
    }
    return docs;
  };
  f.r = *core::BuildSetsRelation(make_docs(r_groups), f.weights);
  f.s = *core::BuildSetsRelation(make_docs(s_groups), f.weights);
  return f;
}

/// Exact equality of pair streams — r, s, and the overlap *bits*.
void ExpectPairsIdentical(const std::vector<core::SSJoinPair>& serial,
                          const std::vector<core::SSJoinPair>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].r, parallel[i].r) << "pair " << i;
    EXPECT_EQ(serial[i].s, parallel[i].s) << "pair " << i;
    EXPECT_EQ(serial[i].overlap, parallel[i].overlap)
        << "pair " << i << " overlap bits differ";
  }
}

void ExpectStatsIdentical(const core::SSJoinStats& serial,
                          const core::SSJoinStats& parallel) {
  EXPECT_EQ(serial.candidate_pairs, parallel.candidate_pairs);
  EXPECT_EQ(serial.result_pairs, parallel.result_pairs);
  EXPECT_EQ(serial.equijoin_rows, parallel.equijoin_rows);
  EXPECT_EQ(serial.r_prefix_elements, parallel.r_prefix_elements);
  EXPECT_EQ(serial.s_prefix_elements, parallel.s_prefix_elements);
  EXPECT_EQ(serial.pruned_groups_r, parallel.pruned_groups_r);
  EXPECT_EQ(serial.pruned_groups_s, parallel.pruned_groups_s);
}

class ParallelDeterminismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelDeterminismTest, MatchesSerialAllAlgorithms) {
  const size_t threads = GetParam();
  for (uint64_t seed : {7u, 19u}) {
    for (bool unit : {false, true}) {
      Fixture f = RandomFixture(seed, /*universe=*/60, /*r_groups=*/120,
                                /*s_groups=*/90, unit);
      core::SSJoinContext serial_ctx{&f.weights, &f.order};
      ExecContext pctx;
      pctx.num_threads = threads;
      pctx.morsel_size = 8;  // small morsels -> many partitions
      core::SSJoinContext parallel_ctx{&f.weights, &f.order};
      parallel_ctx.exec = &pctx;
      for (auto pred : {core::OverlapPredicate::Absolute(2.0),
                        core::OverlapPredicate::TwoSidedNormalized(0.5)}) {
        for (core::SSJoinAlgorithm algorithm : kAllAlgorithms) {
          core::SSJoinStats serial_stats, parallel_stats;
          auto serial = core::ExecuteSSJoin(algorithm, f.r, f.s, pred,
                                            serial_ctx, &serial_stats);
          ASSERT_TRUE(serial.ok()) << serial.status().ToString();
          auto parallel = exec::ExecuteSSJoin(algorithm, f.r, f.s, pred,
                                        parallel_ctx, &parallel_stats);
          ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
          ExpectPairsIdentical(*serial, *parallel);
          ExpectStatsIdentical(serial_stats, parallel_stats);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelDeterminismTest,
                         ::testing::Values(1, 2, 8));

TEST_P(ParallelDeterminismTest, MorselBoundariesDoNotAffectCsrOutput) {
  // The parallel prefix filter builds per-morsel CSR stores and concatenates
  // them; the result must not depend on where the morsel boundaries fall.
  const size_t threads = GetParam();
  Fixture f = RandomFixture(29, /*universe=*/50, /*r_groups=*/100,
                            /*s_groups=*/80, false);
  core::SSJoinContext serial_ctx{&f.weights, &f.order};
  auto pred = core::OverlapPredicate::TwoSidedNormalized(0.5);
  core::SSJoinStats serial_stats;
  auto serial = core::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilterInline,
                                    f.r, f.s, pred, serial_ctx, &serial_stats);
  ASSERT_TRUE(serial.ok());
  for (size_t morsel_size : {1u, 3u, 17u, 1000u}) {
    ExecContext pctx;
    pctx.num_threads = threads;
    pctx.morsel_size = morsel_size;
    core::SSJoinContext pctx_join{&f.weights, &f.order};
    pctx_join.exec = &pctx;
    core::SSJoinStats parallel_stats;
    auto parallel =
        exec::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilterInline, f.r,
                            f.s, pred, pctx_join, &parallel_stats);
    ASSERT_TRUE(parallel.ok()) << "morsel " << morsel_size;
    ExpectPairsIdentical(*serial, *parallel);
    ExpectStatsIdentical(serial_stats, parallel_stats);
  }
}

TEST_P(ParallelDeterminismTest, CsrAssembledRelationMatchesSerial) {
  // Relations assembled directly from raw CSR columns (the snapshot load
  // path) must behave identically to builder-produced ones in the parallel
  // executors.
  const size_t threads = GetParam();
  Fixture f = RandomFixture(31, 40, 60, 60, true);
  core::SetsRelation raw;
  raw.store = *core::SetStore::FromParts(
      f.r.store.offsets(), f.r.store.token_ids());
  raw.norms = f.r.norms;
  raw.set_weights = f.r.set_weights;
  ASSERT_TRUE(raw.store == f.r.store);

  core::SSJoinContext serial_ctx{&f.weights, &f.order};
  ExecContext pctx;
  pctx.num_threads = threads;
  pctx.morsel_size = 8;
  core::SSJoinContext parallel_ctx{&f.weights, &f.order};
  parallel_ctx.exec = &pctx;
  auto pred = core::OverlapPredicate::Absolute(2.0);
  for (core::SSJoinAlgorithm algorithm : kAllAlgorithms) {
    auto serial =
        core::ExecuteSSJoin(algorithm, f.r, f.s, pred, serial_ctx, nullptr);
    ASSERT_TRUE(serial.ok());
    auto parallel =
        exec::ExecuteSSJoin(algorithm, raw, f.s, pred, parallel_ctx, nullptr);
    ASSERT_TRUE(parallel.ok());
    ExpectPairsIdentical(*serial, *parallel);
  }
}

TEST(ParallelSSJoinTest, NullExecFallsBackToSerial) {
  Fixture f = RandomFixture(3, 40, 50, 50, true);
  core::SSJoinContext ctx{&f.weights, &f.order};  // ctx.exec == nullptr
  auto pred = core::OverlapPredicate::Absolute(2.0);
  core::SSJoinStats stats;
  auto result = exec::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilterInline, f.r,
                              f.s, pred, ctx, &stats);
  ASSERT_TRUE(result.ok());
  auto serial = core::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilterInline,
                                    f.r, f.s, pred, ctx);
  ASSERT_TRUE(serial.ok());
  ExpectPairsIdentical(*serial, *result);
}

TEST(ParallelSSJoinTest, ValidationErrorsSurfaceInParallelPath) {
  Fixture f = RandomFixture(11, 40, 20, 20, true);
  ExecContext pctx;
  pctx.num_threads = 4;
  core::SSJoinContext ctx{&f.weights, nullptr};  // missing order
  ctx.exec = &pctx;
  auto result =
      exec::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilter, f.r, f.s,
                    core::OverlapPredicate::Absolute(1.0), ctx);
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// End-to-end: string joins through the parallel pipeline

TEST(ParallelStringJoinTest, JaccardMatchesSerial) {
  std::vector<std::string> data = {
      "Microsoft Corp Redmond WA",   "Mcrosoft Corp Redmond WA",
      "Oracle Corporation CA",       "Oracle Corp California",
      "International Business Mach", "Intl Business Machines NY",
      "Apple Inc Cupertino",         "Appel Inc Cupertino CA",
      "Sun Microsystems Santa Clara", "Sun Microsystem Sta Clara"};
  // Pad with noise rows so multiple morsels exist.
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    std::string row = "noise";
    for (int w = 0; w < 4; ++w) {
      row += " tok" + std::to_string(rng.Uniform(500));
    }
    data.push_back(row);
  }
  for (auto algorithm : {core::SSJoinAlgorithm::kBasic,
                         core::SSJoinAlgorithm::kPrefixFilterInline}) {
    simjoin::JoinExecution serial_exec{algorithm, false, {}};
    simjoin::JoinExecution parallel_exec{algorithm, false, {}};
    parallel_exec.exec.num_threads = 4;
    parallel_exec.exec.morsel_size = 16;
    simjoin::SimJoinStats serial_stats, parallel_stats;
    auto serial = simjoin::JaccardResemblanceJoin(data, data, 0.6, {},
                                                  serial_exec, &serial_stats);
    ASSERT_TRUE(serial.ok());
    auto parallel = simjoin::JaccardResemblanceJoin(
        data, data, 0.6, {}, parallel_exec, &parallel_stats);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->size(), parallel->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*serial)[i].r, (*parallel)[i].r);
      EXPECT_EQ((*serial)[i].s, (*parallel)[i].s);
      EXPECT_EQ((*serial)[i].similarity, (*parallel)[i].similarity);
    }
    EXPECT_EQ(serial_stats.result_pairs, parallel_stats.result_pairs);
    EXPECT_EQ(serial_stats.ssjoin.candidate_pairs,
              parallel_stats.ssjoin.candidate_pairs);
    EXPECT_EQ(serial_stats.verifier_calls, parallel_stats.verifier_calls);
  }
}

TEST(ParallelStringJoinTest, EditJoinMatchesSerial) {
  std::vector<std::string> data;
  Rng rng(7);
  const char* streets[] = {"Main St", "Oak Ave", "Pine Rd", "Elm Blvd"};
  for (int i = 0; i < 150; ++i) {
    data.push_back(std::to_string(100 + rng.Uniform(900)) + " " +
                   streets[rng.Uniform(4)] + " Apt " +
                   std::to_string(rng.Uniform(50)));
  }
  simjoin::JoinExecution serial_exec{core::SSJoinAlgorithm::kPrefixFilter,
                                     false, {}};
  simjoin::JoinExecution parallel_exec = serial_exec;
  parallel_exec.exec.num_threads = 4;
  parallel_exec.exec.morsel_size = 8;
  simjoin::SimJoinStats serial_stats, parallel_stats;
  auto serial =
      simjoin::EditSimilarityJoin(data, data, 0.8, 3, serial_exec, &serial_stats);
  ASSERT_TRUE(serial.ok());
  auto parallel = simjoin::EditSimilarityJoin(data, data, 0.8, 3, parallel_exec,
                                              &parallel_stats);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].r, (*parallel)[i].r);
    EXPECT_EQ((*serial)[i].s, (*parallel)[i].s);
    EXPECT_EQ((*serial)[i].similarity, (*parallel)[i].similarity);
  }
  EXPECT_EQ(serial_stats.verifier_calls, parallel_stats.verifier_calls);
}

}  // namespace
}  // namespace ssjoin::exec
