#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace ssjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad threshold");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad threshold");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad threshold");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::KeyError("missing");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kKeyError);
  EXPECT_EQ(copy.message(), "missing");
  Status assigned;
  assigned = copy;
  EXPECT_EQ(assigned.message(), "missing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::IndexError("x").code(), StatusCode::kIndexError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternalError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Invalid("inner"); };
  auto outer = [&]() -> Status {
    SSJOIN_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("hello");
    return Status::Invalid("denied");
  };
  auto chain = [&](bool ok) -> Result<size_t> {
    SSJOIN_ASSIGN_OR_RETURN(std::string s, make(ok));
    return s.size();
  };
  EXPECT_EQ(*chain(true), 5u);
  EXPECT_FALSE(chain(false).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  ZipfTable table(100, 1.0);
  Rng rng(21);
  size_t low = 0;
  const size_t kDraws = 10000;
  for (size_t i = 0; i < kDraws; ++i) {
    if (table.Sample(&rng) < 10) ++low;
  }
  // With s=1 the first 10 of 100 ranks carry ~56% of the mass.
  EXPECT_GT(low, kDraws / 3);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  ZipfTable table(10, 0.0);
  Rng rng(22);
  std::vector<size_t> counts(10, 0);
  for (size_t i = 0; i < 10000; ++i) ++counts[table.Sample(&rng)];
  for (size_t c : counts) {
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1300u);
  }
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD 123 Case!"), "mixed 123 case!");
}

TEST(StringUtilTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  hi \t\n"), "hi");
  EXPECT_EQ(TrimAscii(""), "");
  EXPECT_EQ(TrimAscii("   "), "");
}

TEST(StringUtilTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  Microsoft   Corp "), "Microsoft Corp");
  EXPECT_EQ(CollapseWhitespace("a\t\tb\nc"), "a b c");
}

TEST(StringUtilTest, SplitAndDropEmpty) {
  std::vector<std::string> expected{"a", "b", "c"};
  EXPECT_EQ(SplitAndDropEmpty("a,,b, c", ", "), expected);
  EXPECT_TRUE(SplitAndDropEmpty("", ",").empty());
  EXPECT_TRUE(SplitAndDropEmpty(",,,", ",").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%05d", 42), "00042");
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should change many output bits.
  uint64_t h1 = Mix64(0x1234);
  uint64_t h2 = Mix64(0x1235);
  EXPECT_NE(h1, h2);
  EXPECT_GT(__builtin_popcountll(h1 ^ h2), 10);
}

TEST(HashTest, HashStringDiffers) {
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
}

TEST(PhaseTimerTest, AccumulatesAndOrders) {
  PhaseTimer t;
  t.Add("Prep", 1.0);
  t.Add("SSJoin", 2.0);
  t.Add("Prep", 0.5);
  EXPECT_DOUBLE_EQ(t.Millis("Prep"), 1.5);
  EXPECT_DOUBLE_EQ(t.Millis("SSJoin"), 2.0);
  EXPECT_DOUBLE_EQ(t.Millis("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.TotalMillis(), 3.5);
  ASSERT_EQ(t.phases().size(), 2u);
  EXPECT_EQ(t.phases()[0].first, "Prep");
}

TEST(PhaseTimerTest, MergeCombines) {
  PhaseTimer a;
  a.Add("X", 1.0);
  PhaseTimer b;
  b.Add("X", 2.0);
  b.Add("Y", 3.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Millis("X"), 3.0);
  EXPECT_DOUBLE_EQ(a.Millis("Y"), 3.0);
}

TEST(PhaseTimerTest, MeasureRecordsElapsed) {
  PhaseTimer t;
  int result = t.Measure("work", [] { return 5; });
  EXPECT_EQ(result, 5);
  EXPECT_GE(t.Millis("work"), 0.0);
  ASSERT_EQ(t.phases().size(), 1u);
}

TEST(TimerTest, ElapsedIsMonotonic) {
  Timer t;
  double a = t.ElapsedMillis();
  double b = t.ElapsedMillis();
  EXPECT_GE(b, a);
  t.Reset();
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace ssjoin
