#include <gtest/gtest.h>

#include "engine/expr.h"
#include "engine/table.h"

namespace ssjoin::engine {
namespace {

Table Sample() {
  Schema schema({{"i", DataType::kInt64},
                 {"x", DataType::kFloat64},
                 {"s", DataType::kString}});
  return *Table::FromRows(schema, {{1, 0.5, "apple"},
                                   {2, 1.5, "banana"},
                                   {3, 2.5, "apple"},
                                   {-4, 0.0, ""}});
}

Value EvalAt(const ExprPtr& e, const Table& t, size_t row) {
  return e->Bind(t.schema()).ValueOrDie().Eval(t, row);
}

TEST(ExprTest, ColumnAndLiteral) {
  Table t = Sample();
  EXPECT_EQ(EvalAt(Col("i"), t, 1).int64(), 2);
  EXPECT_EQ(EvalAt(Col("s"), t, 0).string(), "apple");
  EXPECT_DOUBLE_EQ(EvalAt(Lit(3.25), t, 0).float64(), 3.25);
}

TEST(ExprTest, ArithmeticTypePromotion) {
  Table t = Sample();
  // int + int stays int.
  Value v = EvalAt(Add(Col("i"), Lit(10)), t, 0);
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), 11);
  // int * float promotes.
  v = EvalAt(Mul(Col("i"), Col("x")), t, 1);
  EXPECT_TRUE(v.is_float64());
  EXPECT_DOUBLE_EQ(v.float64(), 3.0);
  // Division is always float (no integer-division surprises).
  v = EvalAt(Div(Lit(3), Lit(2)), t, 0);
  EXPECT_TRUE(v.is_float64());
  EXPECT_DOUBLE_EQ(v.float64(), 1.5);
}

TEST(ExprTest, SubAndNeg) {
  Table t = Sample();
  EXPECT_EQ(EvalAt(Sub(Col("i"), Lit(1)), t, 2).int64(), 2);
  EXPECT_EQ(EvalAt(Neg(Col("i")), t, 3).int64(), 4);
  EXPECT_DOUBLE_EQ(EvalAt(Neg(Col("x")), t, 1).float64(), -1.5);
}

TEST(ExprTest, NumericComparisonsMixTypes) {
  Table t = Sample();
  EXPECT_EQ(EvalAt(Gt(Col("x"), Col("i")), t, 1).int64(), 0);   // 1.5 > 2 ? no
  EXPECT_EQ(EvalAt(Lt(Col("i"), Col("x")), t, 0).int64(), 0);   // 1 < 0.5 ? no
  EXPECT_EQ(EvalAt(Ge(Col("i"), Lit(1)), t, 0).int64(), 1);
  EXPECT_EQ(EvalAt(Le(Col("i"), Lit(-4)), t, 3).int64(), 1);
  EXPECT_EQ(EvalAt(Ne(Col("i"), Lit(2)), t, 1).int64(), 0);
}

TEST(ExprTest, StringComparisons) {
  Table t = Sample();
  EXPECT_EQ(EvalAt(Eq(Col("s"), Lit("apple")), t, 0).int64(), 1);
  EXPECT_EQ(EvalAt(Eq(Col("s"), Lit("apple")), t, 1).int64(), 0);
  EXPECT_EQ(EvalAt(Lt(Col("s"), Lit("b")), t, 0).int64(), 1);
}

TEST(ExprTest, BooleanConnectives) {
  Table t = Sample();
  ExprPtr both = And(Gt(Col("i"), Lit(0)), Gt(Col("x"), Lit(1.0)));
  EXPECT_EQ(EvalAt(both, t, 0).int64(), 0);
  EXPECT_EQ(EvalAt(both, t, 1).int64(), 1);
  ExprPtr either = Or(Lt(Col("i"), Lit(0)), Eq(Col("s"), Lit("")));
  EXPECT_EQ(EvalAt(either, t, 3).int64(), 1);
  EXPECT_EQ(EvalAt(either, t, 0).int64(), 0);
  EXPECT_EQ(EvalAt(Not(Gt(Col("i"), Lit(0))), t, 3).int64(), 1);
}

TEST(ExprTest, BindErrors) {
  Table t = Sample();
  EXPECT_FALSE(Col("missing")->Bind(t.schema()).ok());
  EXPECT_FALSE(Add(Col("s"), Lit(1))->Bind(t.schema()).ok());
  EXPECT_FALSE(Eq(Col("s"), Lit(1))->Bind(t.schema()).ok());
  EXPECT_FALSE(And(Col("s"), Lit(1))->Bind(t.schema()).ok());
  EXPECT_FALSE(Neg(Col("s"))->Bind(t.schema()).ok());
}

TEST(ExprTest, OutputTypes) {
  Table t = Sample();
  EXPECT_EQ(Col("x")->Bind(t.schema())->output_type(), DataType::kFloat64);
  EXPECT_EQ(Eq(Col("i"), Lit(1))->Bind(t.schema())->output_type(),
            DataType::kInt64);
  EXPECT_EQ(Div(Col("i"), Lit(2))->Bind(t.schema())->output_type(),
            DataType::kFloat64);
}

TEST(ExprTest, ToStringRendering) {
  ExprPtr e = Ge(Col("overlap"), Mul(Lit(0.8), Col("norm")));
  EXPECT_EQ(e->ToString(), "(overlap >= (0.8 * norm))");
  EXPECT_EQ(Lit("x")->ToString(), "'x'");
  EXPECT_EQ(Not(Col("f"))->ToString(), "(NOT f)");
}

TEST(FilterWhereTest, KeepsTruthyRows) {
  Table t = Sample();
  Table filtered = *FilterWhere(t, Gt(Col("i"), Lit(1)));
  EXPECT_EQ(filtered.num_rows(), 2u);
  EXPECT_EQ(filtered.GetValue(0, 0).int64(), 2);
  EXPECT_FALSE(FilterWhere(t, nullptr).ok());
  EXPECT_FALSE(FilterWhere(t, Col("zz")).ok());
}

TEST(ProjectExprsTest, ComputedColumns) {
  Table t = Sample();
  Table projected = *ProjectExprs(
      t, {{"doubled", Mul(Col("i"), Lit(2))},
          {"is_apple", Eq(Col("s"), Lit("apple"))},
          {"ratio", Div(Col("x"), Lit(0.5))}});
  EXPECT_EQ(projected.num_columns(), 3u);
  EXPECT_EQ(projected.GetValue(0, 2).int64(), 6);
  EXPECT_EQ(projected.GetValue(1, 0).int64(), 1);
  EXPECT_DOUBLE_EQ(projected.GetValue(2, 1).float64(), 3.0);
  EXPECT_FALSE(ProjectExprs(t, {{"bad", nullptr}}).ok());
  // Duplicate output names rejected.
  EXPECT_FALSE(ProjectExprs(t, {{"a", Col("i")}, {"a", Col("x")}}).ok());
}

}  // namespace
}  // namespace ssjoin::engine
