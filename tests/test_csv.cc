#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "engine/csv.h"

namespace ssjoin::engine {
namespace {

TEST(CsvParseTest, BasicWithHeaderAndInference) {
  auto table = *ParseCsv("id,name,score\n1,alice,0.5\n2,bob,1.5\n");
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(table.schema().field(1).type, DataType::kString);
  EXPECT_EQ(table.schema().field(2).type, DataType::kFloat64);
  EXPECT_EQ(table.GetValue(1, 1).string(), "bob");
  EXPECT_DOUBLE_EQ(table.GetValue(2, 0).float64(), 0.5);
}

TEST(CsvParseTest, NoHeader) {
  CsvReadOptions options;
  options.has_header = false;
  auto table = *ParseCsv("1,x\n2,y\n", options);
  EXPECT_EQ(table.schema().field(0).name, "c0");
  EXPECT_EQ(table.schema().field(1).name, "c1");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvParseTest, NoInference) {
  CsvReadOptions options;
  options.infer_types = false;
  auto table = *ParseCsv("a\n42\n", options);
  EXPECT_EQ(table.schema().field(0).type, DataType::kString);
  EXPECT_EQ(table.GetValue(0, 0).string(), "42");
}

TEST(CsvParseTest, QuotedFields) {
  auto table = *ParseCsv(
      "name,notes\n"
      "\"Smith, John\",\"said \"\"hi\"\"\"\n"
      "plain,\"multi\nline\"\n");
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.GetValue(0, 0).string(), "Smith, John");
  EXPECT_EQ(table.GetValue(1, 0).string(), "said \"hi\"");
  EXPECT_EQ(table.GetValue(1, 1).string(), "multi\nline");
}

TEST(CsvParseTest, CrlfAndMissingFinalNewline) {
  auto table = *ParseCsv("a,b\r\n1,2\r\n3,4");
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.GetValue(1, 1).int64(), 4);
}

TEST(CsvParseTest, MixedNumericFallsBackToString) {
  auto table = *ParseCsv("v\n1\nx\n");
  EXPECT_EQ(table.schema().field(0).type, DataType::kString);
}

// Type inference uses the strict number grammar, not bare strtod: lenient
// shapes stay strings so their bytes survive a round trip.
TEST(CsvParseTest, LenientNumberShapesStayStrings) {
  // Leading zero: a zip-code column must not collapse "01234" -> 1234.
  auto zip = *ParseCsv("v\n01234\n00042\n");
  EXPECT_EQ(zip.schema().field(0).type, DataType::kString);
  EXPECT_EQ(zip.GetValue(0, 0).string(), "01234");

  // Explicit plus sign.
  auto plus = *ParseCsv("v\n+1\n+2\n");
  EXPECT_EQ(plus.schema().field(0).type, DataType::kString);

  // Overflowing exponent: strtod yields inf, which must not infer float64.
  auto inf = *ParseCsv("v\n1e999\n2e999\n");
  EXPECT_EQ(inf.schema().field(0).type, DataType::kString);

  // Hex floats and whitespace-padded numbers stay strings too.
  auto hex = *ParseCsv("v\n0x10\n0x20\n");
  EXPECT_EQ(hex.schema().field(0).type, DataType::kString);
  auto pad = *ParseCsv("v\n 1\n 2\n");
  EXPECT_EQ(pad.schema().field(0).type, DataType::kString);

  // Bare '.' fraction forms are not in the grammar.
  auto dot = *ParseCsv("v\n.5\n.25\n");
  EXPECT_EQ(dot.schema().field(0).type, DataType::kString);
  auto trail = *ParseCsv("v\n1.\n2.\n");
  EXPECT_EQ(trail.schema().field(0).type, DataType::kString);
}

TEST(CsvParseTest, StrictNumberShapesStillInfer) {
  auto table = *ParseCsv("i,f,e\n-12,0.5,1e3\n0,-3.25,2.5e-2\n");
  EXPECT_EQ(table.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(table.schema().field(1).type, DataType::kFloat64);
  EXPECT_EQ(table.schema().field(2).type, DataType::kFloat64);
  EXPECT_EQ(table.GetValue(0, 0).int64(), -12);
  EXPECT_DOUBLE_EQ(table.GetValue(2, 1).float64(), 0.025);
}

TEST(CsvParseTest, IntThenFloatBecomesFloat) {
  auto table = *ParseCsv("v\n1\n2.5\n");
  EXPECT_EQ(table.schema().field(0).type, DataType::kFloat64);
  EXPECT_DOUBLE_EQ(table.GetValue(0, 0).float64(), 1.0);
}

TEST(CsvParseTest, EmptyCellsKeepNumericColumns) {
  auto table = *ParseCsv("v\n1\n\n3\n");
  EXPECT_EQ(table.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(table.GetValue(0, 1).int64(), 0);  // empty -> 0
}

TEST(CsvParseTest, RaggedRowRejected) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvParseTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvParseTest, QuoteInsideUnquotedFieldRejected) {
  EXPECT_FALSE(ParseCsv("a\nfo\"o\n").ok());
}

TEST(CsvParseTest, CustomDelimiter) {
  CsvReadOptions options;
  options.delimiter = ';';
  auto table = *ParseCsv("a;b\n1;hello, world\n", options);
  EXPECT_EQ(table.GetValue(1, 0).string(), "hello, world");
}

TEST(CsvParseTest, EmptyInput) {
  auto table = *ParseCsv("");
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.num_columns(), 0u);
}

TEST(CsvRoundTripTest, ToCsvAndBack) {
  Schema schema({{"id", DataType::kInt64},
                 {"text", DataType::kString},
                 {"w", DataType::kFloat64}});
  auto original = *Table::FromRows(
      schema, {{1, "plain", 0.5},
               {2, "has,comma", 1.5},
               {3, "has\"quote", 2.5},
               {4, "multi\nline", 3.5}});
  auto parsed = *ParseCsv(ToCsv(original));
  EXPECT_TRUE(parsed.ContentEquals(original));
}

TEST(CsvFileTest, WriteAndReadBack) {
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kString}});
  auto table = *Table::FromRows(schema, {{7, "seven"}, {8, "eight"}});
  std::string path = ::testing::TempDir() + "/ssjoin_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto loaded = *ReadCsvFile(path);
  EXPECT_TRUE(loaded.ContentEquals(table));
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto result = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace ssjoin::engine
