#include <gtest/gtest.h>

#include <algorithm>

#include "text/dictionary.h"

namespace ssjoin::text {
namespace {

TEST(DictionaryTest, InternsAndFinds) {
  TokenDictionary dict;
  auto ids = dict.EncodeDocument({"foo", "bar"});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_EQ(dict.Find("foo"), ids[0]);
  EXPECT_EQ(dict.Find("bar"), ids[1]);
  EXPECT_EQ(dict.Find("baz"), kInvalidToken);
  EXPECT_EQ(dict.num_elements(), 2u);
  EXPECT_EQ(dict.num_documents(), 1u);
}

TEST(DictionaryTest, OrdinalsDistinguishDuplicates) {
  TokenDictionary dict;
  auto ids = dict.EncodeDocument({"a", "a", "a", "b"});
  ASSERT_EQ(ids.size(), 4u);
  // The three "a" occurrences become distinct elements (§4.3.1's multi-set
  // to set conversion: {1,1,2} -> {<1,1>,<1,2>,<2,1>}).
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_NE(ids[1], ids[2]);
  EXPECT_EQ(dict.TokenOf(ids[0]), "a");
  EXPECT_EQ(dict.TokenOf(ids[1]), "a");
  EXPECT_EQ(dict.OrdinalOf(ids[0]), 0u);
  EXPECT_EQ(dict.OrdinalOf(ids[1]), 1u);
  EXPECT_EQ(dict.OrdinalOf(ids[2]), 2u);
  EXPECT_EQ(dict.Find("a", 2), ids[2]);
}

TEST(DictionaryTest, SharedTokensAcrossDocumentsReuseIds) {
  TokenDictionary dict;
  auto d1 = dict.EncodeDocument({"x", "y"});
  auto d2 = dict.EncodeDocument({"y", "z"});
  EXPECT_EQ(d1[1], d2[0]);
  EXPECT_EQ(dict.num_elements(), 3u);
  EXPECT_EQ(dict.num_documents(), 2u);
}

TEST(DictionaryTest, DocFrequencyCountsDocumentsNotOccurrences) {
  TokenDictionary dict;
  auto d1 = dict.EncodeDocument({"t", "t"});  // two occurrences, one document
  dict.EncodeDocument({"t"});
  EXPECT_EQ(dict.DocFrequency(d1[0]), 2u);  // (t,0) appears in both docs
  EXPECT_EQ(dict.DocFrequency(d1[1]), 1u);  // (t,1) appears in the first only
}

TEST(DictionaryTest, MultisetIntersectionViaOrdinals) {
  TokenDictionary dict;
  auto d1 = dict.EncodeDocument({"a", "a", "b"});
  auto d2 = dict.EncodeDocument({"a", "a", "a"});
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  std::vector<TokenId> inter;
  std::set_intersection(d1.begin(), d1.end(), d2.begin(), d2.end(),
                        std::back_inserter(inter));
  // multiset intersection of {a,a,b} and {a,a,a} is {a,a}.
  EXPECT_EQ(inter.size(), 2u);
}

TEST(DictionaryTest, ReadOnlyEncodeDoesNotIntern) {
  TokenDictionary dict;
  dict.EncodeDocument({"known"});
  auto ids = dict.EncodeDocumentReadOnly({"known", "unknown", "known"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_NE(ids[0], kInvalidToken);
  EXPECT_EQ(ids[1], kInvalidToken);
  // second "known" occurrence -> ordinal 1, never interned -> invalid.
  EXPECT_EQ(ids[2], kInvalidToken);
  EXPECT_EQ(dict.num_elements(), 1u);
  EXPECT_EQ(dict.num_documents(), 1u);
}

TEST(DictionaryTest, EmptyDocument) {
  TokenDictionary dict;
  auto ids = dict.EncodeDocument({});
  EXPECT_TRUE(ids.empty());
  EXPECT_EQ(dict.num_documents(), 1u);
}

}  // namespace
}  // namespace ssjoin::text
