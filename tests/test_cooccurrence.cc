#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "datagen/contact_gen.h"
#include "datagen/publication_gen.h"
#include "simjoin/cooccurrence.h"

namespace ssjoin::simjoin {
namespace {

TEST(CooccurrenceJoinTest, StateCityIntroExample) {
  // The introduction's example: ('washington','wa') and ('wisconsin','wi')
  // pair up because their city sets overlap heavily.
  std::vector<std::pair<std::string, std::string>> r = {
      {"washington", "seattle"},  {"washington", "redmond"},
      {"washington", "spokane"},  {"wisconsin", "madison"},
      {"wisconsin", "milwaukee"}, {"wisconsin", "green bay"}};
  std::vector<std::pair<std::string, std::string>> s = {
      {"wa", "seattle"},  {"wa", "redmond"},   {"wa", "spokane"},
      {"wi", "madison"},  {"wi", "milwaukee"}, {"wi", "green bay"},
      {"tx", "austin"},   {"tx", "houston"}};
  auto result = *CooccurrenceJoin(r, s, 0.8, JaccardVariant::kContainment,
                                  WeightMode::kUnit);
  std::set<std::pair<std::string, std::string>> found;
  for (const MatchPair& m : result.matches) {
    found.insert({result.r_entities[m.r], result.s_entities[m.s]});
  }
  EXPECT_TRUE(found.count({"washington", "wa"}));
  EXPECT_TRUE(found.count({"wisconsin", "wi"}));
  EXPECT_FALSE(found.count({"washington", "wi"}));
  EXPECT_FALSE(found.count({"washington", "tx"}));
  EXPECT_EQ(found.size(), 2u);
}

TEST(CooccurrenceJoinTest, RecoversAuthorsAcrossSources) {
  // Example 5: same authors, different naming conventions; paper-title
  // co-occurrence identifies them.
  datagen::PublicationGenOptions opts;
  opts.num_authors = 120;
  opts.coverage_noise = 0.2;
  datagen::PublicationDataset data = datagen::GeneratePublications(opts);
  SimJoinStats stats;
  auto result = *CooccurrenceJoin(data.source1_rows, data.source2_rows, 0.55,
                                  JaccardVariant::kContainment, WeightMode::kIdf,
                                  {}, &stats);
  // Map entity names back to canonical author indices.
  std::unordered_map<std::string, size_t> s1_index;
  for (size_t i = 0; i < data.source1_names.size(); ++i) {
    s1_index[data.source1_names[i]] = i;
  }
  std::unordered_map<std::string, size_t> s2_index;
  for (size_t i = 0; i < data.source2_names.size(); ++i) {
    s2_index[data.source2_names[i]] = i;
  }
  size_t correct = 0;
  size_t wrong = 0;
  for (const MatchPair& m : result.matches) {
    size_t a1 = s1_index.at(result.r_entities[m.r]);
    size_t a2 = s2_index.at(result.s_entities[m.s]);
    if (a1 == a2) {
      ++correct;
    } else {
      ++wrong;
    }
  }
  // High recall of the ground-truth identity pairs, few false pairs.
  EXPECT_GT(correct, opts.num_authors * 9 / 10);
  EXPECT_LT(wrong, opts.num_authors / 10);
}

TEST(CooccurrenceJoinTest, ResemblanceIsStricterThanContainment) {
  std::vector<std::pair<std::string, std::string>> r = {
      {"a", "x"}, {"a", "y"}, {"b", "x"}, {"b", "y"}, {"b", "z"}, {"b", "w"}};
  // a's items {x,y} fully contained in b's {x,y,z,w}, resemblance only 0.5.
  auto contain = *CooccurrenceJoin(r, r, 0.9, JaccardVariant::kContainment,
                                   WeightMode::kUnit);
  auto resemble = *CooccurrenceJoin(r, r, 0.9, JaccardVariant::kResemblance,
                                    WeightMode::kUnit);
  auto has = [](const EntityJoinResult& res, const std::string& a,
                const std::string& b) {
    for (const MatchPair& m : res.matches) {
      if (res.r_entities[m.r] == a && res.s_entities[m.s] == b) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(contain, "a", "b"));
  EXPECT_FALSE(has(resemble, "a", "b"));
  EXPECT_TRUE(has(resemble, "a", "a"));
}

TEST(FDAgreementJoinTest, Example6KOfH) {
  // Example 6: join author records when at least 2 of {address, email,
  // phone} agree.
  std::vector<std::vector<std::string>> rows = {
      {"12 Oak St", "a@x.com", "555-0101"},
      {"12 Oak St", "a@x.com", "555-9999"},  // agrees with 0 on 2 attrs
      {"99 Elm Rd", "a@x.com", "555-0101"},  // agrees with 0 on 2 attrs
      {"99 Elm Rd", "b@y.com", "555-7777"},  // agrees with 0 on 0, with 2 on 1
  };
  auto matches = *FDAgreementJoin(rows, rows, 2);
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (const MatchPair& m : matches) pairs.insert({m.r, m.s});
  EXPECT_TRUE(pairs.count({0, 1}));
  EXPECT_TRUE(pairs.count({0, 2}));
  EXPECT_FALSE(pairs.count({0, 3}));
  EXPECT_FALSE(pairs.count({1, 2}));  // only email agrees
  for (uint32_t i = 0; i < rows.size(); ++i) EXPECT_TRUE(pairs.count({i, i}));
  // Similarity reports the agreement count.
  for (const MatchPair& m : matches) {
    if (m.r == 0 && m.s == 1) {
      EXPECT_DOUBLE_EQ(m.similarity, 2.0);
    }
    if (m.r == 0 && m.s == 0) {
      EXPECT_DOUBLE_EQ(m.similarity, 3.0);
    }
  }
}

TEST(FDAgreementJoinTest, FindsGeneratedDuplicates) {
  datagen::ContactGenOptions opts;
  opts.num_records = 500;
  opts.max_perturbed_attrs = 1;  // duplicates agree on >= 2 of 3
  datagen::ContactDataset data = datagen::GenerateContacts(opts);
  auto matches = *FDAgreementJoin(data.aep_rows, data.aep_rows, 2);
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (const MatchPair& m : matches) pairs.insert({m.r, m.s});
  for (uint32_t i = 0; i < data.aep_rows.size(); ++i) {
    if (data.duplicate_of[i] >= 0) {
      uint32_t src = static_cast<uint32_t>(data.duplicate_of[i]);
      EXPECT_TRUE(pairs.count({i, src})) << "duplicate " << i;
    }
  }
}

TEST(FDAgreementJoinTest, RejectsBadArguments) {
  std::vector<std::vector<std::string>> rows = {{"a", "b"}};
  EXPECT_FALSE(FDAgreementJoin(rows, rows, 0).ok());
  EXPECT_FALSE(FDAgreementJoin(rows, rows, 3).ok());
  std::vector<std::vector<std::string>> ragged = {{"a", "b"}, {"c"}};
  EXPECT_FALSE(FDAgreementJoin(ragged, ragged, 1).ok());
}

TEST(CooccurrenceJoinTest, EmptyInputs) {
  std::vector<std::pair<std::string, std::string>> empty;
  auto result = *CooccurrenceJoin(empty, empty, 0.5);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_TRUE(result.r_entities.empty());
}

}  // namespace
}  // namespace ssjoin::simjoin
