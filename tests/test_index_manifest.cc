/// Manifest-v3 and recovery robustness: every corruption mode of the durable
/// state (truncated manifest, flipped bytes, bad per-segment checksums,
/// missing segment files, stale or torn WAL records) must yield either a
/// clean Status error or a correct recovery — never UB, never silently wrong
/// lookups. Also pins the v2 -> v3 upgrade path: an immutable snapshot loads
/// as a single sealed generation answering bit-identically.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "index/manifest.h"
#include "index/mutable_index.h"
#include "index/wal.h"
#include "serve/snapshot.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::index {
namespace {

using simjoin::FuzzyMatchIndex;

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n, uint64_t seed) {
  Rng rng(seed);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/manifest_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A small durable index with one sealed generation plus unsealed churn —
/// the standard corpse the corruption tests dissect.
MutableIndexOptions MakeDurable(const std::string& dir,
                                const std::vector<std::string>& master) {
  MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.seal_threshold = 0;
  options.max_generations = 0;
  options.data_dir = dir;
  auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
  for (size_t i = 0; i < master.size(); ++i) {
    EXPECT_TRUE(index->Upsert(i, master[i]).ok());
  }
  EXPECT_TRUE(index->Seal().ok());
  EXPECT_TRUE(index->Upsert(0, "replacement after seal").ok());
  EXPECT_TRUE(index->Delete(1).ok());
  return options;
}

TEST(ManifestTest, SaveLoadRoundTrip) {
  Manifest m;
  m.options.alpha = 0.42;
  m.options.word_tokens = false;
  m.options.q = 2;
  m.epoch = 17;
  m.last_sealed_seq = 9;
  m.next_serial = 3;
  m.dict_entries.push_back({"street|0", 0, 4});
  m.dict_entries.push_back({"main|0", 0, 2});
  m.dict_num_documents = 6;
  m.segments.push_back({1, "seg-1.seg", 0xdeadbeefULL, 6});
  m.wal_file = "wal-2.wal";

  std::string path = ::testing::TempDir() + "/manifest_roundtrip";
  ASSERT_TRUE(SaveManifest(m, path).ok());
  auto loaded = LoadManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->options.alpha, m.options.alpha);
  EXPECT_EQ(loaded->options.word_tokens, false);
  EXPECT_EQ(loaded->options.q, 2u);
  EXPECT_EQ(loaded->epoch, 17u);
  EXPECT_EQ(loaded->last_sealed_seq, 9u);
  EXPECT_EQ(loaded->next_serial, 3u);
  ASSERT_EQ(loaded->dict_entries.size(), 2u);
  EXPECT_EQ(loaded->dict_entries[0].token, "street|0");
  EXPECT_EQ(loaded->dict_entries[0].doc_frequency, 4u);
  EXPECT_EQ(loaded->dict_num_documents, 6u);
  ASSERT_EQ(loaded->segments.size(), 1u);
  EXPECT_EQ(loaded->segments[0].file, "seg-1.seg");
  EXPECT_EQ(loaded->segments[0].checksum, 0xdeadbeefULL);
  EXPECT_EQ(loaded->wal_file, "wal-2.wal");
  std::remove(path.c_str());
}

class ManifestCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = FreshDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    master_ = Master(80, 61);
    options_ = MakeDurable(dir_, master_);
    manifest_path_ = dir_ + "/" + kManifestFileName;
    bytes_ = ReadBytes(manifest_path_);
    ASSERT_GT(bytes_.size(), 24u);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::vector<std::string> master_;
  MutableIndexOptions options_;
  std::string manifest_path_;
  std::string bytes_;
};

TEST_F(ManifestCorruptionTest, TruncatedManifestRejected) {
  for (size_t cut : {size_t{0}, size_t{7}, size_t{15}, size_t{16},
                     bytes_.size() / 2, bytes_.size() - 9, bytes_.size() - 1}) {
    WriteBytes(manifest_path_, bytes_.substr(0, cut));
    EXPECT_FALSE(MutableFuzzyIndex::Open(options_).ok()) << "cut at " << cut;
  }
}

TEST_F(ManifestCorruptionTest, FlippedPayloadByteFailsChecksum) {
  for (size_t pos : {size_t{16}, size_t{40}, bytes_.size() / 2,
                     bytes_.size() - 9}) {
    std::string bad = bytes_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    WriteBytes(manifest_path_, bad);
    auto loaded = LoadManifest(manifest_path_);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos;
    EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos)
        << "flip at " << pos;
  }
}

TEST_F(ManifestCorruptionTest, WrongMagicRejected) {
  std::string bad = bytes_;
  bad[0] = 'X';
  WriteBytes(manifest_path_, bad);
  auto loaded = LoadManifest(manifest_path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("magic"), std::string::npos);
}

TEST_F(ManifestCorruptionTest, BadSegmentChecksumRejectedAtOpen) {
  auto manifest = LoadManifest(manifest_path_);
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest->segments.empty());
  std::string seg_path = dir_ + "/" + manifest->segments[0].file;
  std::string seg_bytes = ReadBytes(seg_path);
  seg_bytes[seg_bytes.size() / 2] =
      static_cast<char>(seg_bytes[seg_bytes.size() / 2] ^ 0x08);
  WriteBytes(seg_path, seg_bytes);

  auto opened = MutableFuzzyIndex::Open(options_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIOError);
  EXPECT_NE(opened.status().ToString().find("checksum"), std::string::npos);
}

TEST_F(ManifestCorruptionTest, MissingSegmentFileRejectedAtOpen) {
  auto manifest = LoadManifest(manifest_path_);
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest->segments.empty());
  ASSERT_TRUE(
      std::filesystem::remove(dir_ + "/" + manifest->segments[0].file));
  EXPECT_FALSE(MutableFuzzyIndex::Open(options_).ok());
}

TEST_F(ManifestCorruptionTest, MissingWalRecoversSealedStateOnly) {
  // A vanished WAL is tolerated (a fresh one is created): the sealed
  // generation recovers intact, only the unsealed churn is lost.
  auto manifest = LoadManifest(manifest_path_);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(std::filesystem::remove(dir_ + "/" + manifest->wal_file));
  auto opened = MutableFuzzyIndex::Open(options_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto state = (*opened)->Snapshot();
  // The post-seal upsert(0) and delete(1) lived only in the WAL: gone.
  EXPECT_EQ((*opened)->ValueAt(*state, 0).value_or(""), master_[0]);
  EXPECT_EQ((*opened)->ValueAt(*state, 1).value_or(""), master_[1]);
  EXPECT_EQ((*opened)->GetStats().live_docs, master_.size());
}

TEST_F(ManifestCorruptionTest, StaleWalRecordSkippedAtReplay) {
  auto manifest = LoadManifest(manifest_path_);
  ASSERT_TRUE(manifest.ok());
  ASSERT_GT(manifest->last_sealed_seq, 0u);

  // Append a record whose seq is already covered by the sealed generation:
  // replay must skip it, so the bogus doc never appears.
  {
    auto wal = WalWriter::OpenForAppend(dir_ + "/" + manifest->wal_file,
                                        index::kWalVersion);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    WalRecord stale;
    stale.type = WalRecord::kUpsert;
    stale.seq = 1;  // <= last_sealed_seq, therefore stale
    stale.doc_id = 777;
    stale.value = "stale record that must not surface";
    ASSERT_TRUE(wal->Append(stale).ok());
    // A genuinely fresh record after it must still be applied.
    WalRecord fresh;
    fresh.type = WalRecord::kUpsert;
    fresh.seq = manifest->last_sealed_seq + 10;
    fresh.doc_id = 888;
    fresh.value = "fresh record that must surface";
    ASSERT_TRUE(wal->Append(fresh).ok());
  }

  auto opened = MutableFuzzyIndex::Open(options_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto state = (*opened)->Snapshot();
  EXPECT_FALSE((*opened)->ValueAt(*state, 777).has_value());
  EXPECT_EQ((*opened)->ValueAt(*state, 888).value_or(""),
            "fresh record that must surface");
}

TEST_F(ManifestCorruptionTest, TornWalTailTruncatedCleanly) {
  auto manifest = LoadManifest(manifest_path_);
  ASSERT_TRUE(manifest.ok());
  std::string wal_path = dir_ + "/" + manifest->wal_file;
  std::string wal_bytes = ReadBytes(wal_path);
  // A crash mid-append leaves a partial record: claim a long body, supply
  // only garbage bytes.
  uint32_t bogus_len = 1000;
  wal_bytes.append(reinterpret_cast<const char*>(&bogus_len), sizeof(bogus_len));
  wal_bytes.append("torn");
  WriteBytes(wal_path, wal_bytes);

  auto opened = MutableFuzzyIndex::Open(options_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // The intact records before the torn tail survived.
  auto state = (*opened)->Snapshot();
  EXPECT_EQ((*opened)->ValueAt(*state, 0).value_or(""),
            "replacement after seal");
  EXPECT_FALSE((*opened)->ValueAt(*state, 1).has_value());
  // And the WAL is whole again: new appends + another reopen round-trip.
  ASSERT_TRUE((*opened)->Upsert(42, "written after torn-tail repair").ok());
  opened->reset();
  auto again = MutableFuzzyIndex::Open(options_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->ValueAt(*(*again)->Snapshot(), 42).value_or(""),
            "written after torn-tail repair");
}

// ---------------------------------------------------------------------------
// Version compatibility.

TEST(ManifestCompatTest, V2SnapshotYieldsCleanVersionError) {
  // A v2 immutable snapshot dropped where a manifest is expected must fail
  // with a clean Invalid naming the version — the signal serve uses to fall
  // back to the immutable-snapshot loader.
  auto master = Master(60, 62);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.4;
  auto index = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
  std::string path = ::testing::TempDir() + "/manifest_v2_compat";
  ASSERT_TRUE(serve::SaveSnapshot(index, path).ok());

  auto loaded = LoadManifest(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ManifestCompatTest, V2UpgradeLoadsAsSingleSealedGeneration) {
  auto master = Master(150, 63);
  auto queries = DirtyQueries(master, 50, 64);
  FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto immutable = FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
  std::string path = ::testing::TempDir() + "/manifest_v2_upgrade";
  ASSERT_TRUE(serve::SaveSnapshot(immutable, path).ok());

  auto upgraded = serve::UpgradeSnapshotToMutable(path, {});
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  auto stats = (*upgraded)->GetStats();
  EXPECT_EQ(stats.sealed_segments, 1u);
  EXPECT_EQ(stats.tail_docs, 0u);
  EXPECT_EQ(stats.live_docs, master.size());

  queries.push_back(master[3]);
  queries.push_back("completely unknown vocabulary");
  for (const std::string& q : queries) {
    auto want = immutable.Lookup(q, 5);
    auto got = (*upgraded)->Lookup(q, 5);
    ASSERT_EQ(got.size(), want.size()) << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].ref_index) << q;
      EXPECT_EQ(got[i].similarity, want[i].similarity) << q;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ssjoin::index
