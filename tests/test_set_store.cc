/// SetStore / SetView unit tests plus the nested-vs-CSR differential test:
/// the legacy per-group vector representation (rebuilt here as a test-only
/// helper) and the flat CSR store must describe exactly the same relation
/// for the same randomized input documents.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/set_store.h"
#include "core/sets.h"

namespace ssjoin::core {
namespace {

using Doc = std::vector<text::TokenId>;

TEST(SetViewTest, BasicAccessors) {
  std::vector<text::TokenId> elems{3, 7, 9};
  SetView v(elems, 42);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.empty());
  EXPECT_EQ(v[1], 7u);
  EXPECT_EQ(v.group(), 42u);
  std::span<const text::TokenId> s = v;  // implicit conversion
  EXPECT_EQ(s.data(), elems.data());
  EXPECT_TRUE(SetView().empty());
}

TEST(SetStoreTest, AppendAndView) {
  SetStore store;
  EXPECT_EQ(store.num_groups(), 0u);
  EXPECT_EQ(store.total_elements(), 0u);
  store.AppendSet(Doc{1, 2, 3});
  store.AppendSet(Doc{});
  store.AppendSet(Doc{9});
  EXPECT_EQ(store.num_groups(), 3u);
  EXPECT_EQ(store.total_elements(), 4u);
  EXPECT_EQ(store.view(0).size(), 3u);
  EXPECT_TRUE(store.view(1).empty());
  EXPECT_EQ(store.view(2)[0], 9u);
  EXPECT_EQ(store.view(2).group(), 2u);
  EXPECT_EQ(store.offsets(), (std::vector<uint32_t>{0, 3, 3, 4}));
}

TEST(SetStoreTest, AppendStoreShiftsOffsets) {
  SetStore a;
  a.AppendSet(Doc{1, 2});
  SetStore b;
  b.AppendSet(Doc{});
  b.AppendSet(Doc{5, 6, 7});
  a.AppendStore(b);
  ASSERT_EQ(a.num_groups(), 3u);
  EXPECT_EQ(a.offsets(), (std::vector<uint32_t>{0, 2, 2, 5}));
  EXPECT_EQ(a.view(2)[2], 7u);
  // Concatenating morsel-local stores in order reproduces the serial layout.
  SetStore serial;
  serial.AppendSet(Doc{1, 2});
  serial.AppendSet(Doc{});
  serial.AppendSet(Doc{5, 6, 7});
  EXPECT_TRUE(a == serial);
}

TEST(SetStoreTest, ElementWeightsColumn) {
  SetStore store;
  store.AppendSet(Doc{2, 0});
  EXPECT_FALSE(store.has_element_weights());
  EXPECT_TRUE(store.element_weights(0).empty());
  std::vector<double> token_weights{0.5, 1.0, 2.0};
  store.AttachElementWeights(token_weights);
  ASSERT_TRUE(store.has_element_weights());
  auto w = store.element_weights(0);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 2.0);  // weight of element id 2
  EXPECT_DOUBLE_EQ(w[1], 0.5);  // weight of element id 0
}

TEST(SetStoreTest, ClearResetsToEmpty) {
  SetStore store;
  store.AppendSet(Doc{1});
  store.AttachElementWeights(std::vector<double>{0.0, 1.0});
  store.Clear();
  EXPECT_EQ(store.num_groups(), 0u);
  EXPECT_EQ(store.total_elements(), 0u);
  EXPECT_FALSE(store.has_element_weights());
}

TEST(SetStoreTest, CheckCapacityRejectsUint32Overflow) {
  EXPECT_TRUE(SetStore::CheckCapacity(1000, 1000).ok());
  EXPECT_TRUE(SetStore::CheckCapacity(UINT32_MAX - 1, UINT32_MAX).ok());
  EXPECT_FALSE(SetStore::CheckCapacity(static_cast<size_t>(UINT32_MAX) + 1, 0).ok());
  EXPECT_FALSE(SetStore::CheckCapacity(0, static_cast<size_t>(UINT32_MAX) + 1).ok());
}

TEST(SetStoreTest, FromPartsValidatesInvariants) {
  // Valid CSR round-trips.
  auto ok = SetStore::FromParts({0, 2, 2, 3}, {4, 5, 6});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->num_groups(), 3u);
  EXPECT_EQ(ok->view(0)[1], 5u);

  // Offsets must exist, start at 0, be monotone, and end at token count.
  EXPECT_FALSE(SetStore::FromParts({}, {}).ok());
  EXPECT_FALSE(SetStore::FromParts({1, 2}, {4, 5}).ok());
  EXPECT_FALSE(SetStore::FromParts({0, 2, 1, 3}, {4, 5, 6}).ok());
  EXPECT_FALSE(SetStore::FromParts({0, 2}, {4, 5, 6}).ok());
  // Weights column must be empty or exactly one per element.
  EXPECT_FALSE(SetStore::FromParts({0, 2}, {4, 5}, {1.0}).ok());
  EXPECT_TRUE(SetStore::FromParts({0, 2}, {4, 5}, {1.0, 2.0}).ok());
}

// ---------------------------------------------------------------------------
// Differential test: legacy nested representation vs the CSR store.

/// The pre-refactor representation and builder logic, kept only as the
/// differential-test oracle: one heap vector per group, canonicalized the
/// same way BuildSetsRelation does.
struct LegacyNestedRelation {
  std::vector<std::vector<text::TokenId>> sets;
  std::vector<double> norms;
  std::vector<double> set_weights;
};

LegacyNestedRelation BuildLegacyNested(std::vector<Doc> docs,
                                       const WeightVector& weights) {
  LegacyNestedRelation rel;
  for (Doc& doc : docs) {
    std::sort(doc.begin(), doc.end());
    doc.erase(std::unique(doc.begin(), doc.end()), doc.end());
    double wt = 0.0;
    for (text::TokenId e : doc) wt += weights[e];
    rel.set_weights.push_back(wt);
    rel.norms.push_back(wt);
    rel.sets.push_back(std::move(doc));
  }
  return rel;
}

TEST(SetStoreDifferentialTest, CsrMatchesLegacyNestedOnRandomDocs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    size_t universe = 20 + rng.Uniform(200);
    size_t num_docs = rng.Uniform(300);
    WeightVector weights(universe);
    for (double& w : weights) w = 0.01 + rng.NextDouble() * 3.0;

    std::vector<Doc> docs(num_docs);
    for (Doc& doc : docs) {
      size_t size = rng.Uniform(25);  // empty docs included
      for (size_t i = 0; i < size; ++i) {
        doc.push_back(static_cast<text::TokenId>(rng.Uniform(universe)));
      }
    }

    LegacyNestedRelation legacy = BuildLegacyNested(docs, weights);
    auto built = BuildSetsRelation(docs, weights);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const SetsRelation& rel = *built;

    ASSERT_EQ(rel.num_groups(), legacy.sets.size());
    size_t legacy_total = 0;
    for (size_t g = 0; g < legacy.sets.size(); ++g) {
      SetView view = rel.set(static_cast<GroupId>(g));
      ASSERT_EQ(std::vector<text::TokenId>(view.begin(), view.end()),
                legacy.sets[g])
          << "seed " << seed << " group " << g;
      EXPECT_EQ(view.group(), g);
      // Bit-equality on the derived doubles: both builders sum the same
      // weights in the same (sorted-id) order.
      EXPECT_EQ(rel.set_weights[g], legacy.set_weights[g]);
      EXPECT_EQ(rel.norms[g], legacy.norms[g]);
      legacy_total += legacy.sets[g].size();
    }
    EXPECT_EQ(rel.total_elements(), legacy_total);
    EXPECT_EQ(rel.store.offsets().size(), rel.num_groups() + 1);
  }
}

TEST(SetStoreDifferentialTest, CustomNormsFlowThrough) {
  WeightVector weights{1.0, 1.0};
  std::vector<double> norms{3.5, 4.5};
  auto rel = BuildSetsRelation({{0, 1}, {1}}, weights, norms);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->norms, norms);
  EXPECT_DOUBLE_EQ(rel->set_weights[0], 2.0);
}

}  // namespace
}  // namespace ssjoin::core
