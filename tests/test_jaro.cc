#include <gtest/gtest.h>

#include "sim/jaro.h"

namespace ssjoin::sim {
namespace {

TEST(JaroTest, ClassicReferenceValues) {
  // Winkler's canonical examples.
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("JELLYFISH", "SMELLYFISH"), 0.896296, 1e-5);
}

TEST(JaroTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", "a"), 1.0);
}

TEST(JaroTest, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("kitten", "sitting"),
                   JaroSimilarity("sitting", "kitten"));
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("dwayne", "duane"),
                   JaroWinklerSimilarity("duane", "dwayne"));
}

TEST(JaroWinklerTest, ClassicReferenceValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DWAYNE", "DUANE"), 0.840000, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostsButNeverExceedsOne) {
  double jaro = JaroSimilarity("prefixed", "prefixes");
  double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
  // No common prefix: no boost.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abcd", "xbcd"),
                   JaroSimilarity("abcd", "xbcd"));
}

TEST(JaroWinklerTest, PrefixCapAtFour) {
  // Identical 10-char prefix must not over-boost beyond the 4-char cap.
  double with_cap = JaroWinklerSimilarity("abcdefghij", "abcdefghiX");
  double manual =
      JaroSimilarity("abcdefghij", "abcdefghiX") +
      4 * 0.1 * (1.0 - JaroSimilarity("abcdefghij", "abcdefghiX"));
  EXPECT_DOUBLE_EQ(with_cap, manual);
}

TEST(JaroTest, BoundedInUnitInterval) {
  const char* samples[] = {"", "a", "ab", "hello world", "Mcrosoft Corp",
                           "completely different"};
  for (const char* x : samples) {
    for (const char* y : samples) {
      double j = JaroSimilarity(x, y);
      double jw = JaroWinklerSimilarity(x, y);
      EXPECT_GE(j, 0.0);
      EXPECT_LE(j, 1.0);
      EXPECT_GE(jw, j - 1e-12);
      EXPECT_LE(jw, 1.0);
    }
  }
}

}  // namespace
}  // namespace ssjoin::sim
