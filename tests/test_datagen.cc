#include <gtest/gtest.h>

#include <set>

#include "datagen/address_gen.h"
#include "datagen/contact_gen.h"
#include "datagen/error_model.h"
#include "datagen/publication_gen.h"
#include "datagen/wordlists.h"
#include "sim/edit_distance.h"

namespace ssjoin::datagen {
namespace {

TEST(WordlistsTest, PoolsAreNonEmptyAndAligned) {
  EXPECT_GT(FirstNames().size(), 50u);
  EXPECT_EQ(StreetTypes().size(), StreetTypesLong().size());
  EXPECT_EQ(StateCodes().size(), 50u);
  EXPECT_FALSE(Directions().empty());
  EXPECT_FALSE(UnitTypes().empty());
}

TEST(WordlistsTest, ProperNounsAreDistinctAndDeterministic) {
  auto a = GenerateProperNouns(500, 9);
  auto b = GenerateProperNouns(500, 9);
  EXPECT_EQ(a, b);
  std::set<std::string> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), 500u);
  for (const auto& w : a) {
    EXPECT_GE(w.size(), 2u);
    EXPECT_TRUE(w[0] >= 'A' && w[0] <= 'Z');
  }
  auto c = GenerateProperNouns(50, 10);
  EXPECT_NE(a[0], c[0]);
}

TEST(ZipfPoolTest, SkewConcentratesOnHead) {
  ZipfPool pool(GenerateProperNouns(100, 1), 1.2);
  Rng rng(2);
  size_t head_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string& w = pool.Sample(&rng);
    if (w == pool.words()[0] || w == pool.words()[1] || w == pool.words()[2]) {
      ++head_hits;
    }
  }
  EXPECT_GT(head_hits, 1000u);  // top-3 of 100 get a large share
}

TEST(ErrorModelTest, CharEditChangesString) {
  Rng rng(5);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    std::string s = "reference string";
    std::string edited = ApplyCharEdit(s, &rng);
    // One edit operation moves edit distance by at most 2 (transpose).
    EXPECT_LE(sim::EditDistance(s, edited), 2u);
    if (edited != s) ++changed;
  }
  EXPECT_GT(changed, 80);  // substitutions may rarely no-op
}

TEST(ErrorModelTest, EmptyStringGetsInsert) {
  Rng rng(6);
  EXPECT_EQ(ApplyCharEdit("", &rng).size(), 1u);
}

TEST(ErrorModelTest, CorruptRecordStaysSimilar) {
  Rng rng(7);
  ErrorModelOptions opts;  // defaults
  std::string original = "James Thorveen 4821 NE Shauner Ave Redmond WA 98052";
  for (int i = 0; i < 50; ++i) {
    std::string corrupted = CorruptRecord(original, {{"Ave", "Avenue"}}, opts, &rng);
    EXPECT_FALSE(corrupted.empty());
    // Bounded damage: still recognizably the same record.
    EXPECT_LE(sim::EditDistance(original, corrupted), original.size() / 2);
  }
}

TEST(AddressGenTest, DeterministicAndSized) {
  AddressGenOptions opts;
  opts.num_records = 300;
  opts.seed = 123;
  AddressDataset a = GenerateAddresses(opts);
  AddressDataset b = GenerateAddresses(opts);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.records.size(), 300u);
  EXPECT_EQ(a.duplicate_of.size(), 300u);
  opts.seed = 124;
  AddressDataset c = GenerateAddresses(opts);
  EXPECT_NE(a.records, c.records);
}

TEST(AddressGenTest, DuplicateFractionRoughlyRespected) {
  AddressGenOptions opts;
  opts.num_records = 2000;
  opts.duplicate_fraction = 0.3;
  AddressDataset data = GenerateAddresses(opts);
  double fraction =
      static_cast<double>(data.num_duplicates()) / data.records.size();
  EXPECT_GT(fraction, 0.24);
  EXPECT_LT(fraction, 0.36);
  for (size_t i = 0; i < data.records.size(); ++i) {
    if (data.duplicate_of[i] >= 0) {
      EXPECT_LT(data.duplicate_of[i], static_cast<int64_t>(i));
    }
  }
}

TEST(AddressGenTest, DuplicatesResembleSources) {
  AddressGenOptions opts;
  opts.num_records = 500;
  AddressDataset data = GenerateAddresses(opts);
  size_t close = 0;
  size_t dups = 0;
  for (size_t i = 0; i < data.records.size(); ++i) {
    if (data.duplicate_of[i] < 0) continue;
    ++dups;
    const std::string& src = data.records[data.duplicate_of[i]];
    if (sim::EditSimilarity(src, data.records[i]) > 0.7) ++close;
  }
  ASSERT_GT(dups, 0u);
  // Most duplicates stay textually close (abbreviations can move a few far).
  EXPECT_GT(static_cast<double>(close) / dups, 0.7);
}

TEST(AddressGenTest, RecordsLookLikeAddresses) {
  AddressGenOptions opts;
  opts.num_records = 100;
  opts.duplicate_fraction = 0.0;
  AddressDataset data = GenerateAddresses(opts);
  for (const std::string& r : data.records) {
    EXPECT_GE(r.size(), 15u) << r;
    // Ends with a 5-digit zip.
    ASSERT_GE(r.size(), 5u);
    for (size_t i = r.size() - 5; i < r.size(); ++i) {
      EXPECT_TRUE(r[i] >= '0' && r[i] <= '9') << r;
    }
  }
}

TEST(AddressGenTest, FrequentStreetTypeTokens) {
  // The generator must reproduce the frequent-token skew ("St", "Ave") the
  // paper's §4.1 blames for the equi-join blowup.
  AddressGenOptions opts;
  opts.num_records = 1000;
  opts.duplicate_fraction = 0.0;
  AddressDataset data = GenerateAddresses(opts);
  size_t with_type = 0;
  for (const std::string& r : data.records) {
    for (const std::string& t : StreetTypes()) {
      if (r.find(' ' + t + ' ') != std::string::npos) {
        ++with_type;
        break;
      }
    }
  }
  EXPECT_GT(with_type, 900u);
}

TEST(PublicationGenTest, GroundTruthParallelArrays) {
  PublicationGenOptions opts;
  opts.num_authors = 50;
  PublicationDataset data = GeneratePublications(opts);
  EXPECT_EQ(data.source1_names.size(), 50u);
  EXPECT_EQ(data.source2_names.size(), 50u);
  EXPECT_GE(data.source1_rows.size(), 50u * opts.min_papers_per_author / 2);
  // Naming conventions differ between the sources.
  EXPECT_NE(data.source1_names[0], data.source2_names[0]);
  EXPECT_NE(data.source2_names[0].find(','), std::string::npos);
}

TEST(PublicationGenTest, Deterministic) {
  PublicationGenOptions opts;
  opts.num_authors = 30;
  PublicationDataset a = GeneratePublications(opts);
  PublicationDataset b = GeneratePublications(opts);
  EXPECT_EQ(a.source1_rows, b.source1_rows);
  EXPECT_EQ(a.source2_rows, b.source2_rows);
}

TEST(ContactGenTest, RowsHaveThreeAttributes) {
  ContactGenOptions opts;
  opts.num_records = 200;
  ContactDataset data = GenerateContacts(opts);
  EXPECT_EQ(data.aep_rows.size(), 200u);
  EXPECT_EQ(data.names.size(), 200u);
  for (const auto& row : data.aep_rows) {
    ASSERT_EQ(row.size(), 3u);
    EXPECT_NE(row[1].find('@'), std::string::npos);  // email
    EXPECT_NE(row[2].find('-'), std::string::npos);  // phone
  }
}

TEST(ContactGenTest, DuplicatesAgreeOnMostAttributes) {
  ContactGenOptions opts;
  opts.num_records = 500;
  opts.max_perturbed_attrs = 1;
  ContactDataset data = GenerateContacts(opts);
  size_t dups = 0;
  for (size_t i = 0; i < data.aep_rows.size(); ++i) {
    if (data.duplicate_of[i] < 0) continue;
    ++dups;
    const auto& src = data.aep_rows[data.duplicate_of[i]];
    size_t agree = 0;
    for (size_t c = 0; c < 3; ++c) agree += (src[c] == data.aep_rows[i][c]);
    EXPECT_GE(agree, 2u);
    EXPECT_EQ(data.names[i], data.names[data.duplicate_of[i]]);
  }
  EXPECT_GT(dups, 50u);
}

}  // namespace
}  // namespace ssjoin::datagen
