#include <gtest/gtest.h>

#include "core/predicate.h"

namespace ssjoin::core {
namespace {

TEST(ThresholdExprTest, EvalIsLinear) {
  ThresholdExpr e{2.0, 0.5, 0.25};
  EXPECT_DOUBLE_EQ(e.Eval(4.0, 8.0), 2.0 + 2.0 + 2.0);
}

TEST(OverlapPredicateTest, AbsoluteOverlap) {
  OverlapPredicate p = OverlapPredicate::Absolute(10.0);
  // Example 1: overlap 10 joins the Microsoft/Mcrosoft pair.
  EXPECT_TRUE(p.Test(10.0, 12.0, 11.0));
  EXPECT_FALSE(p.Test(9.0, 12.0, 11.0));
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(12.0, 11.0), 10.0);
}

TEST(OverlapPredicateTest, OneSidedNormalized) {
  // Example 2: Overlap >= 0.8 * R.norm with R.norm = 12 -> 9.6; overlap 10
  // joins the pair.
  OverlapPredicate p = OverlapPredicate::OneSidedNormalized(0.8);
  EXPECT_TRUE(p.Test(10.0, 12.0, 11.0));
  EXPECT_FALSE(p.Test(9.0, 12.0, 11.0));
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(12.0, 11.0), 9.6);
}

TEST(OverlapPredicateTest, TwoSidedNormalizedIsMaxForm) {
  // Example 2: 10 >= 80% of 12 and 80% of 11.
  OverlapPredicate p = OverlapPredicate::TwoSidedNormalized(0.8);
  EXPECT_TRUE(p.Test(10.0, 12.0, 11.0));
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(12.0, 11.0), 9.6);
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(11.0, 12.0), 9.6);  // max of the two
  EXPECT_FALSE(p.Test(9.5, 12.0, 11.0));
}

TEST(OverlapPredicateTest, ConjunctionTakesMax) {
  OverlapPredicate p;
  p.And({5.0, 0.0, 0.0}).And({0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(3.0, 100.0), 5.0);   // constant dominates
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(8.0, 100.0), 8.0);   // norm dominates
}

TEST(OverlapPredicateTest, RequiredOverlapFloorsAtZero) {
  OverlapPredicate p;
  p.And({-10.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(1.0, 1.0), 0.0);
  EXPECT_TRUE(p.Test(0.5, 1.0, 1.0));
}

TEST(OverlapPredicateTest, EmptyPredicateAcceptsEverything) {
  OverlapPredicate p;
  EXPECT_DOUBLE_EQ(p.RequiredOverlap(5.0, 5.0), 0.0);
  EXPECT_TRUE(p.Test(0.0, 5.0, 5.0));
}

TEST(OverlapPredicateTest, SideBoundsAreValidLowerBounds) {
  OverlapPredicate p = OverlapPredicate::TwoSidedNormalized(0.8);
  // For any s_norm >= 0, RSideRequired(rn) <= RequiredOverlap(rn, sn).
  for (double rn : {0.0, 1.0, 7.5, 100.0}) {
    for (double sn : {0.0, 2.0, 50.0}) {
      EXPECT_LE(p.RSideRequired(rn), p.RequiredOverlap(rn, sn) + 1e-12);
      EXPECT_LE(p.SSideRequired(sn), p.RequiredOverlap(rn, sn) + 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(p.RSideRequired(10.0), 8.0);
  EXPECT_DOUBLE_EQ(p.SSideRequired(10.0), 8.0);
}

TEST(OverlapPredicateTest, OneSidedLeavesOtherSideUnfiltered) {
  OverlapPredicate p = OverlapPredicate::OneSidedNormalized(0.8);
  EXPECT_DOUBLE_EQ(p.RSideRequired(10.0), 8.0);
  // The S side cannot be bounded by an R-norm conjunct: required 0 ->
  // beta = wt(set) -> whole set passes (the §4.2 1-sided rule).
  EXPECT_DOUBLE_EQ(p.SSideRequired(10.0), 0.0);
}

TEST(OverlapPredicateTest, NegativeOtherCoefficientSkipped) {
  OverlapPredicate p;
  p.And({5.0, 0.0, -1.0});  // cannot be bounded from the R side
  EXPECT_DOUBLE_EQ(p.RSideRequired(100.0), 0.0);
  EXPECT_DOUBLE_EQ(p.SSideRequired(2.0), 3.0);
}

TEST(OverlapPredicateTest, ToStringMentionsNorms) {
  OverlapPredicate p = OverlapPredicate::TwoSidedNormalized(0.8);
  std::string s = p.ToString();
  EXPECT_NE(s.find("R.norm"), std::string::npos);
  EXPECT_NE(s.find("S.norm"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_EQ(OverlapPredicate().ToString(), "Overlap >= 0");
}

}  // namespace
}  // namespace ssjoin::core
