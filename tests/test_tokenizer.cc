#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace ssjoin::text {
namespace {

TEST(QGramTokenizerTest, PaperExample) {
  // Section 2: "Microsoft Corporation" as 3-grams starts 'Mic','icr','cro',...
  QGramTokenizer tok(3);
  auto grams = tok.Tokenize("Microsoft Corp");
  ASSERT_EQ(grams.size(), 12u);  // the paper's norm column (Figure 1)
  EXPECT_EQ(grams[0], "Mic");
  EXPECT_EQ(grams[1], "icr");
  EXPECT_EQ(grams.back(), "orp");
}

TEST(QGramTokenizerTest, SecondPaperString) {
  QGramTokenizer tok(3);
  auto grams = tok.Tokenize("Mcrosoft Corp");
  EXPECT_EQ(grams.size(), 11u);  // Figure 1's norm 11
}

TEST(QGramTokenizerTest, CountMatchesNumGrams) {
  QGramTokenizer tok(4);
  for (const char* s : {"", "a", "abc", "abcd", "abcdefgh"}) {
    EXPECT_EQ(tok.Tokenize(s).size(), tok.NumGrams(std::string_view(s).size()))
        << "string: " << s;
  }
}

TEST(QGramTokenizerTest, ShortStringYieldsWholeString) {
  QGramTokenizer tok(3);
  auto grams = tok.Tokenize("ab");
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(QGramTokenizerTest, EmptyStringYieldsNothing) {
  QGramTokenizer tok(3);
  EXPECT_TRUE(tok.Tokenize("").empty());
}

TEST(QGramTokenizerTest, PaddedGramCount) {
  QGramTokenizer tok(3, /*pad=*/true, '$');
  auto grams = tok.Tokenize("ab");
  // len + q - 1 = 2 + 2 = 4 grams: $$a, $ab, ab$, b$$
  ASSERT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams[0], "$$a");
  EXPECT_EQ(grams[3], "b$$");
}

TEST(QGramTokenizerTest, PaddedEmptyString) {
  // Padding an empty string leaves 2(q-1) pad chars => q-1 all-pad grams;
  // NumGrams must agree (len + q - 1 with len = 0).
  QGramTokenizer tok(3, /*pad=*/true, '$');
  auto grams = tok.Tokenize("");
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "$$$");
  EXPECT_EQ(grams[1], "$$$");
  EXPECT_EQ(tok.NumGrams(0), 2u);
}

TEST(QGramTokenizerTest, PaddedUnigramIsUnpadded) {
  // q=1 needs no pad chars: the empty string produces nothing, "a" itself.
  QGramTokenizer tok(1, /*pad=*/true);
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_EQ(tok.NumGrams(0), 0u);
  auto grams = tok.Tokenize("a");
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "a");
}

TEST(QGramTokenizerTest, PaddedCountMatchesNumGrams) {
  for (size_t q : {1, 2, 3, 5}) {
    QGramTokenizer tok(q, /*pad=*/true);
    for (const char* s : {"", "a", "ab", "abc", "abcdefgh"}) {
      EXPECT_EQ(tok.Tokenize(s).size(), tok.NumGrams(std::string_view(s).size()))
          << "q=" << q << " string: " << s;
    }
  }
}

TEST(QGramTokenizerTest, ShortStringsBelowQ) {
  // Unpadded strings below q collapse to a single whole-string token at
  // every length in (0, q) — no string maps to the empty set except "".
  QGramTokenizer tok(4);
  for (const char* s : {"a", "ab", "abc"}) {
    auto grams = tok.Tokenize(s);
    ASSERT_EQ(grams.size(), 1u) << s;
    EXPECT_EQ(grams[0], s);
  }
  EXPECT_TRUE(tok.Tokenize("").empty());
}

TEST(QGramTokenizerTest, PreservesDuplicates) {
  QGramTokenizer tok(2);
  auto grams = tok.Tokenize("aaa");
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "aa");
  EXPECT_EQ(grams[1], "aa");  // multiset semantics
}

TEST(QGramTokenizerTest, UnigramsWork) {
  QGramTokenizer tok(1);
  auto grams = tok.Tokenize("abc");
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[2], "c");
}

TEST(QGramTokenizerTest, Describe) {
  EXPECT_EQ(QGramTokenizer(3).Describe(), "qgram(q=3)");
  EXPECT_EQ(QGramTokenizer(2, true).Describe(), "qgram(q=2, padded)");
}

TEST(WordTokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  WordTokenizer tok;
  auto words = tok.Tokenize("Microsoft Corp, Redmond. WA");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "Microsoft");
  EXPECT_EQ(words[1], "Corp");
  EXPECT_EQ(words[2], "Redmond");
  EXPECT_EQ(words[3], "WA");
}

TEST(WordTokenizerTest, EmptyAndDelimiterOnly) {
  WordTokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  ,.  ").empty());
}

TEST(WordTokenizerTest, CustomDelimiters) {
  WordTokenizer tok("|");
  auto words = tok.Tokenize("a|b c|d");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[1], "b c");
}

TEST(WordTokenizerTest, PreservesDuplicates) {
  WordTokenizer tok;
  auto words = tok.Tokenize("the cat and the dog");
  EXPECT_EQ(words.size(), 5u);  // "the" appears twice
}

}  // namespace
}  // namespace ssjoin::text
