#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/ssjoin.h"
#include "simjoin/prep.h"
#include "text/tokenizer.h"

namespace ssjoin::core {
namespace {

constexpr SSJoinAlgorithm kAllAlgorithms[] = {
    SSJoinAlgorithm::kNaive, SSJoinAlgorithm::kBasic,
    SSJoinAlgorithm::kInvertedIndex, SSJoinAlgorithm::kPrefixFilter,
    SSJoinAlgorithm::kPrefixFilterInline};

/// Builds a small fixture: weights, order, and two relations over a random
/// universe.
struct Fixture {
  WeightVector weights;
  ElementOrder order;
  SetsRelation r;
  SetsRelation s;

  SSJoinContext Context() const { return {&weights, &order}; }
};

Fixture RandomFixture(uint64_t seed, size_t universe, size_t r_groups,
                      size_t s_groups, bool unit_weights) {
  Rng rng(seed);
  Fixture f;
  f.weights.resize(universe);
  for (double& w : f.weights) {
    w = unit_weights ? 1.0 : 0.05 + rng.NextDouble() * 2.0;
  }
  f.order = ElementOrder::ByDecreasingWeight(f.weights);
  auto make_docs = [&](size_t n) {
    std::vector<std::vector<text::TokenId>> docs(n);
    for (auto& doc : docs) {
      size_t size = 1 + rng.Uniform(10);
      for (size_t i = 0; i < size; ++i) {
        doc.push_back(static_cast<text::TokenId>(rng.Uniform(universe)));
      }
    }
    return docs;
  };
  f.r = *BuildSetsRelation(make_docs(r_groups), f.weights);
  f.s = *BuildSetsRelation(make_docs(s_groups), f.weights);
  return f;
}

std::vector<SSJoinPair> RunAlgo(SSJoinAlgorithm algorithm, const Fixture& f,
                            const OverlapPredicate& pred,
                            SSJoinStats* stats = nullptr) {
  auto result = ExecuteSSJoin(algorithm, f.r, f.s, pred, f.Context(), stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::vector<SSJoinPair> pairs = *result;
  SortPairs(&pairs);
  return pairs;
}

TEST(SSJoinCoreTest, PaperExample1) {
  // Figure 1 / Example 1: 3-gram sets of "Microsoft Corp" (12 grams) and
  // "Mcrosoft Corp" (11 grams) overlap in exactly 10 grams, so the pair is
  // returned under Overlap >= 10 and under the 80%-normalized predicates.
  text::QGramTokenizer tok(3);
  text::TokenDictionary dict;
  std::vector<std::vector<text::TokenId>> r_docs{
      dict.EncodeDocument(tok.Tokenize("Microsoft Corp"))};
  std::vector<std::vector<text::TokenId>> s_docs{
      dict.EncodeDocument(tok.Tokenize("Mcrosoft Corp"))};
  WeightVector weights(dict.num_elements(), 1.0);
  ElementOrder order = ElementOrder::ById(dict.num_elements());
  SetsRelation r = *BuildSetsRelation(r_docs, weights);
  SetsRelation s = *BuildSetsRelation(s_docs, weights);
  EXPECT_DOUBLE_EQ(r.norms[0], 12.0);
  EXPECT_DOUBLE_EQ(s.norms[0], 11.0);
  SSJoinContext ctx{&weights, &order};

  for (SSJoinAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(SSJoinAlgorithmName(algorithm));
    auto pairs = *ExecuteSSJoin(algorithm, r, s,
                                OverlapPredicate::Absolute(10.0), ctx, nullptr);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_DOUBLE_EQ(pairs[0].overlap, 10.0);

    // 1-sided: 10 >= 0.8 * 12 = 9.6.
    pairs = *ExecuteSSJoin(algorithm, r, s,
                           OverlapPredicate::OneSidedNormalized(0.8), ctx, nullptr);
    EXPECT_EQ(pairs.size(), 1u);
    // 2-sided: 10 >= 0.8*12 and 0.8*11.
    pairs = *ExecuteSSJoin(algorithm, r, s,
                           OverlapPredicate::TwoSidedNormalized(0.8), ctx, nullptr);
    EXPECT_EQ(pairs.size(), 1u);
    // Absolute 11 rejects.
    pairs = *ExecuteSSJoin(algorithm, r, s, OverlapPredicate::Absolute(11.0), ctx,
                           nullptr);
    EXPECT_TRUE(pairs.empty());
  }
}

/// All implementations must agree pairwise with the naive reference, on both
/// weighted and unweighted inputs and across predicate shapes.
class SSJoinEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(SSJoinEquivalenceTest, AllAlgorithmsMatchNaive) {
  auto [seed, unit_weights] = GetParam();
  Fixture f = RandomFixture(seed, /*universe=*/30, /*r_groups=*/60,
                            /*s_groups=*/50, unit_weights);
  std::vector<OverlapPredicate> predicates;
  predicates.push_back(OverlapPredicate::Absolute(2.0));
  predicates.push_back(OverlapPredicate::Absolute(0.5));
  predicates.push_back(OverlapPredicate::OneSidedNormalized(0.6));
  predicates.push_back(OverlapPredicate::OneSidedNormalized(0.95));
  predicates.push_back(OverlapPredicate::TwoSidedNormalized(0.5));
  predicates.push_back(OverlapPredicate::TwoSidedNormalized(0.9));
  {
    OverlapPredicate mixed;
    mixed.And({1.0, 0.25, 0.0}).And({0.5, 0.0, 0.4});
    predicates.push_back(mixed);
  }

  for (size_t pi = 0; pi < predicates.size(); ++pi) {
    SCOPED_TRACE("predicate " + predicates[pi].ToString());
    auto expected = RunAlgo(SSJoinAlgorithm::kNaive, f, predicates[pi]);
    for (SSJoinAlgorithm algorithm :
         {SSJoinAlgorithm::kBasic, SSJoinAlgorithm::kInvertedIndex,
          SSJoinAlgorithm::kPrefixFilter, SSJoinAlgorithm::kPrefixFilterInline}) {
      SCOPED_TRACE(SSJoinAlgorithmName(algorithm));
      auto got = RunAlgo(algorithm, f, predicates[pi]);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].r, expected[i].r);
        EXPECT_EQ(got[i].s, expected[i].s);
        EXPECT_NEAR(got[i].overlap, expected[i].overlap, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, SSJoinEquivalenceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_unit" : "_weighted");
    });

TEST(SSJoinCoreTest, SelfJoinIncludesIdenticalGroups) {
  Fixture f = RandomFixture(11, 20, 30, 1, true);
  auto pairs = *ExecuteSSJoin(SSJoinAlgorithm::kPrefixFilterInline, f.r, f.r,
                              OverlapPredicate::TwoSidedNormalized(1.0),
                              f.Context(), nullptr);
  // Every group matches itself at resemblance 1 (plus possible exact dupes).
  EXPECT_GE(pairs.size(), f.r.num_groups());
}

TEST(SSJoinCoreTest, EmptyRelations) {
  WeightVector weights{1.0};
  ElementOrder order = ElementOrder::ById(1);
  SetsRelation empty;
  SetsRelation one = *BuildSetsRelation({{0}}, weights);
  SSJoinContext ctx{&weights, &order};
  for (SSJoinAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(SSJoinAlgorithmName(algorithm));
    EXPECT_TRUE(ExecuteSSJoin(algorithm, empty, one,
                              OverlapPredicate::Absolute(1.0), ctx, nullptr)
                    ->empty());
    EXPECT_TRUE(ExecuteSSJoin(algorithm, one, empty,
                              OverlapPredicate::Absolute(1.0), ctx, nullptr)
                    ->empty());
    EXPECT_TRUE(ExecuteSSJoin(algorithm, empty, empty,
                              OverlapPredicate::Absolute(1.0), ctx, nullptr)
                    ->empty());
  }
}

TEST(SSJoinCoreTest, PairsWithEmptyIntersectionNeverEmitted) {
  WeightVector weights{1.0, 1.0};
  ElementOrder order = ElementOrder::ById(2);
  SetsRelation r = *BuildSetsRelation({{0}}, weights);
  SetsRelation s = *BuildSetsRelation({{1}}, weights);
  SSJoinContext ctx{&weights, &order};
  OverlapPredicate trivial;  // required overlap 0
  for (SSJoinAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(SSJoinAlgorithmName(algorithm));
    EXPECT_TRUE(ExecuteSSJoin(algorithm, r, s, trivial, ctx, nullptr)->empty());
  }
}

TEST(SSJoinCoreTest, MissingWeightsRejected) {
  SetsRelation r;
  SSJoinContext ctx{nullptr, nullptr};
  auto result = ExecuteSSJoin(SSJoinAlgorithm::kBasic, r, r,
                              OverlapPredicate::Absolute(1.0), ctx, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(SSJoinCoreTest, PrefixAlgorithmsRequireOrder) {
  WeightVector weights{1.0};
  SetsRelation r = *BuildSetsRelation({{0}}, weights);
  SSJoinContext ctx{&weights, nullptr};
  EXPECT_FALSE(ExecuteSSJoin(SSJoinAlgorithm::kPrefixFilter, r, r,
                             OverlapPredicate::Absolute(1.0), ctx, nullptr)
                   .ok());
  EXPECT_FALSE(ExecuteSSJoin(SSJoinAlgorithm::kPrefixFilterInline, r, r,
                             OverlapPredicate::Absolute(1.0), ctx, nullptr)
                   .ok());
  // Non-prefix algorithms run fine without an order.
  EXPECT_TRUE(ExecuteSSJoin(SSJoinAlgorithm::kBasic, r, r,
                            OverlapPredicate::Absolute(1.0), ctx, nullptr)
                  .ok());
}

TEST(SSJoinCoreTest, WeightsTooSmallRejected) {
  WeightVector weights{1.0};
  SetsRelation r = *BuildSetsRelation({{0}}, weights);
  // Manually corrupt the relation to reference an uncovered element.
  r.store = *SetStore::FromParts({0, 2}, {0, 5});
  ElementOrder order = ElementOrder::ById(1);
  SSJoinContext ctx{&weights, &order};
  EXPECT_FALSE(ExecuteSSJoin(SSJoinAlgorithm::kBasic, r, r,
                             OverlapPredicate::Absolute(1.0), ctx, nullptr)
                   .ok());
}

TEST(SSJoinCoreTest, StatsReportPhasesAndCounts) {
  Fixture f = RandomFixture(77, 25, 40, 40, false);
  OverlapPredicate pred = OverlapPredicate::TwoSidedNormalized(0.7);

  SSJoinStats basic_stats;
  auto basic = RunAlgo(SSJoinAlgorithm::kBasic, f, pred, &basic_stats);
  EXPECT_EQ(basic_stats.result_pairs, basic.size());
  EXPECT_GT(basic_stats.equijoin_rows, 0u);
  EXPECT_GE(basic_stats.candidate_pairs, basic.size());
  EXPECT_GT(basic_stats.phases.Millis("SSJoin"), 0.0);

  SSJoinStats prefix_stats;
  auto prefix = RunAlgo(SSJoinAlgorithm::kPrefixFilterInline, f, pred, &prefix_stats);
  EXPECT_EQ(prefix_stats.result_pairs, prefix.size());
  EXPECT_GT(prefix_stats.r_prefix_elements, 0u);
  EXPECT_LE(prefix_stats.r_prefix_elements, f.r.total_elements());
  EXPECT_GE(prefix_stats.candidate_pairs, prefix.size());
  // The whole point: prefix candidates <= the basic equi-join's group pairs.
  EXPECT_LE(prefix_stats.candidate_pairs, basic_stats.candidate_pairs);
  ASSERT_GE(prefix_stats.phases.phases().size(), 2u);
  EXPECT_EQ(prefix_stats.phases.phases()[0].first, "Prefix-filter");
}

TEST(SSJoinCoreTest, HighThresholdPrunesGroups) {
  WeightVector weights{1.0, 1.0, 1.0};
  ElementOrder order = ElementOrder::ById(3);
  // One group with weight 2; absolute threshold 5 can never be met.
  SetsRelation r = *BuildSetsRelation({{0, 1}}, weights);
  SetsRelation s = *BuildSetsRelation({{0, 1, 2}}, weights);
  SSJoinContext ctx{&weights, &order};
  SSJoinStats stats;
  auto pairs = *ExecuteSSJoin(SSJoinAlgorithm::kPrefixFilter, r, s,
                              OverlapPredicate::Absolute(5.0), ctx, &stats);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(stats.pruned_groups_r, 1u);
}

TEST(SSJoinCoreTest, AlgorithmNames) {
  EXPECT_STREQ(SSJoinAlgorithmName(SSJoinAlgorithm::kNaive), "naive");
  EXPECT_STREQ(SSJoinAlgorithmName(SSJoinAlgorithm::kBasic), "basic");
  EXPECT_STREQ(SSJoinAlgorithmName(SSJoinAlgorithm::kPrefixFilterInline),
               "prefix-filter-inline");
  for (SSJoinAlgorithm a : kAllAlgorithms) {
    EXPECT_EQ(MakeExecutor(a)->name(), SSJoinAlgorithmName(a));
  }
}

}  // namespace
}  // namespace ssjoin::core
