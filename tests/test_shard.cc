/// Sharding tests: the shard-count invariance contract (N-shard lookups are
/// bit-identical to an unsharded oracle, fresh and WAL-replayed), router
/// basics, deadline budgeting, hedged retries, sealed-snapshot replication
/// and the exact wire-value encodings.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "index/manifest.h"
#include "index/mutable_index.h"
#include "shard/replication.h"
#include "shard/router.h"
#include "shard/sharded_index.h"
#include "shard/wire_client.h"

namespace ssjoin::shard {
namespace {

using index::MutableFuzzyIndex;

std::vector<std::string> Master(size_t n, uint64_t seed) {
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.0;
  opts.seed = seed;
  return datagen::GenerateAddresses(opts).records;
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n, uint64_t seed) {
  Rng rng(seed);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

/// The unsharded oracle: one MutableFuzzyIndex over the same records.
std::unique_ptr<MutableFuzzyIndex> Oracle(
    const std::vector<std::pair<uint64_t, std::string>>& records, double alpha) {
  index::MutableIndexOptions options;
  options.match.alpha = alpha;
  auto index = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
  EXPECT_TRUE(index->BulkLoad(records).ok());
  return index;
}

ShardedIndexOptions ShardOptions(uint32_t n, double alpha) {
  ShardedIndexOptions options;
  options.num_shards = n;
  options.match.alpha = alpha;
  return options;
}

void ExpectBitIdentical(const std::vector<MutableFuzzyIndex::Match>& oracle,
                        const std::vector<MutableFuzzyIndex::Match>& sharded,
                        uint32_t n, const std::string& query) {
  ASSERT_EQ(oracle.size(), sharded.size())
      << "N=" << n << " query: " << query;
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].id, sharded[i].id) << "N=" << n << " query: " << query;
    // Bitwise, not approximate: the whole point of global-stats mode.
    EXPECT_EQ(oracle[i].similarity, sharded[i].similarity)
        << "N=" << n << " rank " << i << " query: " << query;
  }
}

TEST(ShardRouter, CoversAllShardsAndIsStable) {
  for (uint32_t n : {1u, 2u, 3u, 8u, 13u}) {
    std::vector<uint64_t> hits(n, 0);
    for (uint64_t id = 0; id < 10'000; ++id) {
      uint32_t s = ShardOf(id, n);
      ASSERT_LT(s, n);
      EXPECT_EQ(s, ShardOf(id, n));  // pure function of (id, n)
      hits[s]++;
    }
    // Mix64 spreads sequential ids: no shard may be empty or hog the keys.
    for (uint32_t s = 0; s < n; ++s) {
      EXPECT_GT(hits[s], 10'000 / (n * 4)) << "n=" << n << " shard " << s;
    }
  }
  EXPECT_EQ(ShardOf(42, 0), 0u);
  EXPECT_EQ(ShardOf(42, 1), 0u);
}

TEST(ShardedIndex, BitIdenticalToOracleAcrossShardCounts) {
  auto master = Master(120, 7);
  std::vector<std::pair<uint64_t, std::string>> records;
  for (size_t i = 0; i < master.size(); ++i) {
    records.emplace_back(i * 37 + 5, master[i]);  // non-contiguous ids
  }
  auto oracle = Oracle(records, 0.35);
  auto queries = DirtyQueries(master, 40, 11);

  for (uint32_t n : {1u, 2u, 3u, 8u}) {
    auto sharded =
        ShardedLookupIndex::Create(ShardOptions(n, 0.35)).MoveValueUnsafe();
    ASSERT_TRUE(sharded->BulkLoad(records).ok());
    ASSERT_EQ(sharded->num_shards(), n);
    for (const auto& q : queries) {
      auto got = sharded->Lookup(q, 5);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitIdentical(oracle->Lookup(q, 5), *got, n, q);
    }
  }
}

TEST(ShardedIndex, BitIdenticalUnderInterleavedMutations) {
  auto master = Master(80, 3);
  auto queries = DirtyQueries(master, 20, 23);

  index::MutableIndexOptions oracle_options;
  oracle_options.match.alpha = 0.35;
  auto oracle = MutableFuzzyIndex::Create(oracle_options).MoveValueUnsafe();

  for (uint32_t n : {2u, 3u, 8u}) {
    auto sharded =
        ShardedLookupIndex::Create(ShardOptions(n, 0.35)).MoveValueUnsafe();
    // Rebuild the oracle fresh for each N so both sides see the exact same
    // mutation history.
    oracle = MutableFuzzyIndex::Create(oracle_options).MoveValueUnsafe();

    std::mt19937_64 rng(n * 1000 + 17);
    for (size_t step = 0; step < master.size(); ++step) {
      uint64_t id = rng() % 64;
      if (step % 5 == 4) {
        ASSERT_TRUE(oracle->Delete(id).ok());
        ASSERT_TRUE(sharded->Delete(id).ok());
      } else {
        ASSERT_TRUE(oracle->Upsert(id, master[step]).ok());
        ASSERT_TRUE(sharded->Upsert(id, master[step]).ok());
      }
      if (step % 10 == 9) {
        const std::string& q = queries[(step / 10) % queries.size()];
        auto got = sharded->Lookup(q, 4);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectBitIdentical(oracle->Lookup(q, 4), *got, n, q);
      }
    }
    // Seal + compact must not change any result, only epochs.
    ASSERT_TRUE(sharded->Seal().ok());
    ASSERT_TRUE(sharded->Compact().ok());
    for (const auto& q : queries) {
      auto got = sharded->Lookup(q, 4);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitIdentical(oracle->Lookup(q, 4), *got, n, q);
    }
  }
}

TEST(ShardedIndex, BitIdenticalAfterWalReplayedReopen) {
  std::string dir = ::testing::TempDir() + "/sharded_reopen";
  std::filesystem::remove_all(dir);
  auto master = Master(60, 29);
  std::vector<std::pair<uint64_t, std::string>> records;
  for (size_t i = 0; i < master.size(); ++i) records.emplace_back(i, master[i]);
  auto oracle = Oracle(records, 0.35);
  auto queries = DirtyQueries(master, 15, 31);

  {
    auto options = ShardOptions(3, 0.35);
    options.data_dir = dir;
    options.seal_threshold = 8;  // force some sealed segments
    auto sharded = ShardedLookupIndex::Create(options).MoveValueUnsafe();
    // Half through BulkLoad (sealed), half through the WAL tail (replayed).
    std::vector<std::pair<uint64_t, std::string>> first(records.begin(),
                                                        records.begin() + 30);
    ASSERT_TRUE(sharded->BulkLoad(first).ok());
    ASSERT_TRUE(sharded->Seal().ok());
    for (size_t i = 30; i < records.size(); ++i) {
      ASSERT_TRUE(sharded->Upsert(records[i].first, records[i].second).ok());
    }
    // Destroyed WITHOUT sealing: the tail lives only in the WAL.
  }

  auto reopen_options = ShardOptions(0, 0.35);  // 0 = take persisted count
  reopen_options.data_dir = dir;
  reopen_options.seal_threshold = 8;
  auto reopened = ShardedLookupIndex::Open(reopen_options).MoveValueUnsafe();
  EXPECT_EQ(reopened->num_shards(), 3u);
  for (const auto& q : queries) {
    auto got = reopened->Lookup(q, 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(oracle->Lookup(q, 5), *got, 3, q);
  }

  // A different shard count must be refused, not silently rerouted.
  auto wrong = ShardOptions(5, 0.35);
  wrong.data_dir = dir;
  EXPECT_FALSE(ShardedLookupIndex::Open(wrong).ok());
}

TEST(ShardedIndex, ExpiredDeadlineIsRejected) {
  auto master = Master(40, 41);
  std::vector<std::pair<uint64_t, std::string>> records;
  for (size_t i = 0; i < master.size(); ++i) records.emplace_back(i, master[i]);
  auto sharded =
      ShardedLookupIndex::Create(ShardOptions(4, 0.35)).MoveValueUnsafe();
  ASSERT_TRUE(sharded->BulkLoad(records).ok());

  auto r = sharded->Lookup(master[0], 3, std::chrono::milliseconds(-1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // A generous deadline passes and stays bit-identical.
  auto ok = sharded->Lookup(master[0], 3, std::chrono::milliseconds(5000));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_FALSE(ok->empty());
  EXPECT_EQ((*ok)[0].id, 0u);
}

TEST(ShardedIndex, HedgingPreservesResults) {
  auto master = Master(60, 53);
  std::vector<std::pair<uint64_t, std::string>> records;
  for (size_t i = 0; i < master.size(); ++i) records.emplace_back(i, master[i]);
  auto oracle = Oracle(records, 0.35);

  auto options = ShardOptions(3, 0.35);
  // Hedge aggressively: most dispatches outlive 0ms..1ms, so duplicate
  // lookups race the originals constantly. First-completion-wins must keep
  // every result identical.
  options.hedge_delay = std::chrono::milliseconds(1);
  options.straggler_threshold = std::chrono::milliseconds(1);
  auto sharded = ShardedLookupIndex::Create(options).MoveValueUnsafe();
  ASSERT_TRUE(sharded->BulkLoad(records).ok());

  auto queries = DirtyQueries(master, 30, 59);
  for (const auto& q : queries) {
    auto got = sharded->Lookup(q, 5);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(oracle->Lookup(q, 5), *got, 3, q);
  }
}

TEST(ShardedIndex, ValueOfResolvesOnOwnerShard) {
  auto sharded =
      ShardedLookupIndex::Create(ShardOptions(4, 0.5)).MoveValueUnsafe();
  ASSERT_TRUE(sharded->Upsert(7, "seven hills road").ok());
  ASSERT_TRUE(sharded->Upsert(8, "eight mile lane").ok());
  auto v = sharded->ValueOf(7);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "seven hills road");
  EXPECT_FALSE(sharded->ValueOf(99).has_value());
  ASSERT_TRUE(sharded->Delete(7).ok());
  EXPECT_FALSE(sharded->ValueOf(7).has_value());
}

// ---------------------------------------------------------------------------
// Replication

/// A Fetcher that serves from a directory but can be told to corrupt or
/// drop specific files — the failure-injection double.
class FaultyFetcher : public Fetcher {
 public:
  explicit FaultyFetcher(std::string dir) : inner_(std::move(dir)) {}
  Result<std::string> Fetch(const std::string& name) override {
    fetches++;
    if (name == drop) return Status::KeyError("dropped: " + name);
    auto r = inner_.Fetch(name);
    if (r.ok() && name == corrupt) {
      std::string bytes = *r;
      bytes[bytes.size() / 2] ^= 0x5a;
      return bytes;
    }
    return r;
  }
  std::string drop;
  std::string corrupt;
  int fetches = 0;

 private:
  FileFetcher inner_;
};

struct LeaderFollower {
  std::string leader_dir;
  std::string follower_dir;
  std::unique_ptr<MutableFuzzyIndex> leader;
};

LeaderFollower MakeLeader(const std::string& tag, size_t docs) {
  LeaderFollower lf;
  lf.leader_dir = ::testing::TempDir() + "/repl_leader_" + tag;
  lf.follower_dir = ::testing::TempDir() + "/repl_follower_" + tag;
  std::filesystem::remove_all(lf.leader_dir);
  std::filesystem::remove_all(lf.follower_dir);
  index::MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.data_dir = lf.leader_dir;
  lf.leader = MutableFuzzyIndex::Create(options).MoveValueUnsafe();
  auto master = Master(docs, 61);
  for (size_t i = 0; i < master.size(); ++i) {
    EXPECT_TRUE(lf.leader->Upsert(i, master[i]).ok());
  }
  EXPECT_TRUE(lf.leader->Seal().ok());
  return lf;
}

TEST(Replication, FollowerServesLeaderSealedEpoch) {
  auto lf = MakeLeader("basic", 40);
  FileFetcher fetcher(lf.leader_dir);
  auto sync = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  EXPECT_TRUE(sync->updated);
  EXPECT_GT(sync->segments_fetched, 0u);

  index::MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.data_dir = lf.follower_dir;
  auto follower = MutableFuzzyIndex::Open(options).MoveValueUnsafe();
  auto master = Master(40, 61);
  for (const auto& q : DirtyQueries(master, 10, 67)) {
    auto want = lf.leader->Lookup(q, 3);
    auto got = follower->Lookup(q, 3);
    ASSERT_EQ(want.size(), got.size()) << q;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].id, got[i].id) << q;
      EXPECT_EQ(want[i].similarity, got[i].similarity) << q;
    }
  }
}

TEST(Replication, SecondSyncIsNoOpAndIncrementalFetchesOnlyNewSegments) {
  auto lf = MakeLeader("incr", 30);
  FileFetcher fetcher(lf.leader_dir);
  auto first = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->updated);

  auto again = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->updated);  // byte-identical manifest: nothing to do
  EXPECT_EQ(again->segments_fetched, 0u);

  // Advance the leader one sealed segment; the next round must fetch only
  // segments the follower does not already hold byte-correct.
  ASSERT_TRUE(lf.leader->Upsert(1000, "brand new street 7").ok());
  ASSERT_TRUE(lf.leader->Seal().ok());
  auto incr = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();
  EXPECT_TRUE(incr->updated);
  EXPECT_GT(incr->segments_fetched, 0u);
  EXPECT_LT(incr->segments_fetched, first->segments_fetched + 2);
}

TEST(Replication, CorruptFetchIsRejectedAndCommitsNothing) {
  auto lf = MakeLeader("corrupt", 20);
  // Find a segment name from the leader manifest to corrupt in transit.
  auto manifest =
      index::LoadManifest(lf.leader_dir + "/" + index::kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest->segments.empty());
  FaultyFetcher fetcher(lf.leader_dir);
  fetcher.corrupt = manifest->segments[0].file;

  auto sync = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_FALSE(sync.ok());
  // The manifest is committed last, so a failed round leaves no manifest —
  // the follower never serves a half-replicated epoch.
  EXPECT_FALSE(std::filesystem::exists(lf.follower_dir + "/" +
                                       index::kManifestFileName));

  fetcher.corrupt.clear();
  auto retry = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry->updated);
}

TEST(Replication, MissingSegmentFailsTheRound) {
  auto lf = MakeLeader("drop", 20);
  auto manifest =
      index::LoadManifest(lf.leader_dir + "/" + index::kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest->segments.empty());
  FaultyFetcher fetcher(lf.leader_dir);
  fetcher.drop = manifest->segments[0].file;
  auto sync = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_FALSE(sync.ok());
  EXPECT_EQ(sync.status().code(), StatusCode::kKeyError);
}

TEST(Replication, MaliciousManifestNamesAreRefused) {
  auto lf = MakeLeader("evil", 10);
  // Rewrite the leader manifest to point outside the follower directory.
  auto manifest =
      index::LoadManifest(lf.leader_dir + "/" + index::kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_FALSE(manifest->segments.empty());
  manifest->segments[0].file = "../escape.seg";
  ASSERT_TRUE(index::SaveManifest(*manifest, lf.leader_dir + "/" +
                                                 index::kManifestFileName)
                  .ok());
  FileFetcher fetcher(lf.leader_dir);
  auto sync = SyncFromLeader(fetcher, lf.follower_dir);
  ASSERT_FALSE(sync.ok());
  EXPECT_FALSE(std::filesystem::exists(::testing::TempDir() + "/escape.seg"));
}

// ---------------------------------------------------------------------------
// Wire-value encodings

TEST(WireEncoding, HexDoubleRoundTripsExactly) {
  std::mt19937_64 rng(71);
  for (int i = 0; i < 1000; ++i) {
    double v;
    if (i % 3 == 0) {
      v = std::ldexp(static_cast<double>(rng() >> 11), -52);  // [0, 2)
    } else {
      v = static_cast<double>(rng()) / static_cast<double>(rng() | 1);
    }
    auto parsed = ParseHexDouble(FormatHexDouble(v));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);  // bitwise: no decimal rounding anywhere
  }
  for (double v : {0.0, 1.0, 0.1, 1.0 / 3.0, 0.9999999999999999}) {
    auto parsed = ParseHexDouble(FormatHexDouble(v));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(ParseHexDouble("").ok());
  EXPECT_FALSE(ParseHexDouble("0x1.8p1junk").ok());
}

// ParseHexDouble accepts exactly the "%a" output shape — the lenient strtod
// grammar (whitespace, '+' sign, decimal literals, inf/nan, hex without an
// exponent) indicates a corrupt or hostile peer and must be rejected.
TEST(WireEncoding, HexDoubleRejectsLenientStrtodShapes) {
  EXPECT_FALSE(ParseHexDouble(" 0x1.8p+1").ok());   // leading whitespace
  EXPECT_FALSE(ParseHexDouble("0x1.8p+1 ").ok());   // trailing whitespace
  EXPECT_FALSE(ParseHexDouble("+0x1.8p+1").ok());   // explicit plus
  EXPECT_FALSE(ParseHexDouble("1.5").ok());         // decimal literal
  EXPECT_FALSE(ParseHexDouble("+1").ok());
  EXPECT_FALSE(ParseHexDouble("01").ok());
  EXPECT_FALSE(ParseHexDouble("1e999").ok());       // inf via overflow
  EXPECT_FALSE(ParseHexDouble("inf").ok());
  EXPECT_FALSE(ParseHexDouble("nan").ok());
  EXPECT_FALSE(ParseHexDouble("0x1.8").ok());       // missing exponent
  EXPECT_FALSE(ParseHexDouble("0x").ok());          // no mantissa digits
  EXPECT_FALSE(ParseHexDouble("0x1p").ok());        // no exponent digits
  EXPECT_FALSE(ParseHexDouble("0x1p+").ok());
  EXPECT_FALSE(ParseHexDouble("0x1p+1f").ok());     // trailing junk
  EXPECT_FALSE(ParseHexDouble("0x1p+99999").ok());  // overflows to inf
  EXPECT_FALSE(ParseHexDouble("-").ok());
  // The canonical shapes still parse.
  EXPECT_TRUE(ParseHexDouble("0x0p+0").ok());
  EXPECT_TRUE(ParseHexDouble("-0x1.91eb851eb851fp-2").ok());
}

TEST(WireEncoding, NetstringsRoundTripArbitraryBytes) {
  std::vector<std::string> items = {
      "", "plain", std::string("nul\0byte", 8), "comma,colon:quote\"",
      std::string(10000, 'x')};
  items.push_back("newline\nand\r\ttab");
  auto unpacked = UnpackNetstrings(PackNetstrings(items));
  ASSERT_TRUE(unpacked.ok());
  ASSERT_EQ(unpacked->size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) EXPECT_EQ((*unpacked)[i], items[i]);

  EXPECT_TRUE(UnpackNetstrings("")->empty());
  EXPECT_FALSE(UnpackNetstrings("5:abc,").ok());    // wrong length
  EXPECT_FALSE(UnpackNetstrings("3:abc").ok());     // missing terminator
  EXPECT_FALSE(UnpackNetstrings(":abc,").ok());     // empty length
  EXPECT_FALSE(UnpackNetstrings("x:abc,").ok());    // non-digit length
  EXPECT_FALSE(UnpackNetstrings("99999999999999999999:a,").ok());
}

}  // namespace
}  // namespace ssjoin::shard
