/// Unit and differential tests for src/kernels — the single owner of the
/// SSJoin hot loops. The scalar tier is the oracle: every other tier must
/// reproduce its counts, matched-token sequences, probe orders and weighted
/// sums bit-for-bit, on every span shape a caller can produce.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/kernels.h"
#include "simjoin/string_joins.h"
#include "simjoin/types.h"

namespace ssjoin::kernels {
namespace {

/// Deterministic sorted multiset of length `n`: small strides force dense
/// overlap and duplicates, `salt` decorrelates the two sides.
std::vector<uint32_t> MakeSpan(size_t n, uint64_t salt) {
  Rng rng(0x5eed0000 + salt);
  std::vector<uint32_t> v;
  v.reserve(n);
  uint32_t cur = static_cast<uint32_t>(rng.Uniform(4));
  for (size_t i = 0; i < n; ++i) {
    v.push_back(cur);
    // ~1/3 duplicates, small strides otherwise.
    cur += static_cast<uint32_t>(rng.Uniform(3));
  }
  return v;
}

std::vector<double> MakeWeights(uint32_t max_token) {
  std::vector<double> w(size_t{max_token} + 1);
  for (size_t t = 0; t < w.size(); ++t) {
    w[t] = 0.1875 + static_cast<double>(t % 31) * 0.03125;
  }
  return w;
}

/// Asserts one (a, b) pair agrees with the scalar oracle on every kernel
/// entry point, for tier `t`.
void ExpectTierMatchesScalar(Tier t, std::span<const uint32_t> a,
                             std::span<const uint32_t> b,
                             const std::vector<double>& weights) {
  SCOPED_TRACE(std::string("tier=") + TierName(t) +
               " |a|=" + std::to_string(a.size()) +
               " |b|=" + std::to_string(b.size()));
  const size_t want_count = IntersectCountTier(Tier::kScalar, a, b);
  ASSERT_EQ(IntersectCountTier(t, a, b), want_count);

  size_t want_matches = 0;
  size_t got_matches = 0;
  const double want_sum = IntersectWeightedTier(Tier::kScalar, a, b,
                                                weights.data(), &want_matches);
  const double got_sum =
      IntersectWeightedTier(t, a, b, weights.data(), &got_matches);
  ASSERT_EQ(got_matches, want_matches);
  ASSERT_EQ(got_sum, want_sum);  // bitwise: same match order, same fp sum

  std::vector<uint32_t> want_tokens(std::min(a.size(), b.size()) + 1, 0xffu);
  std::vector<uint32_t> got_tokens(want_tokens);
  size_t wn = IntersectTokensTier(Tier::kScalar, a, b, want_tokens.data());
  size_t gn = IntersectTokensTier(t, a, b, got_tokens.data());
  ASSERT_EQ(gn, wn);
  ASSERT_EQ(got_tokens, want_tokens);

  std::vector<double> a_weights(a.size());
  for (size_t i = 0; i < a.size(); ++i) a_weights[i] = weights[a[i]];
  ASSERT_EQ(IntersectWeightedColsTier(t, a, a_weights, b),
            IntersectWeightedColsTier(Tier::kScalar, a, a_weights, b));
}

// ---------------------------------------------------------------------------
// Configuration surface
// ---------------------------------------------------------------------------

TEST(KernelConfig, ParseTierAcceptsAllNamesAndFailsLoudly) {
  EXPECT_EQ(*ParseTier("scalar"), Tier::kScalar);
  EXPECT_EQ(*ParseTier("gallop"), Tier::kGallop);
  EXPECT_EQ(*ParseTier("simd"), Tier::kSimd);
  EXPECT_EQ(*ParseTier("auto"), Tier::kAuto);
  Result<Tier> bad = ParseTier("avx512-please");
  ASSERT_FALSE(bad.ok());
  // The message must teach the valid spellings, like --algorithm does.
  EXPECT_NE(bad.status().message().find("scalar, gallop, simd, auto"),
            std::string::npos);
  EXPECT_FALSE(ParseTier("").ok());
  EXPECT_FALSE(ParseTier("SCALAR").ok());
}

TEST(KernelConfig, TierNamesRoundTrip) {
  for (Tier t : {Tier::kScalar, Tier::kGallop, Tier::kSimd, Tier::kAuto}) {
    if (!TierAvailable(t)) continue;
    EXPECT_EQ(*ParseTier(TierName(t)), t);
  }
}

TEST(KernelConfig, AvailableTiersStartsWithScalarOracle) {
  std::vector<Tier> tiers = AvailableTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), Tier::kScalar);
  for (Tier t : tiers) EXPECT_TRUE(TierAvailable(t));
}

TEST(KernelConfig, SetTierRoundTripsAndRejectsUnavailable) {
  Tier before = CurrentTier();
  for (Tier t : AvailableTiers()) {
    ASSERT_TRUE(SetTier(t).ok()) << TierName(t);
    EXPECT_EQ(CurrentTier(), t);
  }
  if (!TierAvailable(Tier::kSimd)) {
    Tier held = CurrentTier();
    EXPECT_FALSE(SetTier(Tier::kSimd).ok());
    EXPECT_EQ(CurrentTier(), held);  // failed set must not change the tier
  }
  ASSERT_TRUE(SetTier(before).ok());
}

// ---------------------------------------------------------------------------
// Exhaustive small lengths: every (|a|, |b|) in [0, 33]^2 covers every SIMD
// block/tail split for both the 4-wide SSE and 8-wide AVX2 paths.
// ---------------------------------------------------------------------------

TEST(KernelDifferential, AllLengthsZeroTo33BothSides) {
  std::vector<double> weights = MakeWeights(256);
  for (size_t na = 0; na <= 33; ++na) {
    for (size_t nb = 0; nb <= 33; ++nb) {
      std::vector<uint32_t> a = MakeSpan(na, na * 100 + nb);
      std::vector<uint32_t> b = MakeSpan(nb, na * 100 + nb + 7);
      for (Tier t : AvailableTiers()) {
        ExpectTierMatchesScalar(t, a, b, weights);
      }
    }
  }
}

TEST(KernelDifferential, AdversarialShapes) {
  std::vector<double> weights = MakeWeights(70001);
  struct Case {
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
  };
  std::vector<Case> cases = {
      {{}, {}},
      {{5}, {5}},
      {{5}, {6}},
      {{1, 2, 3}, {}},
      // All-equal multisets: min-multiplicity must hold in every tier.
      {{7, 7, 7, 7, 7, 7, 7, 7, 7}, {7, 7}},
      {{7, 7}, {7, 7, 7, 7, 7, 7, 7, 7, 7}},
      // Duplicate straddling a block boundary on the a side.
      {{1, 2, 3, 4, 5, 6, 7, 9, 9}, {5, 9}},
      // Disjoint ranges (zero matches through the block fast path).
      {{0, 1, 2, 3, 4, 5, 6, 7}, {100, 101, 102, 103, 104, 105, 106, 107}},
      // Interleaved, no matches (worst case for the compare mask).
      {{0, 2, 4, 6, 8, 10, 12, 14}, {1, 3, 5, 7, 9, 11, 13, 15}},
      // Values straddling 2^16 (catches 16-bit truncation in compares).
      {{65534, 65535, 65535, 65536, 65537}, {65535, 65536, 65536, 70000}},
      // Heavy skew (the gallop regime), duplicates on both sides.
      {MakeSpan(6, 1), MakeSpan(3000, 2)},
      {MakeSpan(3000, 3), MakeSpan(6, 4)},
      // Balanced long spans.
      {MakeSpan(1000, 5), MakeSpan(1000, 6)},
  };
  for (const Case& c : cases) {
    for (Tier t : AvailableTiers()) {
      ExpectTierMatchesScalar(t, c.a, c.b, weights);
    }
  }
}

/// Spans starting at every offset in [0, 8) of a shared buffer straddle the
/// 16- and 32-byte vector-load boundaries; the kernels use unaligned loads,
/// so results must not depend on alignment.
TEST(KernelDifferential, UnalignedSpansStraddleVectorBoundaries) {
  std::vector<double> weights = MakeWeights(512);
  std::vector<uint32_t> buf_a = MakeSpan(80, 11);
  std::vector<uint32_t> buf_b = MakeSpan(80, 13);
  for (size_t off_a = 0; off_a < 8; ++off_a) {
    for (size_t off_b = 0; off_b < 8; ++off_b) {
      std::span<const uint32_t> a(buf_a.data() + off_a, 64 + off_b);
      std::span<const uint32_t> b(buf_b.data() + off_b, 64 + off_a);
      for (Tier t : AvailableTiers()) {
        ExpectTierMatchesScalar(t, a, b, weights);
      }
    }
  }
}

TEST(KernelDifferential, WeightedWithUnitWeightsEqualsCount) {
  std::vector<double> ones(600, 1.0);
  for (size_t na : {0u, 1u, 7u, 33u, 200u}) {
    for (size_t nb : {0u, 3u, 8u, 31u, 190u}) {
      std::vector<uint32_t> a = MakeSpan(na, na + 17);
      std::vector<uint32_t> b = MakeSpan(nb, nb + 23);
      size_t count = IntersectCount(a, b);
      for (Tier t : AvailableTiers()) {
        EXPECT_EQ(IntersectWeightedTier(t, a, b, ones.data(), nullptr),
                  static_cast<double>(count))
            << TierName(t);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Posting probe and accumulate
// ---------------------------------------------------------------------------

TEST(KernelProbe, DedupsWithinEpochIdenticallyAcrossTiers) {
  // Postings with heavy duplication, in probe (not sorted) order.
  Rng rng(99);
  std::vector<uint32_t> postings;
  for (size_t i = 0; i < 500; ++i) {
    postings.push_back(static_cast<uint32_t>(rng.Uniform(64)));
  }
  std::vector<uint32_t> want_seen(64, 0);
  std::vector<uint32_t> want;
  size_t appended =
      ProbePostingsTier(Tier::kScalar, postings, 1, want_seen.data(), &want);
  ASSERT_EQ(appended, want.size());
  // Exactly the distinct gids, in first-sight order.
  std::vector<uint32_t> sorted_want(want);
  std::sort(sorted_want.begin(), sorted_want.end());
  EXPECT_TRUE(std::adjacent_find(sorted_want.begin(), sorted_want.end()) ==
              sorted_want.end());
  for (Tier t : AvailableTiers()) {
    std::vector<uint32_t> seen(64, 0);
    std::vector<uint32_t> got;
    ProbePostingsTier(t, postings, 1, seen.data(), &got);
    EXPECT_EQ(got, want) << TierName(t);
    // Second probe in the same epoch appends nothing.
    EXPECT_EQ(ProbePostingsTier(t, postings, 1, seen.data(), &got), 0u)
        << TierName(t);
    EXPECT_EQ(got, want) << TierName(t);
    // A new epoch sees everything again without clearing the table.
    std::vector<uint32_t> again;
    EXPECT_EQ(ProbePostingsTier(t, postings, 2, seen.data(), &again),
              want.size())
        << TierName(t);
    EXPECT_EQ(again, want) << TierName(t);
  }
}

TEST(KernelProbe, AccumulateZeroesOnFirstTouchAndSums) {
  std::vector<uint32_t> postings = {3, 1, 3, 3, 7, 1};
  std::vector<uint32_t> seen(8, 0);
  // Stale garbage in acc must be overwritten, not summed into.
  std::vector<double> acc(8, 1e9);
  std::vector<uint32_t> touched;
  AccumulatePostings(postings, 0.5, 1, seen.data(), acc.data(), &touched);
  AccumulatePostings({postings.data() + 1, 2}, 2.0, 1, seen.data(), acc.data(),
                     &touched);
  EXPECT_EQ(touched, (std::vector<uint32_t>{3, 1, 7}));
  EXPECT_EQ(acc[3], 0.5 * 3 + 2.0);
  EXPECT_EQ(acc[1], 0.5 * 2 + 2.0);
  EXPECT_EQ(acc[7], 0.5);
  EXPECT_EQ(acc[0], 1e9);
}

// ---------------------------------------------------------------------------
// End-to-end bit-identity: a full join must produce byte-identical results
// under every tier, serial and at 2 and 8 threads.
// ---------------------------------------------------------------------------

std::vector<std::string> JoinCorpus() {
  // Address-like strings with shared tokens so the join has dense overlap.
  const char* streets[] = {"main", "oak", "elm", "market", "hill"};
  const char* kinds[] = {"st", "ave", "blvd"};
  std::vector<std::string> out;
  Rng rng(4242);
  for (int i = 0; i < 120; ++i) {
    std::string s = std::to_string(rng.Uniform(90)) + " " +
                    streets[rng.Uniform(5)] + " " + kinds[rng.Uniform(3)];
    if (rng.Bernoulli(0.3)) s += " apt " + std::to_string(rng.Uniform(20));
    out.push_back(s);
  }
  return out;
}

TEST(KernelJoinIdentity, AllTiersAllThreadCountsBitIdentical) {
  std::vector<std::string> data = JoinCorpus();
  Tier before = CurrentTier();
  for (core::SSJoinAlgorithm alg :
       {core::SSJoinAlgorithm::kBasic, core::SSJoinAlgorithm::kInvertedIndex,
        core::SSJoinAlgorithm::kPrefixFilter,
        core::SSJoinAlgorithm::kPrefixFilterInline}) {
    // Per-algorithm scalar serial baseline; every tier and thread count must
    // reproduce it byte for byte (pairs, order, fp similarities).
    ASSERT_TRUE(SetTier(Tier::kScalar).ok());
    simjoin::JoinExecution base;
    base.algorithm = alg;
    auto want = *simjoin::JaccardResemblanceJoin(data, data, 0.7, {}, base);
    ASSERT_FALSE(want.empty());

    for (Tier t : AvailableTiers()) {
      ASSERT_TRUE(SetTier(t).ok());
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SCOPED_TRACE(std::string(core::SSJoinAlgorithmName(alg)) + " " +
                     TierName(t) + " threads=" + std::to_string(threads));
        simjoin::JoinExecution exec;
        exec.algorithm = alg;
        exec.exec.num_threads = threads;
        exec.exec.morsel_size = 16;  // force real work distribution
        auto got = *simjoin::JaccardResemblanceJoin(data, data, 0.7, {}, exec);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].r, want[i].r);
          ASSERT_EQ(got[i].s, want[i].s);
          // Bitwise: the kernels fix the fp accumulation order.
          ASSERT_EQ(got[i].similarity, want[i].similarity);
        }
      }
    }
  }
  ASSERT_TRUE(SetTier(before).ok());
}

TEST(KernelJoinIdentity, AutoTierMatchesScalarOnApproxAlgorithm) {
  std::vector<std::string> data = JoinCorpus();
  Tier before = CurrentTier();
  simjoin::JoinExecution exec;
  exec.algorithm = core::SSJoinAlgorithm::kApprox;
  exec.approx.target_recall = 1.0;
  ASSERT_TRUE(SetTier(Tier::kScalar).ok());
  auto want = *simjoin::JaccardResemblanceJoin(data, data, 0.7, {}, exec);
  ASSERT_TRUE(SetTier(Tier::kAuto).ok());
  auto got = *simjoin::JaccardResemblanceJoin(data, data, 0.7, {}, exec);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].r, want[i].r);
    ASSERT_EQ(got[i].s, want[i].s);
    ASSERT_EQ(got[i].similarity, want[i].similarity);
  }
  ASSERT_TRUE(SetTier(before).ok());
}

}  // namespace
}  // namespace ssjoin::kernels
