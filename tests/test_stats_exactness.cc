/// Exactness tests for SSJoinStats: every counter the executors report is
/// checked against an independent brute-force oracle on small inputs, for
/// all five physical algorithms, serial and parallel. The parallel runs must
/// additionally report *identical* counters at 1, 2 and 8 threads and return
/// bit-identical output — the determinism contract the obs layer builds on.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/ssjoin.h"
#include "exec/parallel_ssjoin.h"

namespace ssjoin::core {
namespace {

constexpr SSJoinAlgorithm kAllAlgorithms[] = {
    SSJoinAlgorithm::kNaive, SSJoinAlgorithm::kBasic,
    SSJoinAlgorithm::kInvertedIndex, SSJoinAlgorithm::kPrefixFilter,
    SSJoinAlgorithm::kPrefixFilterInline};

struct Fixture {
  WeightVector weights;
  ElementOrder order;
  SetsRelation r;
  SetsRelation s;

  SSJoinContext Context() const { return {&weights, &order}; }
};

Fixture RandomFixture(uint64_t seed, size_t universe, size_t r_groups,
                      size_t s_groups, bool unit_weights) {
  Rng rng(seed);
  Fixture f;
  f.weights.resize(universe);
  for (double& w : f.weights) {
    w = unit_weights ? 1.0 : 0.05 + rng.NextDouble() * 2.0;
  }
  f.order = ElementOrder::ByDecreasingWeight(f.weights);
  auto make_docs = [&](size_t n) {
    std::vector<std::vector<text::TokenId>> docs(n);
    for (auto& doc : docs) {
      size_t size = 1 + rng.Uniform(10);
      for (size_t i = 0; i < size; ++i) {
        doc.push_back(static_cast<text::TokenId>(rng.Uniform(universe)));
      }
    }
    return docs;
  };
  f.r = *BuildSetsRelation(make_docs(r_groups), f.weights);
  f.s = *BuildSetsRelation(make_docs(s_groups), f.weights);
  return f;
}

/// Brute-force ground truth computed straight from the canonical sets, with
/// no knowledge of any executor's plan.
struct Oracle {
  /// Distinct (r, s) group pairs sharing at least one element.
  size_t intersecting_pairs = 0;
  /// 1NF equi-join size on the element column: sum over elements e of
  /// fR(e) * fS(e), the row count the Basic plan materializes.
  size_t equijoin_rows = 0;
  /// Pairs in the join result under `pred`.
  size_t result_pairs = 0;
};

Oracle BruteForce(const Fixture& f, const OverlapPredicate& pred) {
  Oracle o;
  // Per-element frequencies across groups (sets are duplicate-free, so this
  // is the number of 1NF rows carrying the element).
  std::map<text::TokenId, size_t> fr;
  std::map<text::TokenId, size_t> fs;
  for (GroupId g = 0; g < f.r.num_groups(); ++g) {
    for (text::TokenId e : f.r.set(g)) ++fr[e];
  }
  for (GroupId g = 0; g < f.s.num_groups(); ++g) {
    for (text::TokenId e : f.s.set(g)) ++fs[e];
  }
  for (const auto& [e, count] : fr) {
    auto it = fs.find(e);
    if (it != fs.end()) o.equijoin_rows += count * it->second;
  }

  for (GroupId rg = 0; rg < f.r.num_groups(); ++rg) {
    for (GroupId sg = 0; sg < f.s.num_groups(); ++sg) {
      // Merge of the two sorted sets, same summation order (ascending id)
      // as the executors, so the overlap double is bit-identical.
      SetView rset = f.r.set(rg);
      SetView sset = f.s.set(sg);
      double overlap = 0.0;
      size_t shared = 0;
      size_t i = 0;
      size_t j = 0;
      while (i < rset.size() && j < sset.size()) {
        if (rset[i] < sset[j]) {
          ++i;
        } else if (sset[j] < rset[i]) {
          ++j;
        } else {
          overlap += f.weights[rset[i]];
          ++shared;
          ++i;
          ++j;
        }
      }
      if (shared == 0) continue;
      ++o.intersecting_pairs;
      if (pred.Test(overlap, f.r.norms[rg], f.s.norms[sg])) ++o.result_pairs;
    }
  }
  return o;
}

void ExpectSameCounters(const SSJoinStats& got, const SSJoinStats& want,
                        const char* label) {
  EXPECT_EQ(got.equijoin_rows, want.equijoin_rows) << label;
  EXPECT_EQ(got.candidate_pairs, want.candidate_pairs) << label;
  EXPECT_EQ(got.result_pairs, want.result_pairs) << label;
  EXPECT_EQ(got.r_prefix_elements, want.r_prefix_elements) << label;
  EXPECT_EQ(got.s_prefix_elements, want.s_prefix_elements) << label;
  EXPECT_EQ(got.pruned_groups_r, want.pruned_groups_r) << label;
  EXPECT_EQ(got.pruned_groups_s, want.pruned_groups_s) << label;
}

class StatsExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsExactnessTest, CountersMatchBruteForceOracles) {
  Fixture f = RandomFixture(GetParam(), /*universe=*/25, /*r_groups=*/40,
                            /*s_groups=*/35, /*unit_weights=*/false);
  for (const OverlapPredicate& pred :
       {OverlapPredicate::Absolute(1.5),
        OverlapPredicate::OneSidedNormalized(0.6),
        OverlapPredicate::TwoSidedNormalized(0.7)}) {
    SCOPED_TRACE("predicate " + pred.ToString());
    Oracle oracle = BruteForce(f, pred);

    SSJoinStats prefix_stats;  // kept to cross-check the inline variant
    for (SSJoinAlgorithm algorithm : kAllAlgorithms) {
      SCOPED_TRACE(SSJoinAlgorithmName(algorithm));
      SSJoinStats stats;
      auto result = ExecuteSSJoin(algorithm, f.r, f.s, pred, f.Context(), &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();

      // Universal: result_pairs is the returned size and equals the oracle.
      EXPECT_EQ(stats.result_pairs, result->size());
      EXPECT_EQ(stats.result_pairs, oracle.result_pairs);

      switch (algorithm) {
        case SSJoinAlgorithm::kNaive:
          // Cross product: every group pair is a "candidate".
          EXPECT_EQ(stats.candidate_pairs,
                    f.r.num_groups() * f.s.num_groups());
          EXPECT_EQ(stats.equijoin_rows, 0u);
          break;
        case SSJoinAlgorithm::kBasic:
        case SSJoinAlgorithm::kInvertedIndex:
          // Both materialize (conceptually) the full 1NF equi-join and see
          // exactly the intersecting pairs as candidates.
          EXPECT_EQ(stats.equijoin_rows, oracle.equijoin_rows);
          EXPECT_EQ(stats.candidate_pairs, oracle.intersecting_pairs);
          break;
        case SSJoinAlgorithm::kPrefixFilter:
        case SSJoinAlgorithm::kPrefixFilterInline:
          // The prefix filter may only *remove* candidates, never invent
          // them, and must keep every true result pair.
          EXPECT_LE(stats.candidate_pairs, oracle.intersecting_pairs);
          EXPECT_GE(stats.candidate_pairs, oracle.result_pairs);
          // Every candidate came from at least one prefix equi-join row.
          EXPECT_GE(stats.equijoin_rows, stats.candidate_pairs);
          EXPECT_LE(stats.r_prefix_elements, f.r.total_elements());
          EXPECT_LE(stats.s_prefix_elements, f.s.total_elements());
          if (algorithm == SSJoinAlgorithm::kPrefixFilter) {
            prefix_stats = stats;
          } else {
            // Identical candidate generation in both prefix variants.
            EXPECT_EQ(stats.candidate_pairs, prefix_stats.candidate_pairs);
            EXPECT_EQ(stats.equijoin_rows, prefix_stats.equijoin_rows);
            EXPECT_EQ(stats.r_prefix_elements, prefix_stats.r_prefix_elements);
            EXPECT_EQ(stats.s_prefix_elements, prefix_stats.s_prefix_elements);
          }
          break;
        case SSJoinAlgorithm::kApprox:
        case SSJoinAlgorithm::kHybrid:
          // Not dispatchable through core::ExecuteSSJoin (and not part of
          // kAllAlgorithms); covered by test_approx.cc.
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsExactnessTest,
                         ::testing::Values(3u, 17u, 99u));

TEST(StatsExactnessTest, PrunedGroupsMatchOracleUnderAbsoluteThreshold) {
  // Unit weights + Absolute(t) make the prune decision exactly countable:
  // a non-empty group is pruned iff its set weight |set| < t.
  Fixture f = RandomFixture(5, /*universe=*/12, /*r_groups=*/50,
                            /*s_groups=*/50, /*unit_weights=*/true);
  const double t = 4.5;  // non-integer: no group sits on the boundary
  OverlapPredicate pred = OverlapPredicate::Absolute(t);

  size_t want_pruned_r = 0;
  size_t want_pruned_s = 0;
  size_t want_prefix_r = 0;
  size_t want_prefix_s = 0;
  auto account = [t](const SetsRelation& rel, size_t* pruned, size_t* prefix) {
    for (GroupId g = 0; g < rel.num_groups(); ++g) {
      size_t n = rel.set(g).size();
      if (n == 0) continue;
      if (static_cast<double>(n) < t) {
        ++*pruned;  // required overlap exceeds total set weight
      } else {
        // prefix_beta with beta = n - t keeps the shortest prefix whose
        // weight exceeds beta: floor(beta) + 1 unit-weight elements.
        *prefix += static_cast<size_t>(n - t) + 1;
      }
    }
  };
  account(f.r, &want_pruned_r, &want_prefix_r);
  account(f.s, &want_pruned_s, &want_prefix_s);
  ASSERT_GT(want_pruned_r, 0u) << "fixture must exercise pruning";

  for (SSJoinAlgorithm algorithm :
       {SSJoinAlgorithm::kPrefixFilter, SSJoinAlgorithm::kPrefixFilterInline}) {
    SCOPED_TRACE(SSJoinAlgorithmName(algorithm));
    SSJoinStats stats;
    auto result = ExecuteSSJoin(algorithm, f.r, f.s, pred, f.Context(), &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The inline variant reports prefix elements but not pruned groups
    // (its candidate loop never materializes the pruned set); the
    // re-joining variant reports both.
    EXPECT_EQ(stats.r_prefix_elements, want_prefix_r);
    EXPECT_EQ(stats.s_prefix_elements, want_prefix_s);
    if (algorithm == SSJoinAlgorithm::kPrefixFilter) {
      EXPECT_EQ(stats.pruned_groups_r, want_pruned_r);
      EXPECT_EQ(stats.pruned_groups_s, want_pruned_s);
    }
  }
}

TEST(StatsExactnessTest, ParallelCountersIdenticalAcrossThreadCounts) {
  // The acceptance bar for the obs determinism contract: at 1, 2 and 8
  // threads every counter and every output pair (id *and* overlap double)
  // must be identical to the serial run.
  Fixture f = RandomFixture(21, /*universe=*/20, /*r_groups=*/60,
                            /*s_groups=*/45, /*unit_weights=*/false);
  OverlapPredicate pred = OverlapPredicate::TwoSidedNormalized(0.6);

  for (SSJoinAlgorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(SSJoinAlgorithmName(algorithm));
    SSJoinStats serial_stats;
    auto serial =
        ExecuteSSJoin(algorithm, f.r, f.s, pred, f.Context(), &serial_stats);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    for (size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      exec::ExecContext ec;
      ec.num_threads = threads;
      ec.morsel_size = 3;  // many morsels: stress the merge order
      SSJoinContext ctx = f.Context();
      ctx.exec = &ec;
      SSJoinStats stats;
      auto parallel = exec::ExecuteSSJoin(algorithm, f.r, f.s, pred, ctx, &stats);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

      ExpectSameCounters(stats, serial_stats, "vs serial");
      ASSERT_EQ(parallel->size(), serial->size());
      for (size_t i = 0; i < serial->size(); ++i) {
        EXPECT_EQ((*parallel)[i].r, (*serial)[i].r);
        EXPECT_EQ((*parallel)[i].s, (*serial)[i].s);
        // Bit-identical, not just close: the parallel executors sum weights
        // in the same element order as the serial plans.
        EXPECT_EQ((*parallel)[i].overlap, (*serial)[i].overlap);
      }
    }
  }
}

}  // namespace
}  // namespace ssjoin::core
