/// Tests for the MinHash-LSH approximate candidate tier (src/approx):
/// signature determinism, band tuning and its exact-fallback routing, the
/// subset-of-exact precision guarantee with bitwise-identical overlaps,
/// serial == parallel determinism, hybrid routing on synthetic frequency
/// skews, and the measured-recall gauge.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "approx/approx_ssjoin.h"
#include "approx/minhash.h"
#include "common/rng.h"
#include "core/cost_model.h"
#include "core/ssjoin.h"
#include "exec/parallel_ssjoin.h"
#include "fuzz/oracles.h"
#include "obs/metrics.h"

namespace ssjoin::approx {
namespace {

struct Fixture {
  core::WeightVector weights;
  core::ElementOrder order;
  core::SetsRelation r;
  core::SetsRelation s;

  core::SSJoinContext Ctx() const { return {&weights, &order}; }
};

/// Random self-join-shaped fixture: moderately overlapping sets so the join
/// has a healthy number of true pairs to measure recall against.
Fixture RandomFixture(uint64_t seed, size_t universe, size_t r_groups,
                      size_t s_groups, bool unit_weights) {
  Rng rng(seed);
  Fixture f;
  f.weights.resize(universe);
  for (double& w : f.weights) {
    w = unit_weights ? 1.0 : 0.05 + rng.NextDouble() * 2.0;
  }
  f.order = core::ElementOrder::ByDecreasingWeight(f.weights);
  auto make_docs = [&](size_t n) {
    std::vector<std::vector<text::TokenId>> docs(n);
    for (auto& doc : docs) {
      size_t size = 2 + rng.Uniform(8);
      for (size_t i = 0; i < size; ++i) {
        doc.push_back(static_cast<text::TokenId>(rng.Uniform(universe)));
      }
    }
    return docs;
  };
  f.r = *core::BuildSetsRelation(make_docs(r_groups), f.weights);
  f.s = *core::BuildSetsRelation(make_docs(s_groups), f.weights);
  return f;
}

/// Builds a fixture from explicit docs with unit weights.
Fixture FixtureFromDocs(std::vector<std::vector<text::TokenId>> r_docs,
                        std::vector<std::vector<text::TokenId>> s_docs,
                        size_t universe) {
  Fixture f;
  f.weights.assign(universe, 1.0);
  f.order = core::ElementOrder::ByDecreasingWeight(f.weights);
  f.r = *core::BuildSetsRelation(std::move(r_docs), f.weights);
  f.s = *core::BuildSetsRelation(std::move(s_docs), f.weights);
  return f;
}

using PairKey = std::pair<core::GroupId, core::GroupId>;

std::set<PairKey> Keys(const std::vector<core::SSJoinPair>& pairs) {
  std::set<PairKey> keys;
  for (const auto& p : pairs) keys.insert({p.r, p.s});
  return keys;
}

/// Every pair in `approx` appears in `exact` with the same overlap bits.
void ExpectSubsetWithExactOverlaps(const std::vector<core::SSJoinPair>& approx,
                                   const std::vector<core::SSJoinPair>& exact) {
  std::map<PairKey, double> exact_overlap;
  for (const auto& p : exact) exact_overlap[{p.r, p.s}] = p.overlap;
  for (const auto& p : approx) {
    auto it = exact_overlap.find({p.r, p.s});
    ASSERT_NE(it, exact_overlap.end())
        << "approx emitted (" << p.r << ", " << p.s << ") not in exact result";
    EXPECT_EQ(p.overlap, it->second)
        << "overlap bits differ for (" << p.r << ", " << p.s << ")";
  }
}

// ---------------------------------------------------------------------------
// Signatures

TEST(MinHashTest, SignaturesAreDeterministicInSeed) {
  Fixture f = RandomFixture(11, 40, 50, 1, true);
  SignatureMatrix a = BuildSignatures(f.r.store, 32, 123, nullptr);
  SignatureMatrix b = BuildSignatures(f.r.store, 32, 123, nullptr);
  EXPECT_EQ(a.values, b.values);
  SignatureMatrix c = BuildSignatures(f.r.store, 32, 124, nullptr);
  EXPECT_NE(a.values, c.values);
}

TEST(MinHashTest, ParallelSignaturesMatchSerial) {
  Fixture f = RandomFixture(13, 60, 200, 1, true);
  SignatureMatrix serial = BuildSignatures(f.r.store, 48, 7, nullptr);
  exec::ExecContext ec;
  ec.num_threads = 4;
  ec.morsel_size = 16;
  SignatureMatrix parallel = BuildSignatures(f.r.store, 48, 7, &ec);
  EXPECT_EQ(serial.values, parallel.values);
}

TEST(MinHashTest, SignatureRowsDependOnlyOnElements) {
  // Two groups with the same element set must hash identically even when
  // they sit at different positions in different stores.
  Fixture a = FixtureFromDocs({{1, 5, 9}}, {{0}}, 16);
  Fixture b = FixtureFromDocs({{3, 3}, {9, 1, 5, 5}}, {{0}}, 16);
  SignatureMatrix sa = BuildSignatures(a.r.store, 16, 99, nullptr);
  SignatureMatrix sb = BuildSignatures(b.r.store, 16, 99, nullptr);
  auto ra = sa.row(0);
  auto rb = sb.row(1);
  EXPECT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()));
}

// ---------------------------------------------------------------------------
// Band tuning

TEST(TuneBandsTest, SmallInputTakesExactFloor) {
  Fixture f = RandomFixture(17, 30, 10, 10, true);
  ApproxParams params;  // exact_floor_pairs = 4096 > 10 * 10
  BandPlan plan =
      TuneBands(f.r, f.s, core::OverlapPredicate::Absolute(1.0), f.weights,
                params);
  EXPECT_FALSE(plan.use_lsh);
  EXPECT_EQ(plan.num_hashes(), 0u);
}

TEST(TuneBandsTest, LshPlanFitsBudgetAndFloorDisablesExact) {
  Fixture f = RandomFixture(19, 40, 40, 40, true);
  ApproxParams params;
  params.exact_floor_pairs = 0;
  BandPlan plan =
      TuneBands(f.r, f.s, core::OverlapPredicate::Absolute(1.0), f.weights,
                params);
  ASSERT_TRUE(plan.use_lsh) << plan.note;
  EXPECT_GE(plan.rows, 1u);
  EXPECT_GE(plan.bands, 1u);
  EXPECT_LE(plan.num_hashes(), kDefaultMaxHashes);
  EXPECT_GT(plan.t_min, 0.0);
}

TEST(TuneBandsTest, InfeasibleBudgetFallsBackToExact) {
  // Large sets push the universal resemblance floor 1/(|r|+|s|-1) so low
  // that no in-budget band count can bound the miss probability; the tuner
  // must route to the exact tier rather than silently miss the target.
  Rng rng(23);
  std::vector<std::vector<text::TokenId>> docs(4);
  for (auto& doc : docs) {
    for (size_t i = 0; i < 400; ++i) {
      doc.push_back(static_cast<text::TokenId>(rng.Uniform(2000)));
    }
  }
  Fixture f = FixtureFromDocs(docs, docs, 2000);
  ApproxParams params;
  params.exact_floor_pairs = 0;
  params.target_recall = 0.999;
  params.max_hashes = 16;  // tiny budget: certainly infeasible
  BandPlan plan =
      TuneBands(f.r, f.s, core::OverlapPredicate::Absolute(1.0), f.weights,
                params);
  EXPECT_FALSE(plan.use_lsh);
}

TEST(TuneBandsTest, HigherTargetRecallNeverCheapens) {
  Fixture f = RandomFixture(29, 50, 60, 60, true);
  ApproxParams lo, hi;
  lo.exact_floor_pairs = hi.exact_floor_pairs = 0;
  lo.target_recall = 0.8;
  hi.target_recall = 0.99;
  auto pred = core::OverlapPredicate::Absolute(1.0);
  BandPlan plo = TuneBands(f.r, f.s, pred, f.weights, lo);
  BandPlan phi = TuneBands(f.r, f.s, pred, f.weights, hi);
  ASSERT_TRUE(plo.use_lsh);
  ASSERT_TRUE(phi.use_lsh);
  EXPECT_GE(phi.num_hashes(), plo.num_hashes());
}

// ---------------------------------------------------------------------------
// ApproxSSJoin executor

TEST(ApproxSSJoinTest, ExactFloorPathMatchesExactExecutor) {
  Fixture f = RandomFixture(31, 40, 30, 30, false);
  auto pred = core::OverlapPredicate::TwoSidedNormalized(0.5);
  core::SSJoinContext ctx = f.Ctx();
  auto exact = core::ExecuteSSJoin(core::SSJoinAlgorithm::kInvertedIndex, f.r,
                                   f.s, pred, ctx);
  ASSERT_TRUE(exact.ok());
  ApproxParams params;  // 30 * 30 = 900 <= 4096: exact floor fires
  ApproxSSJoin join(params);
  core::SSJoinStats stats;
  auto approx = join.Execute(f.r, f.s, pred, ctx, &stats);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_EQ(Keys(*approx), Keys(*exact));
  ExpectSubsetWithExactOverlaps(*approx, *exact);
  EXPECT_EQ(stats.result_pairs, approx->size());
}

TEST(ApproxSSJoinTest, LshPathIsSubsetOfExactAboveTargetRecall) {
  for (uint64_t seed : {37u, 41u, 43u}) {
    Fixture f = RandomFixture(seed, 50, 80, 80, true);
    auto pred = core::OverlapPredicate::Absolute(2.0);
    core::SSJoinContext ctx = f.Ctx();
    std::vector<core::SSJoinPair> exact =
        fuzz::SSJoinOracle(f.r, f.s, f.weights, pred);
    ApproxParams params;
    params.exact_floor_pairs = 0;  // force LSH
    params.target_recall = 0.9;
    ApproxSSJoin join(params);
    auto approx = join.Execute(f.r, f.s, pred, ctx, nullptr);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    ExpectSubsetWithExactOverlaps(*approx, exact);
    ASSERT_FALSE(exact.empty());
    double recall = static_cast<double>(approx->size()) /
                    static_cast<double>(exact.size());
    EXPECT_GE(recall, params.target_recall)
        << "seed " << seed << ": " << approx->size() << "/" << exact.size();
  }
}

TEST(ApproxSSJoinTest, ParallelOutputIsBitIdenticalToSerial) {
  Fixture f = RandomFixture(47, 60, 100, 90, false);
  auto pred = core::OverlapPredicate::OneSidedNormalized(0.4);
  ApproxParams params;
  params.exact_floor_pairs = 0;
  ApproxSSJoin join(params);
  core::SSJoinStats serial_stats;
  auto serial = join.Execute(f.r, f.s, pred, f.Ctx(), &serial_stats);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    for (size_t morsel : {1u, 7u, 64u}) {
      exec::ExecContext ec;
      ec.num_threads = threads;
      ec.morsel_size = morsel;
      core::SSJoinContext pctx = f.Ctx();
      pctx.exec = &ec;
      core::SSJoinStats parallel_stats;
      auto parallel = join.Execute(f.r, f.s, pred, pctx, &parallel_stats);
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(serial->size(), parallel->size())
          << threads << " threads, morsel " << morsel;
      for (size_t i = 0; i < serial->size(); ++i) {
        EXPECT_EQ((*serial)[i].r, (*parallel)[i].r) << "pair " << i;
        EXPECT_EQ((*serial)[i].s, (*parallel)[i].s) << "pair " << i;
        EXPECT_EQ((*serial)[i].overlap, (*parallel)[i].overlap) << "pair " << i;
      }
      EXPECT_EQ(serial_stats.result_pairs, parallel_stats.result_pairs);
    }
  }
}

TEST(ApproxSSJoinTest, RejectsOutOfRangeTargetRecall) {
  Fixture f = RandomFixture(53, 20, 5, 5, true);
  auto pred = core::OverlapPredicate::Absolute(1.0);
  for (double bad : {0.0, -0.5, 1.5}) {
    ApproxParams params;
    params.target_recall = bad;
    ApproxSSJoin join(params);
    auto result = join.Execute(f.r, f.s, pred, f.Ctx(), nullptr);
    EXPECT_FALSE(result.ok()) << "target_recall " << bad;
  }
}

TEST(ApproxSSJoinTest, MeasuredRecallGaugeReflectsLshRun) {
  Fixture f = RandomFixture(59, 50, 70, 70, true);
  auto pred = core::OverlapPredicate::Absolute(2.0);
  ApproxParams params;
  params.exact_floor_pairs = 0;
  params.target_recall = 0.9;
  params.recall_sample = 70;  // re-check every R-group: the gauge is exact
  ApproxSSJoin join(params);
  auto approx = join.Execute(f.r, f.s, pred, f.Ctx(), nullptr);
  ASSERT_TRUE(approx.ok());
  int64_t ppm =
      obs::Registry::Global().GetGauge("approx.measured_recall_ppm")->value();
  EXPECT_GE(ppm, static_cast<int64_t>(params.target_recall * 1e6));
  EXPECT_LE(ppm, 1000000);
}

// ---------------------------------------------------------------------------
// Hybrid routing

TEST(HybridRoutingTest, FrequentTokenHeavyInputRoutesToApprox) {
  // Every group shares a handful of hot tokens: nearly all occurrences land
  // on tokens with frequency >= threshold.
  Rng rng(61);
  std::vector<std::vector<text::TokenId>> docs(60);
  for (auto& doc : docs) {
    doc = {0, 1, 2};  // hot tokens in every set
    doc.push_back(static_cast<text::TokenId>(3 + rng.Uniform(97)));
  }
  Fixture f = FixtureFromDocs(docs, docs, 100);
  core::HybridRoutingDecision d = core::ChooseHybridTier(
      f.r, f.s, core::OverlapPredicate::Absolute(1.0), f.Ctx());
  EXPECT_EQ(d.frequency_threshold, std::max<size_t>(core::kHybridMinFrequency,
                                                    (120 + 19) / 20));
  EXPECT_GE(d.frequent_token_share, core::kHybridShareCutoff);
  EXPECT_EQ(d.chosen, core::SSJoinAlgorithm::kApprox);
}

TEST(HybridRoutingTest, UniformDistinctTokensRouteToExact) {
  // Every token appears in exactly one set: no token is frequent, so all
  // the mass is infrequent and the exact tier wins.
  std::vector<std::vector<text::TokenId>> docs(40);
  text::TokenId next = 0;
  for (auto& doc : docs) {
    for (int i = 0; i < 4; ++i) doc.push_back(next++);
  }
  Fixture f = FixtureFromDocs(docs, {{0}}, 160);
  core::HybridRoutingDecision d = core::ChooseHybridTier(
      f.r, f.s, core::OverlapPredicate::Absolute(1.0), f.Ctx());
  EXPECT_LT(d.frequent_token_share, core::kHybridShareCutoff);
  EXPECT_EQ(d.chosen, core::SSJoinAlgorithm::kPrefixFilterInline);
}

TEST(HybridRoutingTest, DispatchResolvesAndStaysWithinExact) {
  // kHybrid through the approx-layer dispatch: the resolved algorithm must
  // match ChooseHybridTier, the output must be a subset of the exact result,
  // and recall must clear the target.
  for (uint64_t seed : {67u, 71u}) {
    Fixture f = RandomFixture(seed, 30, 70, 70, true);  // small universe: skewed
    auto pred = core::OverlapPredicate::Absolute(2.0);
    core::SSJoinContext ctx = f.Ctx();
    std::vector<core::SSJoinPair> exact =
        fuzz::SSJoinOracle(f.r, f.s, f.weights, pred);
    core::HybridRoutingDecision expected =
        core::ChooseHybridTier(f.r, f.s, pred, ctx);
    ApproxParams params;
    params.exact_floor_pairs = 0;
    params.target_recall = 0.9;
    core::SSJoinAlgorithm resolved;
    auto result =
        ExecuteSSJoin(core::SSJoinAlgorithm::kHybrid, f.r, f.s, pred, ctx,
                      params, nullptr, &resolved);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(resolved, expected.chosen);
    ExpectSubsetWithExactOverlaps(*result, exact);
    ASSERT_FALSE(exact.empty());
    double recall = static_cast<double>(result->size()) /
                    static_cast<double>(exact.size());
    EXPECT_GE(recall, params.target_recall) << "seed " << seed;
  }
}

TEST(HybridRoutingTest, ExactAlgorithmsDelegateUnchanged) {
  Fixture f = RandomFixture(73, 40, 40, 40, false);
  auto pred = core::OverlapPredicate::TwoSidedNormalized(0.6);
  core::SSJoinContext ctx = f.Ctx();
  ApproxParams params;
  for (core::SSJoinAlgorithm algorithm :
       {core::SSJoinAlgorithm::kBasic, core::SSJoinAlgorithm::kInvertedIndex,
        core::SSJoinAlgorithm::kPrefixFilterInline}) {
    auto direct = exec::ExecuteSSJoin(algorithm, f.r, f.s, pred, ctx);
    ASSERT_TRUE(direct.ok());
    core::SSJoinAlgorithm resolved;
    auto routed =
        ExecuteSSJoin(algorithm, f.r, f.s, pred, ctx, params, nullptr,
                      &resolved);
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(resolved, algorithm);
    ASSERT_EQ(direct->size(), routed->size());
    for (size_t i = 0; i < direct->size(); ++i) {
      EXPECT_EQ((*direct)[i].r, (*routed)[i].r);
      EXPECT_EQ((*direct)[i].s, (*routed)[i].s);
      EXPECT_EQ((*direct)[i].overlap, (*routed)[i].overlap);
    }
  }
}

}  // namespace
}  // namespace ssjoin::approx
