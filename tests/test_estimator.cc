#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/estimator.h"

namespace ssjoin::core {
namespace {

struct Fixture {
  WeightVector weights;
  ElementOrder order;
  SetsRelation rel;

  SSJoinContext Context() const { return {&weights, &order}; }
};

Fixture MakeFixture(uint64_t seed, size_t groups) {
  Rng rng(seed);
  Fixture f;
  const size_t kUniverse = 60;
  f.weights.assign(kUniverse, 1.0);
  f.order = ElementOrder::ById(kUniverse);
  std::vector<std::vector<text::TokenId>> docs(groups);
  for (auto& doc : docs) {
    size_t size = 3 + rng.Uniform(6);
    for (size_t i = 0; i < size; ++i) {
      doc.push_back(static_cast<text::TokenId>(rng.Uniform(kUniverse)));
    }
  }
  f.rel = *BuildSetsRelation(std::move(docs), f.weights);
  return f;
}

TEST(EstimatorTest, FullSampleIsExact) {
  Fixture f = MakeFixture(1, 200);
  OverlapPredicate pred = OverlapPredicate::TwoSidedNormalized(0.7);
  auto exact = *ExecuteSSJoin(SSJoinAlgorithm::kNaive, f.rel, f.rel, pred,
                              f.Context(), nullptr);
  auto est = *EstimateResultSize(f.rel, f.rel, pred, f.Context(),
                                 /*sample_size=*/10000, /*seed=*/1);
  EXPECT_EQ(est.sampled_groups, f.rel.num_groups());
  EXPECT_EQ(est.sample_pairs, exact.size());
  EXPECT_DOUBLE_EQ(est.estimated_pairs, static_cast<double>(exact.size()));
}

TEST(EstimatorTest, SampleEstimateIsInTheBallpark) {
  Fixture f = MakeFixture(2, 2000);
  OverlapPredicate pred = OverlapPredicate::TwoSidedNormalized(0.6);
  auto exact = *ExecuteSSJoin(SSJoinAlgorithm::kPrefixFilterInline, f.rel, f.rel,
                              pred, f.Context(), nullptr);
  ASSERT_GT(exact.size(), 100u);
  auto est = *EstimateResultSize(f.rel, f.rel, pred, f.Context(),
                                 /*sample_size=*/400, /*seed=*/3);
  EXPECT_EQ(est.sampled_groups, 400u);
  double truth = static_cast<double>(exact.size());
  EXPECT_GT(est.estimated_pairs, truth * 0.5);
  EXPECT_LT(est.estimated_pairs, truth * 2.0);
}

TEST(EstimatorTest, DeterministicInSeed) {
  Fixture f = MakeFixture(4, 500);
  OverlapPredicate pred = OverlapPredicate::TwoSidedNormalized(0.7);
  auto a = *EstimateResultSize(f.rel, f.rel, pred, f.Context(), 100, 7);
  auto b = *EstimateResultSize(f.rel, f.rel, pred, f.Context(), 100, 7);
  auto c = *EstimateResultSize(f.rel, f.rel, pred, f.Context(), 100, 8);
  EXPECT_DOUBLE_EQ(a.estimated_pairs, b.estimated_pairs);
  // Different seeds sample different groups (almost surely different counts
  // on this skewless data is not guaranteed; just check it runs).
  EXPECT_GE(c.estimated_pairs, 0.0);
}

TEST(EstimatorTest, EmptyInputs) {
  Fixture f = MakeFixture(5, 10);
  SetsRelation empty;
  OverlapPredicate pred = OverlapPredicate::Absolute(1.0);
  auto est = *EstimateResultSize(empty, f.rel, pred, f.Context(), 10, 1);
  EXPECT_DOUBLE_EQ(est.estimated_pairs, 0.0);
  EXPECT_EQ(est.sampled_groups, 0u);
}

TEST(EstimatorTest, ZeroSampleRejected) {
  Fixture f = MakeFixture(6, 10);
  EXPECT_FALSE(EstimateResultSize(f.rel, f.rel, OverlapPredicate::Absolute(1.0),
                                  f.Context(), 0, 1)
                   .ok());
}

}  // namespace
}  // namespace ssjoin::core
