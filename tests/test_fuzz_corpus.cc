/// Replays every reproducer in tests/fuzz_corpus/ as a regression test.
/// Each file is a workload the fuzzer once shrank from a real failure; the
/// differential check it encodes must now pass and stay passing.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/reproducer.h"
#include "fuzz/scenarios.h"

#ifndef SSJOIN_FUZZ_CORPUS_DIR
#error "SSJOIN_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace ssjoin::fuzz {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(SSJOIN_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(FuzzCorpusTest, CorpusIsNotEmpty) {
  // The corpus documents real, fixed bugs; an empty directory means the
  // replay below is vacuous.
  EXPECT_FALSE(CorpusFiles().empty());
}

TEST(FuzzCorpusTest, EveryReproducerReplaysClean) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    Result<Reproducer> repro = LoadReproducerFile(path);
    ASSERT_TRUE(repro.ok()) << repro.status().ToString();
    Result<CheckResult> res = CheckCase(*repro);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->pass) << res->detail;
  }
}

}  // namespace
}  // namespace ssjoin::fuzz
