#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/ssjoin_plan.h"
#include "engine/plan.h"

namespace ssjoin {
namespace {

using engine::AggKind;
using engine::DataType;
using engine::PlanPtr;
using engine::Table;

Table Orders() {
  engine::Schema schema({{"cust", DataType::kInt64},
                         {"item", DataType::kString},
                         {"qty", DataType::kInt64}});
  return *Table::FromRows(schema, {{1, "apple", 3},
                                   {1, "pear", 1},
                                   {2, "apple", 5},
                                   {2, "apple", 2},
                                   {3, "fig", 9}});
}

Table Customers() {
  engine::Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  return *Table::FromRows(schema, {{1, "ann"}, {2, "bob"}, {3, "cat"}});
}

TEST(PlanTest, ScanExecutesToTheTable) {
  PlanPtr scan = engine::ScanNode(Orders(), "orders");
  Table t = *scan->Execute();
  EXPECT_TRUE(t.ContentEquals(Orders()));
  EXPECT_NE(scan->Describe().find("orders"), std::string::npos);
}

TEST(PlanTest, ComposedPipeline) {
  // SELECT name, SUM(qty) AS total FROM orders JOIN customers
  // WHERE item = 'apple' GROUP BY name HAVING total > 4 ORDER BY name.
  PlanPtr plan = engine::OrderByNode(
      engine::GroupByNode(
          engine::HashJoinNode(
              engine::FilterNode(engine::ScanNode(Orders(), "orders"),
                                 engine::Eq(engine::Col("item"),
                                            engine::Lit("apple"))),
              engine::ScanNode(Customers(), "customers"), {"cust"}, {"id"}),
          {"name"}, {{AggKind::kSum, "qty", "total"}},
          engine::Gt(engine::Col("total"), engine::Lit(4.0))),
      {"name"});
  Table result = *plan->Execute();
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.GetValue(0, 0).string(), "bob");
  EXPECT_DOUBLE_EQ(result.GetValue(1, 0).float64(), 7.0);
}

TEST(PlanTest, ExplainRendersTree) {
  PlanPtr plan = engine::DistinctNode(engine::ProjectNode(
      engine::ScanNode(Orders(), "orders"), {"item"}));
  std::string explain = plan->ToString();
  EXPECT_NE(explain.find("Distinct"), std::string::npos);
  EXPECT_NE(explain.find("  Project(item)"), std::string::npos);
  EXPECT_NE(explain.find("    Scan(orders"), std::string::npos);
}

TEST(PlanTest, ProjectExprsAndRename) {
  PlanPtr plan = engine::RenameNode(
      engine::ProjectExprsNode(
          engine::ScanNode(Orders(), "orders"),
          {{"double_qty", engine::Mul(engine::Col("qty"), engine::Lit(2))}}),
      {{"double_qty", "qty2"}});
  Table t = *plan->Execute();
  EXPECT_EQ(t.schema().field(0).name, "qty2");
  EXPECT_EQ(t.GetValue(0, 0).int64(), 6);
}

TEST(PlanTest, ErrorsPropagate) {
  PlanPtr plan = engine::FilterNode(engine::ScanNode(Orders(), "orders"),
                                    engine::Col("missing"));
  EXPECT_FALSE(plan->Execute().ok());
}

// --- SSJoinNode (the §7 optimizer integration) ---

struct Fixture {
  core::WeightVector weights;
  core::ElementOrder order;
  core::SetsRelation rel;
};

Fixture MakeSets(uint64_t seed, size_t groups, size_t universe) {
  Rng rng(seed);
  Fixture f;
  f.weights.resize(universe);
  for (double& w : f.weights) w = 0.2 + rng.NextDouble();
  f.order = core::ElementOrder::ByDecreasingWeight(f.weights);
  std::vector<std::vector<text::TokenId>> docs(groups);
  for (auto& doc : docs) {
    size_t size = 2 + rng.Uniform(6);
    for (size_t i = 0; i < size; ++i) {
      doc.push_back(static_cast<text::TokenId>(rng.Uniform(universe)));
    }
  }
  f.rel = *core::BuildSetsRelation(std::move(docs), f.weights);
  return f;
}

TEST(SSJoinPlanTest, TableRoundTripPreservesSets) {
  Fixture f = MakeSets(3, 40, 25);
  Table t = *core::ToNormalizedTable(f.rel, f.weights, f.order);
  core::DecodedRelation decoded = *core::TableToSetsRelation(t);
  ASSERT_EQ(decoded.rel.num_groups(), f.rel.num_groups());
  EXPECT_TRUE(decoded.rel.store == f.rel.store);
  for (core::GroupId g = 0; g < f.rel.num_groups(); ++g) {
    EXPECT_DOUBLE_EQ(decoded.rel.norms[g], f.rel.norms[g]);
    EXPECT_NEAR(decoded.rel.set_weights[g], f.rel.set_weights[g], 1e-9);
  }
  // Recovered order ranks present elements consistently with the original.
  for (core::GroupId g = 0; g < f.rel.num_groups(); ++g) {
    core::SetView set = f.rel.set(g);
    for (size_t i = 1; i < set.size(); ++i) {
      bool orig = f.order.Rank(set[i - 1]) < f.order.Rank(set[i]);
      bool rec = decoded.order.Rank(set[i - 1]) < decoded.order.Rank(set[i]);
      EXPECT_EQ(orig, rec);
    }
  }
}

TEST(SSJoinPlanTest, AllStrategiesProduceSameResult) {
  Fixture f = MakeSets(7, 50, 30);
  Table t = *core::ToNormalizedTable(f.rel, f.weights, f.order);
  core::OverlapPredicate pred = core::OverlapPredicate::TwoSidedNormalized(0.7);
  auto pair_set = [](const Table& out) {
    std::set<std::pair<int64_t, int64_t>> pairs;
    for (size_t r = 0; r < out.num_rows(); ++r) {
      pairs.insert({out.GetValue(0, r).int64(), out.GetValue(1, r).int64()});
    }
    return pairs;
  };
  std::set<std::pair<int64_t, int64_t>> reference;
  bool first = true;
  for (core::SSJoinStrategy strategy :
       {core::SSJoinStrategy::kBasic, core::SSJoinStrategy::kPrefixFilter,
        core::SSJoinStrategy::kCostBased}) {
    PlanPtr plan = core::SSJoinNode(engine::ScanNode(t, "r"),
                                    engine::ScanNode(t, "s"), pred, strategy);
    Table out = *plan->Execute();
    if (first) {
      reference = pair_set(out);
      first = false;
    } else {
      EXPECT_EQ(pair_set(out), reference)
          << core::SSJoinStrategyName(strategy);
    }
    EXPECT_NE(plan->Describe().find(core::SSJoinStrategyName(strategy)),
              std::string::npos);
  }
  EXPECT_FALSE(reference.empty());
}

TEST(SSJoinPlanTest, ComposesWithOtherPlanNodes) {
  Fixture f = MakeSets(11, 40, 20);
  Table t = *core::ToNormalizedTable(f.rel, f.weights, f.order);
  // SSJoin, then keep only non-identical pairs with overlap above 1.
  PlanPtr plan = engine::FilterNode(
      core::SSJoinNode(engine::ScanNode(t, "r"), engine::ScanNode(t, "s"),
                       core::OverlapPredicate::TwoSidedNormalized(0.8)),
      engine::And(engine::Ne(engine::Col("r_a"), engine::Col("s_a")),
                  engine::Gt(engine::Col("overlap"), engine::Lit(1.0))));
  Table out = *plan->Execute();
  for (size_t r = 0; r < out.num_rows(); ++r) {
    EXPECT_NE(out.GetValue(0, r).int64(), out.GetValue(1, r).int64());
    EXPECT_GT(out.GetValue(2, r).float64(), 1.0);
  }
  std::string explain = plan->ToString();
  EXPECT_NE(explain.find("Filter"), std::string::npos);
  EXPECT_NE(explain.find("SSJoin"), std::string::npos);
}

TEST(SSJoinPlanTest, ExplainReportsChosenPlan) {
  Fixture f = MakeSets(13, 60, 25);
  Table t = *core::ToNormalizedTable(f.rel, f.weights, f.order);
  std::string explain = *core::ExplainSSJoin(
      t, t, core::OverlapPredicate::TwoSidedNormalized(0.9));
  EXPECT_NE(explain.find("physical plan:"), std::string::npos);
  EXPECT_NE(explain.find("CostEstimate"), std::string::npos);
}

TEST(SSJoinPlanTest, RejectsMalformedTables) {
  engine::Schema wrong({{"x", DataType::kInt64}});
  Table bad = *Table::FromRows(wrong, {{1}});
  EXPECT_FALSE(core::TableToSetsRelation(bad).ok());
  // Sparse (non-dense) group ids rejected.
  Fixture f = MakeSets(17, 5, 10);
  Table t = *core::ToNormalizedTable(f.rel, f.weights, f.order);
  Table sparse = t;
  sparse.column(0).int64s()[0] = 1000;
  EXPECT_FALSE(core::TableToSetsRelation(sparse).ok());
}

}  // namespace
}  // namespace ssjoin
