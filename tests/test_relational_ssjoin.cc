#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/relational_ssjoin.h"
#include "core/ssjoin.h"
#include "engine/operators.h"

namespace ssjoin::core {
namespace {

struct Fixture {
  WeightVector weights;
  ElementOrder order;
  SetsRelation r;
  SetsRelation s;
};

Fixture RandomFixture(uint64_t seed, size_t universe, size_t r_groups,
                      size_t s_groups) {
  Rng rng(seed);
  Fixture f;
  f.weights.resize(universe);
  for (double& w : f.weights) w = 0.1 + rng.NextDouble();
  f.order = ElementOrder::ByDecreasingWeight(f.weights);
  auto make_docs = [&](size_t n) {
    std::vector<std::vector<text::TokenId>> docs(n);
    for (auto& doc : docs) {
      size_t size = 1 + rng.Uniform(6);
      for (size_t i = 0; i < size; ++i) {
        doc.push_back(static_cast<text::TokenId>(rng.Uniform(universe)));
      }
    }
    return docs;
  };
  f.r = *BuildSetsRelation(make_docs(r_groups), f.weights);
  f.s = *BuildSetsRelation(make_docs(s_groups), f.weights);
  return f;
}

/// Extracts sorted (r, s, overlap) triples from a plan output table.
std::vector<SSJoinPair> TableToPairs(const engine::Table& t) {
  std::vector<SSJoinPair> pairs;
  size_t ra = *t.schema().FieldIndex("r_a");
  size_t sa = *t.schema().FieldIndex("s_a");
  size_t ov = *t.schema().FieldIndex("overlap");
  for (size_t row = 0; row < t.num_rows(); ++row) {
    pairs.push_back({static_cast<GroupId>(t.GetValue(ra, row).int64()),
                     static_cast<GroupId>(t.GetValue(sa, row).int64()),
                     t.GetValue(ov, row).float64()});
  }
  SortPairs(&pairs);
  return pairs;
}

void ExpectSamePairs(const std::vector<SSJoinPair>& got,
                     const std::vector<SSJoinPair>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].r, expected[i].r);
    EXPECT_EQ(got[i].s, expected[i].s);
    EXPECT_NEAR(got[i].overlap, expected[i].overlap, 1e-9);
  }
}

TEST(ToNormalizedTableTest, FirstNormalForm) {
  WeightVector weights{1.0, 2.0};
  ElementOrder order = ElementOrder::ById(2);
  SetsRelation rel = *BuildSetsRelation({{0, 1}, {1}}, weights);
  engine::Table t = *ToNormalizedTable(rel, weights, order);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.schema().num_fields(), 5u);
  // Row (group 0, element 1) carries weight 2 and norm 3.
  bool found = false;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    if (t.GetValue(0, row).int64() == 0 && t.GetValue(1, row).int64() == 1) {
      EXPECT_DOUBLE_EQ(t.GetValue(2, row).float64(), 2.0);
      EXPECT_DOUBLE_EQ(t.GetValue(3, row).float64(), 3.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ToNormalizedTableTest, RejectsUncoveredElements) {
  WeightVector weights{1.0};
  ElementOrder order = ElementOrder::ById(1);
  SetsRelation rel = *BuildSetsRelation({{0}}, weights);
  rel.store = *SetStore::FromParts({0, 2}, {0, 9});
  EXPECT_FALSE(ToNormalizedTable(rel, weights, order).ok());
}

class RelationalPlanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationalPlanTest, BasicPlanMatchesColumnarExecutor) {
  Fixture f = RandomFixture(GetParam(), 15, 25, 20);
  engine::Table rt = *ToNormalizedTable(f.r, f.weights, f.order);
  engine::Table st = *ToNormalizedTable(f.s, f.weights, f.order);
  for (const OverlapPredicate& pred :
       {OverlapPredicate::Absolute(1.0), OverlapPredicate::OneSidedNormalized(0.7),
        OverlapPredicate::TwoSidedNormalized(0.6)}) {
    SCOPED_TRACE(pred.ToString());
    SSJoinContext ctx{&f.weights, &f.order};
    auto expected = *ExecuteSSJoin(SSJoinAlgorithm::kBasic, f.r, f.s, pred, ctx,
                                   nullptr);
    SortPairs(&expected);
    engine::Table plan_out = *BasicSSJoinPlan(rt, st, pred);
    ExpectSamePairs(TableToPairs(plan_out), expected);
  }
}

TEST_P(RelationalPlanTest, PrefixPlanMatchesColumnarExecutor) {
  Fixture f = RandomFixture(GetParam() + 100, 15, 20, 20);
  engine::Table rt = *ToNormalizedTable(f.r, f.weights, f.order);
  engine::Table st = *ToNormalizedTable(f.s, f.weights, f.order);
  for (const OverlapPredicate& pred :
       {OverlapPredicate::OneSidedNormalized(0.8),
        OverlapPredicate::TwoSidedNormalized(0.7)}) {
    SCOPED_TRACE(pred.ToString());
    SSJoinContext ctx{&f.weights, &f.order};
    auto expected = *ExecuteSSJoin(SSJoinAlgorithm::kPrefixFilterInline, f.r, f.s,
                                   pred, ctx, nullptr);
    SortPairs(&expected);
    engine::Table plan_out = *PrefixFilterSSJoinPlan(rt, st, pred);
    ExpectSamePairs(TableToPairs(plan_out), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationalPlanTest, ::testing::Values(1u, 2u, 3u));

TEST(PrefixFilterPlanTest, KeepsRankPrefixPerGroup) {
  WeightVector weights{1.0, 1.0, 1.0, 1.0};
  ElementOrder order = ElementOrder::ById(4);
  SetsRelation rel = *BuildSetsRelation({{0, 1, 2, 3}}, weights);
  engine::Table t = *ToNormalizedTable(rel, weights, order);
  OverlapPredicate pred = OverlapPredicate::OneSidedNormalized(0.5);
  engine::Table filtered = *PrefixFilterPlan(t, pred, /*r_side=*/true);
  // beta = 4 - 2 = 2 -> prefix of 3 lowest-rank elements.
  EXPECT_EQ(filtered.num_rows(), 3u);
  // S side of a 1-sided predicate: no filtering.
  engine::Table unfiltered = *PrefixFilterPlan(t, pred, /*r_side=*/false);
  EXPECT_EQ(unfiltered.num_rows(), 4u);
}

}  // namespace
}  // namespace ssjoin::core
