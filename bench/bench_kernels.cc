/// Microbenchmarks of the src/kernels hot loops: sorted-span intersection
/// (the verify phase's Overlap(s1, s2)) across span-length ratios, and the
/// posting-probe candidate count (the prefix filter's equi-join), each run
/// at every available kernel tier so the per-tier speedup over the scalar
/// oracle is tracked in one table.
///
/// Expected shape: simd wins on balanced spans (the block compare retires
/// ~W^2 comparisons per load pair), gallop wins once one side is ~32x longer
/// (the auto heuristic's crossover), and every tier reports the same match
/// counts — the tiers are bit-identical, only their clocks differ.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kernels/kernels.h"

namespace ssjoin::bench {
namespace {

using kernels::Tier;

/// Strictly increasing span of n values with mean stride ~2.5 — the shape
/// of a real canonicalized token set (sets have no duplicates; candidate
/// pairs share a large token fraction). Starting at the same base with
/// independent strides gives two such spans ~40% overlap.
std::vector<uint32_t> MakeDenseSpan(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> v;
  v.reserve(n);
  uint32_t cur = static_cast<uint32_t>(rng.Uniform(3));
  for (size_t i = 0; i < n; ++i) {
    v.push_back(cur);
    cur += 1 + static_cast<uint32_t>(rng.Uniform(3));
  }
  return v;
}

/// n sorted unique values sampled across [0, range): the short side of a
/// skewed pair must span the long side's whole value range, otherwise the
/// scalar merge early-exits at the short side's max and no search strategy
/// can beat it.
std::vector<uint32_t> MakeSpreadSpan(size_t n, uint32_t range, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<uint32_t>(rng.Uniform(range)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// An (a, b) pair at |a|:|b| skew `nb/na`, overlapping in value range.
std::pair<std::vector<uint32_t>, std::vector<uint32_t>> MakePair(size_t na,
                                                                 size_t nb) {
  if (na == nb) return {MakeDenseSpan(na, 1), MakeDenseSpan(nb, 2)};
  std::vector<uint32_t> big = MakeDenseSpan(std::max(na, nb), 1);
  uint32_t range = big.back() + 1;
  std::vector<uint32_t> small = MakeSpreadSpan(std::min(na, nb), range, 2);
  if (na < nb) return {std::move(small), std::move(big)};
  return {std::move(big), std::move(small)};
}

struct KernelRow {
  std::string op;
  std::string shape;
  std::string tier;
  double ns_per_call = 0.0;
  double elements_per_us = 0.0;
  size_t checksum = 0;  // matches/candidates: must agree across tiers
};

std::vector<KernelRow>& KernelRows() {
  static auto* rows = new std::vector<KernelRow>();
  return *rows;
}

/// Weighted intersection (the verify phase) at a fixed |a|:|b| ratio.
void BM_Intersect(benchmark::State& state, Tier tier, size_t na, size_t nb) {
  auto [a, b] = MakePair(na, nb);
  uint32_t max_token = 0;
  for (uint32_t t : a) max_token = std::max(max_token, t);
  for (uint32_t t : b) max_token = std::max(max_token, t);
  std::vector<double> weights(size_t{max_token} + 1, 1.0);
  size_t matches = 0;
  double sum = 0.0;
  for (auto _ : state) {
    sum += kernels::IntersectWeightedTier(tier, a, b, weights.data(), &matches);
  }
  benchmark::DoNotOptimize(sum);
  state.counters["matches"] = static_cast<double>(matches);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(na + nb));
}

/// Posting probe (the prefix filter's candidate equi-join): long posting
/// lists over a small group space, so most probes are duplicates filtered by
/// the seen-epoch table — the serving-index regime the AVX2 gather targets.
void BM_Probe(benchmark::State& state, Tier tier, size_t postings_len,
              size_t num_groups) {
  Rng rng(7);
  std::vector<uint32_t> postings;
  postings.reserve(postings_len);
  for (size_t i = 0; i < postings_len; ++i) {
    postings.push_back(static_cast<uint32_t>(rng.Uniform(num_groups)));
  }
  std::vector<uint32_t> seen(num_groups, 0);
  std::vector<uint32_t> out;
  out.reserve(num_groups);
  uint32_t epoch = 0;
  size_t candidates = 0;
  for (auto _ : state) {
    ++epoch;
    out.clear();
    candidates = kernels::ProbePostingsTier(tier, postings, epoch, seen.data(),
                                            &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(postings_len));
}

/// Hand-timed measurement for the JSON table: google-benchmark's own timing
/// is used for the console output, but the summary rows want one comparable
/// number per (op, shape, tier) regardless of iteration policy.
void MeasureRows() {
  struct Shape {
    const char* name;
    size_t na, nb;
  };
  const Shape shapes[] = {
      {"1:1/256", 256, 256},     {"1:1/4096", 4096, 4096},
      {"1:4/1024", 1024, 4096},  {"1:32/128", 128, 4096},
      {"1:256/64", 64, 16384},
  };
  for (const Shape& sh : shapes) {
    auto [a, b] = MakePair(sh.na, sh.nb);
    uint32_t max_token = 0;
    for (uint32_t t : a) max_token = std::max(max_token, t);
    for (uint32_t t : b) max_token = std::max(max_token, t);
    std::vector<double> weights(size_t{max_token} + 1, 1.0);
    for (Tier tier : kernels::AvailableTiers()) {
      // Warm up, then time enough calls for a stable read.
      size_t matches = 0;
      double sum = 0.0;
      const size_t reps = 2000;
      for (size_t i = 0; i < 50; ++i) {
        sum += kernels::IntersectWeightedTier(tier, a, b, weights.data(),
                                              &matches);
      }
      Timer timer;
      for (size_t i = 0; i < reps; ++i) {
        sum += kernels::IntersectWeightedTier(tier, a, b, weights.data(),
                                              &matches);
      }
      double ns = timer.ElapsedMillis() * 1e6 / static_cast<double>(reps);
      benchmark::DoNotOptimize(sum);
      KernelRows().push_back(
          {"intersect", sh.name, kernels::TierName(tier), ns,
           ns > 0.0 ? static_cast<double>(sh.na + sh.nb) * 1e3 / ns : 0.0,
           matches});
    }
  }
  // Candidate-count probe: 64K postings over 4K groups (high duplicate
  // fraction, the regime the epoch filter is built for).
  {
    const size_t postings_len = 65536;
    const size_t num_groups = 4096;
    Rng rng(7);
    std::vector<uint32_t> postings;
    postings.reserve(postings_len);
    for (size_t i = 0; i < postings_len; ++i) {
      postings.push_back(static_cast<uint32_t>(rng.Uniform(num_groups)));
    }
    std::vector<uint32_t> seen(num_groups, 0);
    std::vector<uint32_t> out;
    out.reserve(num_groups);
    uint32_t epoch = 0;
    for (Tier tier : kernels::AvailableTiers()) {
      size_t candidates = 0;
      const size_t reps = 400;
      for (size_t i = 0; i < 20; ++i) {
        ++epoch;
        out.clear();
        candidates =
            kernels::ProbePostingsTier(tier, postings, epoch, seen.data(), &out);
      }
      Timer timer;
      for (size_t i = 0; i < reps; ++i) {
        ++epoch;
        out.clear();
        candidates =
            kernels::ProbePostingsTier(tier, postings, epoch, seen.data(), &out);
      }
      double ns = timer.ElapsedMillis() * 1e6 / static_cast<double>(reps);
      KernelRows().push_back(
          {"candidate-count", "64K/4Kgroups", kernels::TierName(tier), ns,
           ns > 0.0 ? static_cast<double>(postings_len) * 1e3 / ns : 0.0,
           candidates});
    }
  }
}

void RegisterAll() {
  struct Shape {
    const char* name;
    size_t na, nb;
  };
  const Shape shapes[] = {{"ratio=1:1", 4096, 4096},
                          {"ratio=1:32", 128, 4096},
                          {"ratio=1:256", 64, 16384}};
  for (const Shape& sh : shapes) {
    for (Tier tier : kernels::AvailableTiers()) {
      std::string name = std::string("intersect/") + sh.name + "/kernel=" +
                         kernels::TierName(tier);
      benchmark::RegisterBenchmark(name.c_str(), BM_Intersect, tier, sh.na,
                                   sh.nb);
    }
  }
  for (Tier tier : kernels::AvailableTiers()) {
    std::string name =
        std::string("probe/64K/kernel=") + kernels::TierName(tier);
    benchmark::RegisterBenchmark(name.c_str(), BM_Probe, tier, 65536, 4096);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  ssjoin::bench::MeasureRows();

  // Per-tier table with speedup over the scalar oracle for each shape.
  std::printf("\n=== kernel tiers: ns/call (speedup vs scalar) ===\n");
  std::printf("%-16s %-14s %-8s %12s %14s %10s\n", "op", "shape", "tier",
              "ns/call", "elems/us", "speedup");
  double scalar_ns = 0.0;
  for (const auto& row : ssjoin::bench::KernelRows()) {
    if (row.tier == "scalar") scalar_ns = row.ns_per_call;
    double speedup = row.ns_per_call > 0.0 ? scalar_ns / row.ns_per_call : 0.0;
    std::printf("%-16s %-14s %-8s %12.1f %14.1f %9.2fx\n", row.op.c_str(),
                row.shape.c_str(), row.tier.c_str(), row.ns_per_call,
                row.elements_per_us, speedup);
  }

  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    scalar_ns = 0.0;
    for (const auto& row : ssjoin::bench::KernelRows()) {
      if (row.tier == "scalar") scalar_ns = row.ns_per_call;
      recs.push_back(
          ssjoin::bench::JsonRecord()
              .Str("op", row.op)
              .Str("shape", row.shape)
              .Str("tier", row.tier)
              .Num("ns_per_call", row.ns_per_call)
              .Num("elements_per_us", row.elements_per_us)
              .Num("speedup_vs_scalar",
                   row.ns_per_call > 0.0 ? scalar_ns / row.ns_per_call : 0.0)
              .Int("checksum", row.checksum));
    }
    ssjoin::bench::WriteBenchJson("kernels", recs);
  }
  return 0;
}
