/// Mutable-index churn bench: bulk-load vs incremental upsert throughput
/// (each incremental op pays the O(vocabulary + tail) epoch publish), lookup
/// latency while a writer churns, seal/compaction pause, and restart cost
/// (WAL replay vs sealed-segment decode). Emits BENCH_mutable.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "datagen/error_model.h"
#include "index/mutable_index.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kCorpusSize = 20000;
constexpr size_t kChurnOps = 200;
constexpr size_t kChurnLookups = 1500;

struct MutableRow {
  std::string label;
  double total_ms = 0.0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

std::vector<MutableRow>& MutableRows() {
  static auto* rows = new std::vector<MutableRow>();
  return *rows;
}

index::MutableIndexOptions IndexOptions() {
  index::MutableIndexOptions options;
  options.match.alpha = 0.35;
  options.seal_threshold = 0;
  options.max_generations = 0;
  return options;
}

std::unique_ptr<index::MutableFuzzyIndex> LoadedIndex(
    const std::vector<std::string>& master,
    index::MutableIndexOptions options) {
  auto index = index::MutableFuzzyIndex::Create(options).MoveValueUnsafe();
  std::vector<std::pair<uint64_t, std::string>> records;
  records.reserve(master.size());
  for (size_t i = 0; i < master.size(); ++i) records.emplace_back(i, master[i]);
  if (!index->BulkLoad(records).ok()) std::abort();
  return index;
}

double Quantile(std::vector<double> sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  size_t i = static_cast<size_t>(q * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[i];
}

void BM_BulkLoad(benchmark::State& state) {
  const auto& master = AddressCorpus(kCorpusSize, /*with_name=*/true);
  for (auto _ : state) {
    Timer t;
    auto index = LoadedIndex(master, IndexOptions());
    double ms = t.ElapsedMillis();
    double ops = static_cast<double>(master.size()) / (ms / 1000.0);
    state.counters["docs_per_sec"] = ops;
    MutableRows().push_back({"bulk_load", ms, ops, 0, 0, 0});
  }
}

void BM_IncrementalUpserts(benchmark::State& state) {
  const auto& master = AddressCorpus(kCorpusSize, /*with_name=*/true);
  for (auto _ : state) {
    auto index = LoadedIndex(master, IndexOptions());
    // Replacements over a warm index: every op republishes the epoch.
    Timer t;
    for (size_t i = 0; i < kChurnOps; ++i) {
      size_t doc = (i * 7919) % master.size();
      if (!index->Upsert(doc, master[(doc + 1) % master.size()]).ok()) {
        std::abort();
      }
    }
    double ms = t.ElapsedMillis();
    double ops = static_cast<double>(kChurnOps) / (ms / 1000.0);
    state.counters["upserts_per_sec"] = ops;
    MutableRows().push_back({"incremental_upsert", ms, ops, 0, 0, 0});
  }
}

void BM_LookupUnderChurn(benchmark::State& state) {
  const auto& master = AddressCorpus(kCorpusSize, /*with_name=*/true);
  Rng rng(kBenchSeed + 2);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  for (size_t i = 0; i < 256; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }

  for (auto _ : state) {
    auto index = LoadedIndex(master, IndexOptions());
    std::atomic<bool> stop{false};
    // Writer thread: continuous replace churn (each op publishes an epoch).
    std::thread writer([&] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        size_t doc = (i * 6151) % master.size();
        if (!index->Upsert(doc, master[(doc + 3) % master.size()]).ok()) break;
        ++i;
      }
    });

    std::vector<double> lat_us;
    lat_us.reserve(kChurnLookups);
    Timer total;
    for (size_t i = 0; i < kChurnLookups; ++i) {
      Timer t;
      auto r = index->Lookup(queries[i % queries.size()], 3);
      benchmark::DoNotOptimize(r);
      lat_us.push_back(t.ElapsedMillis() * 1000.0);
    }
    double ms = total.ElapsedMillis();
    stop.store(true, std::memory_order_relaxed);
    writer.join();

    std::sort(lat_us.begin(), lat_us.end());
    MutableRow row{"lookup_under_churn", ms,
                   static_cast<double>(kChurnLookups) / (ms / 1000.0),
                   Quantile(lat_us, 0.50), Quantile(lat_us, 0.95),
                   Quantile(lat_us, 0.99)};
    state.counters["qps"] = row.ops_per_sec;
    state.counters["p50_us"] = row.p50_us;
    state.counters["p95_us"] = row.p95_us;
    state.counters["p99_us"] = row.p99_us;
    MutableRows().push_back(row);
  }
}

void BM_SealAndCompactPause(benchmark::State& state) {
  const auto& master = AddressCorpus(kCorpusSize, /*with_name=*/true);
  for (auto _ : state) {
    auto index = LoadedIndex(master, IndexOptions());
    // Grow a tail plus tombstones so both maintenance ops have real work.
    for (size_t i = 0; i < 128; ++i) {
      if (!index->Upsert(kCorpusSize + i, master[i % master.size()]).ok()) {
        std::abort();
      }
    }
    for (size_t i = 0; i < 64; ++i) {
      if (!index->Delete(i * 3).ok()) std::abort();
    }
    Timer seal_t;
    if (!index->Seal().ok()) std::abort();
    double seal_ms = seal_t.ElapsedMillis();
    Timer compact_t;
    if (!index->Compact().ok()) std::abort();
    double compact_ms = compact_t.ElapsedMillis();
    state.counters["seal_ms"] = seal_ms;
    state.counters["compact_ms"] = compact_ms;
    MutableRows().push_back({"seal_pause", seal_ms, 0, 0, 0, 0});
    MutableRows().push_back({"compact_pause", compact_ms, 0, 0, 0, 0});
  }
}

void BM_RestartRecovery(benchmark::State& state) {
  const auto& master = AddressCorpus(kCorpusSize, /*with_name=*/true);
  std::string dir =
      (std::filesystem::temp_directory_path() / "ssjoin_bench_mutable").string();
  for (auto _ : state) {
    index::MutableIndexOptions options = IndexOptions();
    std::filesystem::remove_all(dir);
    options.data_dir = dir;
    {
      auto index = index::MutableFuzzyIndex::Create(options).MoveValueUnsafe();
      std::vector<std::pair<uint64_t, std::string>> records;
      for (size_t i = 0; i < 4096; ++i) records.emplace_back(i, master[i]);
      if (!index->BulkLoad(records).ok()) std::abort();
      if (!index->Seal().ok()) std::abort();
      // Unsealed churn that restart must replay from the WAL.
      for (size_t i = 0; i < kChurnOps; ++i) {
        if (!index->Upsert(i % 4096, master[(i + 11) % master.size()]).ok()) {
          std::abort();
        }
      }
    }
    Timer t;
    auto reopened = index::MutableFuzzyIndex::Open(options);
    if (!reopened.ok()) std::abort();
    double ms = t.ElapsedMillis();
    state.counters["reopen_ms"] = ms;
    state.counters["replayed_ops"] = static_cast<double>(kChurnOps);
    MutableRows().push_back(
        {"restart_recovery", ms,
         static_cast<double>(kChurnOps) / (ms / 1000.0), 0, 0, 0});
  }
  std::filesystem::remove_all(dir);
}

void RegisterAll() {
  auto reg = [](const char* name, void (*fn)(benchmark::State&)) {
    benchmark::RegisterBenchmark(name, fn)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  };
  reg("mutable/bulk_load", BM_BulkLoad);
  reg("mutable/incremental_upserts", BM_IncrementalUpserts);
  reg("mutable/lookup_under_churn", BM_LookupUnderChurn);
  reg("mutable/seal_compact_pause", BM_SealAndCompactPause);
  reg("mutable/restart_recovery", BM_RestartRecovery);
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Mutable index churn (%zu reference strings, %zu churn ops) ===\n",
      ssjoin::bench::kCorpusSize, ssjoin::bench::kChurnOps);
  std::printf("%-22s %10s %12s %9s %9s %9s\n", "phase", "total(ms)", "ops/s",
              "p50(us)", "p95(us)", "p99(us)");
  for (const auto& row : ssjoin::bench::MutableRows()) {
    std::printf("%-22s %10.1f %12.0f %9.1f %9.1f %9.1f\n", row.label.c_str(),
                row.total_ms, row.ops_per_sec, row.p50_us, row.p95_us,
                row.p99_us);
  }

  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::MutableRows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Str("label", row.label)
                         .Num("total_ms", row.total_ms)
                         .Num("ops_per_sec", row.ops_per_sec)
                         .Num("p50_us", row.p50_us)
                         .Num("p95_us", row.p95_us)
                         .Num("p99_us", row.p99_us));
    }
    ssjoin::bench::WriteBenchJson("mutable", recs);
  }
  return 0;
}
