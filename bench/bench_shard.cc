/// Sharded-serving bench: closed-loop QPS/latency through a
/// ShardedLookupIndex at N shards x M concurrent clients, every request
/// carrying a per-request deadline. Reports whether the p99 stayed under the
/// deadline (`deadline_ok`) — the scaling claim the shard tier makes is
/// "QPS grows with N while the tail stays inside the budget", and this bench
/// is what checks it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "datagen/error_model.h"
#include "shard/sharded_index.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kReferenceSize = 20000;
constexpr size_t kRequestsPerClient = 1000;
constexpr int kDeadlineMs = 250;

struct ShardRow {
  uint32_t shards;
  size_t clients;
  double total_ms;
  double qps;
  uint64_t deadline_rejects;
  serve::StatsSnapshot stats;
};

std::vector<ShardRow>& ShardRows() {
  static auto* rows = new std::vector<ShardRow>();
  return *rows;
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n) {
  Rng rng(kBenchSeed + 2);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

void BM_Shard(benchmark::State& state, uint32_t shards, size_t clients) {
  const auto& master = AddressCorpus(kReferenceSize, /*with_name=*/true);
  auto queries = DirtyQueries(master, 2048);

  for (auto _ : state) {
    shard::ShardedIndexOptions options;
    options.num_shards = shards;
    options.match.alpha = 0.35;
    options.service.exec = BenchExec();
    options.service.cache_capacity = 0;  // measure lookups, not the cache
    auto index =
        shard::ShardedLookupIndex::Create(options).MoveValueUnsafe();
    {
      std::vector<std::pair<uint64_t, std::string>> records;
      records.reserve(master.size());
      for (size_t i = 0; i < master.size(); ++i) {
        records.emplace_back(i, master[i]);
      }
      if (!index->BulkLoad(records).ok()) std::abort();
      if (!index->Seal().ok()) std::abort();
    }

    std::atomic<uint64_t> deadline_rejects{0};
    Timer t;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = 0; i < kRequestsPerClient; ++i) {
          size_t q = (c * kRequestsPerClient + i) % queries.size();
          auto r = index->Lookup(queries[q], 3,
                                 std::chrono::milliseconds(kDeadlineMs));
          if (!r.ok()) {
            deadline_rejects.fetch_add(1, std::memory_order_relaxed);
          }
          benchmark::DoNotOptimize(r);
        }
      });
    }
    for (auto& th : threads) th.join();
    double total_ms = t.ElapsedMillis();

    serve::StatsSnapshot stats = index->Stats();
    double requests = static_cast<double>(clients * kRequestsPerClient);
    double qps = requests / (total_ms / 1000.0);
    state.counters["qps"] = qps;
    state.counters["p50_us"] = stats.latency_p50_us;
    state.counters["p99_us"] = stats.latency_p99_us;
    state.counters["deadline_rejects"] =
        static_cast<double>(deadline_rejects.load());
    ShardRows().push_back({shards, clients, total_ms, qps,
                           deadline_rejects.load(), stats});
  }
}

void RegisterAll() {
  for (uint32_t shards : {1u, 2u, 4u}) {
    for (size_t clients : {1ul, 4ul, 16ul}) {
      std::string name = "shard/n=" + std::to_string(shards) +
                         "/clients=" + std::to_string(clients);
      benchmark::RegisterBenchmark(name.c_str(), BM_Shard, shards, clients)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond)
          ->MeasureProcessCPUTime()
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Sharded scatter-gather closed loop (%zu reference strings, "
      "%zu req/client, k=3, deadline %d ms) ===\n",
      ssjoin::bench::kReferenceSize, ssjoin::bench::kRequestsPerClient,
      ssjoin::bench::kDeadlineMs);
  std::printf("%-22s %10s %10s %10s %10s %12s\n", "config", "total(ms)", "qps",
              "p50(us)", "p99(us)", "deadline_ok");
  for (const auto& row : ssjoin::bench::ShardRows()) {
    bool deadline_ok = row.stats.latency_p99_us <
                           ssjoin::bench::kDeadlineMs * 1000.0 &&
                       row.deadline_rejects == 0;
    std::printf("n=%-2u clients=%-12zu %10.1f %10.0f %10.1f %10.1f %12s\n",
                row.shards, row.clients, row.total_ms, row.qps,
                row.stats.latency_p50_us, row.stats.latency_p99_us,
                deadline_ok ? "yes" : "NO");
  }

  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::ShardRows()) {
      bool deadline_ok = row.stats.latency_p99_us <
                             ssjoin::bench::kDeadlineMs * 1000.0 &&
                         row.deadline_rejects == 0;
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Str("label", "n=" + std::to_string(row.shards) +
                                           "/clients=" +
                                           std::to_string(row.clients))
                         .Int("shards", row.shards)
                         .Int("clients", row.clients)
                         .Num("total_ms", row.total_ms)
                         .Num("qps", row.qps)
                         .Num("p50_us", row.stats.latency_p50_us)
                         .Num("p99_us", row.stats.latency_p99_us)
                         .Int("deadline_ms", ssjoin::bench::kDeadlineMs)
                         .Int("deadline_rejects", row.deadline_rejects)
                         .Int("deadline_ok", deadline_ok ? 1 : 0));
    }
    ssjoin::bench::WriteBenchJson("shard", recs);
  }
  return 0;
}
