/// Table 2: varying the input data size — a Jaccard self-join at threshold
/// 0.85 with the prefix-filtered implementation, reporting the size of the
/// normalized SSJoin input (rows of the 1NF set representation), the output
/// size and the time, for relations of 100K..330K records.
///
/// Expected shape: SSJoin input grows linearly with the record count; time
/// grows with input and output size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/string_joins.h"

namespace ssjoin::bench {
namespace {

constexpr double kAlpha = 0.85;  // the paper's fixed threshold

struct Table2Row {
  size_t records;
  size_t ssjoin_input_rows;
  size_t output_pairs;
  double total_ms;
};

std::vector<Table2Row>& Table2Rows() {
  static auto* rows = new std::vector<Table2Row>();
  return *rows;
}

void BM_Scaling(benchmark::State& state, size_t records) {
  const auto& data = AddressCorpus(records, /*with_name=*/true);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::JaccardResemblanceJoin(
        data, data, kAlpha, {},
        {core::SSJoinAlgorithm::kPrefixFilterInline, false}, &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
    // Input rows of the 1NF set representation = prefix-filter input size.
    Table2Rows().push_back(
        {records, stats.ssjoin.r_prefix_elements + stats.ssjoin.s_prefix_elements,
         stats.result_pairs, total_ms});
  }
  ExportCounters(state, stats);
}

void RegisterAll() {
  for (size_t records : {100000ul, 200000ul, 250000ul, 330000ul}) {
    std::string name = "table2/records=" + std::to_string(records / 1000) + "K";
    benchmark::RegisterBenchmark(name.c_str(), BM_Scaling, records)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\n=== Table 2: varying input data sizes (Jaccard 0.85, "
      "prefix-filter-inline) ===\n");
  std::printf("%10s %18s %12s %12s\n", "records", "prefix input rows", "output",
              "time(ms)");
  for (const auto& row : ssjoin::bench::Table2Rows()) {
    std::printf("%10zu %18zu %12zu %12.1f\n", row.records, row.ssjoin_input_rows,
                row.output_pairs, row.total_ms);
  }
  return 0;
}
