/// Table 2: varying the input data size — a Jaccard self-join at threshold
/// 0.85 with the prefix-filtered implementation, reporting the size of the
/// normalized SSJoin input (rows of the 1NF set representation), the output
/// size and the time, for relations of 25K..330K records — extended with a
/// thread-scaling dimension: each workload also runs on the morsel-driven
/// parallel executor (src/exec) so serial-vs-parallel speedup is tracked in
/// the same table (the 25K workload at 1 vs 4 threads is the canonical
/// scaling probe; override the parallel arm with --threads N).
///
/// Expected shape: SSJoin input grows linearly with the record count; time
/// grows with input and output size; on a machine with enough cores the
/// parallel arm approaches serial_time/threads with identical output.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "kernels/kernels.h"
#include "simjoin/string_joins.h"

namespace ssjoin::bench {
namespace {

constexpr double kAlpha = 0.85;  // the paper's fixed threshold

struct Table2Row {
  size_t records;
  size_t threads;
  size_t ssjoin_input_rows;
  size_t output_pairs;
  double total_ms;
  std::string kernel;     // requested kernel tier this row ran under
  double ssjoin_ms = 0.0; // SSJoin phase (candidate gen + verify hot loops)
};

std::vector<Table2Row>& Table2Rows() {
  static auto* rows = new std::vector<Table2Row>();
  return *rows;
}

/// `kernel` pins a kernel tier for this run (empty = leave the process-wide
/// setting, i.e. --kernel / SSJOIN_KERNEL / auto).
void BM_Scaling(benchmark::State& state, size_t records, size_t threads,
                const char* kernel) {
  if (*kernel != '\0') {
    kernels::SetTier(*kernels::ParseTier(kernel)).AbortIfError();
  }
  const auto& data = AddressCorpus(records, /*with_name=*/true);
  simjoin::JoinExecution execution =
      MakeExec(core::SSJoinAlgorithm::kPrefixFilterInline);
  execution.exec.num_threads = threads;
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result =
        simjoin::JaccardResemblanceJoin(data, data, kAlpha, {}, execution, &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
    // Input rows of the 1NF set representation = prefix-filter input size.
    Table2Rows().push_back(
        {records, threads,
         stats.ssjoin.r_prefix_elements + stats.ssjoin.s_prefix_elements,
         stats.result_pairs, total_ms,
         *kernel != '\0' ? kernel : kernels::ActiveTierName(),
         stats.phases.Millis("SSJoin") + stats.phases.Millis("Filter")});
  }
  ExportCounters(state, stats);
  state.counters["threads"] = static_cast<double>(threads);
}

void RegisterAll() {
  // --threads N overrides the parallel arm (default 4, the scaling target).
  size_t par =
      BenchExec().num_threads != 1 ? BenchExec().resolved_threads() : 4;
  for (size_t records : {25000ul, 100000ul, 200000ul, 330000ul}) {
    for (size_t threads : {size_t{1}, par}) {
      std::string name = "table2/records=" + std::to_string(records / 1000) +
                         "K/threads=" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), BM_Scaling, records, threads,
                                   "")
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Kernel before/after arms: the canonical 25K workload pinned to the
  // scalar oracle vs the auto-dispatched tiers, serial and parallel, so the
  // kernel subsystem's end-to-end effect on the SSJoin phase is tracked in
  // the same table.
  for (const char* kernel : {"scalar", "auto"}) {
    for (size_t threads : {size_t{1}, par}) {
      std::string name = "table2/records=25K/threads=" +
                         std::to_string(threads) + "/kernel=" + kernel;
      benchmark::RegisterBenchmark(name.c_str(), BM_Scaling, size_t{25000},
                                   threads, kernel)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\n=== Table 2: varying input data sizes (Jaccard 0.85, "
      "prefix-filter-inline) ===\n");
  std::printf("%10s %8s %8s %18s %12s %12s %12s\n", "records", "threads",
              "kernel", "prefix input rows", "output", "time(ms)",
              "ssjoin(ms)");
  for (const auto& row : ssjoin::bench::Table2Rows()) {
    std::printf("%10zu %8zu %8s %18zu %12zu %12.1f %12.1f\n", row.records,
                row.threads, row.kernel.c_str(), row.ssjoin_input_rows,
                row.output_pairs, row.total_ms, row.ssjoin_ms);
  }
  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    recs.reserve(ssjoin::bench::Table2Rows().size());
    for (const auto& row : ssjoin::bench::Table2Rows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Int("records", row.records)
                         .Int("threads", row.threads)
                         .Str("kernel", row.kernel)
                         .Int("ssjoin_input_rows", row.ssjoin_input_rows)
                         .Int("output_pairs", row.output_pairs)
                         .Num("total_ms", row.total_ms)
                         .Num("ssjoin_ms", row.ssjoin_ms));
    }
    ssjoin::bench::WriteBenchJson("table2", recs);
  }
  return 0;
}
