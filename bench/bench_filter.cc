/// Filtered-lookup frontier: per-query latency and candidate reduction of
/// the BE-index composition across a selectivity × corpus-size grid. Each
/// record carries a `bucket` attribute in [0, 100); a filter selecting b of
/// the 100 buckets has selectivity b/100. The composition prunes similarity
/// candidates BEFORE verification, so `cand_kept/cand_in` should track the
/// selectivity and filtered lookups should get cheaper as filters tighten —
/// unlike exact post-filtering, which pays the full unfiltered lookup first.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "datagen/error_model.h"
#include "filter/attr.h"
#include "filter/metrics.h"
#include "filter/predicate.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::bench {
namespace {

struct FilterRow {
  size_t reference_size;
  double selectivity;
  double filtered_ms;
  double postfilter_ms;
  double kept_fraction;  // cand_kept / cand_in over the measured pass
};

std::vector<FilterRow>& FilterRows() {
  static auto* rows = new std::vector<FilterRow>();
  return *rows;
}

/// A filter selecting `buckets` of the 100 bucket values (selectivity
/// buckets/100); 100 means "no filter".
filter::FilterPredicate BucketFilter(int buckets) {
  filter::FilterPredicate pred;
  if (buckets >= 100) return pred;
  filter::FilterConjunct c;
  c.name = "bucket";
  for (int b = 0; b < buckets; ++b) {
    c.values.push_back(filter::AttrValue::Int64(b));
  }
  if (Status st = pred.AddConjunct(std::move(c)); !st.ok()) {
    std::fprintf(stderr, "bucket filter: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  return pred;
}

void BM_FilteredLookup(benchmark::State& state, size_t reference_size,
                       int buckets) {
  const auto& master = AddressCorpus(reference_size, /*with_name=*/true);
  simjoin::FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  auto index =
      simjoin::FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();

  std::vector<filter::AttrSet> attrs(master.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (Status st = attrs[i].Set(
            "bucket", filter::AttrValue::Int64(static_cast<int64_t>(i % 100)));
        !st.ok()) {
      std::fprintf(stderr, "attrs: %s\n", st.ToString().c_str());
      std::exit(2);
    }
  }
  if (Status st = index.AssignAttributes(std::move(attrs)); !st.ok()) {
    std::fprintf(stderr, "assign: %s\n", st.ToString().c_str());
    std::exit(2);
  }

  Rng rng(kBenchSeed);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  const size_t kQueries = 1000;
  std::vector<std::string> queries(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    queries[i] =
        datagen::CorruptRecord(master[rng.Uniform(master.size())], {}, errors,
                               &rng);
  }

  filter::FilterPredicate pred = BucketFilter(buckets);
  const auto& counters = filter::FilterMetrics();
  const size_t k = 5;

  double filtered_ms = 0.0;
  double postfilter_ms = 0.0;
  double kept_fraction = 1.0;
  for (auto _ : state) {
    uint64_t in_before = counters.candidates_in->value();
    uint64_t kept_before = counters.candidates_kept->value();
    Timer t;
    size_t hits = 0;
    for (const std::string& q : queries) {
      hits += index.Lookup(q, k, pred).size();
    }
    filtered_ms = t.ElapsedMillis();
    benchmark::DoNotOptimize(hits);
    uint64_t in = counters.candidates_in->value() - in_before;
    uint64_t kept = counters.candidates_kept->value() - kept_before;
    kept_fraction =
        in > 0 ? static_cast<double>(kept) / static_cast<double>(in) : 1.0;

    // The naive alternative: full unfiltered lookup, then post-filter.
    Timer t2;
    size_t naive_hits = 0;
    for (const std::string& q : queries) {
      auto all = index.Lookup(q, master.size());
      size_t taken = 0;
      for (const auto& m : all) {
        if (pred.Matches(index.attributes()[m.ref_index])) {
          if (++taken == k) break;
        }
      }
      naive_hits += taken;
    }
    postfilter_ms = t2.ElapsedMillis();
    benchmark::DoNotOptimize(naive_hits);
  }

  double selectivity = buckets >= 100 ? 1.0 : buckets / 100.0;
  state.counters["per_lookup_ms"] =
      filtered_ms / static_cast<double>(kQueries);
  state.counters["cand_kept_frac"] = kept_fraction;
  FilterRows().push_back({reference_size, selectivity,
                    filtered_ms / static_cast<double>(kQueries),
                    postfilter_ms / static_cast<double>(kQueries),
                    kept_fraction});
}

void RegisterAll() {
  for (size_t n : {10000ul, 50000ul}) {
    for (int buckets : {100, 50, 10, 1}) {
      std::string name = "filtered-lookup/reference=" +
                         std::to_string(n / 1000) + "K/sel=" +
                         (buckets >= 100 ? std::string("1.0")
                                         : "0." + std::string(buckets < 10
                                                                  ? "0"
                                                                  : "") +
                                               std::to_string(buckets));
      benchmark::RegisterBenchmark(name.c_str(), BM_FilteredLookup, n, buckets)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  ssjoin::filter::RegisterFilterMetrics();
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\n=== Filtered fuzzy lookup (1000 dirty queries, k=5, alpha=0.35) "
      "===\n");
  std::printf("%12s %12s %14s %16s %14s\n", "reference", "selectivity",
              "filtered(ms)", "post-filter(ms)", "cand kept");
  for (const auto& row : ssjoin::bench::FilterRows()) {
    std::printf("%12zu %12.2f %14.3f %16.3f %13.1f%%\n", row.reference_size,
                row.selectivity, row.filtered_ms, row.postfilter_ms,
                row.kept_fraction * 100.0);
  }
  benchmark::Shutdown();
  return 0;
}
