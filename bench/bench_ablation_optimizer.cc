/// Ablation for §5's conclusion and §7's future work: "the choice of
/// physical implementation of the SSJoin operator must be cost-based".
/// Runs the Jaccard join across thresholds with (a) basic fixed, (b)
/// prefix-filter-inline fixed, and (c) the cost model choosing, and reports
/// whether the model's choice tracks the faster plan.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/cost_model.h"
#include "simjoin/prep.h"
#include "simjoin/string_joins.h"
#include "text/tokenizer.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 10000;

struct OptRow {
  double threshold;
  double basic_ms;
  double prefix_ms;
  double costed_ms;
  const char* chosen;
};

std::vector<OptRow>& OptRows() {
  static auto* rows = new std::vector<OptRow>();
  return *rows;
}

double RunOnce(const std::vector<std::string>& data, double alpha,
               const simjoin::JoinExecution& exec) {
  Timer timer;
  auto result = simjoin::JaccardResemblanceJoin(data, data, alpha, {}, exec);
  result.status().AbortIfError();
  return timer.ElapsedMillis();
}

void BM_Optimizer(benchmark::State& state, double alpha) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/true);
  OptRow row{alpha, 0, 0, 0, "?"};
  for (auto _ : state) {
    row.basic_ms = RunOnce(data, alpha, MakeExec(core::SSJoinAlgorithm::kBasic));
    row.prefix_ms =
        RunOnce(data, alpha, MakeExec(core::SSJoinAlgorithm::kPrefixFilterInline));
    row.costed_ms = RunOnce(data, alpha, MakeExec(core::SSJoinAlgorithm::kBasic, /*use_cost_model=*/true));
  }
  // Ask the model directly which plan it picks, for the report.
  text::WordTokenizer tokenizer;
  simjoin::Prepared prep =
      simjoin::PrepareStrings(data, data, tokenizer, simjoin::WeightMode::kIdf)
          .MoveValueUnsafe();
  core::OverlapPredicate pred = core::OverlapPredicate::TwoSidedNormalized(alpha);
  row.chosen = core::SSJoinAlgorithmName(
      core::ChooseAlgorithm(prep.r, prep.s, pred, prep.Context()));
  state.counters["basic_ms"] = row.basic_ms;
  state.counters["prefix_ms"] = row.prefix_ms;
  state.counters["costed_ms"] = row.costed_ms;
  OptRows().push_back(row);
}

void RegisterAll() {
  for (double alpha : {0.30, 0.50, 0.70, 0.90}) {
    std::string name = "optimizer/alpha=" + std::to_string(alpha).substr(0, 4);
    benchmark::RegisterBenchmark(name.c_str(), BM_Optimizer, alpha)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== Ablation: cost-based implementation choice (Jaccard, 10K "
              "records) ===\n");
  std::printf("%9s %12s %12s %12s  %s\n", "threshold", "basic(ms)", "prefix(ms)",
              "costed(ms)", "model chose");
  for (const auto& row : ssjoin::bench::OptRows()) {
    std::printf("%9.2f %12.1f %12.1f %12.1f  %s\n", row.threshold, row.basic_ms,
                row.prefix_ms, row.costed_ms, row.chosen);
  }
  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::OptRows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Num("threshold", row.threshold)
                         .Num("basic_ms", row.basic_ms)
                         .Num("prefix_ms", row.prefix_ms)
                         .Num("costed_ms", row.costed_ms)
                         .Str("chosen", row.chosen));
    }
    ssjoin::bench::WriteBenchJson("ablation_optimizer", recs);
  }
  return 0;
}
