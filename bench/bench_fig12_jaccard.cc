/// Figure 12: Jaccard-resemblance self-join of the Customer relation (word
/// tokens, IDF weights) across thresholds, comparing the basic,
/// prefix-filtered and inline-prefix-filtered SSJoin implementations.
///
/// Expected shape (§5): prefix-filtered 5-10x faster than basic; the inline
/// representation another ~30% faster than the plain prefix-filtered plan
/// (it avoids the re-joins with the base relations). The prefix plans are
/// additionally run at the figure's low thresholds (0.4, 0.6) where pruning
/// weakens.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/string_joins.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 25000;  // the paper's relation size

void BM_Jaccard(benchmark::State& state, core::SSJoinAlgorithm algorithm,
                double alpha) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/true);
  simjoin::SetJoinOptions opts;  // word tokens + IDF, the paper's setup
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::JaccardResemblanceJoin(data, data, alpha, opts,
                                                  MakeExec(algorithm), &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
  }
  ExportCounters(state, stats);
  Rows().push_back({core::SSJoinAlgorithmName(algorithm), alpha, stats, total_ms});
}

void RegisterOne(core::SSJoinAlgorithm algorithm, double alpha) {
  std::string name = std::string("fig12/") + core::SSJoinAlgorithmName(algorithm) +
                     "/alpha=" + std::to_string(alpha).substr(0, 4);
  benchmark::RegisterBenchmark(name.c_str(), BM_Jaccard, algorithm, alpha)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  for (double alpha : {0.80, 0.85, 0.90, 0.95}) {
    RegisterOne(core::SSJoinAlgorithm::kBasic, alpha);
    RegisterOne(core::SSJoinAlgorithm::kPrefixFilter, alpha);
    RegisterOne(core::SSJoinAlgorithm::kPrefixFilterInline, alpha);
  }
  // The figure's extra low-threshold points for the prefix-filtered plan.
  for (double alpha : {0.40, 0.60}) {
    RegisterOne(core::SSJoinAlgorithm::kPrefixFilter, alpha);
    RegisterOne(core::SSJoinAlgorithm::kPrefixFilterInline, alpha);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  ssjoin::bench::PrintPhaseTable(
      "Figure 12: Jaccard resemblance join (25K customer records, word "
      "tokens, IDF)",
      {"Prep", "Prefix-filter", "SSJoin", "Filter"});
  ssjoin::bench::WriteResultRowsJson("fig12_jaccard");
  return 0;
}
