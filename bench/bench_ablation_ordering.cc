/// Ablation for §4.3.2 (Determining the Ordering): the prefix filter is
/// correct under ANY global element ordering O, but the paper argues for
/// ordering by decreasing IDF weight (frequent elements filtered out first)
/// to minimize the candidate count. This bench runs the same
/// prefix-filtered Jaccard join under four orderings and reports candidate
/// pairs and time.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/prep.h"
#include "text/tokenizer.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 25000;
constexpr double kAlpha = 0.85;

enum class OrderKind { kIdfDecreasing, kIdfIncreasing, kRandom, kById };

const char* OrderName(OrderKind kind) {
  switch (kind) {
    case OrderKind::kIdfDecreasing:
      return "idf-decreasing (paper)";
    case OrderKind::kIdfIncreasing:
      return "idf-increasing (worst)";
    case OrderKind::kRandom:
      return "random";
    case OrderKind::kById:
      return "by-id";
  }
  return "?";
}

struct AblRow {
  const char* label;
  double total_ms;
  size_t candidates;
  size_t prefix_elements;
};

std::vector<AblRow>& AblRows() {
  static auto* rows = new std::vector<AblRow>();
  return *rows;
}

void BM_Ordering(benchmark::State& state, OrderKind kind) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/true);
  text::WordTokenizer tokenizer;
  static simjoin::Prepared* prep = nullptr;
  if (prep == nullptr) {
    prep = new simjoin::Prepared(
        simjoin::PrepareStrings(data, data, tokenizer, simjoin::WeightMode::kIdf)
            .MoveValueUnsafe());
  }
  switch (kind) {
    case OrderKind::kIdfDecreasing:
      prep->order = core::ElementOrder::ByDecreasingWeight(prep->weights);
      break;
    case OrderKind::kIdfIncreasing:
      prep->order = core::ElementOrder::ByIncreasingWeight(prep->weights);
      break;
    case OrderKind::kRandom:
      prep->order = core::ElementOrder::Random(prep->weights.size(), 99);
      break;
    case OrderKind::kById:
      prep->order = core::ElementOrder::ById(prep->weights.size());
      break;
  }
  core::OverlapPredicate pred = core::OverlapPredicate::TwoSidedNormalized(kAlpha);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto pairs = simjoin::RunSSJoinStage(
        *prep, pred, MakeExec(core::SSJoinAlgorithm::kPrefixFilterInline), &stats);
    pairs.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(pairs->size());
  }
  state.counters["candidates"] = static_cast<double>(stats.ssjoin.candidate_pairs);
  AblRows().push_back({OrderName(kind), total_ms, stats.ssjoin.candidate_pairs,
                       stats.ssjoin.r_prefix_elements});
}

void RegisterAll() {
  for (OrderKind kind : {OrderKind::kIdfDecreasing, OrderKind::kIdfIncreasing,
                         OrderKind::kRandom, OrderKind::kById}) {
    std::string name = std::string("ordering/") + OrderName(kind);
    benchmark::RegisterBenchmark(name.c_str(), BM_Ordering, kind)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== Ablation: prefix-filter element ordering (Jaccard 0.85, "
              "25K records) ===\n");
  std::printf("%-26s %12s %14s %16s\n", "ordering", "time(ms)", "candidates",
              "R prefix elems");
  for (const auto& row : ssjoin::bench::AblRows()) {
    std::printf("%-26s %12.1f %14zu %16zu\n", row.label, row.total_ms,
                row.candidates, row.prefix_elements);
  }
  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::AblRows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Str("ordering", row.label)
                         .Num("total_ms", row.total_ms)
                         .Int("candidates", row.candidates)
                         .Int("prefix_elements", row.prefix_elements));
    }
    ssjoin::bench::WriteBenchJson("ablation_ordering", recs);
  }
  return 0;
}
