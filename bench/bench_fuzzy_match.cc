/// Extension bench (§6's top-K composition): FuzzyMatchIndex build cost and
/// per-query lookup latency/throughput against reference tables of
/// increasing size, with dirty queries.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "datagen/error_model.h"
#include "simjoin/fuzzy_match.h"

namespace ssjoin::bench {
namespace {

struct FmRow {
  size_t reference_size;
  double build_ms;
  double per_lookup_ms;
  double top1_accuracy;
};

std::vector<FmRow>& FmRows() {
  static auto* rows = new std::vector<FmRow>();
  return *rows;
}

void BM_FuzzyLookup(benchmark::State& state, size_t reference_size) {
  const auto& master = AddressCorpus(reference_size, /*with_name=*/true);
  simjoin::FuzzyMatchIndex::Options options;
  options.alpha = 0.35;
  Timer build_timer;
  auto index = simjoin::FuzzyMatchIndex::Build(master, options).MoveValueUnsafe();
  double build_ms = build_timer.ElapsedMillis();

  Rng rng(kBenchSeed);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  const size_t kQueries = 2000;
  std::vector<uint32_t> truth(kQueries);
  std::vector<std::string> queries(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    truth[i] = static_cast<uint32_t>(rng.Uniform(master.size()));
    queries[i] = datagen::CorruptRecord(master[truth[i]], {}, errors, &rng);
  }

  size_t correct = 0;
  double lookup_ms = 0.0;
  for (auto _ : state) {
    correct = 0;
    Timer t;
    for (size_t i = 0; i < kQueries; ++i) {
      auto matches = index.Lookup(queries[i], 1);
      if (!matches.empty() && matches[0].ref_index == truth[i]) ++correct;
    }
    lookup_ms = t.ElapsedMillis();
  }
  double per_lookup = lookup_ms / static_cast<double>(kQueries);
  state.counters["build_ms"] = build_ms;
  state.counters["per_lookup_ms"] = per_lookup;
  state.counters["top1_accuracy"] =
      static_cast<double>(correct) / static_cast<double>(kQueries);
  FmRows().push_back({reference_size, build_ms, per_lookup,
                      static_cast<double>(correct) / kQueries});
}

void RegisterAll() {
  for (size_t n : {10000ul, 50000ul, 100000ul}) {
    std::string name = "fuzzy-match/reference=" + std::to_string(n / 1000) + "K";
    benchmark::RegisterBenchmark(name.c_str(), BM_FuzzyLookup, n)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== Top-K fuzzy match (2000 dirty queries, k=1, alpha=0.35) ===\n");
  std::printf("%12s %12s %16s %10s\n", "reference", "build(ms)", "per-lookup(ms)",
              "top-1 acc");
  for (const auto& row : ssjoin::bench::FmRows()) {
    std::printf("%12zu %12.1f %16.3f %9.1f%%\n", row.reference_size, row.build_ms,
                row.per_lookup_ms, row.top1_accuracy * 100.0);
  }
  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::FmRows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Int("reference_size", row.reference_size)
                         .Num("build_ms", row.build_ms)
                         .Num("per_lookup_ms", row.per_lookup_ms)
                         .Num("top1_accuracy", row.top1_accuracy));
    }
    ssjoin::bench::WriteBenchJson("fuzzy_match", recs);
  }
  return 0;
}
