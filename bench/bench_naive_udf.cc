/// The UDF-over-cross-product strawman (§1/§3): applying the similarity UDF
/// to every pair, which is what a database system falls back to for an
/// arbitrary UDF join predicate. Compared against the SSJoin-based plan on
/// the same (deliberately small) input — the gap is the paper's motivation
/// for the operator.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/gravano.h"
#include "simjoin/string_joins.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 2000;  // cross product: 4M UDF calls
constexpr double kAlpha = 0.85;

void BM_CrossProductUDF(benchmark::State& state) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/false);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::CrossProductEditSimilarityJoin(data, data, kAlpha, &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
  }
  ExportCounters(state, stats);
  Rows().push_back({"cross-product UDF", kAlpha, stats, total_ms});
}

void BM_SSJoinPlan(benchmark::State& state) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/false);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::EditSimilarityJoin(
        data, data, kAlpha, 3, MakeExec(core::SSJoinAlgorithm::kPrefixFilterInline),
        &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
  }
  ExportCounters(state, stats);
  Rows().push_back({"SSJoin (inline)", kAlpha, stats, total_ms});
}

}  // namespace
}  // namespace ssjoin::bench

BENCHMARK(ssjoin::bench::BM_CrossProductUDF)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(ssjoin::bench::BM_SSJoinPlan)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== Cross-product UDF strawman vs SSJoin (2K records, edit "
              "similarity 0.85) ===\n");
  std::printf("%-24s %14s %16s %12s\n", "plan", "time(ms)", "UDF calls", "results");
  for (const auto& row : ssjoin::bench::Rows()) {
    std::printf("%-24s %14.1f %16zu %12zu\n", row.label.c_str(), row.total_ms,
                row.stats.verifier_calls, row.stats.result_pairs);
  }
  ssjoin::bench::WriteResultRowsJson("naive_udf");
  return 0;
}
