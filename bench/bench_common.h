#ifndef SSJOIN_BENCH_BENCH_COMMON_H_
#define SSJOIN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "datagen/address_gen.h"
#include "exec/exec_context.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "simjoin/types.h"

namespace ssjoin::bench {

/// Seed shared by all benchmarks so every binary sees the same relation.
inline constexpr uint64_t kBenchSeed = 20060403;  // ICDE 2006

/// Parallel-runtime knobs shared by every join a bench driver runs; set from
/// the command line by InitBenchFlags, default serial.
inline exec::ExecContext& BenchExec() {
  static exec::ExecContext ec;
  return ec;
}

/// Strips `--threads[=| ]N`, `--morsel[=| ]N` and
/// `--kernel[=| ]scalar|gallop|simd|auto` from argv (so that
/// benchmark::Initialize never sees them); thread/morsel values go to
/// BenchExec(), the kernel tier is applied process-wide. Call at the top of
/// every bench main, before benchmark::Initialize.
inline void InitBenchFlags(int* argc, char** argv) {
  if (Status st = kernels::InitFromEnv(); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    size_t* target = nullptr;
    std::string value;
    bool is_kernel = false;
    for (const char* name : {"--threads", "--morsel", "--kernel"}) {
      size_t len = std::strlen(name);
      if (arg.compare(0, len, name) != 0) continue;
      if (arg.size() == len && i + 1 < *argc) {
        value = argv[++i];
      } else if (arg.size() > len && arg[len] == '=') {
        value = arg.substr(len + 1);
      } else {
        continue;
      }
      if (std::strcmp(name, "--kernel") == 0) {
        is_kernel = true;
      } else {
        target = std::strcmp(name, "--threads") == 0 ? &BenchExec().num_threads
                                                     : &BenchExec().morsel_size;
      }
      break;
    }
    if (is_kernel) {
      Result<kernels::Tier> tier = kernels::ParseTier(value);
      Status st = tier.ok() ? kernels::SetTier(*tier) : tier.status();
      if (!st.ok()) {
        std::fprintf(stderr, "error: --kernel: %s\n", st.ToString().c_str());
        std::exit(2);
      }
    } else if (target != nullptr) {
      Result<uint64_t> parsed = ParseUint64(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
        std::exit(2);
      }
      *target = static_cast<size_t>(*parsed);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// JoinExecution for a bench run: the requested algorithm plus the global
/// parallel-execution knobs.
inline simjoin::JoinExecution MakeExec(core::SSJoinAlgorithm algorithm,
                                       bool use_cost_model = false) {
  return {algorithm, use_cost_model, BenchExec()};
}

/// The paper's Customer relation stand-in. `with_name` controls whether the
/// customer name is part of the string (the q-gram benches use the shorter
/// address-only form so the basic plan's equi-join fits in memory at
/// laptop scale; see DESIGN.md).
inline const std::vector<std::string>& AddressCorpus(size_t n, bool with_name) {
  static std::vector<std::pair<std::pair<size_t, bool>, std::vector<std::string>>>
      cache;
  for (const auto& [key, records] : cache) {
    if (key == std::make_pair(n, with_name)) return records;
  }
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.25;
  opts.include_name = with_name;
  opts.seed = kBenchSeed;
  cache.emplace_back(std::make_pair(n, with_name),
                     datagen::GenerateAddresses(opts).records);
  return cache.back().second;
}

/// One result row of a paper-style summary table.
struct ResultRow {
  std::string label;        // implementation / configuration
  double threshold = 0.0;
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
};

inline std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow>* rows = new std::vector<ResultRow>();
  return *rows;
}

/// Copies phase timings and counters into benchmark counters so they show in
/// the google-benchmark output.
inline void ExportCounters(benchmark::State& state,
                           const simjoin::SimJoinStats& stats) {
  for (const auto& [phase, ms] : stats.phases.phases()) {
    state.counters[phase + "_ms"] = ms;
  }
  state.counters["verifier_calls"] = static_cast<double>(stats.verifier_calls);
  state.counters["result_pairs"] = static_cast<double>(stats.result_pairs);
  state.counters["candidates"] = static_cast<double>(stats.ssjoin.candidate_pairs);
  state.counters["equijoin_rows"] = static_cast<double>(stats.ssjoin.equijoin_rows);
}

/// \name Machine-readable bench output
/// Every bench driver dumps its result rows as `BENCH_<name>.json` next to
/// the binary's working directory so perf trajectories can be diffed across
/// commits without scraping stdout. The top-level object carries the
/// parallel-execution configuration (`threads`, `morsel`).
/// @{

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// One flat JSON object, emitted in insertion order.
struct JsonRecord {
  std::vector<std::pair<std::string, std::string>> fields;

  JsonRecord& Str(const std::string& key, const std::string& value) {
    fields.emplace_back(key, "\"" + JsonEscape(value) + "\"");
    return *this;
  }
  JsonRecord& Int(const std::string& key, uint64_t value) {
    fields.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& Num(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    fields.emplace_back(key, buf);
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(fields[i].first) + "\": " + fields[i].second;
    }
    return out + "}";
  }
};

/// Writes `{"bench": ..., "threads": ..., "morsel": ..., "rows": [...],
/// "metrics": {...}}`. The `metrics` object is the process-wide obs registry
/// flattened to scalar fields (core.*, exec.*, plus anything else the run
/// touched), making the perf trajectory machine-comparable across PRs.
inline void WriteBenchJson(const std::string& bench_name,
                           const std::vector<JsonRecord>& rows) {
  std::string path = "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"bench\": \"%s\", \"threads\": %zu, \"morsel\": %zu, \"rows\": [",
               JsonEscape(bench_name).c_str(), BenchExec().resolved_threads(),
               BenchExec().morsel_size);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%s\n  %s", i > 0 ? "," : "", rows[i].ToString().c_str());
  }
  std::fprintf(f, "\n],\n\"metrics\": %s}\n",
               obs::Registry::Global().ToFlatJson().c_str());
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/// JSON form of a shared ResultRow (phase timings flattened to `<phase>_ms`).
inline JsonRecord ResultRowJson(const ResultRow& row) {
  JsonRecord rec;
  rec.Str("label", row.label)
      .Num("threshold", row.threshold)
      .Num("total_ms", row.total_ms)
      .Int("candidate_pairs", row.stats.ssjoin.candidate_pairs)
      .Int("equijoin_rows", row.stats.ssjoin.equijoin_rows)
      .Int("verifier_calls", row.stats.verifier_calls)
      .Int("result_pairs", row.stats.result_pairs);
  for (const auto& [phase, ms] : row.stats.phases.phases()) {
    rec.Num(phase + "_ms", ms);
  }
  return rec;
}

/// Dumps the shared Rows() table as BENCH_<name>.json.
inline void WriteResultRowsJson(const std::string& bench_name) {
  std::vector<JsonRecord> recs;
  recs.reserve(Rows().size());
  for (const ResultRow& row : Rows()) recs.push_back(ResultRowJson(row));
  WriteBenchJson(bench_name, recs);
}

/// @}

/// Prints the collected rows as a phase-stacked table (the Figures 10-13
/// presentation): one row per (implementation, threshold).
inline void PrintPhaseTable(const char* title, const std::vector<std::string>& phases) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-24s %9s", "implementation", "threshold");
  for (const auto& p : phases) std::printf(" %14s", (p + "(ms)").c_str());
  std::printf(" %12s %12s %12s\n", "total(ms)", "candidates", "results");
  for (const ResultRow& row : Rows()) {
    std::printf("%-24s %9.2f", row.label.c_str(), row.threshold);
    for (const auto& p : phases) std::printf(" %14.1f", row.stats.phases.Millis(p));
    std::printf(" %12.1f %12zu %12zu\n", row.total_ms,
                row.stats.ssjoin.candidate_pairs, row.stats.result_pairs);
  }
}

}  // namespace ssjoin::bench

#endif  // SSJOIN_BENCH_BENCH_COMMON_H_
