#ifndef SSJOIN_BENCH_BENCH_COMMON_H_
#define SSJOIN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/address_gen.h"
#include "simjoin/types.h"

namespace ssjoin::bench {

/// Seed shared by all benchmarks so every binary sees the same relation.
inline constexpr uint64_t kBenchSeed = 20060403;  // ICDE 2006

/// The paper's Customer relation stand-in. `with_name` controls whether the
/// customer name is part of the string (the q-gram benches use the shorter
/// address-only form so the basic plan's equi-join fits in memory at
/// laptop scale; see DESIGN.md).
inline const std::vector<std::string>& AddressCorpus(size_t n, bool with_name) {
  static std::vector<std::pair<std::pair<size_t, bool>, std::vector<std::string>>>
      cache;
  for (const auto& [key, records] : cache) {
    if (key == std::make_pair(n, with_name)) return records;
  }
  datagen::AddressGenOptions opts;
  opts.num_records = n;
  opts.duplicate_fraction = 0.25;
  opts.include_name = with_name;
  opts.seed = kBenchSeed;
  cache.emplace_back(std::make_pair(n, with_name),
                     datagen::GenerateAddresses(opts).records);
  return cache.back().second;
}

/// One result row of a paper-style summary table.
struct ResultRow {
  std::string label;        // implementation / configuration
  double threshold = 0.0;
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
};

inline std::vector<ResultRow>& Rows() {
  static std::vector<ResultRow>* rows = new std::vector<ResultRow>();
  return *rows;
}

/// Copies phase timings and counters into benchmark counters so they show in
/// the google-benchmark output.
inline void ExportCounters(benchmark::State& state,
                           const simjoin::SimJoinStats& stats) {
  for (const auto& [phase, ms] : stats.phases.phases()) {
    state.counters[phase + "_ms"] = ms;
  }
  state.counters["verifier_calls"] = static_cast<double>(stats.verifier_calls);
  state.counters["result_pairs"] = static_cast<double>(stats.result_pairs);
  state.counters["candidates"] = static_cast<double>(stats.ssjoin.candidate_pairs);
  state.counters["equijoin_rows"] = static_cast<double>(stats.ssjoin.equijoin_rows);
}

/// Prints the collected rows as a phase-stacked table (the Figures 10-13
/// presentation): one row per (implementation, threshold).
inline void PrintPhaseTable(const char* title, const std::vector<std::string>& phases) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-24s %9s", "implementation", "threshold");
  for (const auto& p : phases) std::printf(" %14s", (p + "(ms)").c_str());
  std::printf(" %12s %12s %12s\n", "total(ms)", "candidates", "results");
  for (const ResultRow& row : Rows()) {
    std::printf("%-24s %9.2f", row.label.c_str(), row.threshold);
    for (const auto& p : phases) std::printf(" %14.1f", row.stats.phases.Millis(p));
    std::printf(" %12.1f %12zu %12zu\n", row.total_ms,
                row.stats.ssjoin.candidate_pairs, row.stats.result_pairs);
  }
}

}  // namespace ssjoin::bench

#endif  // SSJOIN_BENCH_BENCH_COMMON_H_
