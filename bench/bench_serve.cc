/// Serving bench: closed-loop QPS/latency through LookupService with 1/2/8
/// concurrent client threads, warm (repeating query mix, cache on) vs cold
/// (every query distinct, cache off). Latency quantiles come from the
/// service's own histogram, so the numbers match what `stats` reports in
/// production.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "datagen/error_model.h"
#include "index/mutable_index.h"
#include "serve/lookup_service.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kReferenceSize = 20000;
constexpr size_t kRequestsPerClient = 2000;
constexpr size_t kWarmDistinctQueries = 256;  // small mix -> cache hits dominate

struct ServeRow {
  std::string label;
  size_t clients;
  bool warm;
  double total_ms;
  double qps;
  double hit_rate;
  serve::StatsSnapshot stats;
};

std::vector<ServeRow>& ServeRows() {
  static auto* rows = new std::vector<ServeRow>();
  return *rows;
}

std::vector<std::string> DirtyQueries(const std::vector<std::string>& master,
                                      size_t n) {
  Rng rng(kBenchSeed + 1);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 1.5;
  std::vector<std::string> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t src = rng.Uniform(master.size());
    queries.push_back(datagen::CorruptRecord(master[src], {}, errors, &rng));
  }
  return queries;
}

void BM_Serve(benchmark::State& state, size_t clients, bool warm) {
  const auto& master = AddressCorpus(kReferenceSize, /*with_name=*/true);
  index::MutableIndexOptions index_options;
  index_options.match.alpha = 0.35;

  // Cold: every request is a distinct query and the cache is disabled, so
  // each one runs the full lookup. Warm: clients cycle a small mix with the
  // cache on, so steady state is nearly all hits.
  size_t distinct =
      warm ? kWarmDistinctQueries : clients * kRequestsPerClient;
  auto queries = DirtyQueries(master, distinct);

  double total_ms = 0.0;
  for (auto _ : state) {
    auto index = index::MutableFuzzyIndex::Create(index_options).MoveValueUnsafe();
    {
      std::vector<std::pair<uint64_t, std::string>> records;
      records.reserve(master.size());
      for (size_t i = 0; i < master.size(); ++i) records.emplace_back(i, master[i]);
      if (!index->BulkLoad(records).ok()) std::abort();
    }
    serve::LookupServiceOptions options;
    options.exec = BenchExec();
    options.cache_capacity = warm ? 4096 : 0;
    auto service = serve::LookupService::Create(std::move(index), options)
                       .MoveValueUnsafe();

    Timer t;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = 0; i < kRequestsPerClient; ++i) {
          size_t q = (c * kRequestsPerClient + i) % queries.size();
          auto r = service->Lookup(queries[q], 3);
          benchmark::DoNotOptimize(r);
        }
      });
    }
    for (auto& th : threads) th.join();
    total_ms = t.ElapsedMillis();

    serve::StatsSnapshot stats = service->Stats();
    double requests = static_cast<double>(stats.requests);
    double qps = requests / (total_ms / 1000.0);
    double hit_rate =
        requests > 0 ? static_cast<double>(stats.cache_hits) / requests : 0.0;
    state.counters["qps"] = qps;
    state.counters["p50_us"] = stats.latency_p50_us;
    state.counters["p95_us"] = stats.latency_p95_us;
    state.counters["p99_us"] = stats.latency_p99_us;
    state.counters["cache_hit_rate"] = hit_rate;
    ServeRows().push_back({std::string(warm ? "warm" : "cold") + "/clients=" +
                               std::to_string(clients),
                           clients, warm, total_ms, qps, hit_rate, stats});
  }
}

void RegisterAll() {
  for (bool warm : {false, true}) {
    for (size_t clients : {1ul, 2ul, 8ul}) {
      std::string name = std::string("serve/") + (warm ? "warm" : "cold") +
                         "/clients=" + std::to_string(clients);
      benchmark::RegisterBenchmark(name.c_str(), BM_Serve, clients, warm)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond)
          ->MeasureProcessCPUTime()
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== LookupService closed loop (%zu reference strings, %zu req/client, "
      "k=3) ===\n",
      ssjoin::bench::kReferenceSize, ssjoin::bench::kRequestsPerClient);
  std::printf("%-18s %10s %10s %10s %10s %10s %9s\n", "mode", "total(ms)",
              "qps", "p50(us)", "p95(us)", "p99(us)", "hit rate");
  for (const auto& row : ssjoin::bench::ServeRows()) {
    std::printf("%-18s %10.1f %10.0f %10.1f %10.1f %10.1f %8.1f%%\n",
                row.label.c_str(), row.total_ms, row.qps,
                row.stats.latency_p50_us, row.stats.latency_p95_us,
                row.stats.latency_p99_us, row.hit_rate * 100.0);
  }

  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::ServeRows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Str("label", row.label)
                         .Int("clients", row.clients)
                         .Int("warm_cache", row.warm ? 1 : 0)
                         .Num("total_ms", row.total_ms)
                         .Num("qps", row.qps)
                         .Num("p50_us", row.stats.latency_p50_us)
                         .Num("p95_us", row.stats.latency_p95_us)
                         .Num("p99_us", row.stats.latency_p99_us)
                         .Num("cache_hit_rate", row.hit_rate)
                         .Int("requests", row.stats.requests)
                         .Int("batches", row.stats.batches));
    }
    ssjoin::bench::WriteBenchJson("serve", recs);
  }
  return 0;
}
