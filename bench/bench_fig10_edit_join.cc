/// Figure 10: edit-similarity self-join of the Customer relation at
/// thresholds 0.80-0.95, comparing the three SSJoin implementations
/// (basic / prefix-filtered / prefix-filtered with inline sets), with the
/// paper's Prep / Prefix-filter / SSJoin / Filter phase breakdown.
///
/// Scale substitution: the paper joins 25K addresses; the q-gram equi-join
/// of the basic plan over synthetic addresses is denser than over the
/// paper's proprietary data, so this bench runs 8K address-only records to
/// keep the basic plan's materialized join in memory. The comparison shape
/// (basic competitive at 0.80, prefix variants winning at high thresholds,
/// inline fastest overall) is what is being reproduced.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/string_joins.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 8000;
constexpr size_t kQ = 3;

void BM_EditJoin(benchmark::State& state, core::SSJoinAlgorithm algorithm,
                 double alpha) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/false);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::EditSimilarityJoin(data, data, alpha, kQ,
                                              MakeExec(algorithm), &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
  }
  ExportCounters(state, stats);
  Rows().push_back({core::SSJoinAlgorithmName(algorithm), alpha, stats, total_ms});
}

void RegisterAll() {
  for (double alpha : {0.80, 0.85, 0.90, 0.95}) {
    for (core::SSJoinAlgorithm algorithm :
         {core::SSJoinAlgorithm::kBasic, core::SSJoinAlgorithm::kPrefixFilter,
          core::SSJoinAlgorithm::kPrefixFilterInline}) {
      std::string name = std::string("fig10/") +
                         core::SSJoinAlgorithmName(algorithm) + "/alpha=" +
                         std::to_string(alpha).substr(0, 4);
      benchmark::RegisterBenchmark(name.c_str(), BM_EditJoin, algorithm, alpha)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  ssjoin::bench::PrintPhaseTable(
      "Figure 10: edit similarity join (8K addresses, q=3)",
      {"Prep", "Prefix-filter", "SSJoin", "Filter"});
  ssjoin::bench::WriteResultRowsJson("fig10_edit_join");
  return 0;
}
