/// Figure 11: the best previously-known *customized* edit-similarity join
/// (Gravano et al. [9]: q-gram equi-join + length & position filters, then
/// edit-similarity verification) on the same corpus as bench_fig10_edit_join,
/// with the paper's Prep / Candidate-enumeration / EditSim-Filter breakdown.
///
/// The reproduction claim (§5.1): SSJoin-based plans beat this customized
/// algorithm because the custom plan verifies far more candidates (compare
/// the verifier_calls counter with Figure 10's, and see Table 1).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/gravano.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 8000;
constexpr size_t kQ = 3;

void BM_CustomEdit(benchmark::State& state, double alpha) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/false);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::GravanoEditSimilarityJoin(data, data, alpha, kQ, &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
  }
  ExportCounters(state, stats);
  Rows().push_back({"custom-edit [9]", alpha, stats, total_ms});
}

void RegisterAll() {
  for (double alpha : {0.80, 0.85, 0.90, 0.95}) {
    std::string name = "fig11/custom-edit/alpha=" + std::to_string(alpha).substr(0, 4);
    benchmark::RegisterBenchmark(name.c_str(), BM_CustomEdit, alpha)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  ssjoin::bench::PrintPhaseTable(
      "Figure 11: customized edit similarity join [9] (8K addresses, q=3)",
      {"Prep", "Candidate-enumeration", "EditSim-Filter"});
  ssjoin::bench::WriteResultRowsJson("fig11_custom_edit");
  return 0;
}
