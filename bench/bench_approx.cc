/// Recall/speed frontier of the MinHash-LSH approximate tier (src/approx)
/// against the exact inline prefix filter, on frequent-token-heavy data —
/// the skew regime the hybrid planner routes to the approximate tier.
///
/// Workload: a self-join of sets whose elements mix a small pool of hot
/// tokens (every set carries several) with a large cold universe, plus a
/// slice of near-duplicate pairs as the true matches. Unit weights make
/// every hot token prefix-eligible, so the exact prefix filter's candidate
/// equi-join grows quadratically in the hot-token frequency while LSH
/// bucket sizes stay bounded by signature collisions.
///
/// Rows: one exact baseline + one approx run per recall target
/// (0.8/0.9/0.95/0.99), each with its measured recall against the exact
/// result. Expected shape: approx total_ms well under the exact baseline at
/// every target, measured recall at or above target (the tuner budgets
/// per-pair misses at (1-target)/1024, so recall concentrates near 1).

#include <benchmark/benchmark.h>

#include <vector>

#include "approx/approx_ssjoin.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/cost_model.h"
#include "exec/parallel_ssjoin.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kSets = 8000;
constexpr size_t kHotPool = 30;       // tokens shared across the relation
constexpr size_t kHotPerSet = 7;
constexpr size_t kColdUniverse = 100000;
constexpr size_t kColdPerSet = 5;
constexpr double kDupFraction = 0.2;  // near-duplicate (true-match) share
constexpr double kAlpha = 0.75;       // two-sided normalized threshold

struct ApproxFixture {
  core::WeightVector weights;
  core::ElementOrder order;
  core::SetsRelation rel;

  core::SSJoinContext Ctx() const {
    core::SSJoinContext ctx{&weights, &order};
    ctx.exec = &BenchExec();
    return ctx;
  }
};

const ApproxFixture& Fixture() {
  static ApproxFixture* f = [] {
    auto* fx = new ApproxFixture();
    Rng rng(kBenchSeed);
    std::vector<std::vector<text::TokenId>> docs;
    docs.reserve(kSets);
    for (size_t i = 0; i < docs.capacity(); ++i) {
      if (!docs.empty() && rng.NextDouble() < kDupFraction) {
        // Near-duplicate of an earlier set: swap one cold token out.
        std::vector<text::TokenId> dup = docs[rng.Uniform(docs.size())];
        dup.back() = static_cast<text::TokenId>(kHotPool +
                                                rng.Uniform(kColdUniverse));
        docs.push_back(std::move(dup));
        continue;
      }
      std::vector<text::TokenId> doc;
      for (size_t h = 0; h < kHotPerSet; ++h) {
        doc.push_back(static_cast<text::TokenId>(rng.Uniform(kHotPool)));
      }
      for (size_t c = 0; c < kColdPerSet; ++c) {
        doc.push_back(
            static_cast<text::TokenId>(kHotPool + rng.Uniform(kColdUniverse)));
      }
      docs.push_back(std::move(doc));
    }
    fx->weights.assign(kHotPool + kColdUniverse, 1.0);
    fx->order = core::ElementOrder::ByDecreasingWeight(fx->weights);
    fx->rel = *core::BuildSetsRelation(std::move(docs), fx->weights);
    return fx;
  }();
  return *f;
}

size_t& ExactPairs() {
  static size_t exact_pairs = 0;
  return exact_pairs;
}

std::vector<JsonRecord>& ApproxRows() {
  static std::vector<JsonRecord>* rows = new std::vector<JsonRecord>();
  return *rows;
}

void AddRow(const std::string& label, double target, double total_ms,
            size_t result_pairs, const core::SSJoinStats& stats) {
  double recall = ExactPairs() > 0 ? static_cast<double>(result_pairs) /
                                         static_cast<double>(ExactPairs())
                                   : 1.0;
  JsonRecord rec;
  rec.Str("label", label)
      .Num("target_recall", target)
      .Num("total_ms", total_ms)
      .Int("result_pairs", result_pairs)
      .Int("exact_pairs", ExactPairs())
      .Num("measured_recall", recall)
      .Int("candidate_pairs", stats.candidate_pairs)
      .Int("equijoin_rows", stats.equijoin_rows);
  ApproxRows().push_back(rec);
}

void BM_Exact(benchmark::State& state) {
  const ApproxFixture& f = Fixture();
  auto pred = core::OverlapPredicate::TwoSidedNormalized(kAlpha);
  core::SSJoinStats stats;
  double total_ms = 0.0;
  size_t pairs = 0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = exec::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilterInline,
                                      f.rel, f.rel, pred, f.Ctx(), &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    pairs = result->size();
    benchmark::DoNotOptimize(pairs);
  }
  ExactPairs() = pairs;
  state.counters["result_pairs"] = static_cast<double>(pairs);
  state.counters["total_ms"] = total_ms;
  AddRow("prefix-filter-inline", 1.0, total_ms, pairs, stats);
}

void BM_Approx(benchmark::State& state, double target) {
  const ApproxFixture& f = Fixture();
  auto pred = core::OverlapPredicate::TwoSidedNormalized(kAlpha);
  approx::ApproxParams params;
  params.target_recall = target;
  core::SSJoinStats stats;
  double total_ms = 0.0;
  size_t pairs = 0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = approx::ExecuteSSJoin(core::SSJoinAlgorithm::kApprox, f.rel,
                                        f.rel, pred, f.Ctx(), params, &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    pairs = result->size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["result_pairs"] = static_cast<double>(pairs);
  state.counters["total_ms"] = total_ms;
  AddRow("approx", target, total_ms, pairs, stats);
}

void BM_Hybrid(benchmark::State& state) {
  const ApproxFixture& f = Fixture();
  auto pred = core::OverlapPredicate::TwoSidedNormalized(kAlpha);
  approx::ApproxParams params;  // default target 0.9
  core::SSJoinStats stats;
  double total_ms = 0.0;
  size_t pairs = 0;
  core::SSJoinAlgorithm resolved = core::SSJoinAlgorithm::kHybrid;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result =
        approx::ExecuteSSJoin(core::SSJoinAlgorithm::kHybrid, f.rel, f.rel,
                              pred, f.Ctx(), params, &stats, &resolved);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    pairs = result->size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["result_pairs"] = static_cast<double>(pairs);
  state.counters["total_ms"] = total_ms;
  AddRow(std::string("hybrid->") + core::SSJoinAlgorithmName(resolved),
         params.target_recall, total_ms, pairs, stats);
}

void RegisterAll() {
  // The exact baseline runs first: its result count is the recall
  // denominator for every approx row.
  benchmark::RegisterBenchmark("approx/exact_baseline", BM_Exact)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  for (double target : {0.80, 0.90, 0.95, 0.99}) {
    std::string name =
        "approx/target=" + std::to_string(target).substr(0, 4);
    benchmark::RegisterBenchmark(name.c_str(), BM_Approx, target)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("approx/hybrid", BM_Hybrid)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::approx::RegisterApproxMetrics();
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  ssjoin::bench::WriteBenchJson("approx", ssjoin::bench::ApproxRows());
  return 0;
}
