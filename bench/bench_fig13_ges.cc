/// Figure 13: generalized-edit-similarity (GES) self-join across thresholds,
/// comparing the basic, prefix-filtered and inline implementations of the
/// underlying SSJoin (the token-expansion Prep and the exact-GES Filter are
/// shared by all three).
///
/// Expected shape (§5): prefix-filtered ~2x faster than basic on the SSJoin
/// stage; inline ~25% faster than plain prefix-filtered.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/ges_join.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 5000;  // GES verification is the costly UDF

void BM_GES(benchmark::State& state, core::SSJoinAlgorithm algorithm,
            double alpha) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/true);
  simjoin::GESJoinOptions opts;
  opts.exec = MakeExec(algorithm);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::GESJoin(data, data, alpha, opts, &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
  }
  ExportCounters(state, stats);
  Rows().push_back({core::SSJoinAlgorithmName(algorithm), alpha, stats, total_ms});
}

void RegisterAll() {
  for (double alpha : {0.80, 0.85, 0.90, 0.95}) {
    for (core::SSJoinAlgorithm algorithm :
         {core::SSJoinAlgorithm::kBasic, core::SSJoinAlgorithm::kPrefixFilter,
          core::SSJoinAlgorithm::kPrefixFilterInline}) {
      std::string name = std::string("fig13/") +
                         core::SSJoinAlgorithmName(algorithm) + "/alpha=" +
                         std::to_string(alpha).substr(0, 4);
      benchmark::RegisterBenchmark(name.c_str(), BM_GES, algorithm, alpha)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  ssjoin::bench::PrintPhaseTable(
      "Figure 13: generalized edit similarity join (5K customer records)",
      {"Prep", "Prefix-filter", "SSJoin", "Filter"});
  ssjoin::bench::WriteResultRowsJson("fig13_ges");
  return 0;
}
