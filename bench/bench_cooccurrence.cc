/// Beyond textual similarity (§3.4): the co-occurrence join of Example 5
/// (author names identified by the paper titles they co-occur with, across
/// two sources with different naming conventions) and the soft-FD agreement
/// join of Example 6, both reduced to SSJoin. The paper notes these reduce
/// to Jaccard/overlap SSJoins and inherit their performance; this bench
/// reports times and, for the co-occurrence join, match accuracy against
/// the generator's ground truth.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <unordered_map>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "datagen/contact_gen.h"
#include "datagen/publication_gen.h"
#include "simjoin/cooccurrence.h"

namespace ssjoin::bench {
namespace {

struct CoRow {
  std::string label;
  double total_ms;
  size_t matches;
  double accuracy;  // fraction of ground-truth pairs recovered
};

std::vector<CoRow>& CoRows() {
  static auto* rows = new std::vector<CoRow>();
  return *rows;
}

void BM_Cooccurrence(benchmark::State& state, core::SSJoinAlgorithm algorithm) {
  datagen::PublicationGenOptions opts;
  opts.num_authors = 3000;
  static const datagen::PublicationDataset* data =
      new datagen::PublicationDataset(datagen::GeneratePublications(opts));
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  simjoin::EntityJoinResult result;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    result = simjoin::CooccurrenceJoin(data->source1_rows, data->source2_rows, 0.55,
                                       simjoin::JaccardVariant::kContainment,
                                       simjoin::WeightMode::kIdf,
                                       MakeExec(algorithm), &stats)
                 .MoveValueUnsafe();
    total_ms = timer.ElapsedMillis();
  }
  // Accuracy vs ground truth.
  std::unordered_map<std::string, size_t> s1;
  std::unordered_map<std::string, size_t> s2;
  for (size_t i = 0; i < data->source1_names.size(); ++i) {
    s1[data->source1_names[i]] = i;
  }
  for (size_t i = 0; i < data->source2_names.size(); ++i) {
    s2[data->source2_names[i]] = i;
  }
  size_t correct = 0;
  for (const auto& m : result.matches) {
    if (s1.at(result.r_entities[m.r]) == s2.at(result.s_entities[m.s])) ++correct;
  }
  double accuracy = static_cast<double>(correct) / data->source1_names.size();
  state.counters["accuracy"] = accuracy;
  state.counters["matches"] = static_cast<double>(result.matches.size());
  CoRows().push_back({std::string("cooccurrence/") +
                          core::SSJoinAlgorithmName(algorithm),
                      total_ms, result.matches.size(), accuracy});
}

void BM_FDJoin(benchmark::State& state, size_t k) {
  datagen::ContactGenOptions opts;
  opts.num_records = 20000;
  static const datagen::ContactDataset* data =
      new datagen::ContactDataset(datagen::GenerateContacts(opts));
  double total_ms = 0.0;
  size_t matches = 0;
  for (auto _ : state) {
    Timer timer;
    auto result = simjoin::FDAgreementJoin(data->aep_rows, data->aep_rows, k);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    matches = result->size();
  }
  state.counters["matches"] = static_cast<double>(matches);
  CoRows().push_back({"fd-agreement k=" + std::to_string(k) + "/3", total_ms,
                      matches, 0.0});
}

void RegisterAll() {
  for (core::SSJoinAlgorithm algorithm :
       {core::SSJoinAlgorithm::kBasic, core::SSJoinAlgorithm::kPrefixFilter,
        core::SSJoinAlgorithm::kPrefixFilterInline}) {
    std::string name =
        std::string("cooccurrence/") + core::SSJoinAlgorithmName(algorithm);
    benchmark::RegisterBenchmark(name.c_str(), BM_Cooccurrence, algorithm)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (size_t k : {2ul, 3ul}) {
    std::string name = "fd-agreement/k=" + std::to_string(k);
    benchmark::RegisterBenchmark(name.c_str(), BM_FDJoin, k)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== §3.4 beyond-textual joins (co-occurrence: 3K authors x 2 "
              "sources; FD: 20K contacts) ===\n");
  std::printf("%-36s %12s %10s %10s\n", "join", "time(ms)", "matches", "accuracy");
  for (const auto& row : ssjoin::bench::CoRows()) {
    std::printf("%-36s %12.1f %10zu", row.label.c_str(), row.total_ms, row.matches);
    if (row.accuracy > 0.0) {
      std::printf(" %9.1f%%", row.accuracy * 100.0);
    }
    std::printf("\n");
  }
  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::CoRows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Str("label", row.label)
                         .Num("total_ms", row.total_ms)
                         .Int("matches", row.matches)
                         .Num("accuracy", row.accuracy));
    }
    ssjoin::bench::WriteBenchJson("cooccurrence", recs);
  }
  return 0;
}
