/// Ablation for the q-gram length choice in the edit-similarity join
/// (§3.1 / Property 4): larger q makes individual grams more selective but
/// weakens the count bound (each edit destroys up to q grams), so the
/// candidate count and runtime trade off against each other. The paper
/// fixes q=3; this bench shows why that is a sweet spot.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "simjoin/string_joins.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 6000;
constexpr double kAlpha = 0.85;

struct QRow {
  size_t q;
  double total_ms;
  size_t candidates;
  size_t verifier_calls;
  size_t results;
};

std::vector<QRow>& QRows() {
  static auto* rows = new std::vector<QRow>();
  return *rows;
}

void BM_QGram(benchmark::State& state, size_t q) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/false);
  simjoin::SimJoinStats stats;
  double total_ms = 0.0;
  for (auto _ : state) {
    stats = {};
    Timer timer;
    auto result = simjoin::EditSimilarityJoin(
        data, data, kAlpha, q,
        MakeExec(core::SSJoinAlgorithm::kPrefixFilterInline), &stats);
    result.status().AbortIfError();
    total_ms = timer.ElapsedMillis();
    benchmark::DoNotOptimize(result->size());
  }
  ExportCounters(state, stats);
  QRows().push_back({q, total_ms, stats.ssjoin.candidate_pairs,
                     stats.verifier_calls, stats.result_pairs});
}

void RegisterAll() {
  for (size_t q : {2ul, 3ul, 4ul, 5ul}) {
    std::string name = "qgram/q=" + std::to_string(q);
    benchmark::RegisterBenchmark(name.c_str(), BM_QGram, q)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== Ablation: q-gram length (edit similarity 0.85, 6K "
              "addresses, inline SSJoin) ===\n");
  std::printf("%4s %12s %14s %14s %10s\n", "q", "time(ms)", "candidates",
              "UDF calls", "results");
  for (const auto& row : ssjoin::bench::QRows()) {
    std::printf("%4zu %12.1f %14zu %14zu %10zu\n", row.q, row.total_ms,
                row.candidates, row.verifier_calls, row.results);
  }
  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::QRows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Int("q", row.q)
                         .Num("total_ms", row.total_ms)
                         .Int("candidates", row.candidates)
                         .Int("verifier_calls", row.verifier_calls)
                         .Int("results", row.results));
    }
    ssjoin::bench::WriteBenchJson("ablation_qgrams", recs);
  }
  return 0;
}
