/// Table 1: the number of edit-similarity verifications ("#Edit
/// comparisons") performed by the SSJoin-based plan versus the direct
/// customized implementation [9], across thresholds. The paper reports the
/// custom plan doing orders of magnitude more comparisons (e.g. 546,492 vs
/// 28,252,476 at threshold 0.80 on its 25K relation); the reproduction
/// checks the same ratio shape on the synthetic corpus.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "simjoin/gravano.h"
#include "simjoin/string_joins.h"

namespace ssjoin::bench {
namespace {

constexpr size_t kRecords = 8000;
constexpr size_t kQ = 3;

struct Table1Row {
  double threshold;
  size_t ssjoin_comparisons;
  size_t direct_comparisons;
};

std::vector<Table1Row>& Table1Rows() {
  static auto* rows = new std::vector<Table1Row>();
  return *rows;
}

void BM_Comparisons(benchmark::State& state, double alpha) {
  const auto& data = AddressCorpus(kRecords, /*with_name=*/false);
  simjoin::SimJoinStats ssjoin_stats;
  simjoin::SimJoinStats direct_stats;
  for (auto _ : state) {
    ssjoin_stats = {};
    direct_stats = {};
    simjoin::EditSimilarityJoin(data, data, alpha, kQ,
                                MakeExec(core::SSJoinAlgorithm::kPrefixFilterInline),
                                &ssjoin_stats)
        .status()
        .AbortIfError();
    simjoin::GravanoEditSimilarityJoin(data, data, alpha, kQ, &direct_stats)
        .status()
        .AbortIfError();
  }
  state.counters["ssjoin_comparisons"] =
      static_cast<double>(ssjoin_stats.verifier_calls);
  state.counters["direct_comparisons"] =
      static_cast<double>(direct_stats.verifier_calls);
  Table1Rows().push_back(
      {alpha, ssjoin_stats.verifier_calls, direct_stats.verifier_calls});
}

void RegisterAll() {
  for (double alpha : {0.80, 0.85, 0.90, 0.95}) {
    std::string name = "table1/alpha=" + std::to_string(alpha).substr(0, 4);
    benchmark::RegisterBenchmark(name.c_str(), BM_Comparisons, alpha)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ssjoin::bench

int main(int argc, char** argv) {
  ssjoin::bench::InitBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  ssjoin::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\n=== Table 1: #Edit comparisons (8K addresses, q=3) ===\n");
  std::printf("%9s %16s %16s %8s\n", "threshold", "SSJoin", "Direct", "ratio");
  for (const auto& row : ssjoin::bench::Table1Rows()) {
    std::printf("%9.2f %16zu %16zu %7.1fx\n", row.threshold, row.ssjoin_comparisons,
                row.direct_comparisons,
                row.ssjoin_comparisons > 0
                    ? static_cast<double>(row.direct_comparisons) /
                          static_cast<double>(row.ssjoin_comparisons)
                    : 0.0);
  }
  {
    std::vector<ssjoin::bench::JsonRecord> recs;
    for (const auto& row : ssjoin::bench::Table1Rows()) {
      recs.push_back(ssjoin::bench::JsonRecord()
                         .Num("threshold", row.threshold)
                         .Int("ssjoin_comparisons", row.ssjoin_comparisons)
                         .Int("direct_comparisons", row.direct_comparisons));
    }
    ssjoin::bench::WriteBenchJson("table1_comparisons", recs);
  }
  return 0;
}
