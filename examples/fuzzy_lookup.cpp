/// Top-K fuzzy matching against a reference table (§6's composition of
/// SSJoin with a top-k operator; the online record-matching scenario of the
/// paper's [4]): a clean master customer table is indexed once, then dirty
/// incoming records are matched to their best reference rows.

#include <cstdio>

#include "common/timer.h"
#include "datagen/address_gen.h"
#include "datagen/error_model.h"
#include "simjoin/fuzzy_match.h"

int main() {
  using namespace ssjoin;

  // Clean reference table (no injected duplicates).
  datagen::AddressGenOptions gen;
  gen.num_records = 20000;
  gen.duplicate_fraction = 0.0;
  datagen::AddressDataset master = datagen::GenerateAddresses(gen);

  Timer build_timer;
  simjoin::FuzzyMatchIndex::Options options;
  options.word_tokens = true;
  options.alpha = 0.3;
  auto index = simjoin::FuzzyMatchIndex::Build(master.records, options)
                   .MoveValueUnsafe();
  std::printf("indexed %zu reference records in %.1f ms\n", index.size(),
              build_timer.ElapsedMillis());

  // Dirty queries: corrupted copies of random reference records.
  Rng rng(99);
  datagen::ErrorModelOptions errors;
  errors.char_edits_mean = 2.0;
  const size_t kQueries = 2000;
  std::vector<uint32_t> truth;
  std::vector<std::string> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    uint32_t src = static_cast<uint32_t>(rng.Uniform(master.records.size()));
    truth.push_back(src);
    queries.push_back(datagen::CorruptRecord(master.records[src],
                                             {{"Ave", "Avenue"}, {"St", "Street"}},
                                             errors, &rng));
  }

  Timer query_timer;
  size_t top1_correct = 0;
  size_t top3_correct = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    auto matches = index.Lookup(queries[i], 3);
    for (size_t m = 0; m < matches.size(); ++m) {
      if (matches[m].ref_index == truth[i]) {
        top3_correct++;
        if (m == 0) top1_correct++;
        break;
      }
    }
  }
  double ms = query_timer.ElapsedMillis();
  std::printf("%zu lookups in %.1f ms (%.2f ms each)\n", kQueries, ms,
              ms / kQueries);
  std::printf("top-1 accuracy: %.1f%%, top-3: %.1f%%\n",
              100.0 * top1_correct / kQueries, 100.0 * top3_correct / kQueries);

  auto sample = index.Lookup(queries[0], 3);
  std::printf("\nquery:  %s\n", queries[0].c_str());
  for (const auto& m : sample) {
    std::printf("  match %.3f: %s\n", m.similarity,
                index.reference(m.ref_index).c_str());
  }
  return 0;
}
