/// Soft functional dependencies (§3.4, Definition 7, Example 6, Figure 6):
/// joining contact records that agree on at least k of h FD source
/// attributes ({address, email, phone} -> person). Each record becomes the
/// set of its <Column, Value> pairs and the SSJoin predicate is the
/// absolute overlap `Overlap >= k` — an exact reduction, no post-filter.

#include <cstdio>

#include "datagen/contact_gen.h"
#include "simjoin/cooccurrence.h"

int main() {
  using namespace ssjoin;

  datagen::ContactGenOptions gen;
  gen.num_records = 5000;
  gen.duplicate_fraction = 0.25;
  gen.max_perturbed_attrs = 1;  // duplicates keep >= 2 of the 3 attributes
  datagen::ContactDataset data = datagen::GenerateContacts(gen);
  std::printf("%zu contact records (name + address/email/phone)\n",
              data.aep_rows.size());
  std::printf("e.g. %-22s | %s | %s | %s\n\n", data.names[0].c_str(),
              data.aep_rows[0][0].c_str(), data.aep_rows[0][1].c_str(),
              data.aep_rows[0][2].c_str());

  for (size_t k : {1ul, 2ul, 3ul}) {
    simjoin::SimJoinStats stats;
    auto matches =
        *simjoin::FDAgreementJoin(data.aep_rows, data.aep_rows, k, {}, &stats);
    size_t nontrivial = 0;
    for (const auto& m : matches) nontrivial += (m.r < m.s);
    std::printf("k=%zu of 3: %6zu matching pairs (%zu beyond self-matches), "
                "SSJoin candidates %zu\n",
                k, matches.size(), nontrivial, stats.ssjoin.candidate_pairs);
  }

  // Show one recovered duplicate at k=2.
  auto matches = *simjoin::FDAgreementJoin(data.aep_rows, data.aep_rows, 2);
  for (const auto& m : matches) {
    if (m.r >= m.s) continue;
    std::printf("\nexample agreement (%g of 3 attributes):\n", m.similarity);
    std::printf("  [%u] %s | %s | %s\n", m.r, data.aep_rows[m.r][0].c_str(),
                data.aep_rows[m.r][1].c_str(), data.aep_rows[m.r][2].c_str());
    std::printf("  [%u] %s | %s | %s\n", m.s, data.aep_rows[m.s][0].c_str(),
                data.aep_rows[m.s][1].c_str(), data.aep_rows[m.s][2].c_str());
    break;
  }
  return 0;
}
