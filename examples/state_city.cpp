/// The introduction's example, executed as relational plans: joining
/// R[state, city] with S[state, city] on overlapping city sets returns
/// ('washington', 'wa') and ('wisconsin', 'wi'). This example builds the
/// paper's Figure 7 (basic) and Figure 8 (prefix-filtered) operator trees
/// literally from the engine's relational operators — equi-join, group-by
/// with HAVING, and the groupwise-processing prefix filter — demonstrating
/// that SSJoin needs nothing beyond standard operators.

#include <cstdio>

#include "core/relational_ssjoin.h"
#include "core/ssjoin_plan.h"
#include "text/dictionary.h"

int main() {
  using namespace ssjoin;
  using engine::Table;

  // The two input relations, as (state, city) pairs.
  std::vector<std::pair<std::string, std::string>> r_rows = {
      {"washington", "seattle"}, {"washington", "redmond"},
      {"washington", "spokane"}, {"washington", "tacoma"},
      {"wisconsin", "madison"},  {"wisconsin", "milwaukee"},
      {"wisconsin", "green bay"}, {"wisconsin", "kenosha"},
      {"texas", "austin"},       {"texas", "houston"},
      {"texas", "dallas"}};
  std::vector<std::pair<std::string, std::string>> s_rows = {
      {"wa", "seattle"},   {"wa", "redmond"}, {"wa", "spokane"},
      {"wa", "olympia"},   {"wi", "madison"}, {"wi", "milwaukee"},
      {"wi", "green bay"}, {"ca", "fresno"},  {"ca", "san jose"}};

  // Normalize: states become groups, cities become elements of a shared
  // dictionary, unit weights.
  text::TokenDictionary dict;
  std::vector<std::string> r_states;
  std::vector<std::vector<std::string>> r_city_lists;
  std::vector<std::string> s_states;
  std::vector<std::vector<std::string>> s_city_lists;
  auto group = [](const auto& rows, auto* names, auto* lists) {
    for (const auto& [state, city] : rows) {
      if (names->empty() || names->back() != state) {
        names->push_back(state);
        lists->emplace_back();
      }
      lists->back().push_back(city);
    }
  };
  group(r_rows, &r_states, &r_city_lists);
  group(s_rows, &s_states, &s_city_lists);

  std::vector<std::vector<text::TokenId>> r_docs;
  for (const auto& cities : r_city_lists) r_docs.push_back(dict.EncodeDocument(cities));
  std::vector<std::vector<text::TokenId>> s_docs;
  for (const auto& cities : s_city_lists) s_docs.push_back(dict.EncodeDocument(cities));

  core::WeightVector weights(dict.num_elements(), 1.0);
  core::ElementOrder order = core::ElementOrder::ByIncreasingFrequency(dict);
  core::SetsRelation r = *core::BuildSetsRelation(r_docs, weights);
  core::SetsRelation s = *core::BuildSetsRelation(s_docs, weights);

  // First-normal-form tables (Figure 1's layout) feeding the plans.
  Table r_table = *core::ToNormalizedTable(r, weights, order);
  Table s_table = *core::ToNormalizedTable(s, weights, order);
  std::printf("normalized R (one row per state-city pair):\n%s\n",
              r_table.ToString(6).c_str());

  // Jaccard containment >= 0.6 of the R state's city set in the S state's.
  core::OverlapPredicate pred = core::OverlapPredicate::OneSidedNormalized(0.6);

  Table basic = *core::BasicSSJoinPlan(r_table, s_table, pred);
  Table prefix = *core::PrefixFilterSSJoinPlan(r_table, s_table, pred);
  std::printf("Figure 7 (basic plan) result:\n%s\n", basic.ToString().c_str());
  std::printf("Figure 8 (prefix-filtered plan) result:\n%s\n",
              prefix.ToString().c_str());

  std::printf("decoded pairs:\n");
  for (size_t row = 0; row < basic.num_rows(); ++row) {
    auto r_group = static_cast<size_t>(basic.GetValue(0, row).int64());
    auto s_group = static_cast<size_t>(basic.GetValue(1, row).int64());
    std::printf("  ('%s', '%s')  overlap=%g\n", r_states[r_group].c_str(),
                s_states[s_group].c_str(), basic.GetValue(2, row).float64());
  }

  // The §7 integration: SSJoin as a logical plan node whose physical
  // implementation the optimizer chooses from the inputs' statistics.
  engine::PlanPtr plan =
      core::SSJoinNode(engine::ScanNode(r_table, "R(state,city)"),
                       engine::ScanNode(s_table, "S(state,city)"), pred);
  std::printf("logical plan:\n%s\n", plan->ToString(1).c_str());
  std::printf("%s", core::ExplainSSJoin(r_table, s_table, pred)->c_str());
  Table via_plan = *plan->Execute();
  std::printf("plan node result rows: %zu (same pairs as above)\n",
              via_plan.num_rows());
  return 0;
}
