/// Multi-attribute record matching — §1's full scenario: customer records
/// match when their *names and contact attributes* are jointly similar, not
/// just one string. Rules are a DNF of per-column similarity thresholds;
/// the first rule of each set drives SSJoin-based candidate generation and
/// the rest are verified exactly.

#include <cstdio>

#include "datagen/contact_gen.h"
#include "simjoin/record_match.h"

int main() {
  using namespace ssjoin;

  datagen::ContactGenOptions gen;
  gen.num_records = 5000;
  gen.duplicate_fraction = 0.25;
  gen.max_perturbed_attrs = 1;
  datagen::ContactDataset data = datagen::GenerateContacts(gen);

  // Rows: {name, address, email, phone}.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(data.names.size());
  for (size_t i = 0; i < data.names.size(); ++i) {
    rows.push_back({data.names[i], data.aep_rows[i][0], data.aep_rows[i][1],
                    data.aep_rows[i][2]});
  }

  simjoin::RecordMatchOptions options;
  // Match if (email equal) OR (name sounds alike AND address similar AND
  // name Jaro-Winkler high).
  options.rule_sets = {
      {{2, simjoin::ColumnSim::kEquality, 0.0}},
      {{1, simjoin::ColumnSim::kJaccard, 0.6},
       {0, simjoin::ColumnSim::kSoundex, 0.0},
       {0, simjoin::ColumnSim::kJaroWinkler, 0.9}},
  };

  simjoin::SimJoinStats stats;
  auto matches = *simjoin::RecordMatchJoin(rows, rows, options, &stats);

  size_t nontrivial = 0;
  size_t correct = 0;
  for (const auto& m : matches) {
    if (m.r >= m.s) continue;
    ++nontrivial;
    int64_t root_r = data.duplicate_of[m.r] >= 0 ? data.duplicate_of[m.r]
                                                 : static_cast<int64_t>(m.r);
    int64_t root_s = data.duplicate_of[m.s] >= 0 ? data.duplicate_of[m.s]
                                                 : static_cast<int64_t>(m.s);
    correct += (root_r == root_s || root_r == static_cast<int64_t>(m.s) ||
                root_s == static_cast<int64_t>(m.r));
  }
  std::printf("%zu records, %zu non-trivial match pairs, %zu consistent with "
              "ground truth\n",
              rows.size(), nontrivial, correct);
  std::printf("rule verifications after blocking: %zu\n", stats.verifier_calls);

  // Show a recovered duplicate.
  for (const auto& m : matches) {
    if (m.r >= m.s) continue;
    std::printf("\nexample match:\n  [%u] %s | %s | %s\n  [%u] %s | %s | %s\n",
                m.r, rows[m.r][0].c_str(), rows[m.r][1].c_str(),
                rows[m.r][3].c_str(), m.s, rows[m.s][0].c_str(),
                rows[m.s][1].c_str(), rows[m.s][3].c_str());
    break;
  }
  return 0;
}
