/// Beyond textual similarity (§3.4, Example 5, Figure 5): identifying
/// authors across two publication sources whose naming conventions differ
/// ("Jennifer Thorveen" vs "Thorveen, J.") — textual similarity of the
/// names is useless, but the sets of paper titles co-occurring with each
/// author overlap heavily. The co-occurrence join is a direct SSJoin with
/// A = author name, B = paper title.

#include <cstdio>
#include <unordered_map>

#include "datagen/publication_gen.h"
#include "simjoin/cooccurrence.h"

int main() {
  using namespace ssjoin;

  datagen::PublicationGenOptions gen;
  gen.num_authors = 1000;
  gen.coverage_noise = 0.25;  // each source misses some papers
  datagen::PublicationDataset data = datagen::GeneratePublications(gen);
  std::printf("source 1: %zu (author, title) rows; source 2: %zu rows\n",
              data.source1_rows.size(), data.source2_rows.size());
  std::printf("e.g. source 1 knows \"%s\", source 2 knows \"%s\"\n\n",
              data.source1_names[0].c_str(), data.source2_names[0].c_str());

  simjoin::SimJoinStats stats;
  simjoin::EntityJoinResult result = *simjoin::CooccurrenceJoin(
      data.source1_rows, data.source2_rows, /*alpha=*/0.55,
      simjoin::JaccardVariant::kContainment, simjoin::WeightMode::kIdf,
      {core::SSJoinAlgorithm::kPrefixFilterInline, false, {}}, &stats);

  // Score against ground truth.
  std::unordered_map<std::string, size_t> s1_index;
  std::unordered_map<std::string, size_t> s2_index;
  for (size_t i = 0; i < data.source1_names.size(); ++i) {
    s1_index[data.source1_names[i]] = i;
  }
  for (size_t i = 0; i < data.source2_names.size(); ++i) {
    s2_index[data.source2_names[i]] = i;
  }
  size_t correct = 0;
  for (const auto& m : result.matches) {
    if (s1_index.at(result.r_entities[m.r]) == s2_index.at(result.s_entities[m.s])) {
      ++correct;
    }
  }

  std::printf("matched %zu author pairs (%zu correct, %zu ground-truth "
              "authors)\n",
              result.matches.size(), correct, data.source1_names.size());
  std::printf("a few matches:\n");
  size_t shown = 0;
  for (const auto& m : result.matches) {
    if (shown++ >= 5) break;
    std::printf("  %-28s ~ %-24s  containment=%.2f\n",
                result.r_entities[m.r].c_str(), result.s_entities[m.s].c_str(),
                m.similarity);
  }
  std::printf("\nSSJoin candidates: %zu; equi-join rows: %zu\n",
              stats.ssjoin.candidate_pairs, stats.ssjoin.equijoin_rows);
  return 0;
}
