/// End-to-end data-cleaning pipeline: deduplicating a dirty customer table.
///
/// The paper's motivating scenario (§1): a sales warehouse whose customer
/// records contain typos and convention differences. This example generates
/// a dirty relation with known ground truth, finds similar pairs with an
/// edit-similarity join, clusters them with union-find, and reports
/// precision/recall of the recovered duplicate groups plus the per-phase
/// cost breakdown.

#include <cstdio>
#include <numeric>
#include <vector>

#include "datagen/address_gen.h"
#include "simjoin/string_joins.h"

namespace {

/// Minimal union-find for clustering match pairs.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

int main() {
  using namespace ssjoin;

  // A dirty customer relation with 30% injected near-duplicates.
  datagen::AddressGenOptions gen;
  gen.num_records = 10000;
  gen.duplicate_fraction = 0.3;
  gen.errors.char_edits_mean = 1.5;
  gen.errors.abbreviation_prob = 0.15;
  datagen::AddressDataset data = datagen::GenerateAddresses(gen);
  std::printf("generated %zu records, %zu of them duplicates\n",
              data.records.size(), data.num_duplicates());
  std::printf("sample: %s\n", data.records[0].c_str());

  // Similarity join: edit similarity >= 0.85 over 3-grams.
  simjoin::SimJoinStats stats;
  auto matches = *simjoin::EditSimilarityJoin(
      data.records, data.records, 0.85, 3,
      {core::SSJoinAlgorithm::kPrefixFilterInline, false, {}}, &stats);

  std::printf("\nphase breakdown (the paper's Prep/Prefix-filter/SSJoin/Filter):\n");
  for (const auto& [phase, ms] : stats.phases.phases()) {
    std::printf("  %-14s %8.1f ms\n", phase.c_str(), ms);
  }
  std::printf("SSJoin candidates: %zu, UDF verifications: %zu, matches: %zu\n",
              stats.ssjoin.candidate_pairs, stats.verifier_calls, matches.size());

  // Cluster matched pairs into duplicate groups.
  UnionFind clusters(data.records.size());
  for (const auto& m : matches) {
    if (m.r < m.s) clusters.Union(m.r, m.s);
  }

  // Score against ground truth: a duplicate is recovered if it clusters
  // with its source record.
  size_t recovered = 0;
  size_t total_dups = 0;
  for (size_t i = 0; i < data.records.size(); ++i) {
    if (data.duplicate_of[i] < 0) continue;
    ++total_dups;
    if (clusters.Find(i) ==
        clusters.Find(static_cast<size_t>(data.duplicate_of[i]))) {
      ++recovered;
    }
  }
  // Precision proxy: matched pairs (r < s) whose members share a ground-truth
  // source chain. Walk duplicate_of to the root record.
  auto root_of = [&](size_t i) {
    while (data.duplicate_of[i] >= 0) i = static_cast<size_t>(data.duplicate_of[i]);
    return i;
  };
  size_t correct_pairs = 0;
  size_t scored_pairs = 0;
  for (const auto& m : matches) {
    if (m.r >= m.s) continue;
    ++scored_pairs;
    if (root_of(m.r) == root_of(m.s)) ++correct_pairs;
  }

  std::printf("\nduplicate recall:  %zu / %zu (%.1f%%)\n", recovered, total_dups,
              100.0 * recovered / total_dups);
  std::printf("pair precision:    %zu / %zu (%.1f%%)\n", correct_pairs, scored_pairs,
              scored_pairs ? 100.0 * correct_pairs / scored_pairs : 100.0);
  std::printf("\nnote: recall < 100%% is expected — heavily edited duplicates "
              "fall below the 0.85 similarity threshold by construction.\n");
  return 0;
}
