/// Quickstart: the SSJoin operator and a similarity join in ~40 lines.
///
/// Reproduces the paper's running example (Figure 1 / Example 1): the
/// 3-gram sets of "Microsoft Corp" and "Mcrosoft Corp" overlap in 10 grams,
/// so the strings join under Overlap >= 0.8 * norm — and then runs a
/// Jaccard-resemblance similarity join over a small organization list.

#include <cstdio>

#include "simjoin/string_joins.h"

int main() {
  using namespace ssjoin;

  // --- A similarity join in one call -------------------------------------
  std::vector<std::string> orgs = {
      "Microsoft Corp",          "Mcrosoft Corp",
      "Microsoft Corporation",   "International Business Machines",
      "Internatl Business Machines", "Oracle Corp",
      "Orcale Corporation",      "Apple Inc",
  };

  // Edit-similarity self-join at threshold 0.8 (3-grams under the hood;
  // Figure 3's plan: SSJoin + exact edit-similarity filter).
  auto edit_matches = *simjoin::EditSimilarityJoin(orgs, orgs, 0.8, 3);
  std::printf("edit similarity >= 0.8:\n");
  for (const auto& m : edit_matches) {
    if (m.r >= m.s) continue;  // self-join: keep one direction, drop (i, i)
    std::printf("  %-34s ~ %-34s  ES=%.3f\n", orgs[m.r].c_str(), orgs[m.s].c_str(),
                m.similarity);
  }

  // Jaccard resemblance on word tokens (Figure 4's plan). Unit weights: on
  // an 8-string corpus IDF has no frequency signal to work with.
  simjoin::SetJoinOptions jac_opts;
  jac_opts.weights = simjoin::WeightMode::kUnit;
  auto jac_matches = *simjoin::JaccardResemblanceJoin(orgs, orgs, 0.5, jac_opts);
  std::printf("\njaccard resemblance >= 0.5 (word tokens, unit weights):\n");
  for (const auto& m : jac_matches) {
    if (m.r >= m.s) continue;
    std::printf("  %-34s ~ %-34s  JR=%.3f\n", orgs[m.r].c_str(), orgs[m.s].c_str(),
                m.similarity);
  }

  // --- The primitive itself ----------------------------------------------
  // Build the normalized sets by hand and invoke SSJoin directly.
  text::QGramTokenizer tokenizer(3);
  text::TokenDictionary dict;
  auto r_doc = dict.EncodeDocument(tokenizer.Tokenize("Microsoft Corp"));
  auto s_doc = dict.EncodeDocument(tokenizer.Tokenize("Mcrosoft Corp"));
  core::WeightVector weights(dict.num_elements(), 1.0);
  core::ElementOrder order = core::ElementOrder::ByIncreasingFrequency(dict);
  core::SetsRelation r = *core::BuildSetsRelation({r_doc}, weights);
  core::SetsRelation s = *core::BuildSetsRelation({s_doc}, weights);

  core::SSJoinContext ctx{&weights, &order};
  auto pairs = *core::ExecuteSSJoin(core::SSJoinAlgorithm::kPrefixFilterInline, r, s,
                                    core::OverlapPredicate::OneSidedNormalized(0.8),
                                    ctx, nullptr);
  std::printf("\nSSJoin(Overlap >= 0.8*R.norm) on Figure 1's sets: %zu pair, "
              "overlap = %.0f (norms %g and %g)\n",
              pairs.size(), pairs.empty() ? 0.0 : pairs[0].overlap, r.norms[0],
              s.norms[0]);
  return 0;
}
