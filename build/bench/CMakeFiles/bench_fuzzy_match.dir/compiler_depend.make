# Empty compiler generated dependencies file for bench_fuzzy_match.
# This may be replaced when dependencies are built.
