file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzzy_match.dir/bench_fuzzy_match.cc.o"
  "CMakeFiles/bench_fuzzy_match.dir/bench_fuzzy_match.cc.o.d"
  "bench_fuzzy_match"
  "bench_fuzzy_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzzy_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
