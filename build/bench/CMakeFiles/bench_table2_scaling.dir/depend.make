# Empty dependencies file for bench_table2_scaling.
# This may be replaced when dependencies are built.
