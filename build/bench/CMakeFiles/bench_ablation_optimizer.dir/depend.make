# Empty dependencies file for bench_ablation_optimizer.
# This may be replaced when dependencies are built.
