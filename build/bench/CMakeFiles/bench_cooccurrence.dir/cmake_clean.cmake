file(REMOVE_RECURSE
  "CMakeFiles/bench_cooccurrence.dir/bench_cooccurrence.cc.o"
  "CMakeFiles/bench_cooccurrence.dir/bench_cooccurrence.cc.o.d"
  "bench_cooccurrence"
  "bench_cooccurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cooccurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
