# Empty compiler generated dependencies file for bench_cooccurrence.
# This may be replaced when dependencies are built.
