# Empty dependencies file for bench_fig12_jaccard.
# This may be replaced when dependencies are built.
