# Empty dependencies file for bench_table1_comparisons.
# This may be replaced when dependencies are built.
