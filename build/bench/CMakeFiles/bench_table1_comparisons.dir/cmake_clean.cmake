file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_comparisons.dir/bench_table1_comparisons.cc.o"
  "CMakeFiles/bench_table1_comparisons.dir/bench_table1_comparisons.cc.o.d"
  "bench_table1_comparisons"
  "bench_table1_comparisons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_comparisons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
