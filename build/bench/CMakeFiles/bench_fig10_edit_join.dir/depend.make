# Empty dependencies file for bench_fig10_edit_join.
# This may be replaced when dependencies are built.
