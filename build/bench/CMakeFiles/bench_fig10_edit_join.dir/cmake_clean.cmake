file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_edit_join.dir/bench_fig10_edit_join.cc.o"
  "CMakeFiles/bench_fig10_edit_join.dir/bench_fig10_edit_join.cc.o.d"
  "bench_fig10_edit_join"
  "bench_fig10_edit_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_edit_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
