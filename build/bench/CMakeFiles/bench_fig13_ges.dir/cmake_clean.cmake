file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ges.dir/bench_fig13_ges.cc.o"
  "CMakeFiles/bench_fig13_ges.dir/bench_fig13_ges.cc.o.d"
  "bench_fig13_ges"
  "bench_fig13_ges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
