
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_custom_edit.cc" "bench/CMakeFiles/bench_fig11_custom_edit.dir/bench_fig11_custom_edit.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_custom_edit.dir/bench_fig11_custom_edit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simjoin/CMakeFiles/ssjoin_simjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssjoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ssjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ssjoin_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ssjoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ssjoin_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ssjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
