file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_custom_edit.dir/bench_fig11_custom_edit.cc.o"
  "CMakeFiles/bench_fig11_custom_edit.dir/bench_fig11_custom_edit.cc.o.d"
  "bench_fig11_custom_edit"
  "bench_fig11_custom_edit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_custom_edit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
