# Empty dependencies file for bench_fig11_custom_edit.
# This may be replaced when dependencies are built.
