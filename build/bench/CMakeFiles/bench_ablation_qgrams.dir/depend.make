# Empty dependencies file for bench_ablation_qgrams.
# This may be replaced when dependencies are built.
