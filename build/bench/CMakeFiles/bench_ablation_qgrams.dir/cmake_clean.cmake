file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qgrams.dir/bench_ablation_qgrams.cc.o"
  "CMakeFiles/bench_ablation_qgrams.dir/bench_ablation_qgrams.cc.o.d"
  "bench_ablation_qgrams"
  "bench_ablation_qgrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qgrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
