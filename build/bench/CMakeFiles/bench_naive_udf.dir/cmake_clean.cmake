file(REMOVE_RECURSE
  "CMakeFiles/bench_naive_udf.dir/bench_naive_udf.cc.o"
  "CMakeFiles/bench_naive_udf.dir/bench_naive_udf.cc.o.d"
  "bench_naive_udf"
  "bench_naive_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
