# Empty dependencies file for bench_naive_udf.
# This may be replaced when dependencies are built.
