# Empty dependencies file for test_engine_operators.
# This may be replaced when dependencies are built.
