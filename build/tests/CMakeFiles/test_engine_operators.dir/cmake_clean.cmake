file(REMOVE_RECURSE
  "CMakeFiles/test_engine_operators.dir/test_engine_operators.cc.o"
  "CMakeFiles/test_engine_operators.dir/test_engine_operators.cc.o.d"
  "test_engine_operators"
  "test_engine_operators.pdb"
  "test_engine_operators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
