# Empty compiler generated dependencies file for test_relational_ssjoin.
# This may be replaced when dependencies are built.
