file(REMOVE_RECURSE
  "CMakeFiles/test_relational_ssjoin.dir/test_relational_ssjoin.cc.o"
  "CMakeFiles/test_relational_ssjoin.dir/test_relational_ssjoin.cc.o.d"
  "test_relational_ssjoin"
  "test_relational_ssjoin.pdb"
  "test_relational_ssjoin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relational_ssjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
