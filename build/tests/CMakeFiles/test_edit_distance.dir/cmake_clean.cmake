file(REMOVE_RECURSE
  "CMakeFiles/test_edit_distance.dir/test_edit_distance.cc.o"
  "CMakeFiles/test_edit_distance.dir/test_edit_distance.cc.o.d"
  "test_edit_distance"
  "test_edit_distance.pdb"
  "test_edit_distance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edit_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
