# Empty compiler generated dependencies file for test_jaro.
# This may be replaced when dependencies are built.
