file(REMOVE_RECURSE
  "CMakeFiles/test_jaro.dir/test_jaro.cc.o"
  "CMakeFiles/test_jaro.dir/test_jaro.cc.o.d"
  "test_jaro"
  "test_jaro.pdb"
  "test_jaro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jaro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
