file(REMOVE_RECURSE
  "CMakeFiles/test_expr.dir/test_expr.cc.o"
  "CMakeFiles/test_expr.dir/test_expr.cc.o.d"
  "test_expr"
  "test_expr.pdb"
  "test_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
