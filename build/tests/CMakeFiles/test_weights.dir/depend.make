# Empty dependencies file for test_weights.
# This may be replaced when dependencies are built.
