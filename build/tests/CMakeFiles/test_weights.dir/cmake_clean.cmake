file(REMOVE_RECURSE
  "CMakeFiles/test_weights.dir/test_weights.cc.o"
  "CMakeFiles/test_weights.dir/test_weights.cc.o.d"
  "test_weights"
  "test_weights.pdb"
  "test_weights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
