# Empty compiler generated dependencies file for test_ges.
# This may be replaced when dependencies are built.
