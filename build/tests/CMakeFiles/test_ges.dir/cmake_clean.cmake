file(REMOVE_RECURSE
  "CMakeFiles/test_ges.dir/test_ges.cc.o"
  "CMakeFiles/test_ges.dir/test_ges.cc.o.d"
  "test_ges"
  "test_ges.pdb"
  "test_ges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
