# Empty compiler generated dependencies file for test_engine_differential.
# This may be replaced when dependencies are built.
