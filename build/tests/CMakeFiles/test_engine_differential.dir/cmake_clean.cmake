file(REMOVE_RECURSE
  "CMakeFiles/test_engine_differential.dir/test_engine_differential.cc.o"
  "CMakeFiles/test_engine_differential.dir/test_engine_differential.cc.o.d"
  "test_engine_differential"
  "test_engine_differential.pdb"
  "test_engine_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
