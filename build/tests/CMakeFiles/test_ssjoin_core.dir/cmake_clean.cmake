file(REMOVE_RECURSE
  "CMakeFiles/test_ssjoin_core.dir/test_ssjoin_core.cc.o"
  "CMakeFiles/test_ssjoin_core.dir/test_ssjoin_core.cc.o.d"
  "test_ssjoin_core"
  "test_ssjoin_core.pdb"
  "test_ssjoin_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
