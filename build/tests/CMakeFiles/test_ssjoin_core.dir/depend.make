# Empty dependencies file for test_ssjoin_core.
# This may be replaced when dependencies are built.
