file(REMOVE_RECURSE
  "CMakeFiles/test_plan.dir/test_plan.cc.o"
  "CMakeFiles/test_plan.dir/test_plan.cc.o.d"
  "test_plan"
  "test_plan.pdb"
  "test_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
