# Empty compiler generated dependencies file for test_dictionary.
# This may be replaced when dependencies are built.
