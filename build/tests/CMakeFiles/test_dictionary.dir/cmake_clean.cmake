file(REMOVE_RECURSE
  "CMakeFiles/test_dictionary.dir/test_dictionary.cc.o"
  "CMakeFiles/test_dictionary.dir/test_dictionary.cc.o.d"
  "test_dictionary"
  "test_dictionary.pdb"
  "test_dictionary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
