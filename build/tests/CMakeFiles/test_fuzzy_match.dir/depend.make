# Empty dependencies file for test_fuzzy_match.
# This may be replaced when dependencies are built.
