file(REMOVE_RECURSE
  "CMakeFiles/test_fuzzy_match.dir/test_fuzzy_match.cc.o"
  "CMakeFiles/test_fuzzy_match.dir/test_fuzzy_match.cc.o.d"
  "test_fuzzy_match"
  "test_fuzzy_match.pdb"
  "test_fuzzy_match[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzzy_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
