# Empty compiler generated dependencies file for test_soundex.
# This may be replaced when dependencies are built.
