file(REMOVE_RECURSE
  "CMakeFiles/test_soundex.dir/test_soundex.cc.o"
  "CMakeFiles/test_soundex.dir/test_soundex.cc.o.d"
  "test_soundex"
  "test_soundex.pdb"
  "test_soundex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soundex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
