file(REMOVE_RECURSE
  "CMakeFiles/test_paper_properties.dir/test_paper_properties.cc.o"
  "CMakeFiles/test_paper_properties.dir/test_paper_properties.cc.o.d"
  "test_paper_properties"
  "test_paper_properties.pdb"
  "test_paper_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
