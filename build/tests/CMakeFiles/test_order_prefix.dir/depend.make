# Empty dependencies file for test_order_prefix.
# This may be replaced when dependencies are built.
