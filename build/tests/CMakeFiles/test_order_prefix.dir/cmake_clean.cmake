file(REMOVE_RECURSE
  "CMakeFiles/test_order_prefix.dir/test_order_prefix.cc.o"
  "CMakeFiles/test_order_prefix.dir/test_order_prefix.cc.o.d"
  "test_order_prefix"
  "test_order_prefix.pdb"
  "test_order_prefix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_order_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
