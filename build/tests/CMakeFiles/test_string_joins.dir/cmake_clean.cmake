file(REMOVE_RECURSE
  "CMakeFiles/test_string_joins.dir/test_string_joins.cc.o"
  "CMakeFiles/test_string_joins.dir/test_string_joins.cc.o.d"
  "test_string_joins"
  "test_string_joins.pdb"
  "test_string_joins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_string_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
