# Empty compiler generated dependencies file for test_string_joins.
# This may be replaced when dependencies are built.
