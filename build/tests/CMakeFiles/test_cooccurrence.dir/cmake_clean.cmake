file(REMOVE_RECURSE
  "CMakeFiles/test_cooccurrence.dir/test_cooccurrence.cc.o"
  "CMakeFiles/test_cooccurrence.dir/test_cooccurrence.cc.o.d"
  "test_cooccurrence"
  "test_cooccurrence.pdb"
  "test_cooccurrence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cooccurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
