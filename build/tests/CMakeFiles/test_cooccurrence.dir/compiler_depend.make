# Empty compiler generated dependencies file for test_cooccurrence.
# This may be replaced when dependencies are built.
