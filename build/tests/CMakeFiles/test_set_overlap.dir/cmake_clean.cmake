file(REMOVE_RECURSE
  "CMakeFiles/test_set_overlap.dir/test_set_overlap.cc.o"
  "CMakeFiles/test_set_overlap.dir/test_set_overlap.cc.o.d"
  "test_set_overlap"
  "test_set_overlap.pdb"
  "test_set_overlap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
