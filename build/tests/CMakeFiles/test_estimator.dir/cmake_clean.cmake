file(REMOVE_RECURSE
  "CMakeFiles/test_estimator.dir/test_estimator.cc.o"
  "CMakeFiles/test_estimator.dir/test_estimator.cc.o.d"
  "test_estimator"
  "test_estimator.pdb"
  "test_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
