file(REMOVE_RECURSE
  "CMakeFiles/test_engine_table.dir/test_engine_table.cc.o"
  "CMakeFiles/test_engine_table.dir/test_engine_table.cc.o.d"
  "test_engine_table"
  "test_engine_table.pdb"
  "test_engine_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
