# Empty compiler generated dependencies file for test_engine_table.
# This may be replaced when dependencies are built.
