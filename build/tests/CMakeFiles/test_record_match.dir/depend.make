# Empty dependencies file for test_record_match.
# This may be replaced when dependencies are built.
