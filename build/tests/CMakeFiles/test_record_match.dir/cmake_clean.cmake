file(REMOVE_RECURSE
  "CMakeFiles/test_record_match.dir/test_record_match.cc.o"
  "CMakeFiles/test_record_match.dir/test_record_match.cc.o.d"
  "test_record_match"
  "test_record_match.pdb"
  "test_record_match[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
