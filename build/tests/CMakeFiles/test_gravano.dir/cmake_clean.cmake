file(REMOVE_RECURSE
  "CMakeFiles/test_gravano.dir/test_gravano.cc.o"
  "CMakeFiles/test_gravano.dir/test_gravano.cc.o.d"
  "test_gravano"
  "test_gravano.pdb"
  "test_gravano[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gravano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
