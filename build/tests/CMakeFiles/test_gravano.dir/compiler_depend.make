# Empty compiler generated dependencies file for test_gravano.
# This may be replaced when dependencies are built.
