# Empty dependencies file for test_ges_join.
# This may be replaced when dependencies are built.
