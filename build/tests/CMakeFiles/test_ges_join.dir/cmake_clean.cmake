file(REMOVE_RECURSE
  "CMakeFiles/test_ges_join.dir/test_ges_join.cc.o"
  "CMakeFiles/test_ges_join.dir/test_ges_join.cc.o.d"
  "test_ges_join"
  "test_ges_join.pdb"
  "test_ges_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ges_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
