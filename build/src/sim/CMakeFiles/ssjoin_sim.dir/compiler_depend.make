# Empty compiler generated dependencies file for ssjoin_sim.
# This may be replaced when dependencies are built.
