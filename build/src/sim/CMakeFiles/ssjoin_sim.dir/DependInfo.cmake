
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/edit_distance.cc" "src/sim/CMakeFiles/ssjoin_sim.dir/edit_distance.cc.o" "gcc" "src/sim/CMakeFiles/ssjoin_sim.dir/edit_distance.cc.o.d"
  "/root/repo/src/sim/ges.cc" "src/sim/CMakeFiles/ssjoin_sim.dir/ges.cc.o" "gcc" "src/sim/CMakeFiles/ssjoin_sim.dir/ges.cc.o.d"
  "/root/repo/src/sim/jaro.cc" "src/sim/CMakeFiles/ssjoin_sim.dir/jaro.cc.o" "gcc" "src/sim/CMakeFiles/ssjoin_sim.dir/jaro.cc.o.d"
  "/root/repo/src/sim/set_overlap.cc" "src/sim/CMakeFiles/ssjoin_sim.dir/set_overlap.cc.o" "gcc" "src/sim/CMakeFiles/ssjoin_sim.dir/set_overlap.cc.o.d"
  "/root/repo/src/sim/soundex.cc" "src/sim/CMakeFiles/ssjoin_sim.dir/soundex.cc.o" "gcc" "src/sim/CMakeFiles/ssjoin_sim.dir/soundex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ssjoin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ssjoin_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
