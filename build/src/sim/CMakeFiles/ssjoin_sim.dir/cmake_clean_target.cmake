file(REMOVE_RECURSE
  "libssjoin_sim.a"
)
