# Empty dependencies file for ssjoin_sim.
# This may be replaced when dependencies are built.
