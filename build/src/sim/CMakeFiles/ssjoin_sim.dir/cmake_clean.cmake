file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_sim.dir/edit_distance.cc.o"
  "CMakeFiles/ssjoin_sim.dir/edit_distance.cc.o.d"
  "CMakeFiles/ssjoin_sim.dir/ges.cc.o"
  "CMakeFiles/ssjoin_sim.dir/ges.cc.o.d"
  "CMakeFiles/ssjoin_sim.dir/jaro.cc.o"
  "CMakeFiles/ssjoin_sim.dir/jaro.cc.o.d"
  "CMakeFiles/ssjoin_sim.dir/set_overlap.cc.o"
  "CMakeFiles/ssjoin_sim.dir/set_overlap.cc.o.d"
  "CMakeFiles/ssjoin_sim.dir/soundex.cc.o"
  "CMakeFiles/ssjoin_sim.dir/soundex.cc.o.d"
  "libssjoin_sim.a"
  "libssjoin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
