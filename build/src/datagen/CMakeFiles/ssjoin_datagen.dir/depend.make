# Empty dependencies file for ssjoin_datagen.
# This may be replaced when dependencies are built.
