
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/address_gen.cc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/address_gen.cc.o" "gcc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/address_gen.cc.o.d"
  "/root/repo/src/datagen/contact_gen.cc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/contact_gen.cc.o" "gcc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/contact_gen.cc.o.d"
  "/root/repo/src/datagen/error_model.cc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/error_model.cc.o" "gcc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/error_model.cc.o.d"
  "/root/repo/src/datagen/publication_gen.cc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/publication_gen.cc.o" "gcc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/publication_gen.cc.o.d"
  "/root/repo/src/datagen/wordlists.cc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/wordlists.cc.o" "gcc" "src/datagen/CMakeFiles/ssjoin_datagen.dir/wordlists.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ssjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
