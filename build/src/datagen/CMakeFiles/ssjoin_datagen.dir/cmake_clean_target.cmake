file(REMOVE_RECURSE
  "libssjoin_datagen.a"
)
