file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_datagen.dir/address_gen.cc.o"
  "CMakeFiles/ssjoin_datagen.dir/address_gen.cc.o.d"
  "CMakeFiles/ssjoin_datagen.dir/contact_gen.cc.o"
  "CMakeFiles/ssjoin_datagen.dir/contact_gen.cc.o.d"
  "CMakeFiles/ssjoin_datagen.dir/error_model.cc.o"
  "CMakeFiles/ssjoin_datagen.dir/error_model.cc.o.d"
  "CMakeFiles/ssjoin_datagen.dir/publication_gen.cc.o"
  "CMakeFiles/ssjoin_datagen.dir/publication_gen.cc.o.d"
  "CMakeFiles/ssjoin_datagen.dir/wordlists.cc.o"
  "CMakeFiles/ssjoin_datagen.dir/wordlists.cc.o.d"
  "libssjoin_datagen.a"
  "libssjoin_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
