file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_engine.dir/csv.cc.o"
  "CMakeFiles/ssjoin_engine.dir/csv.cc.o.d"
  "CMakeFiles/ssjoin_engine.dir/expr.cc.o"
  "CMakeFiles/ssjoin_engine.dir/expr.cc.o.d"
  "CMakeFiles/ssjoin_engine.dir/operators.cc.o"
  "CMakeFiles/ssjoin_engine.dir/operators.cc.o.d"
  "CMakeFiles/ssjoin_engine.dir/plan.cc.o"
  "CMakeFiles/ssjoin_engine.dir/plan.cc.o.d"
  "CMakeFiles/ssjoin_engine.dir/schema.cc.o"
  "CMakeFiles/ssjoin_engine.dir/schema.cc.o.d"
  "CMakeFiles/ssjoin_engine.dir/table.cc.o"
  "CMakeFiles/ssjoin_engine.dir/table.cc.o.d"
  "libssjoin_engine.a"
  "libssjoin_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
