
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/csv.cc" "src/engine/CMakeFiles/ssjoin_engine.dir/csv.cc.o" "gcc" "src/engine/CMakeFiles/ssjoin_engine.dir/csv.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/ssjoin_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/ssjoin_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/ssjoin_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/ssjoin_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/ssjoin_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/ssjoin_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/schema.cc" "src/engine/CMakeFiles/ssjoin_engine.dir/schema.cc.o" "gcc" "src/engine/CMakeFiles/ssjoin_engine.dir/schema.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/ssjoin_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/ssjoin_engine.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ssjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
