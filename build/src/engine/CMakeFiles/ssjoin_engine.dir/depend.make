# Empty dependencies file for ssjoin_engine.
# This may be replaced when dependencies are built.
