file(REMOVE_RECURSE
  "libssjoin_engine.a"
)
