# Empty compiler generated dependencies file for ssjoin_text.
# This may be replaced when dependencies are built.
