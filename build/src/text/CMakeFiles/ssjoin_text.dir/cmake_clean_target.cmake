file(REMOVE_RECURSE
  "libssjoin_text.a"
)
