file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_text.dir/dictionary.cc.o"
  "CMakeFiles/ssjoin_text.dir/dictionary.cc.o.d"
  "CMakeFiles/ssjoin_text.dir/tokenizer.cc.o"
  "CMakeFiles/ssjoin_text.dir/tokenizer.cc.o.d"
  "libssjoin_text.a"
  "libssjoin_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
