
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/dictionary.cc" "src/text/CMakeFiles/ssjoin_text.dir/dictionary.cc.o" "gcc" "src/text/CMakeFiles/ssjoin_text.dir/dictionary.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/ssjoin_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/ssjoin_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ssjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
