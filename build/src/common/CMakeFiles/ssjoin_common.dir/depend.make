# Empty dependencies file for ssjoin_common.
# This may be replaced when dependencies are built.
