file(REMOVE_RECURSE
  "libssjoin_common.a"
)
