file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_common.dir/rng.cc.o"
  "CMakeFiles/ssjoin_common.dir/rng.cc.o.d"
  "CMakeFiles/ssjoin_common.dir/status.cc.o"
  "CMakeFiles/ssjoin_common.dir/status.cc.o.d"
  "CMakeFiles/ssjoin_common.dir/string_util.cc.o"
  "CMakeFiles/ssjoin_common.dir/string_util.cc.o.d"
  "libssjoin_common.a"
  "libssjoin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
