
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simjoin/cooccurrence.cc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/cooccurrence.cc.o" "gcc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/cooccurrence.cc.o.d"
  "/root/repo/src/simjoin/fuzzy_match.cc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/fuzzy_match.cc.o" "gcc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/fuzzy_match.cc.o.d"
  "/root/repo/src/simjoin/ges_join.cc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/ges_join.cc.o" "gcc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/ges_join.cc.o.d"
  "/root/repo/src/simjoin/gravano.cc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/gravano.cc.o" "gcc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/gravano.cc.o.d"
  "/root/repo/src/simjoin/prep.cc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/prep.cc.o" "gcc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/prep.cc.o.d"
  "/root/repo/src/simjoin/record_match.cc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/record_match.cc.o" "gcc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/record_match.cc.o.d"
  "/root/repo/src/simjoin/string_joins.cc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/string_joins.cc.o" "gcc" "src/simjoin/CMakeFiles/ssjoin_simjoin.dir/string_joins.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ssjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssjoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ssjoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ssjoin_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ssjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
