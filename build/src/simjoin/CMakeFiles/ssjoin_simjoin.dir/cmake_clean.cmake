file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_simjoin.dir/cooccurrence.cc.o"
  "CMakeFiles/ssjoin_simjoin.dir/cooccurrence.cc.o.d"
  "CMakeFiles/ssjoin_simjoin.dir/fuzzy_match.cc.o"
  "CMakeFiles/ssjoin_simjoin.dir/fuzzy_match.cc.o.d"
  "CMakeFiles/ssjoin_simjoin.dir/ges_join.cc.o"
  "CMakeFiles/ssjoin_simjoin.dir/ges_join.cc.o.d"
  "CMakeFiles/ssjoin_simjoin.dir/gravano.cc.o"
  "CMakeFiles/ssjoin_simjoin.dir/gravano.cc.o.d"
  "CMakeFiles/ssjoin_simjoin.dir/prep.cc.o"
  "CMakeFiles/ssjoin_simjoin.dir/prep.cc.o.d"
  "CMakeFiles/ssjoin_simjoin.dir/record_match.cc.o"
  "CMakeFiles/ssjoin_simjoin.dir/record_match.cc.o.d"
  "CMakeFiles/ssjoin_simjoin.dir/string_joins.cc.o"
  "CMakeFiles/ssjoin_simjoin.dir/string_joins.cc.o.d"
  "libssjoin_simjoin.a"
  "libssjoin_simjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_simjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
