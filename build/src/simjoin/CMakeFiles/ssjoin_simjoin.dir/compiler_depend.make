# Empty compiler generated dependencies file for ssjoin_simjoin.
# This may be replaced when dependencies are built.
