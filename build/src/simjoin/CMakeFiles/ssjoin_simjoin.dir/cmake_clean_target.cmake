file(REMOVE_RECURSE
  "libssjoin_simjoin.a"
)
