# CMake generated Testfile for 
# Source directory: /root/repo/src/simjoin
# Build directory: /root/repo/build/src/simjoin
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
