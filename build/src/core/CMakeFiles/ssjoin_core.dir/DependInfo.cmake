
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/ssjoin_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/ssjoin_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/order.cc" "src/core/CMakeFiles/ssjoin_core.dir/order.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/order.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/core/CMakeFiles/ssjoin_core.dir/predicate.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/predicate.cc.o.d"
  "/root/repo/src/core/prefix_filter.cc" "src/core/CMakeFiles/ssjoin_core.dir/prefix_filter.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/prefix_filter.cc.o.d"
  "/root/repo/src/core/relational_ssjoin.cc" "src/core/CMakeFiles/ssjoin_core.dir/relational_ssjoin.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/relational_ssjoin.cc.o.d"
  "/root/repo/src/core/sets.cc" "src/core/CMakeFiles/ssjoin_core.dir/sets.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/sets.cc.o.d"
  "/root/repo/src/core/ssjoin.cc" "src/core/CMakeFiles/ssjoin_core.dir/ssjoin.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/ssjoin.cc.o.d"
  "/root/repo/src/core/ssjoin_plan.cc" "src/core/CMakeFiles/ssjoin_core.dir/ssjoin_plan.cc.o" "gcc" "src/core/CMakeFiles/ssjoin_core.dir/ssjoin_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ssjoin_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ssjoin_text.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ssjoin_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
