file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_core.dir/cost_model.cc.o"
  "CMakeFiles/ssjoin_core.dir/cost_model.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/estimator.cc.o"
  "CMakeFiles/ssjoin_core.dir/estimator.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/order.cc.o"
  "CMakeFiles/ssjoin_core.dir/order.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/predicate.cc.o"
  "CMakeFiles/ssjoin_core.dir/predicate.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/prefix_filter.cc.o"
  "CMakeFiles/ssjoin_core.dir/prefix_filter.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/relational_ssjoin.cc.o"
  "CMakeFiles/ssjoin_core.dir/relational_ssjoin.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/sets.cc.o"
  "CMakeFiles/ssjoin_core.dir/sets.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/ssjoin.cc.o"
  "CMakeFiles/ssjoin_core.dir/ssjoin.cc.o.d"
  "CMakeFiles/ssjoin_core.dir/ssjoin_plan.cc.o"
  "CMakeFiles/ssjoin_core.dir/ssjoin_plan.cc.o.d"
  "libssjoin_core.a"
  "libssjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
