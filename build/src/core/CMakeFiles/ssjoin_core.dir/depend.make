# Empty dependencies file for ssjoin_core.
# This may be replaced when dependencies are built.
