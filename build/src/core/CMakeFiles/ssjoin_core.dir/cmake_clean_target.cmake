file(REMOVE_RECURSE
  "libssjoin_core.a"
)
