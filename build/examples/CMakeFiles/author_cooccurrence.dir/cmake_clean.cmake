file(REMOVE_RECURSE
  "CMakeFiles/author_cooccurrence.dir/author_cooccurrence.cpp.o"
  "CMakeFiles/author_cooccurrence.dir/author_cooccurrence.cpp.o.d"
  "author_cooccurrence"
  "author_cooccurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/author_cooccurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
