# Empty dependencies file for author_cooccurrence.
# This may be replaced when dependencies are built.
