file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_lookup.dir/fuzzy_lookup.cpp.o"
  "CMakeFiles/fuzzy_lookup.dir/fuzzy_lookup.cpp.o.d"
  "fuzzy_lookup"
  "fuzzy_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
