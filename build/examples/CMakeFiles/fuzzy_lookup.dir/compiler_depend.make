# Empty compiler generated dependencies file for fuzzy_lookup.
# This may be replaced when dependencies are built.
