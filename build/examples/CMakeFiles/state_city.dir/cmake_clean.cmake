file(REMOVE_RECURSE
  "CMakeFiles/state_city.dir/state_city.cpp.o"
  "CMakeFiles/state_city.dir/state_city.cpp.o.d"
  "state_city"
  "state_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
