# Empty dependencies file for state_city.
# This may be replaced when dependencies are built.
