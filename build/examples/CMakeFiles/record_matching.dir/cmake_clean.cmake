file(REMOVE_RECURSE
  "CMakeFiles/record_matching.dir/record_matching.cpp.o"
  "CMakeFiles/record_matching.dir/record_matching.cpp.o.d"
  "record_matching"
  "record_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
