# Empty dependencies file for record_matching.
# This may be replaced when dependencies are built.
