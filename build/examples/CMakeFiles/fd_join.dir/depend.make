# Empty dependencies file for fd_join.
# This may be replaced when dependencies are built.
