file(REMOVE_RECURSE
  "CMakeFiles/fd_join.dir/fd_join.cpp.o"
  "CMakeFiles/fd_join.dir/fd_join.cpp.o.d"
  "fd_join"
  "fd_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
