file(REMOVE_RECURSE
  "CMakeFiles/dedup_addresses.dir/dedup_addresses.cpp.o"
  "CMakeFiles/dedup_addresses.dir/dedup_addresses.cpp.o.d"
  "dedup_addresses"
  "dedup_addresses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_addresses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
