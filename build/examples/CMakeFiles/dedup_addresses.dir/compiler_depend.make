# Empty compiler generated dependencies file for dedup_addresses.
# This may be replaced when dependencies are built.
