# Empty compiler generated dependencies file for ssjoin_cli.
# This may be replaced when dependencies are built.
