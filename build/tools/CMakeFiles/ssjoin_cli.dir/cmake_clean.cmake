file(REMOVE_RECURSE
  "CMakeFiles/ssjoin_cli.dir/ssjoin_cli.cc.o"
  "CMakeFiles/ssjoin_cli.dir/ssjoin_cli.cc.o.d"
  "ssjoin_cli"
  "ssjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
