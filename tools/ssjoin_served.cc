/// ssjoin_served — online fuzzy-lookup server over a unix domain socket.
///
/// Serves FuzzyMatchIndex lookups (the paper's §6 record-lookup scenario)
/// through serve::LookupService: bounded admission queue, micro-batched
/// dispatch, query cache and latency metrics. The protocol is
/// newline-delimited JSON (see src/serve/wire.h).
///
/// Examples:
///   # warm-start from a snapshot built by `ssjoin_cli snapshot`
///   ssjoin_served --snapshot orgs.snap --socket /tmp/ssjoin.sock
///
///   # cold-start straight from a CSV column
///   ssjoin_served --reference orgs.csv --col name --alpha 0.5
///                 --socket /tmp/ssjoin.sock --threads 4
///
///   # then, from any client (or `ssjoin_cli lookup --socket ...`):
///   printf '{"op": "lookup", "query": "Mcrosoft Corp", "k": 3}\n'
///       | nc -U /tmp/ssjoin.sock

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/ssjoin.h"
#include "engine/csv.h"
#include "exec/metrics.h"
#include "index/manifest.h"
#include "index/mutable_index.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "serve/lookup_service.h"
#include "serve/snapshot.h"
#include "serve/wire.h"

namespace {

using namespace ssjoin;

struct Args {
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) continue;
    flag = flag.substr(2);
    // --flag=value binds tighter than the lookahead form, so "--threads=abc"
    // reaches the checked parser instead of becoming an unknown flag.
    if (size_t eq = flag.find('='); eq != std::string::npos) {
      args.flags[flag.substr(0, eq)] = flag.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[flag] = argv[++i];
    } else {
      args.flags[flag] = "true";
    }
  }
  return args;
}

/// Checked flag accessors: absent flags fall back, present flags must parse
/// completely (`--threads=abc` is a loud startup error, not 0 threads).
Result<size_t> SizeFlag(const Args& args, const std::string& name,
                        size_t fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  Result<uint64_t> v = ParseUint64(it->second);
  if (!v.ok()) {
    return Status::Invalid("--" + name + ": " + v.status().message());
  }
  return static_cast<size_t>(*v);
}

Result<double> DoubleFlag(const Args& args, const std::string& name,
                          double fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  Result<double> v = ParseDouble(it->second);
  if (!v.ok()) {
    return Status::Invalid("--" + name + ": " + v.status().message());
  }
  return *v;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: ssjoin_served (--data DIR | --snapshot FILE | --reference FILE "
      "--col COL)\n"
      "                     --socket PATH [--alpha A] [--qgrams Q]\n"
      "                     [--threads N] [--max-queue N] [--max-batch N]\n"
      "                     [--cache N] [--shards N] [--k-default N]\n"
      "                     [--seal-threshold N] [--max-generations N]\n"
      "  --data DIR       durable index directory: reopened (WAL replay) if it\n"
      "                   holds a MANIFEST, initialized from --snapshot/\n"
      "                   --reference otherwise\n"
      "  --snapshot FILE  warm-start from a snapshot (see ssjoin_cli snapshot)\n"
      "  --reference FILE cold-start: build the index from this CSV\n"
      "  --col COL        CSV column holding the reference strings\n"
      "  --alpha A        min resemblance for a match (default 0.5)\n"
      "  --qgrams Q       use q-gram tokens instead of word tokens\n"
      "  --threads N      dispatch threads (default 1, 0 = hardware)\n"
      "  --max-queue N    admission queue bound (default 1024)\n"
      "  --max-batch N    micro-batch size (default 64)\n"
      "  --cache N        query cache entries, 0 disables (default 4096)\n"
      "  --k-default N    k when a lookup omits it (default 3)\n"
      "  --kernel T       intersection kernel tier: scalar|gallop|simd|auto\n"
      "                   (default auto; also via the SSJOIN_KERNEL env var)\n"
      "  --seal-threshold N   auto-seal the mutable tail at N docs (default 256)\n"
      "  --max-generations N  auto-compact beyond N sealed segments (default 4)\n"
      "ops: ping, lookup, upsert, delete, compact, stats (one-line JSON),\n"
      "     metrics / stats+format=ndjson (header line, then one NDJSON metric\n"
      "     object per line), shutdown\n"
      "lookup accepts optional \"target_recall\" in (0, 1]: below 1.0 the\n"
      "     prefix probe is truncated to that fraction of its weight mass\n"
      "     (approximate recall, exact similarities)\n");
  return 2;
}

struct ServerState {
  serve::LookupService* service = nullptr;
  size_t default_k = 3;
  int listen_fd = -1;
  std::atomic<bool> stop{false};
  std::mutex conn_mu;
  std::set<int> conn_fds;
};

std::string ErrorResponse(const Status& status) {
  return "{\"ok\": false, \"code\": \"" +
         serve::JsonEscape(StatusCodeToString(status.code())) +
         "\", \"error\": \"" + serve::JsonEscape(status.message()) + "\"}";
}

std::string HandleLine(const std::string& line, ServerState* state,
                       bool* stop_after_reply) {
  auto parsed = serve::ParseJsonObject(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const auto& obj = *parsed;

  auto op_it = obj.find("op");
  if (op_it == obj.end() ||
      op_it->second.type != serve::JsonScalar::Type::kString) {
    return ErrorResponse(Status::Invalid("missing string field 'op'"));
  }
  const std::string& op = op_it->second.str;

  if (op == "ping") return "{\"ok\": true}";

  // The registry NDJSON export: a header object announcing the line count,
  // then one {"metric": ...} object per line. Reachable as {"op": "metrics"}
  // or {"op": "stats", "format": "ndjson"}.
  auto ndjson_metrics = [] {
    std::string nd = obs::Registry::Global().ToNdjson();
    size_t lines = 0;
    for (char c : nd) lines += c == '\n';
    if (!nd.empty()) nd.pop_back();  // ServeConnection appends the last '\n'
    std::string out = "{\"ok\": true, \"format\": \"ndjson\", \"metrics\": " +
                      std::to_string(lines) + "}";
    if (lines > 0) out += "\n" + nd;
    return out;
  };

  if (op == "metrics") return ndjson_metrics();

  if (op == "stats") {
    auto fmt = obj.find("format");
    if (fmt != obj.end() && fmt->second.type == serve::JsonScalar::Type::kString &&
        fmt->second.str == "ndjson") {
      return ndjson_metrics();
    }
    return "{\"ok\": true, \"stats\": " + state->service->Stats().ToJson() + "}";
  }

  if (op == "shutdown") {
    *stop_after_reply = true;
    return "{\"ok\": true, \"stopping\": true}";
  }

  if (op == "lookup") {
    auto query_it = obj.find("query");
    if (query_it == obj.end() ||
        query_it->second.type != serve::JsonScalar::Type::kString) {
      return ErrorResponse(Status::Invalid("lookup requires string field 'query'"));
    }
    size_t k = state->default_k;
    if (auto it = obj.find("k"); it != obj.end()) {
      if (it->second.type != serve::JsonScalar::Type::kNumber ||
          it->second.num < 0) {
        return ErrorResponse(Status::Invalid("'k' must be a nonnegative number"));
      }
      k = static_cast<size_t>(it->second.num);
    }
    std::chrono::milliseconds deadline{0};
    if (auto it = obj.find("deadline_ms"); it != obj.end()) {
      if (it->second.type != serve::JsonScalar::Type::kNumber ||
          it->second.num < 0) {
        return ErrorResponse(
            Status::Invalid("'deadline_ms' must be a nonnegative number"));
      }
      deadline = std::chrono::milliseconds(static_cast<int64_t>(it->second.num));
    }
    double target_recall = 1.0;
    if (auto it = obj.find("target_recall"); it != obj.end()) {
      if (it->second.type != serve::JsonScalar::Type::kNumber ||
          !(it->second.num > 0.0) || it->second.num > 1.0) {
        return ErrorResponse(
            Status::Invalid("'target_recall' must be a number in (0, 1]"));
      }
      target_recall = it->second.num;
    }
    auto result = state->service->Lookup(query_it->second.str, k, deadline,
                                         target_recall);
    if (!result.ok()) return ErrorResponse(result.status());
    std::string out = "{\"ok\": true, \"matches\": [";
    for (size_t i = 0; i < result->size(); ++i) {
      const auto& m = (*result)[i];
      if (i > 0) out += ", ";
      char sim[32];
      std::snprintf(sim, sizeof(sim), "%.6f", m.similarity);
      out += "{\"ref\": " + std::to_string(m.id) + ", \"similarity\": " + sim +
             ", \"value\": \"" +
             serve::JsonEscape(state->service->ValueOf(m.id).value_or("")) +
             "\"}";
    }
    out += "]}";
    return out;
  }

  // Mutations. Each publishes a new index epoch; the response carries it so
  // clients can correlate later lookups with the state they mutated.
  auto id_field = [&obj]() -> Result<uint64_t> {
    auto it = obj.find("id");
    if (it == obj.end() || it->second.type != serve::JsonScalar::Type::kNumber ||
        it->second.num < 0) {
      return Status::Invalid("op requires a nonnegative numeric field 'id'");
    }
    return static_cast<uint64_t>(it->second.num);
  };
  auto epoch_reply = [state](const Status& status) {
    if (!status.ok()) return ErrorResponse(status);
    return "{\"ok\": true, \"epoch\": " +
           std::to_string(state->service->epoch()) + "}";
  };

  if (op == "upsert") {
    auto id = id_field();
    if (!id.ok()) return ErrorResponse(id.status());
    auto value_it = obj.find("value");
    if (value_it == obj.end() ||
        value_it->second.type != serve::JsonScalar::Type::kString) {
      return ErrorResponse(Status::Invalid("upsert requires string field 'value'"));
    }
    return epoch_reply(state->service->Upsert(*id, value_it->second.str));
  }

  if (op == "delete") {
    auto id = id_field();
    if (!id.ok()) return ErrorResponse(id.status());
    return epoch_reply(state->service->Delete(*id));
  }

  if (op == "compact") return epoch_reply(state->service->Compact());

  return ErrorResponse(Status::Invalid("unknown op '" + op + "'"));
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

void ServeConnection(int fd, ServerState* state) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool stop_after_reply = false;
      bool sent = WriteAll(fd, HandleLine(line, state, &stop_after_reply) + "\n");
      if (stop_after_reply) {
        // Response is on the wire; now unblock the accept loop. The sweep in
        // RunServer nudges every other open connection.
        state->stop.store(true);
        ::shutdown(state->listen_fd, SHUT_RDWR);
      }
      if (!sent) break;
      continue;
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  {
    // Deregister before close so the shutdown sweep never touches a
    // recycled descriptor.
    std::lock_guard<std::mutex> lock(state->conn_mu);
    state->conn_fds.erase(fd);
  }
  ::close(fd);
}

Result<std::unique_ptr<index::MutableFuzzyIndex>> BuildOrLoadIndex(
    const Args& args) {
  index::MutableIndexOptions mopts;
  if (auto data = args.flags.find("data"); data != args.flags.end()) {
    mopts.data_dir = data->second;
  }
  SSJOIN_ASSIGN_OR_RETURN(mopts.seal_threshold,
                          SizeFlag(args, "seal-threshold", 256));
  SSJOIN_ASSIGN_OR_RETURN(mopts.max_generations,
                          SizeFlag(args, "max-generations", 4));

  // A data dir that already holds a manifest wins over every other source:
  // reopen it (sealed segments + WAL replay).
  if (!mopts.data_dir.empty() &&
      std::filesystem::exists(mopts.data_dir + "/" + index::kManifestFileName)) {
    Timer t;
    auto index = index::MutableFuzzyIndex::Open(mopts);
    if (index.ok()) {
      auto stats = (*index)->GetStats();
      std::fprintf(stderr,
                   "opened data dir %s (%llu live docs, epoch %llu) in %.1f ms\n",
                   mopts.data_dir.c_str(),
                   static_cast<unsigned long long>(stats.live_docs),
                   static_cast<unsigned long long>(stats.epoch),
                   t.ElapsedMillis());
    }
    return index;
  }

  auto snap = args.flags.find("snapshot");
  if (snap != args.flags.end()) {
    Timer t;
    auto index = serve::UpgradeSnapshotToMutable(snap->second, mopts);
    if (index.ok()) {
      std::fprintf(stderr,
                   "loaded snapshot %s (%llu live docs) in %.1f ms\n",
                   snap->second.c_str(),
                   static_cast<unsigned long long>((*index)->GetStats().live_docs),
                   t.ElapsedMillis());
    }
    return index;
  }

  auto ref = args.flags.find("reference");
  auto col = args.flags.find("col");
  if (ref == args.flags.end() || col == args.flags.end()) {
    return Status::Invalid(
        "either --data with a manifest, --snapshot, or --reference/--col is "
        "required");
  }
  SSJOIN_ASSIGN_OR_RETURN(mopts.match.alpha, DoubleFlag(args, "alpha", 0.5));
  if (args.flags.count("qgrams") > 0) {
    mopts.match.word_tokens = false;
    SSJOIN_ASSIGN_OR_RETURN(mopts.match.q, SizeFlag(args, "qgrams", 3));
  }
  SSJOIN_ASSIGN_OR_RETURN(engine::Table table, engine::ReadCsvFile(ref->second));
  SSJOIN_ASSIGN_OR_RETURN(size_t c, table.schema().FieldIndex(col->second));
  std::vector<std::pair<uint64_t, std::string>> records;
  records.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    records.emplace_back(r, table.GetValue(c, r).ToString());
  }
  Timer t;
  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                          index::MutableFuzzyIndex::Create(mopts));
  SSJOIN_RETURN_NOT_OK(index->BulkLoad(records));
  SSJOIN_RETURN_NOT_OK(index->Seal());
  std::fprintf(stderr, "built index over %zu reference strings in %.1f ms\n",
               records.size(), t.ElapsedMillis());
  return index;
}

Result<int> RunServer(const Args& args) {
  auto socket_it = args.flags.find("socket");
  if (socket_it == args.flags.end()) {
    return Status::Invalid("--socket PATH is required");
  }
  const std::string& socket_path = socket_it->second;
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::Invalid("socket path too long");
  }

  // Validate every numeric flag before the (possibly slow) index build, so
  // a typo'd flag fails in milliseconds instead of after a CSV load.
  serve::LookupServiceOptions options;
  SSJOIN_ASSIGN_OR_RETURN(options.exec.num_threads, SizeFlag(args, "threads", 1));
  SSJOIN_ASSIGN_OR_RETURN(options.max_queue, SizeFlag(args, "max-queue", 1024));
  SSJOIN_ASSIGN_OR_RETURN(options.max_batch, SizeFlag(args, "max-batch", 64));
  SSJOIN_ASSIGN_OR_RETURN(options.cache_capacity, SizeFlag(args, "cache", 4096));
  SSJOIN_ASSIGN_OR_RETURN(options.cache_shards, SizeFlag(args, "shards", 8));
  SSJOIN_ASSIGN_OR_RETURN(size_t default_k, SizeFlag(args, "k-default", 3));

  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                          BuildOrLoadIndex(args));

  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<serve::LookupService> service,
                          serve::LookupService::Create(std::move(index), options));

  ServerState state;
  state.service = service.get();
  state.default_k = default_k;

  state.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (state.listen_fd < 0) return Status::IOError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());
  if (::bind(state.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(state.listen_fd);
    return Status::IOError("cannot bind '" + socket_path + "'");
  }
  if (::listen(state.listen_fd, 64) != 0) {
    ::close(state.listen_fd);
    return Status::IOError("listen() failed");
  }
  std::printf("listening on %s\n", socket_path.c_str());
  std::fflush(stdout);

  std::vector<std::thread> connections;
  for (;;) {
    int fd = ::accept(state.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (state.stop.load() || errno != EINTR) break;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(state.conn_mu);
      state.conn_fds.insert(fd);
    }
    connections.emplace_back(ServeConnection, fd, &state);
  }
  ::close(state.listen_fd);
  // Nudge lingering connections so their threads observe EOF and exit.
  {
    std::lock_guard<std::mutex> lock(state.conn_mu);
    for (int fd : state.conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections) t.join();
  ::unlink(socket_path.c_str());
  service->Shutdown();
  std::fprintf(stderr, "final stats: %s\n", service->Stats().ToJson().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  // Pre-create the core and exec metric names so the NDJSON export covers
  // all three layers even before the first lookup dispatches (serve.* names
  // come from the LookupService's registry provider).
  core::RegisterCoreMetrics();
  exec::RegisterExecMetrics();
  kernels::RegisterKernelMetrics();
  Args args = ParseArgs(argc, argv);
  if (args.flags.count("help") > 0 || argc < 2) return Usage();
  // --kernel scalar|gallop|simd|auto (or SSJOIN_KERNEL): pin the
  // intersection kernel tier; unknown names are a loud startup error.
  Status kernel_status = kernels::InitFromEnv();
  if (kernel_status.ok()) {
    if (auto it = args.flags.find("kernel"); it != args.flags.end()) {
      Result<kernels::Tier> tier = kernels::ParseTier(it->second);
      kernel_status = tier.ok() ? kernels::SetTier(*tier) : tier.status();
    }
  }
  if (!kernel_status.ok()) {
    std::fprintf(stderr, "error: %s\n", kernel_status.ToString().c_str());
    return 1;
  }
  Result<int> rc = RunServer(args);
  if (!rc.ok()) {
    std::fprintf(stderr, "error: %s\n", rc.status().ToString().c_str());
    return 1;
  }
  return *rc;
}
