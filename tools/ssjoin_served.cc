/// ssjoin_served — online fuzzy-lookup server over a unix domain socket.
///
/// Serves FuzzyMatchIndex lookups (the paper's §6 record-lookup scenario)
/// through serve::LookupService: bounded admission queue, micro-batched
/// dispatch, query cache and latency metrics. The protocol is
/// newline-delimited JSON (see src/serve/wire.h).
///
/// Examples:
///   # warm-start from a snapshot built by `ssjoin_cli snapshot`
///   ssjoin_served --snapshot orgs.snap --socket /tmp/ssjoin.sock
///
///   # cold-start straight from a CSV column
///   ssjoin_served --reference orgs.csv --col name --alpha 0.5
///                 --socket /tmp/ssjoin.sock --threads 4
///
///   # then, from any client (or `ssjoin_cli lookup --socket ...`):
///   printf '{"op": "lookup", "query": "Mcrosoft Corp", "k": 3}\n'
///       | nc -U /tmp/ssjoin.sock

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/ssjoin.h"
#include "engine/csv.h"
#include "exec/metrics.h"
#include "filter/attr.h"
#include "filter/metrics.h"
#include "filter/predicate.h"
#include "index/manifest.h"
#include "index/mutable_index.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "serve/lookup_service.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "shard/coordinator.h"
#include "shard/replication.h"
#include "shard/router.h"
#include "shard/sharded_index.h"
#include "shard/wire_client.h"

namespace {

using namespace ssjoin;

struct Args {
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) continue;
    flag = flag.substr(2);
    // --flag=value binds tighter than the lookahead form, so "--threads=abc"
    // reaches the checked parser instead of becoming an unknown flag.
    if (size_t eq = flag.find('='); eq != std::string::npos) {
      args.flags[flag.substr(0, eq)] = flag.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[flag] = argv[++i];
    } else {
      args.flags[flag] = "true";
    }
  }
  return args;
}

/// Checked flag accessors: absent flags fall back, present flags must parse
/// completely (`--threads=abc` is a loud startup error, not 0 threads).
Result<size_t> SizeFlag(const Args& args, const std::string& name,
                        size_t fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  Result<uint64_t> v = ParseUint64(it->second);
  if (!v.ok()) {
    return Status::Invalid("--" + name + ": " + v.status().message());
  }
  return static_cast<size_t>(*v);
}

Result<double> DoubleFlag(const Args& args, const std::string& name,
                          double fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  Result<double> v = ParseDouble(it->second);
  if (!v.ok()) {
    return Status::Invalid("--" + name + ": " + v.status().message());
  }
  return *v;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: ssjoin_served (--data DIR | --snapshot FILE | --reference FILE "
      "--col COL)\n"
      "                     --socket PATH [--alpha A] [--qgrams Q]\n"
      "                     [--threads N] [--max-queue N] [--max-batch N]\n"
      "                     [--cache N] [--cache-shards N] [--k-default N]\n"
      "                     [--seal-threshold N] [--max-generations N]\n"
      "                     [--shards N]\n"
      "       ssjoin_served --coordinator SOCK1,SOCK2,... --socket PATH\n"
      "                     [--hedge-ms N] [--straggler-ms N] [--no-degraded]\n"
      "       ssjoin_served --follow LEADER_SOCK --data DIR --socket PATH\n"
      "                     [--sync-interval-ms N]\n"
      "  --data DIR       durable index directory: reopened (WAL replay) if it\n"
      "                   holds a MANIFEST, initialized from --snapshot/\n"
      "                   --reference otherwise\n"
      "  --snapshot FILE  warm-start from a snapshot (see ssjoin_cli snapshot)\n"
      "  --reference FILE cold-start: build the index from this CSV\n"
      "  --col COL        CSV column holding the reference strings\n"
      "  --alpha A        min resemblance for a match (default 0.5)\n"
      "  --qgrams Q       use q-gram tokens instead of word tokens\n"
      "  --threads N      dispatch threads (default 1, 0 = hardware)\n"
      "  --max-queue N    admission queue bound (default 1024)\n"
      "  --max-batch N    micro-batch size (default 64)\n"
      "  --cache N        query cache entries, 0 disables (default 4096)\n"
      "  --cache-shards N query cache shard count (default 8)\n"
      "  --k-default N    k when a lookup omits it (default 3)\n"
      "  --kernel T       intersection kernel tier: scalar|gallop|simd|auto\n"
      "                   (default auto; also via the SSJOIN_KERNEL env var)\n"
      "  --seal-threshold N   auto-seal the mutable tail at N docs (default 256)\n"
      "  --max-generations N  auto-compact beyond N sealed segments (default 4)\n"
      "modes:\n"
      "  --shards N       serve an in-process N-way sharded index (scatter-\n"
      "                   gather per lookup; results bit-identical to N=1)\n"
      "  --coordinator L  scatter-gather over shard SERVER processes at the\n"
      "                   listed sockets (position = shard id); --hedge-ms\n"
      "                   hedges stragglers, degraded partial responses when\n"
      "                   a shard is down unless --no-degraded\n"
      "  --follow SOCK    replicate the leader's sealed snapshots into --data\n"
      "                   and serve them read-only at the last sealed epoch\n"
      "ops: ping, lookup, upsert, delete, compact, seal, epoch, stats\n"
      "     (one-line JSON), metrics / stats+format=ndjson (header line, then\n"
      "     one NDJSON metric object per line), shutdown\n"
      "shard-server ops (single mode): slookup (exact hex-float scores),\n"
      "     upsert/delete with \"global\": true, gstats, gstats_reset, dump,\n"
      "     getvalue, repl_fetch; coordinator adds resync, follower adds sync\n"
      "lookup accepts optional \"target_recall\" in (0, 1]: below 1.0 the\n"
      "     prefix probe is truncated to that fraction of its weight mass\n"
      "     (approximate recall, exact similarities)\n");
  return 2;
}

struct ServerState {
  /// Exactly one backend is set, selecting the serving mode. `service` is a
  /// shared_ptr because the follower's sync loop swaps in a freshly opened
  /// service after each replicated epoch; requests pin the one they started
  /// on via Service().
  std::shared_ptr<serve::LookupService> service;
  std::mutex service_mu;
  shard::ShardedLookupIndex* sharded = nullptr;
  shard::Coordinator* coordinator = nullptr;

  /// Data directory served by repl_fetch (replication leader role); empty
  /// disables the op.
  std::string data_dir;
  /// Follower: every mutating op is rejected with Unavailable.
  bool read_only = false;
  /// Follower: forced replication round; returns (updated, epoch).
  std::function<Result<std::pair<bool, uint64_t>>()> sync_now;

  size_t default_k = 3;
  int listen_fd = -1;
  std::atomic<bool> stop{false};
  std::mutex conn_mu;
  std::set<int> conn_fds;

  std::shared_ptr<serve::LookupService> Service() {
    std::lock_guard<std::mutex> lock(service_mu);
    return service;
  }
};

std::string ErrorResponse(const Status& status) {
  return "{\"ok\": false, \"code\": \"" +
         serve::JsonEscape(StatusCodeToString(status.code())) +
         "\", \"error\": \"" + serve::JsonEscape(status.message()) + "\"}";
}

using JsonObj = std::map<std::string, serve::JsonValue>;

struct LookupParams {
  std::string query;
  size_t k = 3;
  std::chrono::milliseconds deadline{0};
  double target_recall = 1.0;
  filter::FilterPredicate filter;
};

Result<LookupParams> ParseLookupParams(const JsonObj& obj, size_t default_k) {
  LookupParams p;
  p.k = default_k;
  auto query_it = obj.find("query");
  if (query_it == obj.end() || query_it->second.is_object ||
      query_it->second.scalar.type != serve::JsonScalar::Type::kString) {
    return Status::Invalid("lookup requires string field 'query'");
  }
  p.query = query_it->second.scalar.str;
  if (auto it = obj.find("k"); it != obj.end()) {
    if (it->second.is_object ||
        it->second.scalar.type != serve::JsonScalar::Type::kNumber ||
        it->second.scalar.num < 0) {
      return Status::Invalid("'k' must be a nonnegative number");
    }
    p.k = static_cast<size_t>(it->second.scalar.num);
  }
  if (auto it = obj.find("deadline_ms"); it != obj.end()) {
    if (it->second.is_object ||
        it->second.scalar.type != serve::JsonScalar::Type::kNumber ||
        it->second.scalar.num < 0) {
      return Status::Invalid("'deadline_ms' must be a nonnegative number");
    }
    p.deadline =
        std::chrono::milliseconds(static_cast<int64_t>(it->second.scalar.num));
  }
  if (auto it = obj.find("target_recall"); it != obj.end()) {
    if (it->second.is_object ||
        it->second.scalar.type != serve::JsonScalar::Type::kNumber ||
        !(it->second.scalar.num > 0.0) || it->second.scalar.num > 1.0) {
      return Status::Invalid("'target_recall' must be a number in (0, 1]");
    }
    p.target_recall = it->second.scalar.num;
  }
  if (auto it = obj.find("filter"); it != obj.end()) {
    SSJOIN_ASSIGN_OR_RETURN(p.filter, serve::FilterFromWire(it->second));
  }
  return p;
}

Result<uint64_t> IdField(const JsonObj& obj) {
  auto it = obj.find("id");
  if (it == obj.end() || it->second.is_object ||
      it->second.scalar.type != serve::JsonScalar::Type::kNumber ||
      it->second.scalar.num < 0) {
    return Status::Invalid("op requires a nonnegative numeric field 'id'");
  }
  return static_cast<uint64_t>(it->second.scalar.num);
}

Result<std::string> StringField(const JsonObj& obj, const char* key) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.is_object ||
      it->second.scalar.type != serve::JsonScalar::Type::kString) {
    return Status::Invalid(std::string("op requires string field '") + key +
                           "'");
  }
  return it->second.scalar.str;
}

bool BoolField(const JsonObj& obj, const char* key) {
  auto it = obj.find(key);
  return it != obj.end() && !it->second.is_object &&
         it->second.scalar.type == serve::JsonScalar::Type::kBool &&
         it->second.scalar.boolean;
}

/// The optional "attrs" object of an upsert; absent = no attributes.
/// Validation (control bytes, name length, leading '!') happens inside
/// AttrsFromWire, so malformed attributes are rejected at the wire before
/// they can reach the WAL.
Result<filter::AttrSet> AttrsField(const JsonObj& obj) {
  auto it = obj.find("attrs");
  if (it == obj.end()) return filter::AttrSet{};
  return serve::AttrsFromWire(it->second);
}

/// The human-facing match list: decimal similarity for display plus the
/// document value. Each entry is (id, similarity, value).
std::string MatchesResponse(
    const std::vector<std::tuple<uint64_t, double, std::string>>& matches,
    const char* extra) {
  std::string out = "{\"ok\": true";
  out += extra;
  out += ", \"matches\": [";
  for (size_t i = 0; i < matches.size(); ++i) {
    const auto& [id, similarity, value] = matches[i];
    if (i > 0) out += ", ";
    char sim[32];
    std::snprintf(sim, sizeof(sim), "%.6f", similarity);
    out += "{\"ref\": " + std::to_string(id) + ", \"similarity\": " + sim +
           ", \"value\": \"" + serve::JsonEscape(value) + "\"}";
  }
  out += "]}";
  return out;
}

std::string HandleLine(const std::string& line, ServerState* state,
                       bool* stop_after_reply) {
  auto parsed = serve::ParseJsonRequest(line);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const auto& obj = *parsed;

  auto op_it = obj.find("op");
  if (op_it == obj.end() || op_it->second.is_object ||
      op_it->second.scalar.type != serve::JsonScalar::Type::kString) {
    return ErrorResponse(Status::Invalid("missing string field 'op'"));
  }
  const std::string& op = op_it->second.scalar.str;

  if (op == "ping") return "{\"ok\": true}";

  // The registry NDJSON export: a header object announcing the line count,
  // then one {"metric": ...} object per line. Reachable as {"op": "metrics"}
  // or {"op": "stats", "format": "ndjson"}.
  auto ndjson_metrics = [] {
    std::string nd = obs::Registry::Global().ToNdjson();
    size_t lines = 0;
    for (char c : nd) lines += c == '\n';
    if (!nd.empty()) nd.pop_back();  // ServeConnection appends the last '\n'
    std::string out = "{\"ok\": true, \"format\": \"ndjson\", \"metrics\": " +
                      std::to_string(lines) + "}";
    if (lines > 0) out += "\n" + nd;
    return out;
  };

  if (op == "metrics") return ndjson_metrics();

  if (op == "shutdown") {
    *stop_after_reply = true;
    return "{\"ok\": true, \"stopping\": true}";
  }

  if (op == "stats") {
    auto fmt = obj.find("format");
    if (fmt != obj.end() && !fmt->second.is_object &&
        fmt->second.scalar.type == serve::JsonScalar::Type::kString &&
        fmt->second.scalar.str == "ndjson") {
      return ndjson_metrics();
    }
  }

  // ---- Coordinator mode: scatter-gather over shard server processes. ----
  if (state->coordinator != nullptr) {
    shard::Coordinator* coord = state->coordinator;
    if (op == "stats") {
      // The coordinator owns no LookupService; its observable surface is the
      // shard.* fan-out metrics, already in the registry export above.
      return "{\"ok\": true, \"mode\": \"coordinator\", \"shards\": " +
             std::to_string(coord->num_shards()) + "}";
    }
    if (op == "lookup") {
      auto params = ParseLookupParams(obj, state->default_k);
      if (!params.ok()) return ErrorResponse(params.status());
      auto result = coord->Lookup(params->query, params->k, params->deadline,
                                  params->target_recall, params->filter);
      if (!result.ok()) return ErrorResponse(result.status());
      std::vector<std::tuple<uint64_t, double, std::string>> matches;
      matches.reserve(result->matches.size());
      for (const auto& m : result->matches) {
        matches.emplace_back(m.id, m.similarity, m.value);
      }
      std::string extra = std::string(", \"degraded\": ") +
                          (result->degraded ? "true" : "false") +
                          ", \"shards_ok\": " +
                          std::to_string(result->shards_ok);
      return MatchesResponse(matches, extra.c_str());
    }
    if (op == "upsert" || op == "delete") {
      auto id = IdField(obj);
      if (!id.ok()) return ErrorResponse(id.status());
      auto epoch_response = [](const Result<uint64_t>& epoch) {
        if (!epoch.ok()) return ErrorResponse(epoch.status());
        return "{\"ok\": true, \"epoch\": " + std::to_string(*epoch) + "}";
      };
      if (op == "upsert") {
        auto value = StringField(obj, "value");
        if (!value.ok()) return ErrorResponse(value.status());
        auto attrs = AttrsField(obj);
        if (!attrs.ok()) return ErrorResponse(attrs.status());
        return epoch_response(coord->Upsert(*id, *value, *attrs));
      }
      return epoch_response(coord->Delete(*id));
    }
    if (op == "resync") {
      Status s = coord->Resync();
      if (!s.ok()) return ErrorResponse(s);
      return "{\"ok\": true, \"resynced\": true}";
    }
    if (op == "seal" || op == "compact") {
      Status s = coord->Broadcast(op);
      if (!s.ok()) return ErrorResponse(s);
      return "{\"ok\": true}";
    }
    if (op == "epoch") {
      auto epoch = coord->ClusterEpoch();
      if (!epoch.ok()) return ErrorResponse(epoch.status());
      return "{\"ok\": true, \"epoch\": " + std::to_string(*epoch) + "}";
    }
    return ErrorResponse(Status::Invalid("unknown coordinator op '" + op + "'"));
  }

  // ---- In-process sharded mode. ----
  if (state->sharded != nullptr) {
    shard::ShardedLookupIndex* sharded = state->sharded;
    auto epoch_reply = [sharded](const Status& status) {
      if (!status.ok()) return ErrorResponse(status);
      return "{\"ok\": true, \"epoch\": " + std::to_string(sharded->epoch()) +
             "}";
    };
    if (op == "stats") {
      return "{\"ok\": true, \"stats\": " + sharded->Stats().ToJson() + "}";
    }
    if (op == "lookup") {
      auto params = ParseLookupParams(obj, state->default_k);
      if (!params.ok()) return ErrorResponse(params.status());
      auto result = sharded->Lookup(params->query, params->k, params->deadline,
                                    params->target_recall, params->filter);
      if (!result.ok()) return ErrorResponse(result.status());
      std::vector<std::tuple<uint64_t, double, std::string>> matches;
      matches.reserve(result->size());
      for (const auto& m : *result) {
        matches.emplace_back(m.id, m.similarity,
                             sharded->ValueOf(m.id).value_or(""));
      }
      return MatchesResponse(matches, "");
    }
    if (op == "upsert") {
      auto id = IdField(obj);
      if (!id.ok()) return ErrorResponse(id.status());
      auto value = StringField(obj, "value");
      if (!value.ok()) return ErrorResponse(value.status());
      auto attrs = AttrsField(obj);
      if (!attrs.ok()) return ErrorResponse(attrs.status());
      return epoch_reply(sharded->Upsert(*id, *value, *attrs));
    }
    if (op == "delete") {
      auto id = IdField(obj);
      if (!id.ok()) return ErrorResponse(id.status());
      return epoch_reply(sharded->Delete(*id));
    }
    if (op == "seal") return epoch_reply(sharded->Seal());
    if (op == "compact") return epoch_reply(sharded->Compact());
    if (op == "epoch") return epoch_reply(Status::OK());
    return ErrorResponse(Status::Invalid("unknown sharded op '" + op + "'"));
  }

  // ---- Single-service modes: standalone server, shard server, follower. --
  std::shared_ptr<serve::LookupService> service = state->Service();
  auto epoch_reply = [&service](const Status& status) {
    if (!status.ok()) return ErrorResponse(status);
    return "{\"ok\": true, \"epoch\": " + std::to_string(service->epoch()) +
           "}";
  };
  auto read_only_error = [] {
    return ErrorResponse(
        Status::Unavailable("follower is read-only; mutate the leader"));
  };

  if (op == "stats") {
    return "{\"ok\": true, \"stats\": " + service->Stats().ToJson() + "}";
  }

  if (op == "lookup" || op == "slookup") {
    auto params = ParseLookupParams(obj, state->default_k);
    if (!params.ok()) return ErrorResponse(params.status());
    auto result = service->Lookup(params->query, params->k, params->deadline,
                                  params->target_recall, params->filter);
    if (!result.ok()) return ErrorResponse(result.status());
    if (op == "lookup") {
      std::vector<std::tuple<uint64_t, double, std::string>> matches;
      matches.reserve(result->size());
      for (const auto& m : *result) {
        matches.emplace_back(m.id, m.similarity,
                             service->ValueOf(m.id).value_or(""));
      }
      return MatchesResponse(matches, "");
    }
    // slookup: the machine-facing flat encoding of the same result. Scores
    // cross as hex-float literals, which round-trip the exact doubles — the
    // coordinator's merge stays bit-identical to an unsharded lookup.
    std::string ids, sims;
    std::vector<std::string> values;
    values.reserve(result->size());
    for (size_t i = 0; i < result->size(); ++i) {
      const auto& m = (*result)[i];
      if (i > 0) {
        ids += ',';
        sims += ',';
      }
      ids += std::to_string(m.id);
      sims += shard::FormatHexDouble(m.similarity);
      values.push_back(service->ValueOf(m.id).value_or(""));
    }
    return "{\"ok\": true, \"n\": " + std::to_string(result->size()) +
           ", \"ids\": \"" + ids + "\", \"sims\": \"" + sims +
           "\", \"values\": \"" +
           serve::JsonEscape(shard::PackNetstrings(values)) + "\"}";
  }

  if (op == "upsert" || op == "delete") {
    if (state->read_only) return read_only_error();
    auto id = IdField(obj);
    if (!id.ok()) return ErrorResponse(id.status());
    if (!BoolField(obj, "global")) {
      if (op == "upsert") {
        auto value = StringField(obj, "value");
        if (!value.ok()) return ErrorResponse(value.status());
        auto attrs = AttrsField(obj);
        if (!attrs.ok()) return ErrorResponse(attrs.status());
        return epoch_reply(service->Upsert(*id, *value, *attrs));
      }
      return epoch_reply(service->Delete(*id));
    }
    // Shard-server role ("global": true): apply through the Global API and
    // report the replaced value, so the coordinator can broadcast the
    // global-stats delta to the other shards.
    index::GlobalDelta delta;
    Status status;
    if (op == "upsert") {
      auto value = StringField(obj, "value");
      if (!value.ok()) return ErrorResponse(value.status());
      auto attrs = AttrsField(obj);
      if (!attrs.ok()) return ErrorResponse(attrs.status());
      status = service->UpsertGlobal(*id, *value, *attrs, &delta);
    } else {
      status = service->DeleteGlobal(*id, &delta);
    }
    if (!status.ok()) return ErrorResponse(status);
    std::string out = "{\"ok\": true, \"epoch\": " +
                      std::to_string(service->epoch()) + ", \"had_prev\": ";
    out += delta.removed.has_value() ? "true" : "false";
    if (delta.removed.has_value()) {
      out += ", \"prev\": \"" + serve::JsonEscape(*delta.removed) + "\"";
    }
    out += "}";
    return out;
  }

  if (op == "gstats") {
    if (state->read_only) return read_only_error();
    index::GlobalDelta delta;
    if (BoolField(obj, "has_added")) {
      auto added = StringField(obj, "added");
      if (!added.ok()) return ErrorResponse(added.status());
      delta.added = *added;
    }
    if (BoolField(obj, "has_removed")) {
      auto removed = StringField(obj, "removed");
      if (!removed.ok()) return ErrorResponse(removed.status());
      delta.removed = *removed;
    }
    return epoch_reply(service->ApplyGlobalDelta(delta));
  }

  if (op == "gstats_reset") {
    if (state->read_only) return read_only_error();
    auto packed = StringField(obj, "values");
    if (!packed.ok()) return ErrorResponse(packed.status());
    auto values = shard::UnpackNetstrings(*packed);
    if (!values.ok()) return ErrorResponse(values.status());
    return epoch_reply(service->ResetGlobalStats(*values));
  }

  if (op == "dump") {
    std::vector<std::pair<uint64_t, std::string>> docs = service->LiveDocs();
    std::string ids;
    std::vector<std::string> values;
    values.reserve(docs.size());
    for (size_t i = 0; i < docs.size(); ++i) {
      if (i > 0) ids += ',';
      ids += std::to_string(docs[i].first);
      values.push_back(std::move(docs[i].second));
    }
    return "{\"ok\": true, \"n\": " + std::to_string(values.size()) +
           ", \"ids\": \"" + ids + "\", \"values\": \"" +
           serve::JsonEscape(shard::PackNetstrings(values)) + "\"}";
  }

  if (op == "getvalue") {
    auto id = IdField(obj);
    if (!id.ok()) return ErrorResponse(id.status());
    std::optional<std::string> value = service->ValueOf(*id);
    if (!value.has_value()) return "{\"ok\": true, \"found\": false}";
    std::string out = "{\"ok\": true, \"found\": true, \"value\": \"" +
                      serve::JsonEscape(*value) + "\"";
    std::optional<filter::AttrSet> attrs = service->AttrsOf(*id);
    if (attrs.has_value() && !attrs->empty()) {
      out += ", \"attrs\": " + serve::AttrsToJson(*attrs);
    }
    out += "}";
    return out;
  }

  if (op == "repl_fetch") {
    if (state->data_dir.empty()) {
      return ErrorResponse(
          Status::Invalid("repl_fetch requires a --data directory"));
    }
    auto name = StringField(obj, "name");
    if (!name.ok()) return ErrorResponse(name.status());
    if (name->empty() || *name == "." || *name == ".." ||
        name->find('/') != std::string::npos ||
        name->find('\\') != std::string::npos) {
      return ErrorResponse(
          Status::Invalid("repl_fetch name must be a basename"));
    }
    std::string path = state->data_dir + "/" + *name;
    if (!std::filesystem::exists(path)) {
      return ErrorResponse(Status::KeyError("no file '" + *name + "'"));
    }
    std::string bytes;
    Status read = common::ReadFile(path, &bytes);
    if (!read.ok()) return ErrorResponse(read);
    // Header line, then the raw body. ServeConnection's trailing newline
    // lands after the body; WireClient::ReadRaw consumes exactly `len`.
    return "{\"ok\": true, \"len\": " + std::to_string(bytes.size()) + "}\n" +
           bytes;
  }

  if (op == "sync") {
    if (!state->sync_now) {
      return ErrorResponse(Status::Invalid("sync is a follower-mode op"));
    }
    auto result = state->sync_now();
    if (!result.ok()) return ErrorResponse(result.status());
    return std::string("{\"ok\": true, \"updated\": ") +
           (result->first ? "true" : "false") +
           ", \"epoch\": " + std::to_string(result->second) + "}";
  }

  if (op == "seal") {
    if (state->read_only) return read_only_error();
    return epoch_reply(service->Seal());
  }
  if (op == "compact") {
    if (state->read_only) return read_only_error();
    return epoch_reply(service->Compact());
  }
  if (op == "epoch") return epoch_reply(Status::OK());

  return ErrorResponse(Status::Invalid("unknown op '" + op + "'"));
}

/// Writes the whole buffer, riding out EINTR and short writes. Returns false
/// only when the peer is genuinely gone (EPIPE/ECONNRESET/EOF-like), which
/// tears down this one connection — never the accept loop. The previous
/// `n <= 0` check treated a signal interruption as a dead client, silently
/// dropping every byte after the interrupt point mid-response.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // cannot make progress; avoid spinning
    off += static_cast<size_t>(n);
  }
  return true;
}

void ServeConnection(int fd, ServerState* state) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool stop_after_reply = false;
      bool sent = WriteAll(fd, HandleLine(line, state, &stop_after_reply) + "\n");
      if (stop_after_reply) {
        // Response is on the wire; now unblock the accept loop. The sweep in
        // RunServer nudges every other open connection.
        state->stop.store(true);
        ::shutdown(state->listen_fd, SHUT_RDWR);
      }
      if (!sent) break;
      continue;
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;  // signal, not a dead client
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  {
    // Deregister before close so the shutdown sweep never touches a
    // recycled descriptor.
    std::lock_guard<std::mutex> lock(state->conn_mu);
    state->conn_fds.erase(fd);
  }
  ::close(fd);
}

Result<std::vector<std::pair<uint64_t, std::string>>> ReadReferenceRecords(
    const std::string& csv_path, const std::string& col) {
  SSJOIN_ASSIGN_OR_RETURN(engine::Table table, engine::ReadCsvFile(csv_path));
  SSJOIN_ASSIGN_OR_RETURN(size_t c, table.schema().FieldIndex(col));
  std::vector<std::pair<uint64_t, std::string>> records;
  records.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    records.emplace_back(r, table.GetValue(c, r).ToString());
  }
  return records;
}

Result<std::unique_ptr<index::MutableFuzzyIndex>> BuildOrLoadIndex(
    const Args& args) {
  index::MutableIndexOptions mopts;
  if (auto data = args.flags.find("data"); data != args.flags.end()) {
    mopts.data_dir = data->second;
  }
  SSJOIN_ASSIGN_OR_RETURN(mopts.seal_threshold,
                          SizeFlag(args, "seal-threshold", 256));
  SSJOIN_ASSIGN_OR_RETURN(mopts.max_generations,
                          SizeFlag(args, "max-generations", 4));

  // A data dir that already holds a manifest wins over every other source:
  // reopen it (sealed segments + WAL replay).
  if (!mopts.data_dir.empty() &&
      std::filesystem::exists(mopts.data_dir + "/" + index::kManifestFileName)) {
    Timer t;
    auto index = index::MutableFuzzyIndex::Open(mopts);
    if (index.ok()) {
      auto stats = (*index)->GetStats();
      std::fprintf(stderr,
                   "opened data dir %s (%llu live docs, epoch %llu) in %.1f ms\n",
                   mopts.data_dir.c_str(),
                   static_cast<unsigned long long>(stats.live_docs),
                   static_cast<unsigned long long>(stats.epoch),
                   t.ElapsedMillis());
    }
    return index;
  }

  auto snap = args.flags.find("snapshot");
  if (snap != args.flags.end()) {
    Timer t;
    auto index = serve::UpgradeSnapshotToMutable(snap->second, mopts);
    if (index.ok()) {
      std::fprintf(stderr,
                   "loaded snapshot %s (%llu live docs) in %.1f ms\n",
                   snap->second.c_str(),
                   static_cast<unsigned long long>((*index)->GetStats().live_docs),
                   t.ElapsedMillis());
    }
    return index;
  }

  auto ref = args.flags.find("reference");
  auto col = args.flags.find("col");
  SSJOIN_ASSIGN_OR_RETURN(mopts.match.alpha, DoubleFlag(args, "alpha", 0.5));
  if (args.flags.count("qgrams") > 0) {
    mopts.match.word_tokens = false;
    SSJOIN_ASSIGN_OR_RETURN(mopts.match.q, SizeFlag(args, "qgrams", 3));
  }
  if (ref == args.flags.end() || col == args.flags.end()) {
    // A bare --data dir starts an empty index to be filled over the wire —
    // how a fresh shard server in a coordinator deployment comes up.
    if (!mopts.data_dir.empty()) {
      SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                              index::MutableFuzzyIndex::Create(mopts));
      std::fprintf(stderr, "created empty index in %s\n",
                   mopts.data_dir.c_str());
      return index;
    }
    return Status::Invalid(
        "either --data, --snapshot, or --reference/--col is required");
  }
  SSJOIN_ASSIGN_OR_RETURN(auto records,
                          ReadReferenceRecords(ref->second, col->second));
  Timer t;
  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                          index::MutableFuzzyIndex::Create(mopts));
  SSJOIN_RETURN_NOT_OK(index->BulkLoad(records));
  SSJOIN_RETURN_NOT_OK(index->Seal());
  std::fprintf(stderr, "built index over %zu reference strings in %.1f ms\n",
               records.size(), t.ElapsedMillis());
  return index;
}

/// Binds the unix socket and serves connections until an op (or signal)
/// stops the server. Backend-agnostic: HandleLine routes per state's mode.
Result<int> ServeLoop(const std::string& socket_path, ServerState* state) {
  state->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (state->listen_fd < 0) return Status::IOError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());
  if (::bind(state->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(state->listen_fd);
    return Status::IOError("cannot bind '" + socket_path + "'");
  }
  if (::listen(state->listen_fd, 64) != 0) {
    ::close(state->listen_fd);
    return Status::IOError("listen() failed");
  }
  std::printf("listening on %s\n", socket_path.c_str());
  std::fflush(stdout);

  std::vector<std::thread> connections;
  for (;;) {
    int fd = ::accept(state->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (state->stop.load() || errno != EINTR) break;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(state->conn_mu);
      state->conn_fds.insert(fd);
    }
    connections.emplace_back(ServeConnection, fd, state);
  }
  ::close(state->listen_fd);
  // Nudge lingering connections so their threads observe EOF and exit.
  {
    std::lock_guard<std::mutex> lock(state->conn_mu);
    for (int fd : state->conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections) t.join();
  ::unlink(socket_path.c_str());
  state->stop.store(true);
  return 0;
}

/// Follower-side Fetcher speaking the leader's repl_fetch op: header line
/// with the byte count, then the raw body. One fresh connection per file.
class WireFetcher : public shard::Fetcher {
 public:
  explicit WireFetcher(std::string leader_socket)
      : leader_socket_(std::move(leader_socket)) {}

  Result<std::string> Fetch(const std::string& name) override {
    SSJOIN_ASSIGN_OR_RETURN(shard::WireClient client,
                            shard::WireClient::Connect(leader_socket_));
    std::string line = "{\"op\": \"repl_fetch\", \"name\": \"" +
                       serve::JsonEscape(name) + "\"}";
    SSJOIN_ASSIGN_OR_RETURN(
        std::string header, client.Call(line, std::chrono::milliseconds(30000)));
    using FlatObj = std::map<std::string, serve::JsonScalar>;
    SSJOIN_ASSIGN_OR_RETURN(FlatObj obj, serve::ParseJsonObject(header));
    auto ok = obj.find("ok");
    if (ok == obj.end() || ok->second.type != serve::JsonScalar::Type::kBool) {
      return Status::IOError("repl_fetch header lacks 'ok'");
    }
    if (!ok->second.boolean) {
      auto code = obj.find("code");
      auto msg = obj.find("error");
      std::string message =
          msg != obj.end() && msg->second.type == serve::JsonScalar::Type::kString
              ? msg->second.str
              : "repl_fetch failed";
      if (code != obj.end() && code->second.str == "Key error") {
        return Status::KeyError(message);
      }
      return Status::IOError(message);
    }
    auto len = obj.find("len");
    if (len == obj.end() || len->second.type != serve::JsonScalar::Type::kNumber ||
        len->second.num < 0) {
      return Status::IOError("repl_fetch header lacks 'len'");
    }
    return client.ReadRaw(static_cast<size_t>(len->second.num),
                          std::chrono::milliseconds(60000));
  }

 private:
  std::string leader_socket_;
};

Result<int> RunCoordinator(const Args& args, const std::string& socket_path,
                           const std::string& shard_list, size_t default_k) {
  shard::CoordinatorOptions copts;
  copts.shard_sockets = SplitAndDropEmpty(shard_list, ",");
  SSJOIN_ASSIGN_OR_RETURN(size_t hedge_ms, SizeFlag(args, "hedge-ms", 0));
  SSJOIN_ASSIGN_OR_RETURN(size_t straggler_ms, SizeFlag(args, "straggler-ms", 0));
  SSJOIN_ASSIGN_OR_RETURN(size_t admin_ms,
                          SizeFlag(args, "admin-timeout-ms", 30000));
  copts.hedge_delay = std::chrono::milliseconds(hedge_ms);
  copts.straggler_threshold = std::chrono::milliseconds(straggler_ms);
  copts.admin_timeout = std::chrono::milliseconds(admin_ms);
  copts.allow_degraded = args.flags.count("no-degraded") == 0;
  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<shard::Coordinator> coordinator,
                          shard::Coordinator::Create(copts));
  std::fprintf(stderr, "coordinating %u shard servers\n",
               coordinator->num_shards());
  ServerState state;
  state.coordinator = coordinator.get();
  state.default_k = default_k;
  return ServeLoop(socket_path, &state);
}

Result<int> RunFollower(const Args& args, const std::string& socket_path,
                        const std::string& leader_socket, size_t default_k,
                        const serve::LookupServiceOptions& options) {
  auto data = args.flags.find("data");
  if (data == args.flags.end()) {
    return Status::Invalid("--follow requires --data DIR");
  }
  const std::string& dir = data->second;
  SSJOIN_ASSIGN_OR_RETURN(size_t interval_ms,
                          SizeFlag(args, "sync-interval-ms", 500));

  WireFetcher fetcher(leader_socket);
  // First sync before serving. An unreachable leader is tolerated only when
  // a previously replicated manifest exists — stale reads beat no reads.
  Result<shard::SyncResult> first = shard::SyncFromLeader(fetcher, dir);
  if (!first.ok() &&
      !std::filesystem::exists(dir + "/" + index::kManifestFileName)) {
    return first.status();
  }

  index::MutableIndexOptions mopts;
  mopts.data_dir = dir;
  auto open_service = [&]() -> Result<std::shared_ptr<serve::LookupService>> {
    SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                            index::MutableFuzzyIndex::Open(mopts));
    SSJOIN_ASSIGN_OR_RETURN(
        std::unique_ptr<serve::LookupService> svc,
        serve::LookupService::Create(std::move(index), options));
    return std::shared_ptr<serve::LookupService>(std::move(svc));
  };
  SSJOIN_ASSIGN_OR_RETURN(std::shared_ptr<serve::LookupService> service,
                          open_service());
  std::fprintf(stderr, "following %s at epoch %llu\n", leader_socket.c_str(),
               static_cast<unsigned long long>(service->epoch()));

  ServerState state;
  state.service = std::move(service);
  state.read_only = true;
  state.data_dir = dir;  // chained followers may repl_fetch from us
  state.default_k = default_k;

  std::mutex sync_mu;
  auto sync_once = [&]() -> Result<std::pair<bool, uint64_t>> {
    std::lock_guard<std::mutex> lock(sync_mu);
    SSJOIN_ASSIGN_OR_RETURN(shard::SyncResult sr,
                            shard::SyncFromLeader(fetcher, dir));
    if (!sr.updated) return std::make_pair(false, state.Service()->epoch());
    SSJOIN_ASSIGN_OR_RETURN(std::shared_ptr<serve::LookupService> fresh,
                            open_service());
    uint64_t epoch = fresh->epoch();
    {
      std::lock_guard<std::mutex> swap_lock(state.service_mu);
      state.service = std::move(fresh);
    }
    return std::make_pair(true, epoch);
  };
  state.sync_now = sync_once;

  std::thread syncer([&] {
    while (!state.stop.load()) {
      for (size_t waited = 0; waited < interval_ms && !state.stop.load();
           waited += 50) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (state.stop.load()) break;
      Result<std::pair<bool, uint64_t>> r = sync_once();
      if (!r.ok()) {
        std::fprintf(stderr, "sync: %s\n", r.status().ToString().c_str());
      }
    }
  });
  Result<int> rc = ServeLoop(socket_path, &state);
  state.stop.store(true);
  syncer.join();
  std::shared_ptr<serve::LookupService> final_service = state.Service();
  final_service->Shutdown();
  std::fprintf(stderr, "final stats: %s\n",
               final_service->Stats().ToJson().c_str());
  return rc;
}

Result<int> RunSharded(const Args& args, const std::string& socket_path,
                       size_t num_shards, size_t default_k,
                       const serve::LookupServiceOptions& options) {
  if (args.flags.count("snapshot") > 0) {
    return Status::Invalid("--shards does not support --snapshot; use "
                           "--reference/--col or a sharded --data dir");
  }
  shard::ShardedIndexOptions sopts;
  sopts.num_shards = static_cast<uint32_t>(num_shards);
  sopts.service = options;
  if (auto it = args.flags.find("data"); it != args.flags.end()) {
    sopts.data_dir = it->second;
  }
  SSJOIN_ASSIGN_OR_RETURN(sopts.seal_threshold,
                          SizeFlag(args, "seal-threshold", 256));
  SSJOIN_ASSIGN_OR_RETURN(sopts.max_generations,
                          SizeFlag(args, "max-generations", 4));
  SSJOIN_ASSIGN_OR_RETURN(sopts.match.alpha, DoubleFlag(args, "alpha", 0.5));
  if (args.flags.count("qgrams") > 0) {
    sopts.match.word_tokens = false;
    SSJOIN_ASSIGN_OR_RETURN(sopts.match.q, SizeFlag(args, "qgrams", 3));
  }
  SSJOIN_ASSIGN_OR_RETURN(size_t hedge_ms, SizeFlag(args, "hedge-ms", 0));
  SSJOIN_ASSIGN_OR_RETURN(size_t straggler_ms, SizeFlag(args, "straggler-ms", 0));
  sopts.hedge_delay = std::chrono::milliseconds(hedge_ms);
  sopts.straggler_threshold = std::chrono::milliseconds(straggler_ms);

  std::unique_ptr<shard::ShardedLookupIndex> sharded;
  if (!sopts.data_dir.empty() &&
      std::filesystem::exists(sopts.data_dir + "/SHARDS")) {
    Timer t;
    SSJOIN_ASSIGN_OR_RETURN(sharded, shard::ShardedLookupIndex::Open(sopts));
    std::fprintf(stderr, "opened %u-shard data dir %s in %.1f ms\n",
                 sharded->num_shards(), sopts.data_dir.c_str(),
                 t.ElapsedMillis());
  } else {
    SSJOIN_ASSIGN_OR_RETURN(sharded, shard::ShardedLookupIndex::Create(sopts));
    auto ref = args.flags.find("reference");
    auto col = args.flags.find("col");
    if (ref != args.flags.end() && col != args.flags.end()) {
      Timer t;
      SSJOIN_ASSIGN_OR_RETURN(
          auto records, ReadReferenceRecords(ref->second, col->second));
      SSJOIN_RETURN_NOT_OK(sharded->BulkLoad(records));
      SSJOIN_RETURN_NOT_OK(sharded->Seal());
      std::fprintf(stderr,
                   "built %u-shard index over %zu reference strings in %.1f ms\n",
                   sharded->num_shards(), records.size(), t.ElapsedMillis());
    }
  }

  ServerState state;
  state.sharded = sharded.get();
  state.default_k = default_k;
  Result<int> rc = ServeLoop(socket_path, &state);
  std::fprintf(stderr, "final stats: %s\n",
               sharded->Stats().ToJson().c_str());
  return rc;
}

Result<int> RunServer(const Args& args) {
  auto socket_it = args.flags.find("socket");
  if (socket_it == args.flags.end()) {
    return Status::Invalid("--socket PATH is required");
  }
  const std::string& socket_path = socket_it->second;
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::Invalid("socket path too long");
  }
  SSJOIN_ASSIGN_OR_RETURN(size_t default_k, SizeFlag(args, "k-default", 3));

  if (auto it = args.flags.find("coordinator"); it != args.flags.end()) {
    return RunCoordinator(args, socket_path, it->second, default_k);
  }

  // Validate every numeric flag before the (possibly slow) index build, so
  // a typo'd flag fails in milliseconds instead of after a CSV load.
  serve::LookupServiceOptions options;
  SSJOIN_ASSIGN_OR_RETURN(options.exec.num_threads, SizeFlag(args, "threads", 1));
  SSJOIN_ASSIGN_OR_RETURN(options.max_queue, SizeFlag(args, "max-queue", 1024));
  SSJOIN_ASSIGN_OR_RETURN(options.max_batch, SizeFlag(args, "max-batch", 64));
  SSJOIN_ASSIGN_OR_RETURN(options.cache_capacity, SizeFlag(args, "cache", 4096));
  SSJOIN_ASSIGN_OR_RETURN(options.cache_shards,
                          SizeFlag(args, "cache-shards", 8));

  if (auto it = args.flags.find("follow"); it != args.flags.end()) {
    return RunFollower(args, socket_path, it->second, default_k, options);
  }

  SSJOIN_ASSIGN_OR_RETURN(size_t num_shards, SizeFlag(args, "shards", 1));
  if (num_shards > 1) {
    return RunSharded(args, socket_path, num_shards, default_k, options);
  }

  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<index::MutableFuzzyIndex> index,
                          BuildOrLoadIndex(args));

  SSJOIN_ASSIGN_OR_RETURN(std::unique_ptr<serve::LookupService> service,
                          serve::LookupService::Create(std::move(index), options));

  ServerState state;
  state.service = std::shared_ptr<serve::LookupService>(std::move(service));
  state.default_k = default_k;
  if (auto it = args.flags.find("data"); it != args.flags.end()) {
    state.data_dir = it->second;  // serve repl_fetch (replication leader role)
  }
  Result<int> rc = ServeLoop(socket_path, &state);
  std::shared_ptr<serve::LookupService> final_service = state.Service();
  final_service->Shutdown();
  std::fprintf(stderr, "final stats: %s\n",
               final_service->Stats().ToJson().c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  // Pre-create the core and exec metric names so the NDJSON export covers
  // all three layers even before the first lookup dispatches (serve.* names
  // come from the LookupService's registry provider).
  core::RegisterCoreMetrics();
  exec::RegisterExecMetrics();
  kernels::RegisterKernelMetrics();
  filter::RegisterFilterMetrics();
  Args args = ParseArgs(argc, argv);
  if (args.flags.count("help") > 0 || argc < 2) return Usage();
  // --kernel scalar|gallop|simd|auto (or SSJOIN_KERNEL): pin the
  // intersection kernel tier; unknown names are a loud startup error.
  Status kernel_status = kernels::InitFromEnv();
  if (kernel_status.ok()) {
    if (auto it = args.flags.find("kernel"); it != args.flags.end()) {
      Result<kernels::Tier> tier = kernels::ParseTier(it->second);
      kernel_status = tier.ok() ? kernels::SetTier(*tier) : tier.status();
    }
  }
  if (!kernel_status.ok()) {
    std::fprintf(stderr, "error: %s\n", kernel_status.ToString().c_str());
    return 1;
  }
  Result<int> rc = RunServer(args);
  if (!rc.ok()) {
    std::fprintf(stderr, "error: %s\n", rc.status().ToString().c_str());
    return 1;
  }
  return *rc;
}
