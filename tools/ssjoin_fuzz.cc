// Differential fuzz harness for the SSJoin stack.
//
//   ssjoin_fuzz [--seeds=N] [--start-seed=N] [--scenario=NAME|all]
//               [--out=DIR] [--no-shrink] [--max-failures=N] [-v]
//   ssjoin_fuzz --replay=FILE_OR_DIR [-v]
//
// Fuzz mode generates random workloads and checks every executor, join,
// snapshot round-trip and the lookup service against naive oracles; on a
// divergence it delta-debugs the workload down and writes a self-contained
// `.repro` file. Replay mode re-runs saved reproducers (a file, or every
// *.repro in a directory) and exits nonzero if any fails.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "fuzz/reproducer.h"
#include "fuzz/scenarios.h"
#include "kernels/kernels.h"

namespace {

using ssjoin::Result;
using ssjoin::fuzz::CheckCase;
using ssjoin::fuzz::CheckResult;
using ssjoin::fuzz::FuzzOptions;
using ssjoin::fuzz::FuzzReport;
using ssjoin::fuzz::LoadReproducerFile;
using ssjoin::fuzz::Reproducer;
using ssjoin::fuzz::RunFuzz;

void Usage() {
  std::fprintf(stderr,
               "usage: ssjoin_fuzz [--seeds=N] [--start-seed=N]\n"
               "                   [--scenario=NAME|all] [--out=DIR]\n"
               "                   [--no-shrink] [--max-failures=N] [-v]\n"
               "                   [--kernel=scalar|gallop|simd|auto]\n"
               "       ssjoin_fuzz --replay=FILE_OR_DIR [-v]\n"
               "  --kernel=T  dispatch executors-under-test to kernel tier T\n"
               "              (default auto; also via SSJOIN_KERNEL; oracles\n"
               "              stay pinned to the scalar tier)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// Numeric flags go through the strict whole-string parser the other tools
/// use: `--seeds=abc` is a loud usage error, not a silent 0.
bool ParseCountOrDie(const char* flag, const std::string& value, uint64_t* out) {
  ssjoin::Result<uint64_t> parsed = ssjoin::ParseUint64(value);
  if (!parsed.ok()) {
    std::fprintf(stderr, "ssjoin_fuzz: %s: %s\n", flag,
                 parsed.status().message().c_str());
    Usage();
    return false;
  }
  *out = *parsed;
  return true;
}

int Replay(const std::string& target, bool verbose) {
  std::vector<std::string> paths;
  std::error_code ec;
  if (std::filesystem::is_directory(target, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(target)) {
      if (entry.path().extension() == ".repro") {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
  } else {
    paths.push_back(target);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "ssjoin_fuzz: no .repro files under %s\n",
                 target.c_str());
    return 2;
  }

  int failures = 0;
  for (const std::string& path : paths) {
    Result<Reproducer> repro = LoadReproducerFile(path);
    if (!repro.ok()) {
      std::fprintf(stderr, "ssjoin_fuzz: %s: %s\n", path.c_str(),
                   repro.status().ToString().c_str());
      ++failures;
      continue;
    }
    Result<CheckResult> res = CheckCase(*repro);
    if (!res.ok()) {
      std::fprintf(stderr, "ssjoin_fuzz: %s: %s\n", path.c_str(),
                   res.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (!res->pass) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), res->detail.c_str());
      ++failures;
    } else if (verbose) {
      std::fprintf(stderr, "ok   %s\n", path.c_str());
    }
  }
  std::printf("replayed %zu reproducer(s), %d failure(s)\n", paths.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Env pickup first so --kernel (below) beats SSJOIN_KERNEL.
  if (ssjoin::Status st = ssjoin::kernels::InitFromEnv(); !st.ok()) {
    std::fprintf(stderr, "ssjoin_fuzz: %s\n", st.ToString().c_str());
    return 2;
  }
  FuzzOptions options;
  std::string replay_target;
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--seeds", &value)) {
      if (!ParseCountOrDie("--seeds", value, &options.seeds)) return 2;
    } else if (ParseFlag(arg, "--start-seed", &value)) {
      if (!ParseCountOrDie("--start-seed", value, &options.start_seed)) {
        return 2;
      }
    } else if (ParseFlag(arg, "--scenario", &value)) {
      options.scenario = value;
    } else if (ParseFlag(arg, "--out", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(arg, "--max-failures", &value)) {
      uint64_t max_failures = 0;
      if (!ParseCountOrDie("--max-failures", value, &max_failures)) return 2;
      options.max_failures = static_cast<size_t>(max_failures);
    } else if (ParseFlag(arg, "--kernel", &value)) {
      ssjoin::Result<ssjoin::kernels::Tier> tier =
          ssjoin::kernels::ParseTier(value);
      ssjoin::Status st =
          tier.ok() ? ssjoin::kernels::SetTier(*tier) : tier.status();
      if (!st.ok()) {
        std::fprintf(stderr, "ssjoin_fuzz: --kernel: %s\n",
                     st.message().c_str());
        Usage();
        return 2;
      }
    } else if (ParseFlag(arg, "--replay", &value)) {
      replay_target = value;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(arg, "-v") == 0 ||
               std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "ssjoin_fuzz: unknown flag %s\n", arg);
      Usage();
      return 2;
    }
  }

  if (!replay_target.empty()) return Replay(replay_target, options.verbose);

  Result<FuzzReport> report = RunFuzz(options);
  if (!report.ok()) {
    std::fprintf(stderr, "ssjoin_fuzz: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("ran %llu case(s): %llu failure(s)\n",
              static_cast<unsigned long long>(report->cases_run),
              static_cast<unsigned long long>(report->failures));
  if (report->failures > 0) {
    std::fprintf(stderr, "first failure: %s\n",
                 report->first_failure_detail.c_str());
    for (const std::string& path : report->reproducer_paths) {
      std::fprintf(stderr, "reproducer: %s\n", path.c_str());
    }
    return 1;
  }
  return 0;
}
