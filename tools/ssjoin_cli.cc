/// ssjoin_cli — similarity joins over CSV files from the command line.
///
/// Examples:
///   # fuzzy self-join (dedup candidates) on the 'name' column
///   ssjoin_cli join --left customers.csv --left-col name
///                   --sim jaccard --threshold 0.8 --out matches.csv
///
///   # join two tables on edit similarity of addresses
///   ssjoin_cli join --left a.csv --left-col addr --right b.csv
///                   --right-col address --sim edit --threshold 0.85
///
/// Similarity functions: jaccard (resemblance, word tokens, IDF),
/// containment, cosine, edit (edit similarity, 3-grams), ges, soundex.
/// Algorithms: basic, inverted-index, prefix-filter, inline (default), cost.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "engine/csv.h"
#include "simjoin/ges_join.h"
#include "simjoin/string_joins.h"

namespace {

using namespace ssjoin;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2 && argv[1][0] != '-') args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) continue;
    flag = flag.substr(2);
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[flag] = argv[++i];
    } else {
      args.flags[flag] = "true";
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& name,
                   const std::string& fallback) {
  auto it = args.flags.find(name);
  return it == args.flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ssjoin_cli join --left FILE --left-col COL "
               "[--right FILE --right-col COL]\n"
               "                  [--sim jaccard|containment|cosine|edit|ges|"
               "soundex] [--threshold A]\n"
               "                  [--algorithm basic|inverted-index|"
               "prefix-filter|inline|cost]\n"
               "                  [--threads N] [--morsel N]\n"
               "                  [--q N] [--out FILE] [--max-print N]\n"
               "  --threads N   worker threads for the SSJoin + verify stages"
               " (default 1;\n"
               "                0 = one per hardware thread)\n"
               "  --morsel N    scheduler work-unit size in groups/pairs "
               "(default 2048)\n");
  return 2;
}

Result<std::vector<std::string>> LoadColumn(const std::string& path,
                                            const std::string& column) {
  SSJOIN_ASSIGN_OR_RETURN(engine::Table table, engine::ReadCsvFile(path));
  SSJOIN_ASSIGN_OR_RETURN(size_t col, table.schema().FieldIndex(column));
  std::vector<std::string> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(table.GetValue(col, r).ToString());
  }
  return out;
}

Result<simjoin::JoinExecution> ParseAlgorithm(const std::string& name) {
  simjoin::JoinExecution exec;
  if (name == "basic") {
    exec.algorithm = core::SSJoinAlgorithm::kBasic;
  } else if (name == "inverted-index") {
    exec.algorithm = core::SSJoinAlgorithm::kInvertedIndex;
  } else if (name == "prefix-filter") {
    exec.algorithm = core::SSJoinAlgorithm::kPrefixFilter;
  } else if (name == "inline") {
    exec.algorithm = core::SSJoinAlgorithm::kPrefixFilterInline;
  } else if (name == "cost") {
    exec.use_cost_model = true;
  } else {
    return Status::Invalid("unknown algorithm '" + name + "'");
  }
  return exec;
}

Result<int> RunJoin(const Args& args) {
  auto left_path = args.flags.find("left");
  auto left_col = args.flags.find("left-col");
  if (left_path == args.flags.end() || left_col == args.flags.end()) {
    return Status::Invalid("--left and --left-col are required");
  }
  SSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> left,
                          LoadColumn(left_path->second, left_col->second));
  bool self_join = args.flags.find("right") == args.flags.end();
  std::vector<std::string> right_storage;
  if (!self_join) {
    auto right_col = args.flags.find("right-col");
    std::string col = right_col == args.flags.end() ? left_col->second
                                                    : right_col->second;
    SSJOIN_ASSIGN_OR_RETURN(right_storage,
                            LoadColumn(args.flags.at("right"), col));
  }
  const std::vector<std::string>& right = self_join ? left : right_storage;

  std::string sim = FlagOr(args, "sim", "jaccard");
  double threshold = std::atof(FlagOr(args, "threshold", "0.8").c_str());
  size_t q = static_cast<size_t>(std::atoi(FlagOr(args, "q", "3").c_str()));
  SSJOIN_ASSIGN_OR_RETURN(simjoin::JoinExecution exec,
                          ParseAlgorithm(FlagOr(args, "algorithm", "inline")));
  exec.exec.num_threads =
      static_cast<size_t>(std::atoi(FlagOr(args, "threads", "1").c_str()));
  size_t morsel =
      static_cast<size_t>(std::atoi(FlagOr(args, "morsel", "0").c_str()));
  if (morsel > 0) exec.exec.morsel_size = morsel;

  simjoin::SimJoinStats stats;
  Result<std::vector<simjoin::MatchPair>> result =
      Status::Invalid("unreachable");
  if (sim == "jaccard") {
    result = simjoin::JaccardResemblanceJoin(left, right, threshold, {}, exec,
                                             &stats);
  } else if (sim == "containment") {
    result = simjoin::JaccardContainmentJoin(left, right, threshold, {}, exec,
                                             &stats);
  } else if (sim == "cosine") {
    result = simjoin::CosineJoin(left, right, threshold, {}, exec, &stats);
  } else if (sim == "edit") {
    result = simjoin::EditSimilarityJoin(left, right, threshold, q, exec, &stats);
  } else if (sim == "ges") {
    simjoin::GESJoinOptions opts;
    opts.exec = exec;
    result = simjoin::GESJoin(left, right, threshold, opts, &stats);
  } else if (sim == "soundex") {
    result = simjoin::SoundexJoin(left, right, exec, &stats);
  } else {
    return Status::Invalid("unknown similarity '" + sim + "'");
  }
  SSJOIN_ASSIGN_OR_RETURN(std::vector<simjoin::MatchPair> matches,
                          std::move(result));

  // Assemble the output table.
  engine::Table out{engine::Schema({{"left_index", engine::DataType::kInt64},
                                    {"right_index", engine::DataType::kInt64},
                                    {"left_value", engine::DataType::kString},
                                    {"right_value", engine::DataType::kString},
                                    {"similarity", engine::DataType::kFloat64}})};
  for (const auto& m : matches) {
    if (self_join && m.r >= m.s) continue;  // one direction, no self-pairs
    SSJOIN_RETURN_NOT_OK(out.AppendRow({static_cast<int64_t>(m.r),
                                        static_cast<int64_t>(m.s), left[m.r],
                                        right[m.s], m.similarity}));
  }

  std::fprintf(stderr,
               "%zu x %zu input, %zu match pairs (%zu emitted); "
               "SSJoin candidates %zu, UDF verifications %zu\n",
               left.size(), right.size(), matches.size(), out.num_rows(),
               stats.ssjoin.candidate_pairs, stats.verifier_calls);
  for (const auto& [phase, ms] : stats.phases.phases()) {
    std::fprintf(stderr, "  %-14s %10.1f ms\n", phase.c_str(), ms);
  }

  auto out_path = args.flags.find("out");
  if (out_path != args.flags.end()) {
    SSJOIN_RETURN_NOT_OK(engine::WriteCsvFile(out, out_path->second));
    std::fprintf(stderr, "wrote %s\n", out_path->second.c_str());
  } else {
    size_t max_print =
        static_cast<size_t>(std::atoi(FlagOr(args, "max-print", "20").c_str()));
    std::printf("%s", out.ToString(max_print).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command != "join") return Usage();
  Result<int> rc = RunJoin(args);
  if (!rc.ok()) {
    std::fprintf(stderr, "error: %s\n", rc.status().ToString().c_str());
    return 1;
  }
  return *rc;
}
