/// ssjoin_cli — similarity joins over CSV files from the command line.
///
/// Examples:
///   # fuzzy self-join (dedup candidates) on the 'name' column
///   ssjoin_cli join --left customers.csv --left-col name
///                   --sim jaccard --threshold 0.8 --out matches.csv
///
///   # join two tables on edit similarity of addresses
///   ssjoin_cli join --left a.csv --left-col addr --right b.csv
///                   --right-col address --sim edit --threshold 0.85
///
///   # build a fuzzy-match snapshot, then look queries up against it
///   ssjoin_cli snapshot --reference orgs.csv --col name --out orgs.snap
///   ssjoin_cli lookup --snapshot orgs.snap --query "Mcrosoft Corp" --k 3
///
///   # query a running ssjoin_served instance over its unix socket
///   ssjoin_cli lookup --socket /tmp/ssjoin.sock --query "Mcrosoft Corp"
///   ssjoin_cli lookup --socket /tmp/ssjoin.sock --stats
///
/// Similarity functions: jaccard (resemblance, word tokens, IDF),
/// containment, cosine, edit (edit similarity, 3-grams), ges, soundex.
/// Algorithms: basic, inverted-index, prefix-filter, inline (default),
/// approx (MinHash-LSH candidate tier, see --target-recall), hybrid
/// (route frequent-token-heavy inputs to approx), cost.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "approx/approx_ssjoin.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/ssjoin.h"
#include "engine/csv.h"
#include "exec/metrics.h"
#include "filter/attr.h"
#include "filter/metrics.h"
#include "filter/predicate.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "simjoin/fuzzy_match.h"
#include "simjoin/ges_join.h"
#include "simjoin/string_joins.h"

namespace {

using namespace ssjoin;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2 && argv[1][0] != '-') args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) continue;
    flag = flag.substr(2);
    // --flag=value binds tighter than the lookahead form, so "--threads=abc"
    // reaches the checked parser instead of becoming a flag named
    // "threads=abc" that silently falls back to the default.
    if (size_t eq = flag.find('='); eq != std::string::npos) {
      args.flags[flag.substr(0, eq)] = flag.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[flag] = argv[++i];
    } else {
      args.flags[flag] = "true";
    }
  }
  return args;
}

std::string FlagOr(const Args& args, const std::string& name,
                   const std::string& fallback) {
  auto it = args.flags.find(name);
  return it == args.flags.end() ? fallback : it->second;
}

/// Checked flag accessors: absent flags fall back, present flags must parse
/// completely (`--threads=abc` and `--threads -1` are loud errors, not 0 or
/// a wrapped size_t).
Result<size_t> SizeFlag(const Args& args, const std::string& name,
                        size_t fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  Result<uint64_t> v = ParseUint64(it->second);
  if (!v.ok()) {
    return Status::Invalid("--" + name + ": " + v.status().message());
  }
  return static_cast<size_t>(*v);
}

Result<double> DoubleFlag(const Args& args, const std::string& name,
                          double fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  Result<double> v = ParseDouble(it->second);
  if (!v.ok()) {
    return Status::Invalid("--" + name + ": " + v.status().message());
  }
  return *v;
}

/// --filter JSON: a boolean attribute predicate on lookups, e.g.
/// '{"state": ["CA", "WA"], "!tier": [1]}' (a leading '!' negates the
/// conjunct). Parsed with the same strict wire grammar ssjoin_served uses,
/// so a typo fails here rather than at the server.
Result<filter::FilterPredicate> FilterFlag(const Args& args) {
  auto it = args.flags.find("filter");
  if (it == args.flags.end()) return filter::FilterPredicate{};
  auto parsed = serve::ParseJsonRequest("{\"filter\": " + it->second + "}");
  if (!parsed.ok()) {
    return Status::Invalid("--filter: " + parsed.status().message());
  }
  auto f = parsed->find("filter");
  if (f == parsed->end() || !f->second.is_object) {
    return Status::Invalid(
        "--filter must be a JSON object of attribute conjuncts, e.g. "
        "'{\"state\": [\"CA\"], \"!tier\": [1]}'");
  }
  auto predicate = serve::FilterFromWire(f->second);
  if (!predicate.ok()) {
    return Status::Invalid("--filter: " + predicate.status().message());
  }
  return *predicate;
}

/// --attrs JSON: structured attributes attached on upsert, e.g.
/// '{"state": "CA", "tier": 3}'. Values must be strings or integers;
/// names and string values reject NUL / raw control bytes client-side,
/// the same rule the server enforces.
Result<filter::AttrSet> AttrsFlag(const Args& args) {
  auto it = args.flags.find("attrs");
  if (it == args.flags.end()) return filter::AttrSet{};
  auto parsed = serve::ParseJsonRequest("{\"attrs\": " + it->second + "}");
  if (!parsed.ok()) {
    return Status::Invalid("--attrs: " + parsed.status().message());
  }
  auto a = parsed->find("attrs");
  if (a == parsed->end() || !a->second.is_object) {
    return Status::Invalid(
        "--attrs must be a JSON object of name -> string|int values, e.g. "
        "'{\"state\": \"CA\", \"tier\": 3}'");
  }
  auto attrs = serve::AttrsFromWire(a->second);
  if (!attrs.ok()) {
    return Status::Invalid("--attrs: " + attrs.status().message());
  }
  return *attrs;
}

/// --stats-json PATH: dumps the global metric registry as NDJSON after the
/// command ran (one {"metric": ...} object per line).
Status MaybeWriteStatsJson(const Args& args) {
  auto it = args.flags.find("stats-json");
  if (it == args.flags.end()) return Status::OK();
  std::FILE* f = std::fopen(it->second.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write --stats-json file '" + it->second + "'");
  }
  std::string ndjson = obs::Registry::Global().ToNdjson();
  std::fwrite(ndjson.data(), 1, ndjson.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", it->second.c_str());
  return Status::OK();
}

int Usage() {
  std::fprintf(stderr,
               "usage: ssjoin_cli join --left FILE --left-col COL "
               "[--right FILE --right-col COL]\n"
               "                  [--sim jaccard|containment|cosine|edit|ges|"
               "soundex] [--threshold A]\n"
               "                  [--algorithm basic|inverted-index|"
               "prefix-filter|inline|approx|hybrid|cost]\n"
               "                  [--target-recall R] [--threads N] [--morsel N]\n"
               "                  [--q N] [--out FILE] [--max-print N]\n"
               "                  [--stats-json FILE] "
               "[--kernel scalar|gallop|simd|auto]\n"
               "  --kernel T    intersection kernel tier for hot loops "
               "(default auto;\n"
               "                also via the SSJOIN_KERNEL env var; all tiers "
               "are bit-identical)\n"
               "  --threads N   worker threads for the SSJoin + verify stages"
               " (default 1;\n"
               "                0 = one per hardware thread)\n"
               "  --morsel N    scheduler work-unit size in groups/pairs "
               "(default 2048)\n"
               "  --target-recall R  recall target in (0, 1] of the approx/"
               "hybrid tiers\n"
               "                (default 0.9; exact algorithms ignore it)\n"
               "\n"
               "       ssjoin_cli snapshot --reference FILE --col COL --out SNAP\n"
               "                  [--alpha A] [--qgrams Q]\n"
               "           build a FuzzyMatchIndex and save it as a binary "
               "snapshot\n"
               "\n"
               "       ssjoin_cli lookup (--snapshot SNAP | --reference FILE "
               "--col COL | --socket PATH)\n"
               "                  [--query STR] [--k N] [--alpha A] "
               "[--deadline-ms D]\n"
               "                  [--target-recall R] [--filter JSON]\n"
               "                  [--stats] [--metrics] [--ping] [--shutdown]\n"
               "                  [--stats-json FILE]\n"
               "           top-k fuzzy lookups, in-process or against a running\n"
               "           ssjoin_served; without --query, queries are read from "
               "stdin\n"
               "  --filter JSON  attribute predicate, e.g. "
               "'{\"state\": [\"CA\"], \"!tier\": [1]}';\n"
               "                a leading '!' on a name negates that conjunct "
               "(NOT-IN)\n"
               "  --stats-json FILE  dump this process's metric registry as "
               "NDJSON\n"
               "  --metrics          fetch the server's metric registry as "
               "NDJSON (with --socket)\n"
               "\n"
               "       ssjoin_cli upsert --socket PATH --id N --value STR "
               "[--attrs JSON]\n"
               "  --attrs JSON  structured attributes on the doc, e.g. "
               "'{\"state\": \"CA\", \"tier\": 3}'\n"
               "       ssjoin_cli delete --socket PATH --id N\n"
               "       ssjoin_cli compact --socket PATH\n"
               "       ssjoin_cli seal --socket PATH\n"
               "           mutate a running ssjoin_served's index; each op\n"
               "           publishes (and prints) a new index epoch. Against a\n"
               "           coordinator, upsert/delete route to the owner shard\n"
               "           and seal/compact broadcast to every shard\n"
               "\n"
               "       ssjoin_cli epoch --socket PATH\n"
               "           print the index epoch (cluster epoch on a "
               "coordinator)\n"
               "       ssjoin_cli resync --socket PATH\n"
               "           coordinator only: rebuild every shard's global IDF\n"
               "           statistics from a full cluster dump (run after a\n"
               "           shard process restart)\n"
               "       ssjoin_cli sync --socket PATH\n"
               "           follower only: force a replication round against "
               "the leader\n");
  return 2;
}

Result<std::vector<std::string>> LoadColumn(const std::string& path,
                                            const std::string& column) {
  SSJOIN_ASSIGN_OR_RETURN(engine::Table table, engine::ReadCsvFile(path));
  SSJOIN_ASSIGN_OR_RETURN(size_t col, table.schema().FieldIndex(column));
  std::vector<std::string> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(table.GetValue(col, r).ToString());
  }
  return out;
}

/// --kernel scalar|gallop|simd|auto: pins the intersection kernel tier for
/// the whole process (default: auto, or the SSJOIN_KERNEL env var). Unknown
/// names fail loudly, like --algorithm.
Status ApplyKernelFlag(const Args& args) {
  SSJOIN_RETURN_NOT_OK(kernels::InitFromEnv());
  auto it = args.flags.find("kernel");
  if (it == args.flags.end()) return Status::OK();
  SSJOIN_ASSIGN_OR_RETURN(kernels::Tier tier, kernels::ParseTier(it->second));
  return kernels::SetTier(tier);
}

Result<simjoin::JoinExecution> ParseAlgorithm(const std::string& name) {
  simjoin::JoinExecution exec;
  if (name == "basic") {
    exec.algorithm = core::SSJoinAlgorithm::kBasic;
  } else if (name == "inverted-index") {
    exec.algorithm = core::SSJoinAlgorithm::kInvertedIndex;
  } else if (name == "prefix-filter") {
    exec.algorithm = core::SSJoinAlgorithm::kPrefixFilter;
  } else if (name == "inline") {
    exec.algorithm = core::SSJoinAlgorithm::kPrefixFilterInline;
  } else if (name == "approx") {
    exec.algorithm = core::SSJoinAlgorithm::kApprox;
  } else if (name == "hybrid") {
    exec.algorithm = core::SSJoinAlgorithm::kHybrid;
  } else if (name == "cost") {
    exec.use_cost_model = true;
  } else {
    return Status::Invalid(
        "unknown algorithm '" + name +
        "' (valid: basic, inverted-index, prefix-filter, inline, approx, "
        "hybrid, cost)");
  }
  return exec;
}

Result<int> RunJoin(const Args& args) {
  auto left_path = args.flags.find("left");
  auto left_col = args.flags.find("left-col");
  if (left_path == args.flags.end() || left_col == args.flags.end()) {
    return Status::Invalid("--left and --left-col are required");
  }
  SSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> left,
                          LoadColumn(left_path->second, left_col->second));
  bool self_join = args.flags.find("right") == args.flags.end();
  std::vector<std::string> right_storage;
  if (!self_join) {
    auto right_col = args.flags.find("right-col");
    std::string col = right_col == args.flags.end() ? left_col->second
                                                    : right_col->second;
    SSJOIN_ASSIGN_OR_RETURN(right_storage,
                            LoadColumn(args.flags.at("right"), col));
  }
  const std::vector<std::string>& right = self_join ? left : right_storage;

  std::string sim = FlagOr(args, "sim", "jaccard");
  SSJOIN_ASSIGN_OR_RETURN(double threshold, DoubleFlag(args, "threshold", 0.8));
  SSJOIN_ASSIGN_OR_RETURN(size_t q, SizeFlag(args, "q", 3));
  SSJOIN_ASSIGN_OR_RETURN(simjoin::JoinExecution exec,
                          ParseAlgorithm(FlagOr(args, "algorithm", "inline")));
  SSJOIN_ASSIGN_OR_RETURN(exec.approx.target_recall,
                          DoubleFlag(args, "target-recall", 0.9));
  if (!(exec.approx.target_recall > 0.0) || exec.approx.target_recall > 1.0) {
    return Status::Invalid("--target-recall must be in (0, 1]");
  }
  SSJOIN_ASSIGN_OR_RETURN(exec.exec.num_threads, SizeFlag(args, "threads", 1));
  SSJOIN_ASSIGN_OR_RETURN(size_t morsel, SizeFlag(args, "morsel", 0));
  if (morsel > 0) exec.exec.morsel_size = morsel;

  simjoin::SimJoinStats stats;
  Result<std::vector<simjoin::MatchPair>> result =
      Status::Invalid("unreachable");
  if (sim == "jaccard") {
    result = simjoin::JaccardResemblanceJoin(left, right, threshold, {}, exec,
                                             &stats);
  } else if (sim == "containment") {
    result = simjoin::JaccardContainmentJoin(left, right, threshold, {}, exec,
                                             &stats);
  } else if (sim == "cosine") {
    result = simjoin::CosineJoin(left, right, threshold, {}, exec, &stats);
  } else if (sim == "edit") {
    result = simjoin::EditSimilarityJoin(left, right, threshold, q, exec, &stats);
  } else if (sim == "ges") {
    simjoin::GESJoinOptions opts;
    opts.exec = exec;
    result = simjoin::GESJoin(left, right, threshold, opts, &stats);
  } else if (sim == "soundex") {
    result = simjoin::SoundexJoin(left, right, exec, &stats);
  } else {
    return Status::Invalid("unknown similarity '" + sim + "'");
  }
  SSJOIN_ASSIGN_OR_RETURN(std::vector<simjoin::MatchPair> matches,
                          std::move(result));

  // Assemble the output table.
  engine::Table out{engine::Schema({{"left_index", engine::DataType::kInt64},
                                    {"right_index", engine::DataType::kInt64},
                                    {"left_value", engine::DataType::kString},
                                    {"right_value", engine::DataType::kString},
                                    {"similarity", engine::DataType::kFloat64}})};
  for (const auto& m : matches) {
    if (self_join && m.r >= m.s) continue;  // one direction, no self-pairs
    SSJOIN_RETURN_NOT_OK(out.AppendRow({static_cast<int64_t>(m.r),
                                        static_cast<int64_t>(m.s), left[m.r],
                                        right[m.s], m.similarity}));
  }

  std::fprintf(stderr,
               "%zu x %zu input, %zu match pairs (%zu emitted); "
               "SSJoin candidates %zu, UDF verifications %zu\n",
               left.size(), right.size(), matches.size(), out.num_rows(),
               stats.ssjoin.candidate_pairs, stats.verifier_calls);
  for (const auto& [phase, ms] : stats.phases.phases()) {
    std::fprintf(stderr, "  %-14s %10.1f ms\n", phase.c_str(), ms);
  }

  auto out_path = args.flags.find("out");
  if (out_path != args.flags.end()) {
    SSJOIN_RETURN_NOT_OK(engine::WriteCsvFile(out, out_path->second));
    std::fprintf(stderr, "wrote %s\n", out_path->second.c_str());
  } else {
    SSJOIN_ASSIGN_OR_RETURN(size_t max_print, SizeFlag(args, "max-print", 20));
    std::printf("%s", out.ToString(max_print).c_str());
  }
  SSJOIN_RETURN_NOT_OK(MaybeWriteStatsJson(args));
  return 0;
}

Result<simjoin::FuzzyMatchIndex> BuildFuzzyIndex(const Args& args) {
  auto ref = args.flags.find("reference");
  auto col = args.flags.find("col");
  if (ref == args.flags.end() || col == args.flags.end()) {
    return Status::Invalid("--reference and --col are required");
  }
  SSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> reference,
                          LoadColumn(ref->second, col->second));
  simjoin::FuzzyMatchIndex::Options options;
  SSJOIN_ASSIGN_OR_RETURN(options.alpha, DoubleFlag(args, "alpha", 0.5));
  if (args.flags.count("qgrams") > 0) {
    options.word_tokens = false;
    SSJOIN_ASSIGN_OR_RETURN(options.q, SizeFlag(args, "qgrams", 3));
  }
  return simjoin::FuzzyMatchIndex::Build(reference, options);
}

Result<int> RunSnapshot(const Args& args) {
  auto out = args.flags.find("out");
  if (out == args.flags.end()) {
    return Status::Invalid("--out SNAP is required");
  }
  Timer build_timer;
  SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex index, BuildFuzzyIndex(args));
  double build_ms = build_timer.ElapsedMillis();
  Timer save_timer;
  SSJOIN_RETURN_NOT_OK(serve::SaveSnapshot(index, out->second));
  std::fprintf(stderr,
               "snapshot %s: %zu reference strings, %zu dictionary elements; "
               "built in %.1f ms, saved in %.1f ms\n",
               out->second.c_str(), index.size(),
               index.dictionary().num_elements(), build_ms,
               save_timer.ElapsedMillis());
  return 0;
}

Result<int> ConnectToServer(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::Invalid("socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("cannot connect to '" + path + "'");
  }
  return fd;
}

Status SendLine(int fd, const std::string& line) {
  std::string request = line + "\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) return Status::IOError("short write to server");
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads one '\n'-terminated line; bytes past the newline stay in *buffer
/// for the next call.
Result<std::string> ReadLine(int fd, std::string* buffer) {
  char chunk[4096];
  size_t newline;
  while ((newline = buffer->find('\n')) == std::string::npos) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      return Status::IOError("server closed connection without a response");
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  std::string line = buffer->substr(0, newline);
  buffer->erase(0, newline + 1);
  return line;
}

/// One round trip on a connected ssjoin_served socket: send `line`, print
/// the server's response line to stdout.
Result<int> SocketRoundTrip(const std::string& path, const std::string& line) {
  SSJOIN_ASSIGN_OR_RETURN(int fd, ConnectToServer(path));
  Status sent = SendLine(fd, line);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  std::string buffer;
  Result<std::string> response = ReadLine(fd, &buffer);
  ::close(fd);
  SSJOIN_RETURN_NOT_OK(response.status());
  std::printf("%s\n", response->c_str());
  // Reflect server-side failure in the exit code.
  auto parsed = serve::ParseJsonObject(*response);
  if (parsed.ok()) {
    auto it = parsed->find("ok");
    if (it != parsed->end() && it->second.type == serve::JsonScalar::Type::kBool &&
        !it->second.boolean) {
      return 1;
    }
  }
  return 0;
}

/// The multi-line `metrics` op: the server replies with a header object
/// announcing how many NDJSON metric lines follow. Prints the metric lines
/// (not the header) so stdout is a clean NDJSON document.
Result<int> MetricsRoundTrip(const std::string& path) {
  SSJOIN_ASSIGN_OR_RETURN(int fd, ConnectToServer(path));
  std::string buffer;
  Result<int> rc = [&]() -> Result<int> {
    SSJOIN_RETURN_NOT_OK(SendLine(fd, "{\"op\": \"metrics\"}"));
    SSJOIN_ASSIGN_OR_RETURN(std::string header, ReadLine(fd, &buffer));
    SSJOIN_ASSIGN_OR_RETURN(auto parsed, serve::ParseJsonObject(header));
    auto ok = parsed.find("ok");
    if (ok == parsed.end() || ok->second.type != serve::JsonScalar::Type::kBool ||
        !ok->second.boolean) {
      std::printf("%s\n", header.c_str());
      return 1;
    }
    auto count = parsed.find("metrics");
    if (count == parsed.end() ||
        count->second.type != serve::JsonScalar::Type::kNumber ||
        count->second.num < 0) {
      return Status::IOError("malformed metrics header: " + header);
    }
    for (size_t i = 0; i < static_cast<size_t>(count->second.num); ++i) {
      SSJOIN_ASSIGN_OR_RETURN(std::string line, ReadLine(fd, &buffer));
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }();
  ::close(fd);
  return rc;
}

Result<int> RunRemoteLookup(const Args& args, const std::string& socket_path) {
  if (args.flags.count("metrics") > 0) {
    return MetricsRoundTrip(socket_path);
  }
  if (args.flags.count("stats") > 0) {
    return SocketRoundTrip(socket_path, "{\"op\": \"stats\"}");
  }
  if (args.flags.count("ping") > 0) {
    return SocketRoundTrip(socket_path, "{\"op\": \"ping\"}");
  }
  if (args.flags.count("shutdown") > 0) {
    return SocketRoundTrip(socket_path, "{\"op\": \"shutdown\"}");
  }
  auto query = args.flags.find("query");
  if (query == args.flags.end()) {
    return Status::Invalid(
        "--query (or --stats/--metrics/--ping/--shutdown) is required with "
        "--socket");
  }
  // Validate numeric flags client-side so a typo'd --k never reaches the
  // wire as malformed JSON.
  SSJOIN_ASSIGN_OR_RETURN(size_t k, SizeFlag(args, "k", 3));
  std::string request = "{\"op\": \"lookup\", \"query\": \"" +
                        serve::JsonEscape(query->second) +
                        "\", \"k\": " + std::to_string(k);
  if (args.flags.count("deadline-ms") > 0) {
    SSJOIN_ASSIGN_OR_RETURN(size_t deadline, SizeFlag(args, "deadline-ms", 0));
    request += ", \"deadline_ms\": " + std::to_string(deadline);
  }
  if (args.flags.count("target-recall") > 0) {
    SSJOIN_ASSIGN_OR_RETURN(double target,
                            DoubleFlag(args, "target-recall", 1.0));
    if (!(target > 0.0) || target > 1.0) {
      return Status::Invalid("--target-recall must be in (0, 1]");
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", target);
    request += std::string(", \"target_recall\": ") + buf;
  }
  SSJOIN_ASSIGN_OR_RETURN(filter::FilterPredicate filter, FilterFlag(args));
  if (!filter.empty()) {
    request += ", \"filter\": " + filter.CanonicalJson();
  }
  request += "}";
  return SocketRoundTrip(socket_path, request);
}

/// The socket-only mutation subcommands (upsert/delete/compact): one JSON
/// request, one JSON reply carrying the newly published epoch.
Result<int> RunMutation(const Args& args, const std::string& op) {
  auto socket_path = args.flags.find("socket");
  if (socket_path == args.flags.end()) {
    return Status::Invalid("--socket PATH is required for '" + op + "'");
  }
  std::string request = "{\"op\": \"" + op + "\"";
  if (op == "upsert" || op == "delete") {
    auto id = args.flags.find("id");
    if (id == args.flags.end()) {
      return Status::Invalid("--id N is required for '" + op + "'");
    }
    SSJOIN_ASSIGN_OR_RETURN(uint64_t doc_id, ParseUint64(id->second));
    request += ", \"id\": " + std::to_string(doc_id);
  }
  if (op == "upsert") {
    auto value = args.flags.find("value");
    if (value == args.flags.end()) {
      return Status::Invalid("--value STR is required for 'upsert'");
    }
    request += ", \"value\": \"" + serve::JsonEscape(value->second) + "\"";
    SSJOIN_ASSIGN_OR_RETURN(filter::AttrSet attrs, AttrsFlag(args));
    if (!attrs.empty()) {
      request += ", \"attrs\": " + serve::AttrsToJson(attrs);
    }
  }
  request += "}";
  return SocketRoundTrip(socket_path->second, request);
}

Result<int> RunLookup(const Args& args) {
  auto socket_path = args.flags.find("socket");
  if (socket_path != args.flags.end()) {
    return RunRemoteLookup(args, socket_path->second);
  }

  Result<simjoin::FuzzyMatchIndex> index_result = [&] {
    auto snap = args.flags.find("snapshot");
    if (snap != args.flags.end()) return serve::LoadSnapshot(snap->second);
    return BuildFuzzyIndex(args);
  }();
  SSJOIN_ASSIGN_OR_RETURN(simjoin::FuzzyMatchIndex index, std::move(index_result));
  SSJOIN_ASSIGN_OR_RETURN(size_t k, SizeFlag(args, "k", 3));
  SSJOIN_ASSIGN_OR_RETURN(filter::FilterPredicate filter, FilterFlag(args));

  auto print_matches = [&](const std::string& query) {
    auto matches = index.Lookup(query, k, filter);
    for (const auto& m : matches) {
      std::printf("%u\t%.6f\t%s\n", m.ref_index, m.similarity,
                  index.reference(m.ref_index).c_str());
    }
    if (matches.empty()) {
      std::fprintf(stderr, "no match above alpha=%.2f for '%s'\n",
                   index.options().alpha, query.c_str());
    }
  };

  auto query = args.flags.find("query");
  if (query != args.flags.end()) {
    print_matches(query->second);
    SSJOIN_RETURN_NOT_OK(MaybeWriteStatsJson(args));
    return 0;
  }
  // Without --query, serve stdin line by line (one query per line).
  char line[4096];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string q(line);
    while (!q.empty() && (q.back() == '\n' || q.back() == '\r')) q.pop_back();
    if (!q.empty()) print_matches(q);
  }
  SSJOIN_RETURN_NOT_OK(MaybeWriteStatsJson(args));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pre-create the core/exec/approx metric names so --stats-json output
  // covers the full set even for commands that never touch a layer.
  core::RegisterCoreMetrics();
  exec::RegisterExecMetrics();
  approx::RegisterApproxMetrics();
  kernels::RegisterKernelMetrics();
  filter::RegisterFilterMetrics();
  Args args = ParseArgs(argc, argv);
  if (Status st = ApplyKernelFlag(args); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<int> rc = Status::Invalid("unreachable");
  if (args.command == "join") {
    rc = RunJoin(args);
  } else if (args.command == "snapshot") {
    rc = RunSnapshot(args);
  } else if (args.command == "lookup") {
    rc = RunLookup(args);
  } else if (args.command == "upsert" || args.command == "delete" ||
             args.command == "compact" || args.command == "seal" ||
             args.command == "resync" || args.command == "sync" ||
             args.command == "epoch") {
    rc = RunMutation(args, args.command);
  } else {
    return Usage();
  }
  if (!rc.ok()) {
    std::fprintf(stderr, "error: %s\n", rc.status().ToString().c_str());
    return 1;
  }
  return *rc;
}
