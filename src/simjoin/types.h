#ifndef SSJOIN_SIMJOIN_TYPES_H_
#define SSJOIN_SIMJOIN_TYPES_H_

#include <cstdint>
#include <vector>

#include "approx/params.h"
#include "common/timer.h"
#include "core/ssjoin.h"
#include "exec/exec_context.h"

namespace ssjoin::simjoin {

/// \brief One output pair of a similarity join: indices into the two input
/// collections plus the exact similarity (or negated distance for
/// distance-based joins, so that larger is always more similar).
struct MatchPair {
  uint32_t r;
  uint32_t s;
  double similarity;

  bool operator==(const MatchPair& other) const {
    return r == other.r && s == other.s;
  }
};

/// \brief End-to-end statistics for a similarity join built on SSJoin
/// (Figure 2's pipeline), including the quantities the paper reports:
/// phase breakdown (Prep / Prefix-filter / SSJoin / Filter, Figures 10-13)
/// and the number of exact-similarity verifier invocations (Table 1).
struct SimJoinStats {
  core::SSJoinStats ssjoin;
  /// Number of exact similarity-function (UDF) evaluations in the final
  /// filter step. This is the "#edit comparisons" column of Table 1.
  size_t verifier_calls = 0;
  size_t result_pairs = 0;
  /// Pipeline phases: "Prep" (string→set conversion), "Prefix-filter",
  /// "SSJoin", "Filter" (the UDF post-check).
  PhaseTimer phases;
};

/// \brief Common execution knobs shared by all similarity joins.
struct JoinExecution {
  /// Physical SSJoin implementation to use.
  core::SSJoinAlgorithm algorithm = core::SSJoinAlgorithm::kPrefixFilterInline;
  /// If true, ignore `algorithm` and let the cost model pick (§7).
  bool use_cost_model = false;
  /// Parallel-runtime knobs (src/exec): thread count and morsel size for the
  /// SSJoin stage and the UDF verification loop. Defaults to serial.
  exec::ExecContext exec;
  /// Knobs of the approximate tier (src/approx), consulted when `algorithm`
  /// is kApprox or kHybrid; ignored by the exact algorithms.
  approx::ApproxParams approx;
};

/// Sorts match pairs by (r, s).
void SortMatches(std::vector<MatchPair>* matches);

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_TYPES_H_
