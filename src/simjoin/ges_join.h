#ifndef SSJOIN_SIMJOIN_GES_JOIN_H_
#define SSJOIN_SIMJOIN_GES_JOIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "simjoin/types.h"

namespace ssjoin::simjoin {

/// Options for the generalized-edit-similarity join (§3.3).
struct GESJoinOptions {
  /// The paper's beta (< alpha): tokens within edit similarity
  /// `token_sim_threshold` of a set token are added to the expanded set.
  double token_sim_threshold = 0.6;
  /// q-gram size for the *token-level* edit-similarity join used to find
  /// similar tokens in the dictionary (a recursive use of SSJoin).
  size_t token_q = 2;
  /// Extra margin subtracted from the SSJoin threshold
  /// `1 - (1-alpha)/(1-beta)` (see ges_join.cc for the derivation); absorbs
  /// weight skew between near-duplicate tokens. Raise to loosen candidate
  /// generation further.
  double slack = 0.1;
  JoinExecution exec;
};

/// \brief Generalized-edit-similarity join (§3.3, after [4]): pairs with
/// `GES(r, s) >= alpha`, where GES is the token-level weighted edit
/// similarity of Definition 6.
///
/// Pipeline (Example 4's intuition): word-tokenize, expand each R set with
/// all dictionary tokens whose edit similarity to a set token is at least
/// `token_sim_threshold` (found via a recursive edit-similarity SSJoin over
/// the token vocabulary), run SSJoin with the 1-sided predicate
/// `Overlap >= (1 - (1-alpha)/(1-beta) - slack) * wt(Set(r))` (a sharpening
/// of the paper's "overlap must be higher than alpha - beta" sketch; the
/// derivation is in ges_join.cc), and
/// verify candidates with the exact GES UDF.
///
/// The expansion-side weight model is the paper's admitted simplification
/// point ("the details are intricate... we omit the details"); like the
/// paper we treat the SSJoin stage as a high-recall candidate generator and
/// rely on the exact UDF for precision. Tests check recall empirically
/// against the brute-force join.
Result<std::vector<MatchPair>> GESJoin(const std::vector<std::string>& r,
                                       const std::vector<std::string>& s,
                                       double alpha, const GESJoinOptions& opts = {},
                                       SimJoinStats* stats = nullptr);

/// \brief Brute-force GES join (every pair through the exact UDF), for
/// correctness testing and the cross-product strawman benchmarks.
Result<std::vector<MatchPair>> GESJoinBruteForce(const std::vector<std::string>& r,
                                                 const std::vector<std::string>& s,
                                                 double alpha,
                                                 SimJoinStats* stats = nullptr);

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_GES_JOIN_H_
