#include "simjoin/fuzzy_match.h"

#include <algorithm>
#include <cmath>

#include "core/predicate.h"
#include "core/prefix_filter.h"
#include "filter/metrics.h"
#include "kernels/kernels.h"
#include "sim/set_overlap.h"
#include "text/weights.h"

namespace ssjoin::simjoin {

Result<FuzzyMatchIndex> FuzzyMatchIndex::Build(
    const std::vector<std::string>& reference, const Options& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::Invalid("alpha must be in (0, 1]");
  }
  FuzzyMatchIndex index;
  index.options_ = options;
  index.reference_ = reference;
  if (options.word_tokens) {
    index.tokenizer_ = std::make_unique<text::WordTokenizer>();
  } else {
    index.tokenizer_ = std::make_unique<text::QGramTokenizer>(options.q);
  }

  std::vector<std::vector<text::TokenId>> docs;
  docs.reserve(reference.size());
  for (const std::string& s : reference) {
    docs.push_back(index.dict_.EncodeDocument(index.tokenizer_->Tokenize(s)));
  }
  text::IdfWeights idf(index.dict_);
  index.weights_ = core::MaterializeWeights(index.dict_, idf);
  // Quantize so weighted-set sums are exact and order-independent; without
  // this, two indexes over the same records but different token-id numbering
  // (e.g. a mutable index vs. a rebuild) could differ in the last ulp.
  for (double& w : index.weights_) w = text::QuantizeWeight(w);
  // Weight assumed for query tokens absent from the reference: that of a
  // token occurring in a single reference record.
  index.unseen_token_weight_ = text::QuantizeWeight(
      std::log(std::max<double>(2.0, static_cast<double>(index.dict_.num_documents()))));
  // Tie-keyed by element content so the order — and with it every prefix —
  // is independent of token-id numbering. A MutableFuzzyIndex over the same
  // logical records replicates this order from its own (differently
  // numbered) dictionary, which is what makes its lookups bit-identical to
  // a from-scratch rebuild.
  std::vector<uint64_t> tie_keys(index.dict_.num_elements());
  for (text::TokenId id = 0; id < tie_keys.size(); ++id) {
    tie_keys[id] = index.dict_.KeyHash(id);
  }
  index.order_ = core::ElementOrder::ByDecreasingWeightTieKeyed(index.weights_,
                                                                tie_keys);
  SSJOIN_ASSIGN_OR_RETURN(index.sets_,
                          core::BuildSetsRelation(std::move(docs), index.weights_));

  // Prefix-filter the reference (the S side of a 2-sided resemblance
  // predicate: required overlap alpha * wt(set)) and build the inverted
  // index over the surviving elements.
  core::OverlapPredicate pred =
      core::OverlapPredicate::TwoSidedNormalized(options.alpha);
  core::PrefixFilteredRelation pref = core::PrefixFilterRelation(
      index.sets_, index.weights_, index.order_, pred, core::JoinSide::kS);
  index.prefix_offsets_.assign(index.dict_.num_elements() + 1, 0);
  for (text::TokenId e : pref.prefixes.token_ids()) {
    ++index.prefix_offsets_[e + 1];
  }
  for (size_t i = 1; i < index.prefix_offsets_.size(); ++i) {
    index.prefix_offsets_[i] += index.prefix_offsets_[i - 1];
  }
  index.prefix_postings_.resize(index.prefix_offsets_.back());
  std::vector<uint32_t> cursor(index.prefix_offsets_.begin(),
                               index.prefix_offsets_.end() - 1);
  for (core::GroupId g = 0; g < pref.prefixes.num_groups(); ++g) {
    for (text::TokenId e : pref.prefixes.elements(g)) {
      index.prefix_postings_[cursor[e]++] = g;
    }
  }
  index.attr_index_ =
      filter::AttrIndex::Empty(static_cast<uint32_t>(reference.size()));
  return index;
}

Result<FuzzyMatchIndex> FuzzyMatchIndex::FromParts(
    Options options, std::vector<std::string> reference,
    text::TokenDictionary dict, core::WeightVector weights,
    double unseen_token_weight, core::ElementOrder order, core::SetsRelation sets,
    std::vector<uint32_t> prefix_offsets,
    std::vector<core::GroupId> prefix_postings) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::Invalid("alpha must be in (0, 1]");
  }
  const size_t elements = dict.num_elements();
  const size_t groups = reference.size();
  if (weights.size() != elements) {
    return Status::Invalid("index parts: weight count != dictionary size");
  }
  if (order.num_elements() != elements) {
    return Status::Invalid("index parts: order size != dictionary size");
  }
  if (sets.num_groups() != groups || sets.norms.size() != groups ||
      sets.set_weights.size() != groups) {
    return Status::Invalid("index parts: sets relation size != reference size");
  }
  for (text::TokenId e : sets.store.token_ids()) {
    if (e >= elements) {
      return Status::Invalid("index parts: set element out of dictionary range");
    }
  }
  if (prefix_offsets.size() != elements + 1 || prefix_offsets.front() != 0 ||
      prefix_offsets.back() != prefix_postings.size()) {
    return Status::Invalid("index parts: prefix CSR layout inconsistent");
  }
  for (size_t i = 1; i < prefix_offsets.size(); ++i) {
    if (prefix_offsets[i] < prefix_offsets[i - 1]) {
      return Status::Invalid("index parts: prefix offsets not monotone");
    }
  }
  for (core::GroupId g : prefix_postings) {
    if (g >= groups) {
      return Status::Invalid("index parts: prefix posting out of group range");
    }
  }
  if (unseen_token_weight <= 0.0) {
    return Status::Invalid("index parts: unseen token weight must be positive");
  }
  FuzzyMatchIndex index;
  index.options_ = options;
  index.reference_ = std::move(reference);
  if (options.word_tokens) {
    index.tokenizer_ = std::make_unique<text::WordTokenizer>();
  } else {
    index.tokenizer_ = std::make_unique<text::QGramTokenizer>(options.q);
  }
  index.dict_ = std::move(dict);
  index.weights_ = std::move(weights);
  index.unseen_token_weight_ = unseen_token_weight;
  index.order_ = std::move(order);
  index.sets_ = std::move(sets);
  index.prefix_offsets_ = std::move(prefix_offsets);
  index.prefix_postings_ = std::move(prefix_postings);
  index.attr_index_ =
      filter::AttrIndex::Empty(static_cast<uint32_t>(index.reference_.size()));
  return index;
}

Status FuzzyMatchIndex::AssignAttributes(std::vector<filter::AttrSet> attrs) {
  if (!attrs.empty() && attrs.size() != reference_.size()) {
    return Status::Invalid(
        "attribute count does not match the reference table size");
  }
  attrs_ = std::move(attrs);
  attrs_.resize(reference_.size());
  attr_index_ = filter::AttrIndex::Build(attrs_);
  return Status::OK();
}

std::vector<FuzzyMatchIndex::Match> FuzzyMatchIndex::Lookup(const std::string& query,
                                                            size_t k) const {
  return Lookup(query, k, filter::FilterPredicate());
}

std::vector<FuzzyMatchIndex::Match> FuzzyMatchIndex::Lookup(
    const std::string& query, size_t k,
    const filter::FilterPredicate& filter) const {
  std::vector<Match> out;
  if (k == 0) return out;
  std::vector<std::string> tokens = tokenizer_->Tokenize(query);
  std::vector<text::TokenId> ids = dict_.EncodeDocumentReadOnly(tokens);
  // Split into known elements (sorted, unique) and count unseen ones.
  size_t unseen = 0;
  std::vector<text::TokenId> known;
  known.reserve(ids.size());
  for (text::TokenId id : ids) {
    if (id == text::kInvalidToken) {
      ++unseen;
    } else {
      known.push_back(id);
    }
  }
  sim::Canonicalize(&known);
  double query_weight = static_cast<double>(unseen) * unseen_token_weight_;
  for (text::TokenId id : known) query_weight += weights_[id];
  if (known.empty()) return out;

  // Probe with the query's prefix (the R side of the 2-sided predicate:
  // required overlap alpha * wt(query)).
  double beta = query_weight - options_.alpha * query_weight;
  std::vector<text::TokenId> prefix =
      core::ComputePrefix(known, weights_, order_, beta);

  std::vector<core::GroupId> candidates;
  for (text::TokenId e : prefix) {
    candidates.insert(candidates.end(), prefix_postings_.begin() + prefix_offsets_[e],
                      prefix_postings_.begin() + prefix_offsets_[e + 1]);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (!filter.empty()) {
    // Compose the predicate index with similarity candidate generation
    // BEFORE verification: only eligible groups pay the weighted-merge
    // verify cost. Dropping candidates never changes the surviving ones'
    // similarities, so this equals exact post-filtering bitwise.
    const filter::FilterCounters& fc = filter::FilterMetrics();
    fc.lookups->Add(1);
    fc.candidates_in->Add(candidates.size());
    filter::EligibleSet eligible = attr_index_.Eval(filter);
    eligible.FilterSorted(&candidates);
    fc.candidates_kept->Add(candidates.size());
  }

  // Verify: exact weighted resemblance against each candidate. The merge is
  // the shared kernel (same ascending accumulation order as the executors).
  for (core::GroupId g : candidates) {
    core::SetView ref_set = sets_.set(g);
    double overlap =
        kernels::IntersectWeighted(known, ref_set, weights_.data());
    double uni = query_weight + sets_.set_weights[g] - overlap;
    double jr = uni > 0.0 ? overlap / uni : 1.0;
    if (jr >= options_.alpha - 1e-12) out.push_back({g, jr});
  }

  // Top-K by similarity (ties by reference index for determinism).
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.ref_index < b.ref_index;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace ssjoin::simjoin
