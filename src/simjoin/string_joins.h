#ifndef SSJOIN_SIMJOIN_STRING_JOINS_H_
#define SSJOIN_SIMJOIN_STRING_JOINS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "simjoin/prep.h"
#include "simjoin/types.h"

namespace ssjoin::simjoin {

/// The similarity joins of Section 3, each following Figure 2's pipeline:
/// Prep (string -> normalized set), an SSJoin invocation whose predicate
/// guarantees a superset of the true result, and (where the reduction is not
/// exact) a final UDF filter with the exact similarity function.
///
/// All joins return pairs (r-index, s-index) over the input vectors. For a
/// self-join, pass the same vector twice and drop pairs with r >= s
/// downstream if only unordered distinct pairs are wanted.

/// \brief Edit-distance join (§3.1, Figure 3, after [9]): pairs with
/// `ED(r, s) <= max_distance`. SSJoin predicate from Property 4:
/// `Overlap(QGSet_q) >= max(norm_r, norm_s) - max_distance * q`
/// (with norm = |str| - q + 1 = the q-gram count), verified with a banded
/// edit-distance UDF. `similarity` in the output is -ED (larger = closer).
///
/// Exactness caveat (shared with the paper): the q-gram filter is a true
/// filter only while its bound is >= 1, i.e. for strings of length
/// >= max_distance * q + q. Shorter true matches sharing no q-gram are
/// missed — the paper's experiments (and ours) use thresholds where the
/// bound is positive.
Result<std::vector<MatchPair>> EditDistanceJoin(const std::vector<std::string>& r,
                                                const std::vector<std::string>& s,
                                                size_t max_distance, size_t q,
                                                const JoinExecution& exec = {},
                                                SimJoinStats* stats = nullptr);

/// \brief Edit-similarity join: pairs with `ES(r, s) >= alpha`
/// (Definition 2). The per-pair edit budget `(1-alpha)*max(|r|,|s|)` is
/// turned into the linear SSJoin conjuncts
///   Overlap >= k*norm_r + c  AND  Overlap >= k*norm_s + c,
/// with k = 1 - (1-alpha)*q and c = k*(q-1) - q + 1 (the Figure 3 predicate
/// expressed over both norms; their conjunction equals the max form).
/// Verified with the exact edit-similarity UDF.
Result<std::vector<MatchPair>> EditSimilarityJoin(const std::vector<std::string>& r,
                                                  const std::vector<std::string>& s,
                                                  double alpha, size_t q,
                                                  const JoinExecution& exec = {},
                                                  SimJoinStats* stats = nullptr);

/// Token/weight options shared by the set-based joins.
struct SetJoinOptions {
  /// If true, tokenize into words; otherwise into q-grams of size `q`.
  bool word_tokens = true;
  size_t q = 3;
  WeightMode weights = WeightMode::kIdf;
};

/// \brief Jaccard-containment join (§3.2, Figure 4 left):
/// pairs with `JC(r, s) = wt(r ∩ s)/wt(r) >= alpha`. The reduction to
/// SSJoin (`Overlap >= alpha * R.norm`) is exact — no post-filter.
Result<std::vector<MatchPair>> JaccardContainmentJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, const SetJoinOptions& opts = {}, const JoinExecution& exec = {},
    SimJoinStats* stats = nullptr);

/// \brief Jaccard-resemblance join (§3.2, Figure 4 right):
/// pairs with `JR(r, s) = wt(r ∩ s)/wt(r ∪ s) >= alpha`. Uses the 2-sided
/// containment SSJoin predicate (JR >= alpha implies both containments) and
/// post-filters with the exact resemblance UDF.
Result<std::vector<MatchPair>> JaccardResemblanceJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, const SetJoinOptions& opts = {}, const JoinExecution& exec = {},
    SimJoinStats* stats = nullptr);

/// \brief Cosine-similarity join (tf-idf, binary term vectors): pairs with
/// `cos(r, s) >= alpha`. Element weights are idf^2 so that
/// `cos = Overlap / sqrt(norm_r * norm_s)`; the SSJoin conjuncts
/// `Overlap >= alpha^2 * norm` on both sides follow from
/// `norm_s >= alpha^2 * norm_r` for any matching pair. Post-filtered with
/// the exact cosine UDF.
Result<std::vector<MatchPair>> CosineJoin(const std::vector<std::string>& r,
                                          const std::vector<std::string>& s,
                                          double alpha,
                                          const SetJoinOptions& opts = {},
                                          const JoinExecution& exec = {},
                                          SimJoinStats* stats = nullptr);

/// \brief Hamming-distance join: pairs with `HD(r, s) <= max_distance`,
/// where positions beyond the shorter string count as mismatches. Sets are
/// (position, character) pairs, so `HD = max(|r|,|s|) - Overlap` and the
/// 2-sided SSJoin predicate `Overlap >= norm - max_distance` is exact.
/// `similarity` is -HD.
Result<std::vector<MatchPair>> HammingJoin(const std::vector<std::string>& r,
                                           const std::vector<std::string>& s,
                                           size_t max_distance,
                                           const JoinExecution& exec = {},
                                           SimJoinStats* stats = nullptr);

/// \brief Soundex join: pairs whose Soundex codes are equal (the soundex
/// notion of §1/§7). Sets are singleton {code}; `Overlap >= 1` is exact
/// equality of codes. `similarity` is 1.
Result<std::vector<MatchPair>> SoundexJoin(const std::vector<std::string>& r,
                                           const std::vector<std::string>& s,
                                           const JoinExecution& exec = {},
                                           SimJoinStats* stats = nullptr);

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_STRING_JOINS_H_
