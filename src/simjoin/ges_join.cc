#include "simjoin/ges_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/timer.h"
#include "core/cost_model.h"
#include "sim/ges.h"
#include "simjoin/prep.h"
#include "simjoin/string_joins.h"
#include "text/tokenizer.h"
#include "text/weights.h"

namespace ssjoin::simjoin {

namespace {

/// Exact GES verifier over pre-tokenized documents with dictionary weights.
double ExactGES(const std::vector<std::string>& a, const std::vector<std::string>& b,
                const sim::TokenWeightFn& weight) {
  return sim::GeneralizedEditSimilarity(a, b, weight);
}

}  // namespace

Result<std::vector<MatchPair>> GESJoin(const std::vector<std::string>& r,
                                       const std::vector<std::string>& s,
                                       double alpha, const GESJoinOptions& opts,
                                       SimJoinStats* stats) {
  if (alpha < 0.0 || alpha > 1.0) return Status::Invalid("alpha must be in [0, 1]");
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // ---- Prep: word-tokenize, intern, weigh, and expand the R sets. ----
  Timer prep_timer;
  text::WordTokenizer word_tokenizer;
  text::TokenDictionary dict;
  std::vector<std::vector<std::string>> r_tokens(r.size());
  std::vector<std::vector<std::string>> s_tokens(s.size());
  std::vector<std::vector<text::TokenId>> r_docs(r.size());
  std::vector<std::vector<text::TokenId>> s_docs(s.size());
  for (size_t i = 0; i < r.size(); ++i) {
    r_tokens[i] = word_tokenizer.Tokenize(r[i]);
    r_docs[i] = dict.EncodeDocument(r_tokens[i]);
  }
  for (size_t i = 0; i < s.size(); ++i) {
    s_tokens[i] = word_tokenizer.Tokenize(s[i]);
    s_docs[i] = dict.EncodeDocument(s_tokens[i]);
  }
  text::IdfWeights idf(dict);
  core::WeightVector weights = core::MaterializeWeights(dict, idf);

  // Vocabulary of distinct token strings = elements with ordinal 0.
  std::vector<std::string> vocab;
  std::vector<text::TokenId> vocab_ids;
  for (text::TokenId id = 0; id < dict.num_elements(); ++id) {
    if (dict.OrdinalOf(id) == 0) {
      vocab.push_back(dict.TokenOf(id));
      vocab_ids.push_back(id);
    }
  }

  // Similar-token pairs via a recursive edit-similarity join on the
  // vocabulary (Example 4's dictionary expansion).
  SSJOIN_ASSIGN_OR_RETURN(
      std::vector<MatchPair> similar_tokens,
      EditSimilarityJoin(vocab, vocab, opts.token_sim_threshold, opts.token_q));
  std::vector<std::vector<text::TokenId>> expansions(vocab.size());
  for (const MatchPair& m : similar_tokens) {
    if (m.r == m.s) continue;
    expansions[m.r].push_back(vocab_ids[m.s]);
  }
  // Map any element id -> its vocab index (by base token, ordinal 0).
  std::unordered_map<std::string_view, uint32_t> vocab_index;
  vocab_index.reserve(vocab.size());
  for (uint32_t v = 0; v < vocab.size(); ++v) vocab_index.emplace(vocab[v], v);

  // Expanded R documents: original elements plus similar tokens (as their
  // ordinal-0 elements) of each first-occurrence element.
  std::vector<std::vector<text::TokenId>> r_expanded(r_docs.size());
  std::vector<double> r_norms(r_docs.size());
  for (size_t i = 0; i < r_docs.size(); ++i) {
    std::vector<text::TokenId>& doc = r_expanded[i];
    doc = r_docs[i];
    double norm = 0.0;
    for (text::TokenId e : r_docs[i]) {
      norm += weights[e];
      if (dict.OrdinalOf(e) != 0) continue;
      auto it = vocab_index.find(dict.TokenOf(e));
      if (it == vocab_index.end()) continue;
      const auto& exp = expansions[it->second];
      doc.insert(doc.end(), exp.begin(), exp.end());
    }
    r_norms[i] = norm;  // wt of the *unexpanded* set (Definition 6's scale)
  }

  core::ElementOrder order = core::ElementOrder::ByDecreasingWeight(weights);
  Prepared prep;
  prep.weights = std::move(weights);
  prep.order = std::move(order);
  // Token weight function for the exact GES UDF: IDF of the token's
  // first-occurrence element; unseen tokens (impossible here) get weight 1.
  // Captures prep.weights (stable), NOT the moved-from local.
  const core::WeightVector& final_weights = prep.weights;
  sim::TokenWeightFn token_weight = [&dict, &final_weights](std::string_view t) {
    text::TokenId id = dict.Find(t, 0);
    return id == text::kInvalidToken ? 1.0 : final_weights[id];
  };
  SSJOIN_ASSIGN_OR_RETURN(
      prep.r, core::BuildSetsRelation(std::move(r_expanded), prep.weights,
                                      std::move(r_norms)));
  SSJOIN_ASSIGN_OR_RETURN(prep.s,
                          core::BuildSetsRelation(std::move(s_docs), prep.weights));
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());

  // ---- SSJoin stage: 1-sided normalized overlap on the unexpanded norm. ----
  // Threshold derivation (sharpening the paper's "alpha - beta" sketch):
  // GES >= alpha bounds the transformation cost by (1-alpha)*wt(Set(r)).
  // Every r-token that is deleted, or replaced by a token farther than the
  // expansion radius (edit similarity < beta), costs more than
  // (1-beta)*wt(token), so the weight of such tokens is at most
  // (1-alpha)/(1-beta) of the set. The remaining tokens' partners land in
  // ExpandedSet(r) ∩ Set(s), giving
  //   Overlap >= (1 - (1-alpha)/(1-beta)) * wt(Set(r))
  // up to the weight skew between near-duplicate tokens, absorbed by
  // `slack` (and ultimately by the exact GES filter).
  double beta = opts.token_sim_threshold;
  double threshold =
      beta < 1.0 ? 1.0 - (1.0 - alpha) / (1.0 - beta) - opts.slack : 0.0;
  if (threshold < 0.0) threshold = 0.0;
  core::OverlapPredicate pred = core::OverlapPredicate::OneSidedNormalized(threshold);
  SSJOIN_ASSIGN_OR_RETURN(std::vector<core::SSJoinPair> pairs,
                          RunSSJoinStage(prep, pred, opts.exec, stats));

  // ---- Filter: exact GES UDF. ----
  Timer filter_timer;
  std::vector<MatchPair> out;
  for (const core::SSJoinPair& p : pairs) {
    ++stats->verifier_calls;
    double ges = ExactGES(r_tokens[p.r], s_tokens[p.s], token_weight);
    if (ges >= alpha - 1e-12) out.push_back({p.r, p.s, ges});
  }
  stats->result_pairs = out.size();
  stats->phases.Add("Filter", filter_timer.ElapsedMillis());
  return out;
}

Result<std::vector<MatchPair>> GESJoinBruteForce(const std::vector<std::string>& r,
                                                 const std::vector<std::string>& s,
                                                 double alpha, SimJoinStats* stats) {
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Timer prep_timer;
  text::WordTokenizer word_tokenizer;
  text::TokenDictionary dict;
  std::vector<std::vector<std::string>> r_tokens(r.size());
  std::vector<std::vector<std::string>> s_tokens(s.size());
  for (size_t i = 0; i < r.size(); ++i) {
    r_tokens[i] = word_tokenizer.Tokenize(r[i]);
    dict.EncodeDocument(r_tokens[i]);
  }
  for (size_t i = 0; i < s.size(); ++i) {
    s_tokens[i] = word_tokenizer.Tokenize(s[i]);
    dict.EncodeDocument(s_tokens[i]);
  }
  text::IdfWeights idf(dict);
  core::WeightVector weights = core::MaterializeWeights(dict, idf);
  sim::TokenWeightFn token_weight = [&dict, &weights](std::string_view t) {
    text::TokenId id = dict.Find(t, 0);
    return id == text::kInvalidToken ? 1.0 : weights[id];
  };
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());

  Timer filter_timer;
  std::vector<MatchPair> out;
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = 0; j < s.size(); ++j) {
      ++stats->verifier_calls;
      double ges = ExactGES(r_tokens[i], s_tokens[j], token_weight);
      if (ges >= alpha - 1e-12) out.push_back({i, j, ges});
    }
  }
  stats->result_pairs = out.size();
  stats->phases.Add("Filter", filter_timer.ElapsedMillis());
  return out;
}

}  // namespace ssjoin::simjoin
