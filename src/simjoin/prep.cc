#include "simjoin/prep.h"

#include <algorithm>

#include "approx/approx_ssjoin.h"
#include "core/cost_model.h"
#include "exec/parallel_ssjoin.h"
#include "text/weights.h"

namespace ssjoin::simjoin {

Result<Prepared> PrepareStrings(const std::vector<std::string>& r,
                                const std::vector<std::string>& s,
                                const text::Tokenizer& tokenizer, WeightMode mode) {
  Prepared prep;
  std::vector<std::vector<text::TokenId>> r_docs;
  r_docs.reserve(r.size());
  for (const std::string& str : r) {
    r_docs.push_back(prep.dict.EncodeDocument(tokenizer.Tokenize(str)));
  }
  std::vector<std::vector<text::TokenId>> s_docs;
  s_docs.reserve(s.size());
  for (const std::string& str : s) {
    s_docs.push_back(prep.dict.EncodeDocument(tokenizer.Tokenize(str)));
  }

  switch (mode) {
    case WeightMode::kUnit: {
      prep.weights.assign(prep.dict.num_elements(), 1.0);
      break;
    }
    case WeightMode::kIdf: {
      text::IdfWeights idf(prep.dict);
      prep.weights = core::MaterializeWeights(prep.dict, idf);
      break;
    }
    case WeightMode::kIdfSquared: {
      text::IdfWeights idf(prep.dict);
      prep.weights = core::MaterializeWeights(prep.dict, idf);
      for (double& w : prep.weights) w *= w;
      break;
    }
  }
  // The paper's prefix ordering: elements by decreasing IDF weight, so the
  // most frequent elements are filtered out of prefixes first (§4.3.2).
  // Under unit weights this degenerates to id order, so fall back to the
  // frequency formulation which keeps the rarest-first intent.
  if (mode == WeightMode::kUnit) {
    prep.order = core::ElementOrder::ByIncreasingFrequency(prep.dict);
  } else {
    prep.order = core::ElementOrder::ByDecreasingWeight(prep.weights);
  }

  SSJOIN_ASSIGN_OR_RETURN(prep.r, core::BuildSetsRelation(std::move(r_docs),
                                                          prep.weights));
  SSJOIN_ASSIGN_OR_RETURN(prep.s, core::BuildSetsRelation(std::move(s_docs),
                                                          prep.weights));
  return prep;
}

Result<std::vector<core::SSJoinPair>> RunSSJoinStage(const Prepared& prep,
                                                     const core::OverlapPredicate& pred,
                                                     const JoinExecution& execution,
                                                     SimJoinStats* stats) {
  core::SSJoinContext ctx = prep.Context();
  ctx.exec = &execution.exec;
  core::SSJoinAlgorithm algorithm = execution.algorithm;
  if (execution.use_cost_model) {
    algorithm = core::ChooseAlgorithm(prep.r, prep.s, pred, ctx);
  }
  // The approx-layer dispatch is a superset of exec::ExecuteSSJoin: it adds
  // kApprox/kHybrid handling and forwards the exact algorithms unchanged.
  SSJOIN_ASSIGN_OR_RETURN(
      std::vector<core::SSJoinPair> pairs,
      approx::ExecuteSSJoin(algorithm, prep.r, prep.s, pred, ctx,
                            execution.approx, &stats->ssjoin));
  stats->phases.Merge(stats->ssjoin.phases);
  return pairs;
}

void SortMatches(std::vector<MatchPair>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const MatchPair& a, const MatchPair& b) {
              if (a.r != b.r) return a.r < b.r;
              return a.s < b.s;
            });
}

}  // namespace ssjoin::simjoin
