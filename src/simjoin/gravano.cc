#include "simjoin/gravano.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "sim/edit_distance.h"
#include "text/tokenizer.h"

namespace ssjoin::simjoin {

namespace {

/// Positional q-gram index over the S side: gram -> (string index, position).
class PositionalQGramIndex {
 public:
  PositionalQGramIndex(const std::vector<std::string>& strings, size_t q) : q_(q) {
    text::QGramTokenizer tokenizer(q);
    // First pass: intern grams and count postings.
    std::vector<std::vector<uint32_t>> gram_ids(strings.size());
    for (size_t i = 0; i < strings.size(); ++i) {
      std::vector<std::string> grams = tokenizer.Tokenize(strings[i]);
      gram_ids[i].reserve(grams.size());
      for (std::string& g : grams) {
        auto [it, inserted] = intern_.try_emplace(std::move(g),
                                                  static_cast<uint32_t>(intern_.size()));
        gram_ids[i].push_back(it->second);
      }
    }
    offsets_.assign(intern_.size() + 1, 0);
    for (const auto& ids : gram_ids) {
      for (uint32_t g : ids) ++offsets_[g + 1];
    }
    for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
    postings_.resize(offsets_.back());
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (uint32_t i = 0; i < gram_ids.size(); ++i) {
      for (uint32_t pos = 0; pos < gram_ids[i].size(); ++pos) {
        postings_[cursor[gram_ids[i][pos]]++] = {i, pos};
      }
    }
  }

  struct Posting {
    uint32_t string_index;
    uint32_t position;
  };

  /// Postings of a gram, or an empty range if the gram never occurs in S.
  std::pair<const Posting*, const Posting*> Lookup(const std::string& gram) const {
    auto it = intern_.find(gram);
    if (it == intern_.end()) return {nullptr, nullptr};
    return {postings_.data() + offsets_[it->second],
            postings_.data() + offsets_[it->second + 1]};
  }

  size_t q() const { return q_; }

 private:
  size_t q_;
  std::unordered_map<std::string, uint32_t> intern_;
  std::vector<uint32_t> offsets_;
  std::vector<Posting> postings_;
};

/// Edit budget for a pair under edit-similarity threshold alpha.
size_t PairBudget(double alpha, size_t len_r, size_t len_s) {
  double allowed = (1.0 - alpha) * static_cast<double>(std::max(len_r, len_s));
  return static_cast<size_t>(std::floor(allowed + 1e-9));
}

/// Shared candidate-enumeration + verification skeleton. `budget_fn`
/// computes the per-pair edit budget.
template <typename BudgetFn>
Result<std::vector<MatchPair>> GravanoJoin(const std::vector<std::string>& r,
                                           const std::vector<std::string>& s,
                                           size_t q, const BudgetFn& budget_fn,
                                           bool emit_similarity,
                                           SimJoinStats* stats) {
  if (q == 0) return Status::Invalid("q must be positive");
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  Timer prep_timer;
  PositionalQGramIndex index(s, q);
  text::QGramTokenizer tokenizer(q);
  // Short-string bucket: S grouped by length, ordered for deterministic
  // candidate enumeration. Property 4's count filter
  // (>= max(|s1|,|s2|) - q + 1 - q*budget shared grams) only prunes when
  // that bound is >= 1; when it is non-positive — short strings, including
  // the empty string, relative to q and the budget — two strings within the
  // budget may share no q-gram at all, so requiring a common gram drops true
  // matches. Pairs in that regime bypass gram enumeration and go straight to
  // the verifier.
  std::vector<std::pair<size_t, std::vector<uint32_t>>> s_by_length;
  {
    std::map<size_t, std::vector<uint32_t>> grouped;
    for (uint32_t si = 0; si < s.size(); ++si) grouped[s[si].size()].push_back(si);
    s_by_length.assign(grouped.begin(), grouped.end());
  }
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());

  std::vector<uint32_t> seen_epoch(s.size(), 0);
  uint32_t epoch = 0;
  std::vector<uint32_t> candidates;
  std::vector<MatchPair> out;
  double enumerate_ms = 0.0;
  double verify_ms = 0.0;
  for (uint32_t ri = 0; ri < r.size(); ++ri) {
    Timer enum_timer;
    ++epoch;
    candidates.clear();
    for (const auto& [s_len, indices] : s_by_length) {
      size_t budget = budget_fn(r[ri].size(), s_len);
      size_t len_diff =
          r[ri].size() > s_len ? r[ri].size() - s_len : s_len - r[ri].size();
      if (len_diff > budget) continue;
      size_t max_len = std::max(r[ri].size(), s_len);
      // bound >= 1 <=> max_len - q + 1 - q*budget >= 1 <=> the gram filter is
      // sound for this length pair; written as an overflow-safe ceil test.
      if ((max_len + q) / q > budget + 1) continue;
      for (uint32_t si : indices) {
        if (seen_epoch[si] == epoch) continue;
        seen_epoch[si] = epoch;
        candidates.push_back(si);
      }
    }
    std::vector<std::string> grams = tokenizer.Tokenize(r[ri]);
    for (uint32_t pos = 0; pos < grams.size(); ++pos) {
      auto [begin, end] = index.Lookup(grams[pos]);
      stats->ssjoin.equijoin_rows += static_cast<size_t>(end - begin);
      for (const auto* p = begin; p != end; ++p) {
        if (seen_epoch[p->string_index] == epoch) continue;
        size_t budget = budget_fn(r[ri].size(), s[p->string_index].size());
        // Length filter: strings differing by more than the budget in
        // length cannot match.
        size_t len_diff = r[ri].size() > s[p->string_index].size()
                              ? r[ri].size() - s[p->string_index].size()
                              : s[p->string_index].size() - r[ri].size();
        if (len_diff > budget) continue;
        // Position filter: this common q-gram's positions must be within
        // the budget of each other.
        size_t pos_diff = pos > p->position ? pos - p->position : p->position - pos;
        if (pos_diff > budget) continue;
        seen_epoch[p->string_index] = epoch;
        candidates.push_back(p->string_index);
      }
    }
    stats->ssjoin.candidate_pairs += candidates.size();
    enumerate_ms += enum_timer.ElapsedMillis();

    Timer verify_timer;
    for (uint32_t si : candidates) {
      ++stats->verifier_calls;
      size_t budget = budget_fn(r[ri].size(), s[si].size());
      size_t ed = sim::EditDistanceBounded(r[ri], s[si], budget);
      if (ed > budget) continue;
      double similarity;
      if (emit_similarity) {
        size_t max_len = std::max(r[ri].size(), s[si].size());
        similarity = max_len == 0
                         ? 1.0
                         : 1.0 - static_cast<double>(ed) / static_cast<double>(max_len);
      } else {
        similarity = -static_cast<double>(ed);
      }
      out.push_back({ri, si, similarity});
    }
    verify_ms += verify_timer.ElapsedMillis();
  }
  stats->phases.Add("Candidate-enumeration", enumerate_ms);
  stats->phases.Add("EditSim-Filter", verify_ms);
  stats->result_pairs = out.size();
  return out;
}

}  // namespace

Result<std::vector<MatchPair>> GravanoEditSimilarityJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, size_t q, SimJoinStats* stats) {
  if (alpha < 0.0 || alpha > 1.0) return Status::Invalid("alpha must be in [0, 1]");
  return GravanoJoin(
      r, s, q,
      [alpha](size_t lr, size_t ls) { return PairBudget(alpha, lr, ls); },
      /*emit_similarity=*/true, stats);
}

Result<std::vector<MatchPair>> GravanoEditDistanceJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    size_t max_distance, size_t q, SimJoinStats* stats) {
  return GravanoJoin(
      r, s, q, [max_distance](size_t, size_t) { return max_distance; },
      /*emit_similarity=*/false, stats);
}

Result<std::vector<MatchPair>> CrossProductEditSimilarityJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, SimJoinStats* stats) {
  if (alpha < 0.0 || alpha > 1.0) return Status::Invalid("alpha must be in [0, 1]");
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Timer timer;
  std::vector<MatchPair> out;
  for (uint32_t ri = 0; ri < r.size(); ++ri) {
    for (uint32_t si = 0; si < s.size(); ++si) {
      ++stats->verifier_calls;
      size_t budget = PairBudget(alpha, r[ri].size(), s[si].size());
      size_t ed = sim::EditDistanceBounded(r[ri], s[si], budget);
      if (ed > budget) continue;
      size_t max_len = std::max(r[ri].size(), s[si].size());
      double similarity =
          max_len == 0 ? 1.0
                       : 1.0 - static_cast<double>(ed) / static_cast<double>(max_len);
      out.push_back({ri, si, similarity});
    }
  }
  stats->result_pairs = out.size();
  stats->phases.Add("EditSim-Filter", timer.ElapsedMillis());
  return out;
}

}  // namespace ssjoin::simjoin
