#ifndef SSJOIN_SIMJOIN_PREP_H_
#define SSJOIN_SIMJOIN_PREP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/order.h"
#include "core/sets.h"
#include "simjoin/types.h"
#include "text/dictionary.h"
#include "text/tokenizer.h"

namespace ssjoin::simjoin {

/// How elements are weighted during Prep.
enum class WeightMode {
  kUnit,        ///< all weights 1; overlaps are set-intersection sizes
  kIdf,         ///< the paper's §5 IDF formula over the joined corpora
  kIdfSquared,  ///< idf(t)^2 — makes Overlap/sqrt(norms) the tf-idf cosine
};

/// \brief Output of the Prep phase (Figure 2, "String to set"): both
/// relations in normalized set form, with the shared dictionary, weights and
/// global element ordering the executors need.
struct Prepared {
  text::TokenDictionary dict;
  core::WeightVector weights;
  core::ElementOrder order;
  core::SetsRelation r;
  core::SetsRelation s;

  core::SSJoinContext Context() const { return {&weights, &order}; }
};

/// \brief Tokenizes and encodes both string collections with a shared
/// dictionary, computes weights (per `mode`) and the prefix ordering
/// (decreasing weight — the paper's IDF ordering, §4.3.2), and builds both
/// SetsRelations. Norms default to set weights; the similarity joins override
/// them when a different norm is needed.
Result<Prepared> PrepareStrings(const std::vector<std::string>& r,
                                const std::vector<std::string>& s,
                                const text::Tokenizer& tokenizer, WeightMode mode);

/// \brief Runs the SSJoin stage of a similarity-join pipeline: applies the
/// cost model if requested, executes (in parallel when `execution.exec`
/// requests threads), and records stats/phases into `stats`.
Result<std::vector<core::SSJoinPair>> RunSSJoinStage(const Prepared& prep,
                                                     const core::OverlapPredicate& pred,
                                                     const JoinExecution& execution,
                                                     SimJoinStats* stats);

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_PREP_H_
