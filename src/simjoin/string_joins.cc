#include "simjoin/string_joins.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "common/timer.h"
#include "exec/parallel_for.h"
#include "sim/edit_distance.h"
#include "sim/soundex.h"
#include "simjoin/prep.h"
#include "text/tokenizer.h"

namespace ssjoin::simjoin {

namespace {

/// Tokenizer producing (position, character) pair tokens for Hamming joins.
class PositionalTokenizer final : public text::Tokenizer {
 public:
  std::vector<std::string> Tokenize(std::string_view s) const override {
    std::vector<std::string> tokens;
    tokens.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      std::string t = std::to_string(i);
      t.push_back(':');
      t.push_back(s[i]);
      tokens.push_back(std::move(t));
    }
    return tokens;
  }
  std::string Describe() const override { return "positional"; }
};

/// Tokenizer producing the singleton {Soundex(s)}.
class SoundexTokenizer final : public text::Tokenizer {
 public:
  std::vector<std::string> Tokenize(std::string_view s) const override {
    return {sim::Soundex(s)};
  }
  std::string Describe() const override { return "soundex"; }
};

std::unique_ptr<text::Tokenizer> MakeSetTokenizer(const SetJoinOptions& opts) {
  if (opts.word_tokens) return std::make_unique<text::WordTokenizer>();
  return std::make_unique<text::QGramTokenizer>(opts.q);
}

/// Runs the full Figure 2 pipeline. `verify` maps an SSJoin output pair to
/// the exact similarity, or NaN to reject; pass nullptr when the SSJoin
/// reduction is exact and `exact_similarity` computes the output similarity
/// from the pair alone.
using VerifyFn = std::function<double(const core::SSJoinPair&)>;

Result<std::vector<MatchPair>> RunPipeline(const std::vector<std::string>& r,
                                           const std::vector<std::string>& s,
                                           const text::Tokenizer& tokenizer,
                                           WeightMode mode,
                                           const core::OverlapPredicate& pred,
                                           const VerifyFn& verify,
                                           const JoinExecution& execution,
                                           SimJoinStats* stats) {
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  Timer prep_timer;
  SSJOIN_ASSIGN_OR_RETURN(Prepared prep, PrepareStrings(r, s, tokenizer, mode));
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());

  SSJOIN_ASSIGN_OR_RETURN(std::vector<core::SSJoinPair> pairs,
                          RunSSJoinStage(prep, pred, execution, stats));

  // Final UDF filter. The exact-similarity verifier is the hot loop of the
  // distance-based joins, so it is morsel-parallelized over the candidate
  // pairs; per-morsel outputs concatenated in morsel order keep the result
  // identical to the serial scan.
  Timer filter_timer;
  std::vector<MatchPair> out;
  const exec::ExecContext& ec = execution.exec;
  if (ec.parallel() && pairs.size() > 1) {
    size_t morsel = std::max<size_t>(1, ec.morsel_size);
    size_t num_morsels = (pairs.size() + morsel - 1) / morsel;
    struct FilterMorsel {
      std::vector<MatchPair> matches;
      size_t verifier_calls = 0;
    };
    std::vector<FilterMorsel> morsels(num_morsels);
    exec::ParallelFor(ec, pairs.size(),
                      [&](size_t /*worker*/, size_t m, size_t begin, size_t end) {
                        FilterMorsel& fm = morsels[m];
                        for (size_t i = begin; i < end; ++i) {
                          const core::SSJoinPair& p = pairs[i];
                          ++fm.verifier_calls;
                          double similarity = verify(p);
                          if (!std::isnan(similarity)) {
                            fm.matches.push_back({p.r, p.s, similarity});
                          }
                        }
                      });
    size_t total = 0;
    for (const FilterMorsel& fm : morsels) total += fm.matches.size();
    out.reserve(total);
    for (const FilterMorsel& fm : morsels) {
      stats->verifier_calls += fm.verifier_calls;
      out.insert(out.end(), fm.matches.begin(), fm.matches.end());
    }
  } else {
    out.reserve(pairs.size());
    for (const core::SSJoinPair& p : pairs) {
      ++stats->verifier_calls;
      double similarity = verify(p);
      if (!std::isnan(similarity)) {
        out.push_back({p.r, p.s, similarity});
      }
    }
  }
  stats->result_pairs = out.size();
  stats->phases.Add("Filter", filter_timer.ElapsedMillis());
  return out;
}

constexpr double kReject = std::numeric_limits<double>::quiet_NaN();

}  // namespace

Result<std::vector<MatchPair>> EditDistanceJoin(const std::vector<std::string>& r,
                                                const std::vector<std::string>& s,
                                                size_t max_distance, size_t q,
                                                const JoinExecution& exec,
                                                SimJoinStats* stats) {
  if (q == 0) return Status::Invalid("q must be positive");
  text::QGramTokenizer tokenizer(q);
  // Property 4: Overlap >= max(norm_r, norm_s) - max_distance * q, expressed
  // as the conjunction of the two one-sided bounds.
  double c = -static_cast<double>(max_distance * q);
  core::OverlapPredicate pred;
  pred.And({c, 1.0, 0.0}).And({c, 0.0, 1.0});
  VerifyFn verify = [&r, &s, max_distance](const core::SSJoinPair& p) {
    size_t ed = sim::EditDistanceBounded(r[p.r], s[p.s], max_distance);
    if (ed > max_distance) return kReject;
    return -static_cast<double>(ed);
  };
  return RunPipeline(r, s, tokenizer, WeightMode::kUnit, pred, verify, exec, stats);
}

Result<std::vector<MatchPair>> EditSimilarityJoin(const std::vector<std::string>& r,
                                                  const std::vector<std::string>& s,
                                                  double alpha, size_t q,
                                                  const JoinExecution& exec,
                                                  SimJoinStats* stats) {
  if (q == 0) return Status::Invalid("q must be positive");
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::Invalid("alpha must be in [0, 1]");
  }
  text::QGramTokenizer tokenizer(q);
  // ES >= alpha allows ED <= (1-alpha)*max(len); substituting
  // len = norm + q - 1 into Property 4 gives, for each side,
  //   Overlap >= k*norm + c,  k = 1 - (1-alpha)*q,  c = k*(q-1) - q + 1.
  double k = 1.0 - (1.0 - alpha) * static_cast<double>(q);
  double c = k * static_cast<double>(q - 1) - static_cast<double>(q) + 1.0;
  core::OverlapPredicate pred;
  pred.And({c, k, 0.0}).And({c, 0.0, k});
  VerifyFn verify = [&r, &s, alpha](const core::SSJoinPair& p) {
    const std::string& a = r[p.r];
    const std::string& b = s[p.s];
    size_t max_len = std::max(a.size(), b.size());
    if (max_len == 0) return 1.0;
    size_t budget =
        static_cast<size_t>(std::floor((1.0 - alpha) * static_cast<double>(max_len) +
                                       1e-9));
    size_t ed = sim::EditDistanceBounded(a, b, budget);
    if (ed > budget) return kReject;
    return 1.0 - static_cast<double>(ed) / static_cast<double>(max_len);
  };
  return RunPipeline(r, s, tokenizer, WeightMode::kUnit, pred, verify, exec, stats);
}

Result<std::vector<MatchPair>> JaccardContainmentJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, const SetJoinOptions& opts, const JoinExecution& exec,
    SimJoinStats* stats) {
  std::unique_ptr<text::Tokenizer> tokenizer = MakeSetTokenizer(opts);
  core::OverlapPredicate pred = core::OverlapPredicate::OneSidedNormalized(alpha);
  // The reduction is exact (Example 3): no UDF rejection, similarity is the
  // containment itself. Norms equal set weights, carried in the pair via a
  // second lookup — we close over nothing but compute JC from the pair's
  // overlap and the R norm at verify time.
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Timer prep_timer;
  SSJOIN_ASSIGN_OR_RETURN(Prepared prep,
                          PrepareStrings(r, s, *tokenizer, opts.weights));
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());
  SSJOIN_ASSIGN_OR_RETURN(std::vector<core::SSJoinPair> pairs,
                          RunSSJoinStage(prep, pred, exec, stats));
  Timer filter_timer;
  std::vector<MatchPair> out;
  out.reserve(pairs.size());
  for (const core::SSJoinPair& p : pairs) {
    double wt_r = prep.r.set_weights[p.r];
    double jc = wt_r > 0.0 ? p.overlap / wt_r : 1.0;
    out.push_back({p.r, p.s, jc});
  }
  stats->result_pairs = out.size();
  stats->phases.Add("Filter", filter_timer.ElapsedMillis());
  return out;
}

Result<std::vector<MatchPair>> JaccardResemblanceJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, const SetJoinOptions& opts, const JoinExecution& exec,
    SimJoinStats* stats) {
  std::unique_ptr<text::Tokenizer> tokenizer = MakeSetTokenizer(opts);
  core::OverlapPredicate pred = core::OverlapPredicate::TwoSidedNormalized(alpha);
  // JR needs both set weights; recover them inside the verifier from the
  // prepared relations, so run the pipeline inline rather than via
  // RunPipeline (which does not expose `prep`).
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Timer prep_timer;
  SSJOIN_ASSIGN_OR_RETURN(Prepared prep,
                          PrepareStrings(r, s, *tokenizer, opts.weights));
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());
  SSJOIN_ASSIGN_OR_RETURN(std::vector<core::SSJoinPair> pairs,
                          RunSSJoinStage(prep, pred, exec, stats));
  Timer filter_timer;
  std::vector<MatchPair> out;
  for (const core::SSJoinPair& p : pairs) {
    ++stats->verifier_calls;
    double wt_union =
        prep.r.set_weights[p.r] + prep.s.set_weights[p.s] - p.overlap;
    double jr = wt_union > 0.0 ? p.overlap / wt_union : 1.0;
    if (jr >= alpha - 1e-12) out.push_back({p.r, p.s, jr});
  }
  stats->result_pairs = out.size();
  stats->phases.Add("Filter", filter_timer.ElapsedMillis());
  return out;
}

Result<std::vector<MatchPair>> CosineJoin(const std::vector<std::string>& r,
                                          const std::vector<std::string>& s,
                                          double alpha, const SetJoinOptions& opts,
                                          const JoinExecution& exec,
                                          SimJoinStats* stats) {
  std::unique_ptr<text::Tokenizer> tokenizer = MakeSetTokenizer(opts);
  // cos(r, s) = Overlap / sqrt(norm_r * norm_s) with idf^2 element weights.
  // A matching pair satisfies norm_s >= alpha^2 * norm_r (and symmetrically),
  // giving the conjuncts Overlap >= alpha^2 * norm on both sides.
  core::OverlapPredicate pred =
      core::OverlapPredicate::TwoSidedNormalized(alpha * alpha);
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Timer prep_timer;
  SSJOIN_ASSIGN_OR_RETURN(
      Prepared prep, PrepareStrings(r, s, *tokenizer, WeightMode::kIdfSquared));
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());
  SSJOIN_ASSIGN_OR_RETURN(std::vector<core::SSJoinPair> pairs,
                          RunSSJoinStage(prep, pred, exec, stats));
  Timer filter_timer;
  std::vector<MatchPair> out;
  for (const core::SSJoinPair& p : pairs) {
    ++stats->verifier_calls;
    double denom =
        std::sqrt(prep.r.set_weights[p.r] * prep.s.set_weights[p.s]);
    double cos = denom > 0.0 ? p.overlap / denom : 1.0;
    if (cos >= alpha - 1e-12) out.push_back({p.r, p.s, cos});
  }
  stats->result_pairs = out.size();
  stats->phases.Add("Filter", filter_timer.ElapsedMillis());
  return out;
}

Result<std::vector<MatchPair>> HammingJoin(const std::vector<std::string>& r,
                                           const std::vector<std::string>& s,
                                           size_t max_distance,
                                           const JoinExecution& exec,
                                           SimJoinStats* stats) {
  PositionalTokenizer tokenizer;
  // HD(r, s) = max(|r|, |s|) - Overlap of (position, char) sets, so
  // HD <= d  <=>  Overlap >= max(norm_r, norm_s) - d. Exact reduction.
  double c = -static_cast<double>(max_distance);
  core::OverlapPredicate pred;
  pred.And({c, 1.0, 0.0}).And({c, 0.0, 1.0});
  VerifyFn verify = [&r, &s](const core::SSJoinPair& p) {
    double hd = static_cast<double>(std::max(r[p.r].size(), s[p.s].size())) -
                p.overlap;
    return -hd;
  };
  return RunPipeline(r, s, tokenizer, WeightMode::kUnit, pred, verify, exec, stats);
}

Result<std::vector<MatchPair>> SoundexJoin(const std::vector<std::string>& r,
                                           const std::vector<std::string>& s,
                                           const JoinExecution& exec,
                                           SimJoinStats* stats) {
  SoundexTokenizer tokenizer;
  core::OverlapPredicate pred = core::OverlapPredicate::Absolute(1.0);
  VerifyFn verify = [](const core::SSJoinPair&) { return 1.0; };
  return RunPipeline(r, s, tokenizer, WeightMode::kUnit, pred, verify, exec, stats);
}

}  // namespace ssjoin::simjoin
