#include "simjoin/cooccurrence.h"

#include <unordered_map>

#include "common/string_util.h"
#include "common/timer.h"
#include "text/weights.h"

namespace ssjoin::simjoin {

namespace {

/// Groups (entity, item) rows into per-entity item multisets, preserving
/// first-appearance entity order.
void GroupByEntity(const std::vector<std::pair<std::string, std::string>>& rows,
                   std::vector<std::string>* entities,
                   std::vector<std::vector<std::string>>* item_lists) {
  std::unordered_map<std::string, size_t> index;
  for (const auto& [entity, item] : rows) {
    auto [it, inserted] = index.try_emplace(entity, entities->size());
    if (inserted) {
      entities->push_back(entity);
      item_lists->emplace_back();
    }
    (*item_lists)[it->second].push_back(item);
  }
}

}  // namespace

Result<EntityJoinResult> CooccurrenceJoin(
    const std::vector<std::pair<std::string, std::string>>& r_rows,
    const std::vector<std::pair<std::string, std::string>>& s_rows, double alpha,
    JaccardVariant variant, WeightMode weights, const JoinExecution& exec,
    SimJoinStats* stats) {
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  Timer prep_timer;
  EntityJoinResult result;
  std::vector<std::vector<std::string>> r_items;
  std::vector<std::vector<std::string>> s_items;
  GroupByEntity(r_rows, &result.r_entities, &r_items);
  GroupByEntity(s_rows, &result.s_entities, &s_items);

  // Encode item multisets against a shared dictionary. Items are opaque
  // values (paper titles, ...), so the "tokenizer" is the identity: the
  // item list is already the token multiset.
  Prepared prep;
  std::vector<std::vector<text::TokenId>> r_docs;
  r_docs.reserve(r_items.size());
  for (const auto& items : r_items) r_docs.push_back(prep.dict.EncodeDocument(items));
  std::vector<std::vector<text::TokenId>> s_docs;
  s_docs.reserve(s_items.size());
  for (const auto& items : s_items) s_docs.push_back(prep.dict.EncodeDocument(items));

  if (weights == WeightMode::kUnit) {
    prep.weights.assign(prep.dict.num_elements(), 1.0);
    prep.order = core::ElementOrder::ByIncreasingFrequency(prep.dict);
  } else {
    text::IdfWeights idf(prep.dict);
    prep.weights = core::MaterializeWeights(prep.dict, idf);
    if (weights == WeightMode::kIdfSquared) {
      for (double& w : prep.weights) w *= w;
    }
    prep.order = core::ElementOrder::ByDecreasingWeight(prep.weights);
  }
  SSJOIN_ASSIGN_OR_RETURN(prep.r,
                          core::BuildSetsRelation(std::move(r_docs), prep.weights));
  SSJOIN_ASSIGN_OR_RETURN(prep.s,
                          core::BuildSetsRelation(std::move(s_docs), prep.weights));
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());

  core::OverlapPredicate pred =
      variant == JaccardVariant::kContainment
          ? core::OverlapPredicate::OneSidedNormalized(alpha)
          : core::OverlapPredicate::TwoSidedNormalized(alpha);
  SSJOIN_ASSIGN_OR_RETURN(std::vector<core::SSJoinPair> pairs,
                          RunSSJoinStage(prep, pred, exec, stats));

  Timer filter_timer;
  for (const core::SSJoinPair& p : pairs) {
    double wt_r = prep.r.set_weights[p.r];
    if (variant == JaccardVariant::kContainment) {
      double jc = wt_r > 0.0 ? p.overlap / wt_r : 1.0;
      result.matches.push_back({p.r, p.s, jc});
    } else {
      ++stats->verifier_calls;
      double wt_union = wt_r + prep.s.set_weights[p.s] - p.overlap;
      double jr = wt_union > 0.0 ? p.overlap / wt_union : 1.0;
      if (jr >= alpha - 1e-12) result.matches.push_back({p.r, p.s, jr});
    }
  }
  stats->result_pairs = result.matches.size();
  stats->phases.Add("Filter", filter_timer.ElapsedMillis());
  return result;
}

Result<std::vector<MatchPair>> FDAgreementJoin(
    const std::vector<std::vector<std::string>>& r,
    const std::vector<std::vector<std::string>>& s, size_t k,
    const JoinExecution& exec, SimJoinStats* stats) {
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (k == 0) return Status::Invalid("k must be positive");

  size_t h = 0;
  if (!r.empty()) {
    h = r[0].size();
  } else if (!s.empty()) {
    h = s[0].size();
  }
  Timer prep_timer;
  Prepared prep;
  auto encode = [&](const std::vector<std::vector<std::string>>& rows,
                    std::vector<std::vector<text::TokenId>>* docs) -> Status {
    docs->reserve(rows.size());
    for (const auto& row : rows) {
      if (row.size() != h) {
        return Status::Invalid(
            StringPrintf("FD join rows must all have %zu columns, got %zu", h,
                         row.size()));
      }
      // Element = the ordered pair <Column, Value> (Example 6's AEP set).
      std::vector<std::string> elements;
      elements.reserve(row.size());
      for (size_t c = 0; c < row.size(); ++c) {
        elements.push_back(std::to_string(c) + '=' + row[c]);
      }
      docs->push_back(prep.dict.EncodeDocument(elements));
    }
    return Status::OK();
  };
  std::vector<std::vector<text::TokenId>> r_docs;
  std::vector<std::vector<text::TokenId>> s_docs;
  SSJOIN_RETURN_NOT_OK(encode(r, &r_docs));
  SSJOIN_RETURN_NOT_OK(encode(s, &s_docs));
  if (k > h) {
    return Status::Invalid(StringPrintf("k=%zu exceeds the column count h=%zu", k, h));
  }
  prep.weights.assign(prep.dict.num_elements(), 1.0);
  prep.order = core::ElementOrder::ByIncreasingFrequency(prep.dict);
  SSJOIN_ASSIGN_OR_RETURN(prep.r,
                          core::BuildSetsRelation(std::move(r_docs), prep.weights));
  SSJOIN_ASSIGN_OR_RETURN(prep.s,
                          core::BuildSetsRelation(std::move(s_docs), prep.weights));
  stats->phases.Add("Prep", prep_timer.ElapsedMillis());

  core::OverlapPredicate pred =
      core::OverlapPredicate::Absolute(static_cast<double>(k));
  SSJOIN_ASSIGN_OR_RETURN(std::vector<core::SSJoinPair> pairs,
                          RunSSJoinStage(prep, pred, exec, stats));

  std::vector<MatchPair> out;
  out.reserve(pairs.size());
  for (const core::SSJoinPair& p : pairs) out.push_back({p.r, p.s, p.overlap});
  stats->result_pairs = out.size();
  return out;
}

}  // namespace ssjoin::simjoin
