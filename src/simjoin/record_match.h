#ifndef SSJOIN_SIMJOIN_RECORD_MATCH_H_
#define SSJOIN_SIMJOIN_RECORD_MATCH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "simjoin/types.h"

namespace ssjoin::simjoin {

/// Multi-attribute record matching — the paper's §1 scenario ("we may join
/// two customers if the similarity between their names and addresses is
/// high") composed from per-column similarity joins.
///
/// A match specification is a DNF of column rules: records match if, for at
/// least one rule set, *every* rule in the set passes. Each rule thresholds
/// one similarity function on one column. The FIRST rule of each set is used
/// as the blocking rule: its SSJoin-based similarity join generates
/// candidates, and the remaining rules are verified per candidate with the
/// exact similarity UDFs — so put the most selective rule first.

/// Similarity functions available for column rules.
enum class ColumnSim {
  kEquality,        ///< exact string equality
  kSoundex,         ///< equal Soundex codes
  kEditSimilarity,  ///< Definition 2, 3-gram SSJoin when blocking
  kJaccard,         ///< word-token resemblance, IDF weights
  kJaroWinkler,     ///< verification-only (no SSJoin reduction); cannot block
};

/// One conjunct: `sim(column_r, column_s) >= threshold`.
struct ColumnRule {
  size_t column = 0;
  ColumnSim sim = ColumnSim::kJaccard;
  double threshold = 0.8;  ///< ignored for kEquality / kSoundex
};

/// DNF match specification plus execution knobs.
struct RecordMatchOptions {
  std::vector<std::vector<ColumnRule>> rule_sets;
  JoinExecution exec;
};

/// \brief Joins two row-major relations (equal column counts) under the
/// DNF specification. Output pairs are deduplicated across rule sets;
/// `similarity` is the blocking rule's similarity of the first rule set
/// that accepted the pair.
Result<std::vector<MatchPair>> RecordMatchJoin(
    const std::vector<std::vector<std::string>>& r,
    const std::vector<std::vector<std::string>>& s,
    const RecordMatchOptions& options, SimJoinStats* stats = nullptr);

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_RECORD_MATCH_H_
