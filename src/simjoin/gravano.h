#ifndef SSJOIN_SIMJOIN_GRAVANO_H_
#define SSJOIN_SIMJOIN_GRAVANO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "simjoin/types.h"

namespace ssjoin::simjoin {

/// \brief The customized edit-similarity join the paper benchmarks against
/// (§5.1, Figure 11): Gravano et al.'s "approximate string joins in a
/// database (almost) for free" [9], as the paper describes it — an equi-join
/// on q-grams with two additional filters (the difference in string lengths
/// must be small, and the positions of at least one common q-gram must be
/// close), followed by the edit-similarity verification.
///
/// Unlike the SSJoin plans, candidates are *not* screened by an overlap
/// HAVING clause, so many more pairs reach the verifier — Table 1's "Direct"
/// column; `stats->verifier_calls` reproduces it.
///
/// Phases recorded: "Prep" (q-gram index build), "Candidate-enumeration",
/// "EditSim-Filter" — the Figure 11 breakdown.
Result<std::vector<MatchPair>> GravanoEditSimilarityJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, size_t q, SimJoinStats* stats = nullptr);

/// \brief Fixed-threshold variant: pairs with `ED(r, s) <= max_distance`.
Result<std::vector<MatchPair>> GravanoEditDistanceJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    size_t max_distance, size_t q, SimJoinStats* stats = nullptr);

/// \brief The UDF-over-cross-product strawman the paper's introduction
/// dismisses: every pair goes straight to the edit-similarity UDF. Quadratic;
/// for the bench_naive_udf benchmark and small-input tests only.
Result<std::vector<MatchPair>> CrossProductEditSimilarityJoin(
    const std::vector<std::string>& r, const std::vector<std::string>& s,
    double alpha, SimJoinStats* stats = nullptr);

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_GRAVANO_H_
