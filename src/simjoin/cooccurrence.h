#ifndef SSJOIN_SIMJOIN_COOCCURRENCE_H_
#define SSJOIN_SIMJOIN_COOCCURRENCE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "simjoin/prep.h"
#include "simjoin/types.h"

namespace ssjoin::simjoin {

/// Beyond-textual similarity (§3.4): joins driven by co-occurrence with
/// other attributes and by agreement on soft functional dependencies.

/// Which Jaccard variant a co-occurrence join thresholds.
enum class JaccardVariant { kContainment, kResemblance };

/// \brief Result of an entity-level join: the distinct entities of each
/// input (in first-appearance order) and the matching index pairs.
struct EntityJoinResult {
  std::vector<std::string> r_entities;
  std::vector<std::string> s_entities;
  std::vector<MatchPair> matches;
};

/// \brief Co-occurrence join (Example 5, Figure 5): `rows` are
/// (entity, co-occurring item) pairs — e.g. (author name, paper title).
/// Two entities join when the Jaccard containment (or resemblance) of their
/// item sets is at least `alpha`. Implemented as a direct SSJoin with
/// A = entity, B = item.
Result<EntityJoinResult> CooccurrenceJoin(
    const std::vector<std::pair<std::string, std::string>>& r_rows,
    const std::vector<std::pair<std::string, std::string>>& s_rows, double alpha,
    JaccardVariant variant = JaccardVariant::kContainment,
    WeightMode weights = WeightMode::kIdf, const JoinExecution& exec = {},
    SimJoinStats* stats = nullptr);

/// \brief Soft-FD agreement join (Definition 7, Example 6, Figure 6):
/// records `t1 ~ t2` when they agree on at least `k` of the `h` attribute
/// columns. Each record becomes the set of (column, value) pairs and the
/// SSJoin predicate is the absolute overlap `Overlap >= k` — an exact
/// reduction. `r` and `s` are row-major with `h` columns each; `similarity`
/// in the output is the number of agreeing attributes.
Result<std::vector<MatchPair>> FDAgreementJoin(
    const std::vector<std::vector<std::string>>& r,
    const std::vector<std::vector<std::string>>& s, size_t k,
    const JoinExecution& exec = {}, SimJoinStats* stats = nullptr);

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_COOCCURRENCE_H_
