#ifndef SSJOIN_SIMJOIN_FUZZY_MATCH_H_
#define SSJOIN_SIMJOIN_FUZZY_MATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/order.h"
#include "core/sets.h"
#include "filter/attr.h"
#include "filter/be_index.h"
#include "filter/predicate.h"
#include "simjoin/prep.h"
#include "text/dictionary.h"
#include "text/tokenizer.h"

namespace ssjoin::simjoin {

/// \brief Top-K fuzzy matching against a reference table — the record-lookup
/// scenario of [4]/[6] that §6 notes is addressed "by composing the SSJoin
/// operator with the top-k operator ... for the best matches whose
/// similarity is above a certain threshold".
///
/// The reference relation is normalized and prefix-indexed once; each
/// Lookup tokenizes the query, probes the reference prefixes (Lemma 1
/// guarantees no candidate with resemblance >= alpha is missed), verifies
/// candidates with the exact Jaccard resemblance, and returns the K best.
///
/// Query tokens never seen in the reference cannot match anything but still
/// count toward the query's set weight (they dilute the resemblance), so
/// scores agree with what a batch join over reference ∪ {query} would
/// produce up to the IDF weight assigned to unseen tokens (the maximal
/// weight log(N), a rare-token assumption).
class FuzzyMatchIndex {
 public:
  struct Options {
    /// Tokenization of both reference and query strings.
    bool word_tokens = true;
    size_t q = 3;
    /// Minimum Jaccard resemblance for a match.
    double alpha = 0.5;
  };

  /// One lookup result: index into the reference vector plus the exact
  /// Jaccard resemblance.
  struct Match {
    uint32_t ref_index;
    double similarity;
  };

  /// Builds the index over a reference table. The strings are copied.
  static Result<FuzzyMatchIndex> Build(const std::vector<std::string>& reference,
                                       const Options& options);

  /// Reassembles an index from previously built (typically deserialized)
  /// parts without re-tokenizing — the warm-start path of serve::Snapshot.
  /// Cross-checks structural invariants (sizes and CSR layout consistency)
  /// and rejects inconsistent parts; it does not re-derive weights, order or
  /// prefixes, so callers must pass parts produced by Build.
  static Result<FuzzyMatchIndex> FromParts(
      Options options, std::vector<std::string> reference,
      text::TokenDictionary dict, core::WeightVector weights,
      double unseen_token_weight, core::ElementOrder order,
      core::SetsRelation sets, std::vector<uint32_t> prefix_offsets,
      std::vector<core::GroupId> prefix_postings);

  FuzzyMatchIndex(FuzzyMatchIndex&&) = default;
  FuzzyMatchIndex& operator=(FuzzyMatchIndex&&) = default;

  /// The best `k` reference strings with resemblance >= alpha, in
  /// descending similarity (ties by reference index).
  ///
  /// Thread safety: Lookup is const and touches only immutable state; any
  /// number of threads may call it concurrently on one index (exercised
  /// under TSan by test_fuzzy_match's ConcurrentLookups).
  std::vector<Match> Lookup(const std::string& query, size_t k) const;

  /// Filtered lookup: the boolean-expression attribute index yields the
  /// records eligible under `filter` (k-of-n counting match over packed
  /// posting entries), and that set is intersected with the similarity
  /// prefix-posting candidates BEFORE verification. Bit-identical to
  /// post-filtering the unfiltered lookup (same ids, similarity doubles and
  /// order); an empty filter is byte-identical to the 2-argument overload.
  std::vector<Match> Lookup(const std::string& query, size_t k,
                            const filter::FilterPredicate& filter) const;

  /// Attaches structured attributes (attrs[g] belongs to reference g) and
  /// builds the predicate index over them. Pass an empty vector to clear.
  /// Snapshot-loaded indexes start attribute-less; serving layers that need
  /// filtering over snapshots re-attach attributes through this call.
  Status AssignAttributes(std::vector<filter::AttrSet> attrs);

  /// Per-reference attributes; empty when none were assigned.
  const std::vector<filter::AttrSet>& attributes() const { return attrs_; }

  /// The reference string for a match.
  const std::string& reference(uint32_t index) const { return reference_[index]; }
  size_t size() const { return reference_.size(); }

  /// \name Component views (snapshot serialization and serving)
  /// @{
  const Options& options() const { return options_; }
  const std::vector<std::string>& reference_strings() const { return reference_; }
  const text::Tokenizer& tokenizer() const { return *tokenizer_; }
  const text::TokenDictionary& dictionary() const { return dict_; }
  const core::WeightVector& weights() const { return weights_; }
  double unseen_token_weight() const { return unseen_token_weight_; }
  const core::ElementOrder& order() const { return order_; }
  const core::SetsRelation& sets() const { return sets_; }
  const std::vector<uint32_t>& prefix_offsets() const { return prefix_offsets_; }
  const std::vector<core::GroupId>& prefix_postings() const {
    return prefix_postings_;
  }
  /// @}

 private:
  FuzzyMatchIndex() = default;

  Options options_;
  std::vector<std::string> reference_;
  std::unique_ptr<text::Tokenizer> tokenizer_;
  text::TokenDictionary dict_;
  core::WeightVector weights_;
  double unseen_token_weight_ = 0.0;
  core::ElementOrder order_;
  core::SetsRelation sets_;
  /// Inverted index over the reference sets' prefixes (element -> groups),
  /// CSR layout.
  std::vector<uint32_t> prefix_offsets_;
  std::vector<core::GroupId> prefix_postings_;
  /// Structured attributes (parallel to reference_; empty when unused) and
  /// the (attribute, value) -> groups predicate index over them.
  std::vector<filter::AttrSet> attrs_;
  filter::AttrIndex attr_index_;
};

}  // namespace ssjoin::simjoin

#endif  // SSJOIN_SIMJOIN_FUZZY_MATCH_H_
