#include "simjoin/record_match.h"

#include <unordered_set>

#include "common/hash.h"
#include "kernels/kernels.h"
#include "sim/edit_distance.h"
#include "sim/jaro.h"
#include "sim/set_overlap.h"
#include "sim/soundex.h"
#include "simjoin/prep.h"
#include "simjoin/string_joins.h"
#include "text/tokenizer.h"

namespace ssjoin::simjoin {

namespace {

Result<std::vector<std::string>> ExtractColumn(
    const std::vector<std::vector<std::string>>& rows, size_t column) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (column >= row.size()) {
      return Status::IndexError("rule references a column beyond the row width");
    }
    out.push_back(row[column]);
  }
  return out;
}

/// Exact verifier for one rule: prep data for Jaccard rules is built lazily
/// per (rule, column) by the caller and passed in.
class RuleVerifier {
 public:
  RuleVerifier(const ColumnRule& rule, const std::vector<std::string>& r_col,
               const std::vector<std::string>& s_col)
      : rule_(rule), r_col_(r_col), s_col_(s_col) {}

  Status Prepare() {
    if (rule_.sim == ColumnSim::kJaccard) {
      text::WordTokenizer tokenizer;
      SSJOIN_ASSIGN_OR_RETURN(
          prep_, PrepareStrings(r_col_, s_col_, tokenizer, WeightMode::kIdf));
    }
    return Status::OK();
  }

  bool Passes(uint32_t r, uint32_t s) const {
    switch (rule_.sim) {
      case ColumnSim::kEquality:
        return r_col_[r] == s_col_[s];
      case ColumnSim::kSoundex:
        return sim::SoundexEqual(r_col_[r], s_col_[s]);
      case ColumnSim::kEditSimilarity:
        return sim::EditSimilarityAtLeast(r_col_[r], s_col_[s], rule_.threshold);
      case ColumnSim::kJaroWinkler:
        return sim::JaroWinklerSimilarity(r_col_[r], s_col_[s]) >=
               rule_.threshold - 1e-12;
      case ColumnSim::kJaccard: {
        core::SetView rs = prep_.r.set(r);
        core::SetView ss = prep_.s.set(s);
        double overlap =
            kernels::IntersectWeighted(rs, ss, prep_.weights.data());
        double uni =
            prep_.r.set_weights[r] + prep_.s.set_weights[s] - overlap;
        double jr = uni > 0.0 ? overlap / uni : 1.0;
        return jr >= rule_.threshold - 1e-12;
      }
    }
    return false;
  }

 private:
  ColumnRule rule_;
  const std::vector<std::string>& r_col_;
  const std::vector<std::string>& s_col_;
  Prepared prep_;
};

/// Candidate generation via the blocking rule's SSJoin-based join.
Result<std::vector<MatchPair>> BlockingJoin(const ColumnRule& rule,
                                            const std::vector<std::string>& r_col,
                                            const std::vector<std::string>& s_col,
                                            const JoinExecution& exec,
                                            SimJoinStats* stats) {
  switch (rule.sim) {
    case ColumnSim::kEquality: {
      // Equality as an SSJoin with singleton whole-string sets.
      SetJoinOptions opts;
      opts.word_tokens = true;
      // Whole-string token: use containment 1.0 over a "no-split" tokenizer
      // is not expressible via SetJoinOptions; use Jaccard 1.0 over word
      // tokens as an equality-of-token-multisets block and verify exactly.
      return JaccardResemblanceJoin(r_col, s_col, 1.0, opts, exec, stats);
    }
    case ColumnSim::kSoundex:
      return SoundexJoin(r_col, s_col, exec, stats);
    case ColumnSim::kEditSimilarity:
      return EditSimilarityJoin(r_col, s_col, rule.threshold, 3, exec, stats);
    case ColumnSim::kJaccard:
      return JaccardResemblanceJoin(r_col, s_col, rule.threshold, {}, exec, stats);
    case ColumnSim::kJaroWinkler:
      return Status::Invalid(
          "Jaro-Winkler has no SSJoin reduction and cannot be the blocking "
          "(first) rule of a rule set");
  }
  return Status::Invalid("unknown column similarity");
}

}  // namespace

Result<std::vector<MatchPair>> RecordMatchJoin(
    const std::vector<std::vector<std::string>>& r,
    const std::vector<std::vector<std::string>>& s,
    const RecordMatchOptions& options, SimJoinStats* stats) {
  SimJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (options.rule_sets.empty()) {
    return Status::Invalid("at least one rule set is required");
  }
  for (const auto& rules : options.rule_sets) {
    if (rules.empty()) return Status::Invalid("rule sets must be non-empty");
  }

  std::vector<MatchPair> out;
  std::unordered_set<std::pair<uint32_t, uint32_t>, PairHash> seen;
  for (const auto& rules : options.rule_sets) {
    // Blocking join on the first rule's column.
    SSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> block_r,
                            ExtractColumn(r, rules[0].column));
    SSJOIN_ASSIGN_OR_RETURN(std::vector<std::string> block_s,
                            ExtractColumn(s, rules[0].column));
    SSJOIN_ASSIGN_OR_RETURN(
        std::vector<MatchPair> candidates,
        BlockingJoin(rules[0], block_r, block_s, options.exec, stats));

    // Verifiers for the remaining rules.
    std::vector<std::vector<std::string>> r_cols;
    std::vector<std::vector<std::string>> s_cols;
    std::vector<RuleVerifier> verifiers;
    r_cols.reserve(rules.size());
    s_cols.reserve(rules.size());
    for (size_t i = 1; i < rules.size(); ++i) {
      SSJOIN_ASSIGN_OR_RETURN(auto rc, ExtractColumn(r, rules[i].column));
      SSJOIN_ASSIGN_OR_RETURN(auto sc, ExtractColumn(s, rules[i].column));
      r_cols.push_back(std::move(rc));
      s_cols.push_back(std::move(sc));
    }
    for (size_t i = 1; i < rules.size(); ++i) {
      verifiers.emplace_back(rules[i], r_cols[i - 1], s_cols[i - 1]);
      SSJOIN_RETURN_NOT_OK(verifiers.back().Prepare());
    }
    // The equality blocking join over-approximates (it matches equal token
    // *multisets*, e.g. "a b" ~ "b a"), so re-verify it exactly.
    if (rules[0].sim == ColumnSim::kEquality) {
      verifiers.emplace_back(rules[0], block_r, block_s);
      SSJOIN_RETURN_NOT_OK(verifiers.back().Prepare());
    }

    for (const MatchPair& candidate : candidates) {
      if (seen.count({candidate.r, candidate.s})) continue;
      bool all_pass = true;
      for (const RuleVerifier& verifier : verifiers) {
        ++stats->verifier_calls;
        if (!verifier.Passes(candidate.r, candidate.s)) {
          all_pass = false;
          break;
        }
      }
      if (all_pass) {
        seen.insert({candidate.r, candidate.s});
        out.push_back(candidate);
      }
    }
  }
  stats->result_pairs = out.size();
  return out;
}

}  // namespace ssjoin::simjoin
