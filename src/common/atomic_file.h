#ifndef SSJOIN_COMMON_ATOMIC_FILE_H_
#define SSJOIN_COMMON_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace ssjoin::common {

/// \brief Writes `contents` to `path` atomically: the bytes go to a unique
/// sibling `*.tmp` file which is renamed over `path` only after a complete,
/// flushed write. Readers therefore see either the old file or the new one,
/// never a torn mix. On ANY failure (open, write, close, rename) the
/// temporary file is removed before returning, so no `*.tmp` strays survive.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// \brief Reads an entire file into `*out`. Companion to WriteFileAtomic.
Status ReadFile(const std::string& path, std::string* out);

/// Test-only failure injection for WriteFileAtomic: the next `count` calls
/// fail at the given step (after creating whatever real files that step
/// naturally creates), exercising the cleanup paths.
enum class AtomicWriteFailure {
  kNone,
  kOpen,    // fopen fails
  kWrite,   // write fails after a partial write hit the temp file
  kRename,  // rename fails after a fully written temp file
};
void InjectAtomicWriteFailureForTest(AtomicWriteFailure mode, int count);

}  // namespace ssjoin::common

#endif  // SSJOIN_COMMON_ATOMIC_FILE_H_
