#ifndef SSJOIN_COMMON_LOGGING_H_
#define SSJOIN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace ssjoin {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "%s:%d: SSJOIN_CHECK(%s) failed\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace ssjoin

/// Invariant check that is always on. Use only for conditions whose failure
/// indicates a bug in the library or its caller, never for data errors
/// (those return Status).
#define SSJOIN_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) ::ssjoin::internal::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (false)

/// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SSJOIN_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define SSJOIN_DCHECK(cond) SSJOIN_CHECK(cond)
#endif

#endif  // SSJOIN_COMMON_LOGGING_H_
