#include "common/atomic_file.h"

#include <atomic>
#include <cstdio>

#include <unistd.h>

namespace ssjoin::common {

namespace {

std::atomic<AtomicWriteFailure> g_failure_mode{AtomicWriteFailure::kNone};
std::atomic<int> g_failure_count{0};

bool ConsumeInjectedFailure(AtomicWriteFailure step) {
  if (g_failure_mode.load(std::memory_order_relaxed) != step) return false;
  int left = g_failure_count.fetch_sub(1, std::memory_order_relaxed);
  if (left <= 0) {
    g_failure_count.store(0, std::memory_order_relaxed);
    return false;
  }
  return true;
}

/// Removes the temp file on every exit path unless the rename committed it.
class TempFileGuard {
 public:
  explicit TempFileGuard(std::string path) : path_(std::move(path)) {}
  ~TempFileGuard() {
    if (!committed_) std::remove(path_.c_str());
  }
  TempFileGuard(const TempFileGuard&) = delete;
  TempFileGuard& operator=(const TempFileGuard&) = delete;

  void Commit() { committed_ = true; }

 private:
  std::string path_;
  bool committed_ = false;
};

}  // namespace

void InjectAtomicWriteFailureForTest(AtomicWriteFailure mode, int count) {
  g_failure_mode.store(mode, std::memory_order_relaxed);
  g_failure_count.store(count, std::memory_order_relaxed);
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  // Unique per process and per call: concurrent writers (or a writer racing
  // its own crashed predecessor) never stomp each other's temp file.
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + "." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1)) + ".tmp";

  std::FILE* f =
      ConsumeInjectedFailure(AtomicWriteFailure::kOpen) ? nullptr : std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + tmp + "' for writing");
  }
  TempFileGuard guard(tmp);

  bool ok;
  if (ConsumeInjectedFailure(AtomicWriteFailure::kWrite)) {
    // Simulate a mid-way short write: half the bytes land, then failure.
    std::fwrite(contents.data(), 1, contents.size() / 2, f);
    ok = false;
  } else {
    ok = contents.empty() ||
         std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    return Status::IOError("short write to '" + tmp + "'");
  }

  if (ConsumeInjectedFailure(AtomicWriteFailure::kRename) ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  guard.Commit();
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "'");
  }
  out->clear();
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("error reading '" + path + "'");
  }
  return Status::OK();
}

}  // namespace ssjoin::common
