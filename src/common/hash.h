#ifndef SSJOIN_COMMON_HASH_H_
#define SSJOIN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>

namespace ssjoin {

/// \brief 64-bit mix function (Murmur3 finalizer). Good avalanche behaviour
/// for integer keys used in hash joins and group-bys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Combines two hash values (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// \brief FNV-1a string hash.
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Hash functor for pairs of integers (e.g. <R.A, S.A> group keys).
struct PairHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
    return static_cast<size_t>(HashCombine(Mix64(p.first), p.second));
  }
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    return static_cast<size_t>(
        HashCombine(Mix64(p.first), static_cast<uint64_t>(p.second)));
  }
};

}  // namespace ssjoin

#endif  // SSJOIN_COMMON_HASH_H_
