#ifndef SSJOIN_COMMON_RESULT_H_
#define SSJOIN_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace ssjoin {

/// \brief Either a value of type `T` or an error `Status`.
///
/// The usual Arrow-style accessor set: `ok()`, `status()`, `ValueOrDie()`,
/// plus `SSJOIN_ASSIGN_OR_RETURN` for composing fallible calls.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common, successful path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from an error status. Constructing a Result from
  /// an OK status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    SSJOIN_DCHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the value; dies if this result holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out of the result; dies if it holds an error.
  T&& MoveValueUnsafe() {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::get<Status>(repr_).AbortIfError();
    }
  }

  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define SSJOIN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

#define SSJOIN_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define SSJOIN_ASSIGN_OR_RETURN_CONCAT(x, y) SSJOIN_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define SSJOIN_ASSIGN_OR_RETURN(lhs, rexpr) \
  SSJOIN_ASSIGN_OR_RETURN_IMPL(             \
      SSJOIN_ASSIGN_OR_RETURN_CONCAT(_ssjoin_result_, __LINE__), lhs, rexpr)

}  // namespace ssjoin

#endif  // SSJOIN_COMMON_RESULT_H_
