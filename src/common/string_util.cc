#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ssjoin {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}

}  // namespace

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsAsciiSpace(s[begin])) ++begin;
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Leading whitespace is dropped.
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!in_space) {
        out.push_back(' ');
        in_space = true;
      }
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> SplitAndDropEmpty(std::string_view s, std::string_view delims) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) pieces.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap_copy);
  }
  va_end(ap_copy);
  return out;
}

namespace {

/// strto* skip leading whitespace and stop at trailing junk; a flag value
/// must be exactly one number, so both are errors here.
Status CheckNumericShape(const std::string& s) {
  if (s.empty()) return Status::Invalid("expected a number, got an empty string");
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      return Status::Invalid("expected a number, got '" + s + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<uint64_t> ParseUint64(std::string_view sv) {
  std::string s(sv);
  SSJOIN_RETURN_NOT_OK(CheckNumericShape(s));
  if (s[0] == '-') {
    return Status::Invalid("expected a nonnegative integer, got '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::Invalid("invalid integer '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::Invalid("integer out of range: '" + s + "'");
  }
  return static_cast<uint64_t>(v);
}

Result<int64_t> ParseInt64(std::string_view sv) {
  std::string s(sv);
  SSJOIN_RETURN_NOT_OK(CheckNumericShape(s));
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::Invalid("invalid integer '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::Invalid("integer out of range: '" + s + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view sv) {
  std::string s(sv);
  SSJOIN_RETURN_NOT_OK(CheckNumericShape(s));
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::Invalid("invalid number '" + s + "'");
  }
  if (!std::isfinite(v)) {
    return Status::Invalid("number out of range: '" + s + "'");
  }
  return v;
}

}  // namespace ssjoin
