#ifndef SSJOIN_COMMON_RNG_H_
#define SSJOIN_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace ssjoin {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All data generators and randomized tests in this repository draw from this
/// generator with explicit seeds so that every experiment is reproducible.
/// The implementation follows Blackman & Vigna's reference xoshiro256**.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams on every platform.
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, the recommended way to initialize xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    SSJOIN_DCHECK(bound > 0);
    // Debiased modulo via rejection sampling (Lemire-style threshold).
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SSJOIN_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses inverse-CDF over precomputed cumulative weights when called through
  /// ZipfTable; this method is a convenience for one-off draws (O(n)).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// \brief Precomputed inverse-CDF table for fast repeated Zipf draws.
class ZipfTable {
 public:
  /// Builds the cumulative distribution for ranks [0, n) with exponent `s`.
  ZipfTable(uint64_t n, double s);

  /// Draws a rank in [0, n); O(log n).
  uint64_t Sample(Rng* rng) const;

  uint64_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ssjoin

#endif  // SSJOIN_COMMON_RNG_H_
