#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace ssjoin {

uint64_t Rng::Zipf(uint64_t n, double s) {
  SSJOIN_DCHECK(n > 0);
  ZipfTable table(n, s);
  return table.Sample(this);
}

ZipfTable::ZipfTable(uint64_t n, double s) {
  SSJOIN_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfTable::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace ssjoin
