#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ssjoin {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIndexError:
      return "Index error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternalError:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::AbortIfError() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace ssjoin
