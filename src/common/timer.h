#ifndef SSJOIN_COMMON_TIMER_H_
#define SSJOIN_COMMON_TIMER_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace ssjoin {

/// \brief Monotonic stopwatch measuring elapsed wall-clock time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates named phase timings (Prep / Prefix-filter / SSJoin /
/// Filter), matching the per-phase breakdown reported in the paper's figures.
class PhaseTimer {
 public:
  /// Adds `millis` to the phase named `phase`, creating it on first use.
  /// Phases keep their first-recorded order.
  void Add(const std::string& phase, double millis) {
    for (auto& [name, total] : phases_) {
      if (name == phase) {
        total += millis;
        return;
      }
    }
    phases_.emplace_back(phase, millis);
  }

  /// Runs `fn` and records its duration under `phase`.
  template <typename Fn>
  auto Measure(const std::string& phase, Fn&& fn) {
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      Add(phase, t.ElapsedMillis());
    } else {
      auto result = fn();
      Add(phase, t.ElapsedMillis());
      return result;
    }
  }

  /// Total time recorded under `phase`, or 0 if the phase never ran.
  double Millis(const std::string& phase) const {
    for (const auto& [name, total] : phases_) {
      if (name == phase) return total;
    }
    return 0.0;
  }

  /// Sum over all phases.
  double TotalMillis() const {
    double total = 0.0;
    for (const auto& [name, millis] : phases_) total += millis;
    return total;
  }

  /// Phases in first-recorded order.
  const std::vector<std::pair<std::string, double>>& phases() const { return phases_; }

  void Clear() { phases_.clear(); }

  /// Merges another timer's phases into this one.
  void Merge(const PhaseTimer& other) {
    for (const auto& [name, millis] : other.phases_) Add(name, millis);
  }

 private:
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace ssjoin

#endif  // SSJOIN_COMMON_TIMER_H_
