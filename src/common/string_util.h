#ifndef SSJOIN_COMMON_STRING_UTIL_H_
#define SSJOIN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ssjoin {

/// \brief ASCII-lowercases a string.
std::string ToLowerAscii(std::string_view s);

/// \brief Trims ASCII whitespace from both ends.
std::string_view TrimAscii(std::string_view s);

/// \brief Collapses runs of ASCII whitespace into single spaces and trims.
/// "  Microsoft   Corp " -> "Microsoft Corp".
std::string CollapseWhitespace(std::string_view s);

/// \brief Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitAndDropEmpty(std::string_view s, std::string_view delims);

/// \brief Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// \brief printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \name Checked numeric parsing
/// Strict replacements for atoi/atof in flag and input handling: the entire
/// string must be one number (no stray bytes, no embedded whitespace), and
/// out-of-range or non-finite values fail instead of saturating. Unlike
/// atoi, "abc" is an error, not 0; unlike strtoull, "-1" is an error, not
/// 2^64-1.
/// @{
Result<uint64_t> ParseUint64(std::string_view s);
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);
/// @}

}  // namespace ssjoin

#endif  // SSJOIN_COMMON_STRING_UTIL_H_
