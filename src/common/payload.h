#ifndef SSJOIN_COMMON_PAYLOAD_H_
#define SSJOIN_COMMON_PAYLOAD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/result.h"

namespace ssjoin::common {

/// \brief Appends fixed-width little-endian scalars and length-prefixed
/// blobs to a growing payload buffer. The wire format shared by snapshot
/// files (serve), index manifests, sealed segments and the WAL (index).
class PayloadWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// \brief Bounds-checked reader over a payload; every accessor fails with a
/// "truncated" status instead of reading past the end.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit PayloadReader(std::string_view bytes)
      : PayloadReader(bytes.data(), bytes.size()) {}

  Status U8(uint8_t* out) { return Raw(out, sizeof(*out)); }
  Status U32(uint32_t* out) { return Raw(out, sizeof(*out)); }
  Status U64(uint64_t* out) { return Raw(out, sizeof(*out)); }
  Status F64(double* out) { return Raw(out, sizeof(*out)); }

  Status Str(std::string* out) {
    uint64_t n = 0;
    SSJOIN_RETURN_NOT_OK(U64(&n));
    if (n > Remaining()) return Truncated();
    out->assign(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  template <typename T>
  Status Vec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    SSJOIN_RETURN_NOT_OK(U64(&n));
    if (n > Remaining() / sizeof(T)) return Truncated();
    out->resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(out->data(), data_ + pos_, static_cast<size_t>(n) * sizeof(T));
      pos_ += static_cast<size_t>(n) * sizeof(T);
    }
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  size_t Remaining() const { return size_ - pos_; }
  static Status Truncated() {
    return Status::IOError("snapshot payload truncated");
  }
  Status Raw(void* out, size_t n) {
    if (n > Remaining()) return Truncated();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace ssjoin::common

#endif  // SSJOIN_COMMON_PAYLOAD_H_
