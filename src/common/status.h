#ifndef SSJOIN_COMMON_STATUS_H_
#define SSJOIN_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace ssjoin {

/// \brief Error categories used across the library.
///
/// Mirrors the Arrow/RocksDB convention: library code never throws; fallible
/// operations return `Status` (or `Result<T>`, see result.h) instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,
  kTypeError = 3,
  kIndexError = 4,
  kOutOfRange = 5,
  kNotImplemented = 6,
  kInternalError = 7,
  kIOError = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument" etc.).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: either OK or a code plus message.
///
/// The OK status is represented without allocation; error statuses carry a
/// heap-allocated state. `Status` is cheap to move and to test for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternalError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// Renders e.g. "Invalid argument: threshold must be positive".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. For use in
  /// examples and benchmarks where errors are programming bugs.
  void AbortIfError() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

/// Propagates an error status from the current function, RocksDB-style.
#define SSJOIN_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::ssjoin::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace ssjoin

#endif  // SSJOIN_COMMON_STATUS_H_
