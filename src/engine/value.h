#ifndef SSJOIN_ENGINE_VALUE_H_
#define SSJOIN_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/logging.h"

namespace ssjoin::engine {

/// \brief Column data types supported by the mini relational engine.
///
/// The paper's normalized set representations only need integers (group ids,
/// token ids, ordinals), floating point (weights, norms) and strings (raw
/// attribute values), so the engine supports exactly those three.
enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
};

/// \brief Returns "int64" / "float64" / "string".
const char* DataTypeToString(DataType type);

/// \brief A single typed cell value, used at row-level API boundaries
/// (TableBuilder::AppendRow, Table::GetValue). Bulk operators work directly
/// on typed column vectors instead.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  Value(int64_t v) : repr_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : repr_(int64_t{v}) {}     // NOLINT
  Value(double v) : repr_(v) {}           // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  DataType type() const { return static_cast<DataType>(repr_.index()); }

  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_float64() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t int64() const {
    SSJOIN_DCHECK(is_int64());
    return std::get<int64_t>(repr_);
  }
  double float64() const {
    SSJOIN_DCHECK(is_float64());
    return std::get<double>(repr_);
  }
  const std::string& string() const {
    SSJOIN_DCHECK(is_string());
    return std::get<std::string>(repr_);
  }

  /// Numeric view: int64 widened to double. Dies on strings.
  double AsDouble() const {
    if (is_int64()) return static_cast<double>(int64());
    return float64();
  }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator<(const Value& other) const {
    SSJOIN_DCHECK(repr_.index() == other.repr_.index());
    return repr_ < other.repr_;
  }

  /// Renders the value for debugging / table printing.
  std::string ToString() const;

  /// Hash consistent with operator==.
  uint64_t Hash() const {
    switch (type()) {
      case DataType::kInt64:
        return Mix64(static_cast<uint64_t>(int64()));
      case DataType::kFloat64: {
        double d = float64();
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return Mix64(bits);
      }
      case DataType::kString:
        return HashString(string());
    }
    return 0;
  }

 private:
  std::variant<int64_t, double, std::string> repr_;
};

}  // namespace ssjoin::engine

#endif  // SSJOIN_ENGINE_VALUE_H_
