#ifndef SSJOIN_ENGINE_SCHEMA_H_
#define SSJOIN_ENGINE_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/value.h"

namespace ssjoin::engine {

/// \brief A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const = default;
};

/// \brief Ordered list of fields describing a Table's columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const {
    SSJOIN_DCHECK(i < fields_.size());
    return fields_[i];
  }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or -1 if absent.
  int FindField(const std::string& name) const;

  /// Index of the column named `name`, or KeyError if absent.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Appends a field. Duplicate names are rejected.
  Status AddField(Field field);

  /// Schema with the fields of `this` followed by the fields of `other`;
  /// clashing names in `other` get `suffix` appended.
  Schema Concat(const Schema& other, const std::string& suffix = "_r") const;

  bool operator==(const Schema& other) const = default;

  /// "(a: int64, b: string)" rendering for error messages.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace ssjoin::engine

#endif  // SSJOIN_ENGINE_SCHEMA_H_
