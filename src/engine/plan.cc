#include "engine/plan.h"

#include "common/string_util.h"

namespace ssjoin::engine {

std::string PlanNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += '\n';
  for (const PlanPtr& child : children()) {
    out += child->ToString(indent + 1);
  }
  return out;
}

namespace {

class ScanNodeImpl final : public PlanNode {
 public:
  ScanNodeImpl(Table table, std::string label)
      : table_(std::move(table)), label_(std::move(label)) {}
  Result<Table> Execute() const override { return table_; }
  std::string Describe() const override {
    return StringPrintf("Scan(%s: %zu rows, schema %s)", label_.c_str(),
                        table_.num_rows(), table_.schema().ToString().c_str());
  }

 private:
  Table table_;
  std::string label_;
};

class UnaryNode : public PlanNode {
 public:
  explicit UnaryNode(PlanPtr input) : input_(std::move(input)) {}
  std::vector<PlanPtr> children() const override { return {input_}; }

 protected:
  const PlanPtr input_;
};

class FilterNodeImpl final : public UnaryNode {
 public:
  FilterNodeImpl(PlanPtr input, ExprPtr predicate)
      : UnaryNode(std::move(input)), predicate_(std::move(predicate)) {}
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table in, input_->Execute());
    return FilterWhere(in, predicate_);
  }
  std::string Describe() const override {
    return "Filter(" + (predicate_ ? predicate_->ToString() : "<null>") + ")";
  }

 private:
  ExprPtr predicate_;
};

class ProjectNodeImpl final : public UnaryNode {
 public:
  ProjectNodeImpl(PlanPtr input, std::vector<std::string> columns)
      : UnaryNode(std::move(input)), columns_(std::move(columns)) {}
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table in, input_->Execute());
    return Project(in, columns_);
  }
  std::string Describe() const override {
    return "Project(" + Join(columns_, ", ") + ")";
  }

 private:
  std::vector<std::string> columns_;
};

class ProjectExprsNodeImpl final : public UnaryNode {
 public:
  ProjectExprsNodeImpl(PlanPtr input,
                       std::vector<std::pair<std::string, ExprPtr>> exprs)
      : UnaryNode(std::move(input)), exprs_(std::move(exprs)) {}
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table in, input_->Execute());
    return ProjectExprs(in, exprs_);
  }
  std::string Describe() const override {
    std::vector<std::string> parts;
    for (const auto& [name, e] : exprs_) {
      parts.push_back(name + " = " + (e ? e->ToString() : "<null>"));
    }
    return "ProjectExprs(" + Join(parts, ", ") + ")";
  }

 private:
  std::vector<std::pair<std::string, ExprPtr>> exprs_;
};

class RenameNodeImpl final : public UnaryNode {
 public:
  RenameNodeImpl(PlanPtr input, std::vector<std::pair<std::string, std::string>> rn)
      : UnaryNode(std::move(input)), renames_(std::move(rn)) {}
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table in, input_->Execute());
    return Rename(in, renames_);
  }
  std::string Describe() const override {
    std::vector<std::string> parts;
    for (const auto& [from, to] : renames_) parts.push_back(from + "->" + to);
    return "Rename(" + Join(parts, ", ") + ")";
  }

 private:
  std::vector<std::pair<std::string, std::string>> renames_;
};

class HashJoinNodeImpl final : public PlanNode {
 public:
  HashJoinNodeImpl(PlanPtr left, PlanPtr right, std::vector<std::string> lk,
                   std::vector<std::string> rk)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(lk)),
        right_keys_(std::move(rk)) {}
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table l, left_->Execute());
    SSJOIN_ASSIGN_OR_RETURN(Table r, right_->Execute());
    return HashEquiJoin(l, r, left_keys_, right_keys_);
  }
  std::string Describe() const override {
    return "HashJoin(" + Join(left_keys_, ",") + " = " + Join(right_keys_, ",") +
           ")";
  }
  std::vector<PlanPtr> children() const override { return {left_, right_}; }

 private:
  PlanPtr left_;
  PlanPtr right_;
  std::vector<std::string> left_keys_;
  std::vector<std::string> right_keys_;
};

class GroupByNodeImpl final : public UnaryNode {
 public:
  GroupByNodeImpl(PlanPtr input, std::vector<std::string> group_columns,
                  std::vector<AggSpec> aggs, ExprPtr having)
      : UnaryNode(std::move(input)),
        group_columns_(std::move(group_columns)),
        aggs_(std::move(aggs)),
        having_(std::move(having)) {}
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table in, input_->Execute());
    SSJOIN_ASSIGN_OR_RETURN(Table grouped,
                            HashGroupBy(in, group_columns_, aggs_));
    if (having_ == nullptr) return grouped;
    return FilterWhere(grouped, having_);
  }
  std::string Describe() const override {
    std::string out = "GroupBy(" + Join(group_columns_, ", ");
    for (const AggSpec& a : aggs_) out += "; " + a.output_name;
    if (having_) out += " HAVING " + having_->ToString();
    out += ")";
    return out;
  }

 private:
  std::vector<std::string> group_columns_;
  std::vector<AggSpec> aggs_;
  ExprPtr having_;
};

class OrderByNodeImpl final : public UnaryNode {
 public:
  OrderByNodeImpl(PlanPtr input, std::vector<std::string> columns)
      : UnaryNode(std::move(input)), columns_(std::move(columns)) {}
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table in, input_->Execute());
    return OrderBy(in, columns_);
  }
  std::string Describe() const override {
    return "OrderBy(" + Join(columns_, ", ") + ")";
  }

 private:
  std::vector<std::string> columns_;
};

class DistinctNodeImpl final : public UnaryNode {
 public:
  using UnaryNode::UnaryNode;
  Result<Table> Execute() const override {
    SSJOIN_ASSIGN_OR_RETURN(Table in, input_->Execute());
    return Distinct(in);
  }
  std::string Describe() const override { return "Distinct"; }
};

}  // namespace

PlanPtr ScanNode(Table table, std::string label) {
  return std::make_shared<ScanNodeImpl>(std::move(table), std::move(label));
}
PlanPtr FilterNode(PlanPtr input, ExprPtr predicate) {
  return std::make_shared<FilterNodeImpl>(std::move(input), std::move(predicate));
}
PlanPtr ProjectNode(PlanPtr input, std::vector<std::string> columns) {
  return std::make_shared<ProjectNodeImpl>(std::move(input), std::move(columns));
}
PlanPtr ProjectExprsNode(PlanPtr input,
                         std::vector<std::pair<std::string, ExprPtr>> exprs) {
  return std::make_shared<ProjectExprsNodeImpl>(std::move(input), std::move(exprs));
}
PlanPtr RenameNode(PlanPtr input,
                   std::vector<std::pair<std::string, std::string>> renames) {
  return std::make_shared<RenameNodeImpl>(std::move(input), std::move(renames));
}
PlanPtr HashJoinNode(PlanPtr left, PlanPtr right, std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys) {
  return std::make_shared<HashJoinNodeImpl>(std::move(left), std::move(right),
                                            std::move(left_keys),
                                            std::move(right_keys));
}
PlanPtr GroupByNode(PlanPtr input, std::vector<std::string> group_columns,
                    std::vector<AggSpec> aggs, ExprPtr having) {
  return std::make_shared<GroupByNodeImpl>(std::move(input),
                                           std::move(group_columns),
                                           std::move(aggs), std::move(having));
}
PlanPtr OrderByNode(PlanPtr input, std::vector<std::string> columns) {
  return std::make_shared<OrderByNodeImpl>(std::move(input), std::move(columns));
}
PlanPtr DistinctNode(PlanPtr input) {
  return std::make_shared<DistinctNodeImpl>(std::move(input));
}

}  // namespace ssjoin::engine
