#include "engine/schema.h"

#include "common/string_util.h"

namespace ssjoin::engine {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(int64());
    case DataType::kFloat64:
      return StringPrintf("%g", float64());
    case DataType::kString:
      return string();
  }
  return "";
}

int Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  int idx = FindField(name);
  if (idx < 0) {
    return Status::KeyError("no column named '" + name + "' in schema " + ToString());
  }
  return static_cast<size_t>(idx);
}

Status Schema::AddField(Field field) {
  if (FindField(field.name) >= 0) {
    return Status::Invalid("duplicate column name '" + field.name + "'");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

Schema Schema::Concat(const Schema& other, const std::string& suffix) const {
  Schema out = *this;
  for (const Field& f : other.fields_) {
    Field renamed = f;
    while (out.FindField(renamed.name) >= 0) renamed.name += suffix;
    out.fields_.push_back(std::move(renamed));
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace ssjoin::engine
