#ifndef SSJOIN_ENGINE_TABLE_H_
#define SSJOIN_ENGINE_TABLE_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/schema.h"
#include "engine/value.h"

namespace ssjoin::engine {

/// \brief A column of values, stored as a typed contiguous vector.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return static_cast<DataType>(repr_.index()); }
  size_t size() const;

  /// Typed accessors. Calling the wrong accessor for the column type is a
  /// programming error (DCHECK).
  std::vector<int64_t>& int64s() {
    SSJOIN_DCHECK(type() == DataType::kInt64);
    return std::get<std::vector<int64_t>>(repr_);
  }
  const std::vector<int64_t>& int64s() const {
    SSJOIN_DCHECK(type() == DataType::kInt64);
    return std::get<std::vector<int64_t>>(repr_);
  }
  std::vector<double>& float64s() {
    SSJOIN_DCHECK(type() == DataType::kFloat64);
    return std::get<std::vector<double>>(repr_);
  }
  const std::vector<double>& float64s() const {
    SSJOIN_DCHECK(type() == DataType::kFloat64);
    return std::get<std::vector<double>>(repr_);
  }
  std::vector<std::string>& strings() {
    SSJOIN_DCHECK(type() == DataType::kString);
    return std::get<std::vector<std::string>>(repr_);
  }
  const std::vector<std::string>& strings() const {
    SSJOIN_DCHECK(type() == DataType::kString);
    return std::get<std::vector<std::string>>(repr_);
  }

  /// Row-level access (boxes the cell into a Value).
  Value GetValue(size_t row) const;
  void Append(const Value& v);
  /// Appends the cell `other[row]` to this column. Types must match.
  void AppendFrom(const Column& other, size_t row);

  void Reserve(size_t n);

 private:
  std::variant<std::vector<int64_t>, std::vector<double>, std::vector<std::string>>
      repr_;
};

/// \brief An immutable-by-convention, column-oriented relation.
///
/// Tables are the unit of data flow between engine operators (materialized
/// operator model; see DESIGN.md §6). Use TableBuilder or FromRows to create.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Builds a table from row-major values. Types must match the schema.
  static Result<Table> FromRows(Schema schema,
                                const std::vector<std::vector<Value>>& rows);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const Column& column(size_t i) const {
    SSJOIN_DCHECK(i < columns_.size());
    return columns_[i];
  }
  Column& column(size_t i) {
    SSJOIN_DCHECK(i < columns_.size());
    return columns_[i];
  }

  /// Column by name; KeyError if absent.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Cell accessor (boxes into Value).
  Value GetValue(size_t col, size_t row) const { return columns_[col].GetValue(row); }

  /// Appends a row of values; types must match the schema.
  Status AppendRow(const std::vector<Value>& row);

  /// Appends row `row` of `other` (same schema) to this table.
  void AppendRowFrom(const Table& other, size_t row);

  /// Appends one row formed by concatenating row `lrow` of `left` and row
  /// `rrow` of `right`. This table's schema must be the concatenation of the
  /// two inputs' schemas (as produced by Schema::Concat). Used by joins.
  void AppendConcatRow(const Table& left, size_t lrow, const Table& right, size_t rrow);

  /// Returns a table with only the rows whose indices appear in `indices`,
  /// in that order.
  Table Take(const std::vector<size_t>& indices) const;

  void Reserve(size_t n);

  /// Renders the first `max_rows` rows as an aligned ASCII table.
  std::string ToString(size_t max_rows = 20) const;

  /// Equal schemas, row counts, and cell-by-cell equal contents.
  bool ContentEquals(const Table& other) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace ssjoin::engine

#endif  // SSJOIN_ENGINE_TABLE_H_
