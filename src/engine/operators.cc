#include "engine/operators.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"

namespace ssjoin::engine {

namespace {

/// Resolves column names to indices, or KeyError.
Result<std::vector<size_t>> ResolveColumns(const Table& t,
                                           const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    SSJOIN_ASSIGN_OR_RETURN(size_t idx, t.schema().FieldIndex(name));
    out.push_back(idx);
  }
  return out;
}

uint64_t HashRowKey(const Table& t, const std::vector<size_t>& cols, size_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t c : cols) h = HashCombine(h, t.GetValue(c, row).Hash());
  return h;
}

bool RowKeysEqual(const Table& a, const std::vector<size_t>& a_cols, size_t a_row,
                  const Table& b, const std::vector<size_t>& b_cols, size_t b_row) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (!(a.GetValue(a_cols[i], a_row) == b.GetValue(b_cols[i], b_row))) return false;
  }
  return true;
}

/// Three-way comparison of rows on key columns; types must match pairwise.
int CompareRowKeys(const Table& a, const std::vector<size_t>& a_cols, size_t a_row,
                   const Table& b, const std::vector<size_t>& b_cols, size_t b_row) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    Value va = a.GetValue(a_cols[i], a_row);
    Value vb = b.GetValue(b_cols[i], b_row);
    if (va < vb) return -1;
    if (vb < va) return 1;
  }
  return 0;
}

Status CheckKeyTypesMatch(const Table& left, const std::vector<size_t>& lcols,
                          const Table& right, const std::vector<size_t>& rcols) {
  if (lcols.size() != rcols.size() || lcols.empty()) {
    return Status::Invalid("join key lists must be non-empty and equal length");
  }
  for (size_t i = 0; i < lcols.size(); ++i) {
    if (left.schema().field(lcols[i]).type != right.schema().field(rcols[i]).type) {
      return Status::TypeError(StringPrintf(
          "join key %zu type mismatch: %s vs %s", i,
          DataTypeToString(left.schema().field(lcols[i]).type),
          DataTypeToString(right.schema().field(rcols[i]).type)));
    }
  }
  return Status::OK();
}

Table BuildJoinOutput(const Table& left, const Table& right,
                      const std::vector<std::pair<size_t, size_t>>& matches) {
  Schema out_schema = left.schema().Concat(right.schema());
  Table out(out_schema);
  out.Reserve(matches.size());
  for (const auto& [l, r] : matches) {
    out.AppendConcatRow(left, l, right, r);
  }
  return out;
}

}  // namespace

Result<Table> Project(const Table& input, const std::vector<std::string>& columns) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> cols, ResolveColumns(input, columns));
  std::vector<Field> fields;
  for (size_t c : cols) fields.push_back(input.schema().field(c));
  Table out{Schema(std::move(fields))};
  out.Reserve(input.num_rows());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(cols.size());
    for (size_t c : cols) row.push_back(input.GetValue(c, r));
    SSJOIN_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

Result<Table> Rename(const Table& input,
                     const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<Field> fields = input.schema().fields();
  for (const auto& [old_name, new_name] : renames) {
    bool found = false;
    for (Field& f : fields) {
      if (f.name == old_name) {
        f.name = new_name;
        found = true;
        break;
      }
    }
    if (!found) return Status::KeyError("no column named '" + old_name + "'");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    for (size_t j = i + 1; j < fields.size(); ++j) {
      if (fields[i].name == fields[j].name) {
        return Status::Invalid("rename would duplicate column '" + fields[i].name +
                               "'");
      }
    }
  }
  Table renamed{Schema(fields)};
  renamed.Reserve(input.num_rows());
  for (size_t r = 0; r < input.num_rows(); ++r) renamed.AppendRowFrom(input, r);
  return renamed;
}

Result<Table> Filter(const Table& input, const RowPredicate& pred) {
  if (!pred) return Status::Invalid("Filter requires a predicate");
  std::vector<size_t> keep;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    if (pred(input, r)) keep.push_back(r);
  }
  return input.Take(keep);
}

Result<Table> HashEquiJoin(const Table& left, const Table& right,
                           const std::vector<std::string>& left_keys,
                           const std::vector<std::string>& right_keys) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> lcols, ResolveColumns(left, left_keys));
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> rcols, ResolveColumns(right, right_keys));
  SSJOIN_RETURN_NOT_OK(CheckKeyTypesMatch(left, lcols, right, rcols));

  // Build side: hash the smaller relation (classic build/probe choice).
  const bool build_left = left.num_rows() <= right.num_rows();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const std::vector<size_t>& bcols = build_left ? lcols : rcols;
  const std::vector<size_t>& pcols = build_left ? rcols : lcols;

  std::unordered_map<uint64_t, std::vector<size_t>> ht;
  ht.reserve(build.num_rows() * 2);
  for (size_t r = 0; r < build.num_rows(); ++r) {
    ht[HashRowKey(build, bcols, r)].push_back(r);
  }

  std::vector<std::pair<size_t, size_t>> matches;  // (left_row, right_row)
  for (size_t pr = 0; pr < probe.num_rows(); ++pr) {
    auto it = ht.find(HashRowKey(probe, pcols, pr));
    if (it == ht.end()) continue;
    for (size_t br : it->second) {
      if (!RowKeysEqual(build, bcols, br, probe, pcols, pr)) continue;
      if (build_left) {
        matches.emplace_back(br, pr);
      } else {
        matches.emplace_back(pr, br);
      }
    }
  }
  return BuildJoinOutput(left, right, matches);
}

Result<Table> SortMergeJoin(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> lcols, ResolveColumns(left, left_keys));
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> rcols, ResolveColumns(right, right_keys));
  SSJOIN_RETURN_NOT_OK(CheckKeyTypesMatch(left, lcols, right, rcols));

  std::vector<size_t> lorder(left.num_rows());
  std::iota(lorder.begin(), lorder.end(), 0);
  std::sort(lorder.begin(), lorder.end(), [&](size_t a, size_t b) {
    return CompareRowKeys(left, lcols, a, left, lcols, b) < 0;
  });
  std::vector<size_t> rorder(right.num_rows());
  std::iota(rorder.begin(), rorder.end(), 0);
  std::sort(rorder.begin(), rorder.end(), [&](size_t a, size_t b) {
    return CompareRowKeys(right, rcols, a, right, rcols, b) < 0;
  });

  std::vector<std::pair<size_t, size_t>> matches;
  size_t i = 0;
  size_t j = 0;
  while (i < lorder.size() && j < rorder.size()) {
    int cmp = CompareRowKeys(left, lcols, lorder[i], right, rcols, rorder[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      // Find the extent of the equal-key run on both sides.
      size_t i_end = i + 1;
      while (i_end < lorder.size() &&
             CompareRowKeys(left, lcols, lorder[i_end], left, lcols, lorder[i]) == 0) {
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < rorder.size() &&
             CompareRowKeys(right, rcols, rorder[j_end], right, rcols, rorder[j]) == 0) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          matches.emplace_back(lorder[a], rorder[b]);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return BuildJoinOutput(left, right, matches);
}

Result<Table> HashGroupBy(const Table& input,
                          const std::vector<std::string>& group_columns,
                          const std::vector<AggSpec>& aggs,
                          const RowPredicate& having) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> gcols,
                          ResolveColumns(input, group_columns));
  struct AggState {
    size_t col = 0;  // input column (unused for kCount)
    AggKind kind;
  };
  std::vector<AggState> states;
  std::vector<Field> out_fields;
  for (size_t c : gcols) out_fields.push_back(input.schema().field(c));
  for (const AggSpec& spec : aggs) {
    AggState st;
    st.kind = spec.kind;
    if (spec.kind != AggKind::kCount) {
      SSJOIN_ASSIGN_OR_RETURN(st.col, input.schema().FieldIndex(spec.column));
    }
    DataType out_type = DataType::kInt64;
    switch (spec.kind) {
      case AggKind::kCount:
        out_type = DataType::kInt64;
        break;
      case AggKind::kSum:
        out_type = DataType::kFloat64;
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        out_type = input.schema().field(st.col).type;
        break;
    }
    if (spec.kind == AggKind::kSum &&
        input.schema().field(st.col).type == DataType::kString) {
      return Status::TypeError("cannot SUM a string column");
    }
    out_fields.push_back({spec.output_name, out_type});
    states.push_back(st);
  }

  // Group rows: map key-hash -> list of group ids (to resolve collisions),
  // and per-group representative row + member rows.
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<size_t> group_rep;                // representative input row per group
  std::vector<std::vector<size_t>> group_rows;  // member rows per group
  for (size_t r = 0; r < input.num_rows(); ++r) {
    uint64_t h = HashRowKey(input, gcols, r);
    auto& ids = buckets[h];
    bool found = false;
    for (size_t gid : ids) {
      if (RowKeysEqual(input, gcols, group_rep[gid], input, gcols, r)) {
        group_rows[gid].push_back(r);
        found = true;
        break;
      }
    }
    if (!found) {
      ids.push_back(group_rep.size());
      group_rep.push_back(r);
      group_rows.push_back({r});
    }
  }

  Table out{Schema(out_fields)};
  out.Reserve(group_rep.size());
  for (size_t gid = 0; gid < group_rep.size(); ++gid) {
    std::vector<Value> row;
    row.reserve(out_fields.size());
    for (size_t c : gcols) row.push_back(input.GetValue(c, group_rep[gid]));
    for (const AggState& st : states) {
      switch (st.kind) {
        case AggKind::kCount:
          row.push_back(Value(static_cast<int64_t>(group_rows[gid].size())));
          break;
        case AggKind::kSum: {
          double sum = 0.0;
          for (size_t r : group_rows[gid]) sum += input.GetValue(st.col, r).AsDouble();
          row.push_back(Value(sum));
          break;
        }
        case AggKind::kMin:
        case AggKind::kMax: {
          Value best = input.GetValue(st.col, group_rows[gid][0]);
          for (size_t i = 1; i < group_rows[gid].size(); ++i) {
            Value v = input.GetValue(st.col, group_rows[gid][i]);
            if (st.kind == AggKind::kMin ? v < best : best < v) best = v;
          }
          row.push_back(best);
          break;
        }
      }
    }
    SSJOIN_RETURN_NOT_OK(out.AppendRow(row));
  }
  if (having) {
    return Filter(out, having);
  }
  return out;
}

Result<Table> OrderBy(const Table& input, const std::vector<std::string>& columns) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> cols, ResolveColumns(input, columns));
  std::vector<size_t> order(input.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return CompareRowKeys(input, cols, a, input, cols, b) < 0;
  });
  return input.Take(order);
}

Result<Table> Distinct(const Table& input) {
  std::vector<size_t> all_cols(input.num_columns());
  std::iota(all_cols.begin(), all_cols.end(), 0);
  std::unordered_map<uint64_t, std::vector<size_t>> seen;
  std::vector<size_t> keep;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    uint64_t h = HashRowKey(input, all_cols, r);
    auto& rows = seen[h];
    bool dup = false;
    for (size_t prev : rows) {
      if (RowKeysEqual(input, all_cols, prev, input, all_cols, r)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      rows.push_back(r);
      keep.push_back(r);
    }
  }
  return input.Take(keep);
}

Result<Table> GroupwiseApply(const Table& input,
                             const std::vector<std::string>& group_columns,
                             const GroupFunction& fn) {
  if (!fn) return Status::Invalid("GroupwiseApply requires a group function");
  SSJOIN_ASSIGN_OR_RETURN(std::vector<size_t> gcols,
                          ResolveColumns(input, group_columns));
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<size_t> group_rep;
  std::vector<std::vector<size_t>> group_rows;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    uint64_t h = HashRowKey(input, gcols, r);
    auto& ids = buckets[h];
    bool found = false;
    for (size_t gid : ids) {
      if (RowKeysEqual(input, gcols, group_rep[gid], input, gcols, r)) {
        group_rows[gid].push_back(r);
        found = true;
        break;
      }
    }
    if (!found) {
      ids.push_back(group_rep.size());
      group_rep.push_back(r);
      group_rows.push_back({r});
    }
  }

  Table out;
  bool first = true;
  for (const auto& rows : group_rows) {
    Table group = input.Take(rows);
    SSJOIN_ASSIGN_OR_RETURN(Table result, fn(group));
    if (first) {
      out = std::move(result);
      first = false;
    } else {
      SSJOIN_ASSIGN_OR_RETURN(out, UnionAll(out, result));
    }
  }
  if (first) {
    // No groups at all: empty output with the input schema (the group
    // function never ran, so its output schema is unknowable).
    return Table(input.schema());
  }
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::TypeError("UnionAll requires identical schemas: " +
                             a.schema().ToString() + " vs " + b.schema().ToString());
  }
  Table out = a;
  for (size_t r = 0; r < b.num_rows(); ++r) out.AppendRowFrom(b, r);
  return out;
}

}  // namespace ssjoin::engine
