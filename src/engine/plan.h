#ifndef SSJOIN_ENGINE_PLAN_H_
#define SSJOIN_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/table.h"

namespace ssjoin::engine {

/// \brief A node of a composable query plan over the engine's operators.
///
/// Plans are immutable trees built with the factory functions below and run
/// with Execute() (materialized, bottom-up). ToString() renders an
/// EXPLAIN-style tree. The point of this layer is the paper's §7: a
/// *logical* operator (core::SSJoinNode) can defer its physical
/// implementation choice to optimization time — see core/ssjoin_plan.h.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Runs the subtree and materializes its result.
  virtual Result<Table> Execute() const = 0;

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Child nodes (empty for leaves).
  virtual std::vector<std::shared_ptr<const PlanNode>> children() const {
    return {};
  }

  /// EXPLAIN-style rendering of the whole subtree.
  std::string ToString(int indent = 0) const;
};

using PlanPtr = std::shared_ptr<const PlanNode>;

/// Leaf: scans an in-memory table.
PlanPtr ScanNode(Table table, std::string label = "scan");

/// Filter by a declarative predicate expression.
PlanPtr FilterNode(PlanPtr input, ExprPtr predicate);

/// Keep the named columns, in order.
PlanPtr ProjectNode(PlanPtr input, std::vector<std::string> columns);

/// Compute expression columns.
PlanPtr ProjectExprsNode(PlanPtr input,
                         std::vector<std::pair<std::string, ExprPtr>> exprs);

/// Rename columns.
PlanPtr RenameNode(PlanPtr input,
                   std::vector<std::pair<std::string, std::string>> renames);

/// Hash equi-join of two subplans.
PlanPtr HashJoinNode(PlanPtr left, PlanPtr right, std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys);

/// Hash group-by with aggregates and an optional HAVING expression.
PlanPtr GroupByNode(PlanPtr input, std::vector<std::string> group_columns,
                    std::vector<AggSpec> aggs, ExprPtr having = nullptr);

/// Sort ascending by the given columns.
PlanPtr OrderByNode(PlanPtr input, std::vector<std::string> columns);

/// Duplicate elimination.
PlanPtr DistinctNode(PlanPtr input);

}  // namespace ssjoin::engine

#endif  // SSJOIN_ENGINE_PLAN_H_
