#include "engine/expr.h"

#include "common/string_util.h"

namespace ssjoin::engine {

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64;
}

bool IsArithmetic(OpCode op) {
  return op == OpCode::kAdd || op == OpCode::kSub || op == OpCode::kMul ||
         op == OpCode::kDiv;
}

bool IsComparison(OpCode op) {
  switch (op) {
    case OpCode::kEq:
    case OpCode::kNe:
    case OpCode::kLt:
    case OpCode::kLe:
    case OpCode::kGt:
    case OpCode::kGe:
      return true;
    default:
      return false;
  }
}

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
      return "+";
    case OpCode::kSub:
      return "-";
    case OpCode::kMul:
      return "*";
    case OpCode::kDiv:
      return "/";
    case OpCode::kEq:
      return "==";
    case OpCode::kNe:
      return "!=";
    case OpCode::kLt:
      return "<";
    case OpCode::kLe:
      return "<=";
    case OpCode::kGt:
      return ">";
    case OpCode::kGe:
      return ">=";
    case OpCode::kAnd:
      return "AND";
    case OpCode::kOr:
      return "OR";
    case OpCode::kNot:
      return "NOT";
    case OpCode::kNeg:
      return "-";
  }
  return "?";
}

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}
  std::string ToString() const override { return name_; }

 protected:
  Result<int> BindNode(const Schema& schema, BoundExpr* out) const override {
    SSJOIN_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(name_));
    BoundExpr::Node node;
    node.kind = ExprKind::kColumn;
    node.type = schema.field(idx).type;
    node.column = idx;
    MutableNodes(out).push_back(node);
    return static_cast<int>(MutableNodes(out).size() - 1);
  }

 private:
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  std::string ToString() const override {
    if (value_.is_string()) return "'" + value_.string() + "'";
    return value_.ToString();
  }

 protected:
  Result<int> BindNode(const Schema&, BoundExpr* out) const override {
    BoundExpr::Node node;
    node.kind = ExprKind::kLiteral;
    node.type = value_.type();
    node.literal = value_;
    MutableNodes(out).push_back(node);
    return static_cast<int>(MutableNodes(out).size() - 1);
  }

 private:
  Value value_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(OpCode op, ExprPtr child) : op_(op), child_(std::move(child)) {}
  std::string ToString() const override {
    return std::string("(") + OpName(op_) + " " + child_->ToString() + ")";
  }

 protected:
  Result<int> BindNode(const Schema& schema, BoundExpr* out) const override {
    SSJOIN_ASSIGN_OR_RETURN(int child, BindInto(*child_, schema, out));
    DataType child_type = MutableNodes(out)[child].type;
    BoundExpr::Node node;
    node.kind = ExprKind::kUnary;
    node.op = op_;
    node.left = child;
    if (op_ == OpCode::kNot) {
      if (child_type == DataType::kString) {
        return Status::TypeError("NOT requires a numeric operand");
      }
      node.type = DataType::kInt64;
    } else {  // kNeg
      if (!IsNumeric(child_type)) {
        return Status::TypeError("negation requires a numeric operand");
      }
      node.type = child_type;
    }
    MutableNodes(out).push_back(node);
    return static_cast<int>(MutableNodes(out).size() - 1);
  }

 private:
  OpCode op_;
  ExprPtr child_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(OpCode op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + OpName(op_) + " " + right_->ToString() +
           ")";
  }

 protected:
  Result<int> BindNode(const Schema& schema, BoundExpr* out) const override {
    SSJOIN_ASSIGN_OR_RETURN(int l, BindInto(*left_, schema, out));
    SSJOIN_ASSIGN_OR_RETURN(int r, BindInto(*right_, schema, out));
    DataType lt = MutableNodes(out)[l].type;
    DataType rt = MutableNodes(out)[r].type;
    BoundExpr::Node node;
    node.kind = ExprKind::kBinary;
    node.op = op_;
    node.left = l;
    node.right = r;
    if (IsArithmetic(op_)) {
      if (!IsNumeric(lt) || !IsNumeric(rt)) {
        return Status::TypeError(StringPrintf("operator %s requires numeric operands",
                                              OpName(op_)));
      }
      node.type = (lt == DataType::kFloat64 || rt == DataType::kFloat64 ||
                   op_ == OpCode::kDiv)
                      ? DataType::kFloat64
                      : DataType::kInt64;
    } else if (IsComparison(op_)) {
      bool both_string = lt == DataType::kString && rt == DataType::kString;
      bool both_numeric = IsNumeric(lt) && IsNumeric(rt);
      if (!both_string && !both_numeric) {
        return Status::TypeError(StringPrintf(
            "operator %s requires two numeric or two string operands", OpName(op_)));
      }
      node.type = DataType::kInt64;
    } else {  // kAnd / kOr
      if (lt == DataType::kString || rt == DataType::kString) {
        return Status::TypeError("boolean connectives require numeric operands");
      }
      node.type = DataType::kInt64;
    }
    MutableNodes(out).push_back(node);
    return static_cast<int>(MutableNodes(out).size() - 1);
  }

 private:
  OpCode op_;
  ExprPtr left_;
  ExprPtr right_;
};

bool Truthy(const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      return v.int64() != 0;
    case DataType::kFloat64:
      return v.float64() != 0.0;
    case DataType::kString:
      return !v.string().empty();
  }
  return false;
}

int CompareValues(const Value& l, const Value& r) {
  if (l.is_string()) {
    return l.string().compare(r.string()) < 0   ? -1
           : l.string().compare(r.string()) > 0 ? 1
                                                : 0;
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

}  // namespace

Result<int> BindInto(const Expr& expr, const Schema& schema, BoundExpr* out) {
  return expr.BindNode(schema, out);
}

Result<BoundExpr> Expr::Bind(const Schema& schema) const {
  BoundExpr bound;
  SSJOIN_RETURN_NOT_OK(BindNode(schema, &bound).status());
  return bound;
}

Value BoundExpr::Eval(const Table& table, size_t row) const {
  // Evaluate the post-order node list with a value stack aligned to nodes_.
  std::vector<Value> values(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    switch (node.kind) {
      case ExprKind::kColumn:
        values[i] = table.GetValue(node.column, row);
        break;
      case ExprKind::kLiteral:
        values[i] = node.literal;
        break;
      case ExprKind::kUnary: {
        const Value& child = values[node.left];
        if (node.op == OpCode::kNot) {
          values[i] = Value(static_cast<int64_t>(!Truthy(child)));
        } else if (child.is_int64()) {
          values[i] = Value(-child.int64());
        } else {
          values[i] = Value(-child.float64());
        }
        break;
      }
      case ExprKind::kBinary: {
        const Value& l = values[node.left];
        const Value& r = values[node.right];
        switch (node.op) {
          case OpCode::kAdd:
          case OpCode::kSub:
          case OpCode::kMul:
          case OpCode::kDiv: {
            if (node.type == DataType::kInt64) {
              int64_t a = l.int64();
              int64_t b = r.int64();
              int64_t v = node.op == OpCode::kAdd   ? a + b
                          : node.op == OpCode::kSub ? a - b
                                                    : a * b;
              values[i] = Value(v);
            } else {
              double a = l.AsDouble();
              double b = r.AsDouble();
              double v = node.op == OpCode::kAdd   ? a + b
                         : node.op == OpCode::kSub ? a - b
                         : node.op == OpCode::kMul ? a * b
                                                   : a / b;
              values[i] = Value(v);
            }
            break;
          }
          case OpCode::kEq:
            values[i] = Value(static_cast<int64_t>(CompareValues(l, r) == 0));
            break;
          case OpCode::kNe:
            values[i] = Value(static_cast<int64_t>(CompareValues(l, r) != 0));
            break;
          case OpCode::kLt:
            values[i] = Value(static_cast<int64_t>(CompareValues(l, r) < 0));
            break;
          case OpCode::kLe:
            values[i] = Value(static_cast<int64_t>(CompareValues(l, r) <= 0));
            break;
          case OpCode::kGt:
            values[i] = Value(static_cast<int64_t>(CompareValues(l, r) > 0));
            break;
          case OpCode::kGe:
            values[i] = Value(static_cast<int64_t>(CompareValues(l, r) >= 0));
            break;
          case OpCode::kAnd:
            values[i] = Value(static_cast<int64_t>(Truthy(l) && Truthy(r)));
            break;
          case OpCode::kOr:
            values[i] = Value(static_cast<int64_t>(Truthy(l) || Truthy(r)));
            break;
          default:
            SSJOIN_CHECK(false);
        }
        break;
      }
    }
  }
  return values.back();
}

bool BoundExpr::EvalBool(const Table& table, size_t row) const {
  return Truthy(Eval(table, row));
}

ExprPtr Col(std::string name) { return std::make_shared<ColumnExpr>(std::move(name)); }
ExprPtr Lit(Value value) { return std::make_shared<LiteralExpr>(std::move(value)); }

namespace {
ExprPtr MakeBinary(OpCode op, ExprPtr l, ExprPtr r) {
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r));
}
}  // namespace

ExprPtr Add(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kAdd, l, r); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kSub, l, r); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kMul, l, r); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kDiv, l, r); }
ExprPtr Eq(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kEq, l, r); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kNe, l, r); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kLt, l, r); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kLe, l, r); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kGt, l, r); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kGe, l, r); }
ExprPtr And(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kAnd, l, r); }
ExprPtr Or(ExprPtr l, ExprPtr r) { return MakeBinary(OpCode::kOr, l, r); }
ExprPtr Not(ExprPtr e) { return std::make_shared<UnaryExpr>(OpCode::kNot, std::move(e)); }
ExprPtr Neg(ExprPtr e) { return std::make_shared<UnaryExpr>(OpCode::kNeg, std::move(e)); }

Result<Table> FilterWhere(const Table& input, const ExprPtr& predicate) {
  if (predicate == nullptr) return Status::Invalid("FilterWhere requires a predicate");
  SSJOIN_ASSIGN_OR_RETURN(BoundExpr bound, predicate->Bind(input.schema()));
  std::vector<size_t> keep;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    if (bound.EvalBool(input, r)) keep.push_back(r);
  }
  return input.Take(keep);
}

Result<Table> ProjectExprs(const Table& input,
                           const std::vector<std::pair<std::string, ExprPtr>>& exprs) {
  std::vector<BoundExpr> bound;
  Schema schema;
  for (const auto& [name, expr] : exprs) {
    if (expr == nullptr) return Status::Invalid("null expression for '" + name + "'");
    SSJOIN_ASSIGN_OR_RETURN(BoundExpr b, expr->Bind(input.schema()));
    SSJOIN_RETURN_NOT_OK(schema.AddField({name, b.output_type()}));
    bound.push_back(std::move(b));
  }
  Table out{schema};
  out.Reserve(input.num_rows());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(bound.size());
    for (const BoundExpr& b : bound) row.push_back(b.Eval(input, r));
    SSJOIN_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

}  // namespace ssjoin::engine
