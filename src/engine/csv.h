#ifndef SSJOIN_ENGINE_CSV_H_
#define SSJOIN_ENGINE_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "engine/table.h"

namespace ssjoin::engine {

/// CSV parsing options (RFC 4180 dialect: quoted fields, doubled quotes,
/// delimiters/newlines inside quotes).
struct CsvReadOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise columns are named c0, c1, ...
  bool has_header = true;
  /// Infer int64/float64 column types (a column is numeric only if every
  /// non-empty value parses); otherwise everything is string.
  bool infer_types = true;
};

/// \brief Parses CSV text into a Table.
Result<Table> ParseCsv(std::string_view content, const CsvReadOptions& options = {});

/// \brief Reads a CSV file into a Table.
Result<Table> ReadCsvFile(const std::string& path, const CsvReadOptions& options = {});

/// \brief Serializes a Table as RFC 4180 CSV (header row included).
std::string ToCsv(const Table& table, char delimiter = ',');

/// \brief Writes a Table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace ssjoin::engine

#endif  // SSJOIN_ENGINE_CSV_H_
