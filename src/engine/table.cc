#include "engine/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace ssjoin::engine {

Column::Column(DataType type) {
  switch (type) {
    case DataType::kInt64:
      repr_ = std::vector<int64_t>{};
      break;
    case DataType::kFloat64:
      repr_ = std::vector<double>{};
      break;
    case DataType::kString:
      repr_ = std::vector<std::string>{};
      break;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, repr_);
}

Value Column::GetValue(size_t row) const {
  switch (type()) {
    case DataType::kInt64:
      return Value(int64s()[row]);
    case DataType::kFloat64:
      return Value(float64s()[row]);
    case DataType::kString:
      return Value(strings()[row]);
  }
  return Value();
}

void Column::Append(const Value& v) {
  SSJOIN_DCHECK(v.type() == type());
  switch (type()) {
    case DataType::kInt64:
      int64s().push_back(v.int64());
      break;
    case DataType::kFloat64:
      float64s().push_back(v.float64());
      break;
    case DataType::kString:
      strings().push_back(v.string());
      break;
  }
}

void Column::AppendFrom(const Column& other, size_t row) {
  SSJOIN_DCHECK(other.type() == type());
  switch (type()) {
    case DataType::kInt64:
      int64s().push_back(other.int64s()[row]);
      break;
    case DataType::kFloat64:
      float64s().push_back(other.float64s()[row]);
      break;
    case DataType::kString:
      strings().push_back(other.strings()[row]);
      break;
  }
}

void Column::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, repr_);
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

Result<Table> Table::FromRows(Schema schema,
                              const std::vector<std::vector<Value>>& rows) {
  Table t(std::move(schema));
  t.Reserve(rows.size());
  for (const auto& row : rows) {
    SSJOIN_RETURN_NOT_OK(t.AppendRow(row));
  }
  return t;
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  SSJOIN_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::Invalid(StringPrintf("row has %zu values, schema has %zu columns",
                                        row.size(), columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.field(i).type) {
      return Status::TypeError(StringPrintf(
          "column %zu ('%s') expects %s, got %s", i, schema_.field(i).name.c_str(),
          DataTypeToString(schema_.field(i).type), DataTypeToString(row[i].type())));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) columns_[i].Append(row[i]);
  ++num_rows_;
  return Status::OK();
}

void Table::AppendRowFrom(const Table& other, size_t row) {
  SSJOIN_DCHECK(other.num_columns() == num_columns());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendFrom(other.columns_[i], row);
  }
  ++num_rows_;
}

void Table::AppendConcatRow(const Table& left, size_t lrow, const Table& right,
                            size_t rrow) {
  SSJOIN_DCHECK(num_columns() == left.num_columns() + right.num_columns());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    columns_[c].AppendFrom(left.column(c), lrow);
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    columns_[left.num_columns() + c].AppendFrom(right.column(c), rrow);
  }
  ++num_rows_;
}

Table Table::Take(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.Reserve(indices.size());
  for (size_t idx : indices) {
    SSJOIN_DCHECK(idx < num_rows_);
    out.AppendRowFrom(*this, idx);
  }
  return out;
}

void Table::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  cells.push_back(header);
  size_t shown = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < num_columns(); ++c) row.push_back(GetValue(c, r).ToString());
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(num_columns(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) out.append(widths[c] + 2, '-');
      out += '\n';
    }
  }
  if (shown < num_rows_) {
    out += StringPrintf("... (%zu rows total)\n", num_rows_);
  }
  return out;
}

bool Table::ContentEquals(const Table& other) const {
  if (!(schema_ == other.schema_) || num_rows_ != other.num_rows_) return false;
  for (size_t c = 0; c < num_columns(); ++c) {
    for (size_t r = 0; r < num_rows_; ++r) {
      if (!(GetValue(c, r) == other.GetValue(c, r))) return false;
    }
  }
  return true;
}

}  // namespace ssjoin::engine
