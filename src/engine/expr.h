#ifndef SSJOIN_ENGINE_EXPR_H_
#define SSJOIN_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace ssjoin::engine {

/// \brief A scalar expression tree over a table's columns: column
/// references, literals, arithmetic, comparisons and boolean connectives.
///
/// Expressions are built with the free factory functions below, bound once
/// against a schema (resolving column names to indices and checking types),
/// and then evaluated row-at-a-time. Booleans are represented as int64 0/1.
///
/// ```
/// ExprPtr e = Gt(Add(Col("overlap"), Lit(0.5)), Mul(Lit(0.8), Col("norm")));
/// SSJOIN_ASSIGN_OR_RETURN(BoundExpr bound, e->Bind(table.schema()));
/// bool keep = bound.EvalBool(table, row);
/// ```
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind : uint8_t { kColumn, kLiteral, kUnary, kBinary };

/// Operators for unary/binary nodes.
enum class OpCode : uint8_t {
  // binary arithmetic (numeric only; int64 unless either side is float64)
  kAdd,
  kSub,
  kMul,
  kDiv,
  // binary comparisons (numeric or string; result int64 0/1)
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // boolean connectives (int64 in, int64 0/1 out)
  kAnd,
  kOr,
  // unary
  kNot,
  kNeg,
};

/// \brief An expression bound to a concrete schema: column indices resolved,
/// types checked. Cheap to copy; evaluation cannot fail.
class BoundExpr {
 public:
  /// Evaluates against row `row` of `table` (whose schema must be the one
  /// the expression was bound to).
  Value Eval(const Table& table, size_t row) const;

  /// Convenience: nonzero / non-empty truthiness of Eval's result.
  bool EvalBool(const Table& table, size_t row) const;

  DataType output_type() const { return nodes_.back().type; }

  /// One flattened expression node. Public so Expr subclasses can construct
  /// nodes during Bind; not part of the user-facing API.
  struct Node {
    ExprKind kind;
    OpCode op;            // unary/binary only
    DataType type;        // output type of this node
    size_t column = 0;    // kColumn: resolved index
    Value literal;        // kLiteral
    int left = -1;        // child slots (indices into nodes_)
    int right = -1;
  };

 private:
  friend class Expr;

  // Post-order flattened tree; the root is the last node.
  std::vector<Node> nodes_;
};

class Expr {
 public:
  virtual ~Expr() = default;

  /// Resolves columns and checks types against `schema`.
  Result<BoundExpr> Bind(const Schema& schema) const;

  /// Rendering like "(overlap >= (0.8 * norm))".
  virtual std::string ToString() const = 0;

 protected:
  friend Result<int> BindInto(const Expr& expr, const Schema& schema,
                              BoundExpr* out);
  /// Appends this node's (post-order) bound form to out->nodes_; returns the
  /// node index.
  virtual Result<int> BindNode(const Schema& schema, BoundExpr* out) const = 0;

  /// Access to BoundExpr's node list for subclasses (friendship does not
  /// inherit).
  static std::vector<BoundExpr::Node>& MutableNodes(BoundExpr* bound) {
    return bound->nodes_;
  }
};

/// Column reference by name.
ExprPtr Col(std::string name);
/// Literal value.
ExprPtr Lit(Value value);

ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);

ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);

ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Neg(ExprPtr e);

/// \brief Filter with a declarative predicate: keeps rows where `predicate`
/// evaluates truthy.
Result<Table> FilterWhere(const Table& input, const ExprPtr& predicate);

/// \brief Project computed columns: each (name, expression) pair becomes an
/// output column.
Result<Table> ProjectExprs(const Table& input,
                           const std::vector<std::pair<std::string, ExprPtr>>& exprs);

}  // namespace ssjoin::engine

#endif  // SSJOIN_ENGINE_EXPR_H_
