#include "engine/csv.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace ssjoin::engine {

namespace {

/// Splits CSV content into records of raw fields, honoring quoting.
Result<std::vector<std::vector<std::string>>> Tokenize(std::string_view content,
                                                       char delimiter) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_field = false;
  size_t i = 0;
  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
    any_field = true;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    any_field = false;
  };
  while (i < content.size()) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      ++i;
      continue;
    }
    if (c == '"') {
      if (!field.empty() || field_was_quoted) {
        return Status::Invalid(StringPrintf(
            "CSV parse error at byte %zu: quote inside unquoted field", i));
      }
      in_quotes = true;
      field_was_quoted = true;
      ++i;
    } else if (c == delimiter) {
      end_field();
      ++i;
    } else if (c == '\r' && i + 1 < content.size() && content[i + 1] == '\n') {
      end_record();
      i += 2;
    } else if (c == '\n' || c == '\r') {
      end_record();
      ++i;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  if (in_quotes) return Status::Invalid("CSV parse error: unterminated quote");
  // Final record without trailing newline.
  if (any_field || !field.empty() || field_was_quoted) end_record();
  return records;
}

namespace {

/// Strict number shape, same grammar as the serve wire parser:
/// -?int frac? exp? with int = 0 | [1-9][0-9]*. strtoll/strtod alone skip
/// leading whitespace and take "+1", "01" and hex floats — so a zip-code
/// column like "01234" would silently infer as int64 and lose its leading
/// zero on round-trip, and "1e999" would infer as an infinite float64.
bool HasStrictNumberShape(const std::string& s, bool allow_real) {
  size_t i = 0;
  auto digit = [&] {
    return i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]));
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (!digit()) return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (digit()) ++i;
  }
  if (!allow_real) return i == s.size();
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!digit()) return false;
    while (digit()) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digit()) return false;
    while (digit()) ++i;
  }
  return i == s.size();
}

}  // namespace

bool ParsesAsInt64(const std::string& s, int64_t* value) {
  if (!HasStrictNumberShape(s, /*allow_real=*/false)) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *value = v;
  return true;
}

bool ParsesAsFloat64(const std::string& s, double* value) {
  if (!HasStrictNumberShape(s, /*allow_real=*/true)) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(v)) return false;
  *value = v;
  return true;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string* out, const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<Table> ParseCsv(std::string_view content, const CsvReadOptions& options) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> records,
                          Tokenize(content, options.delimiter));
  std::vector<std::string> names;
  size_t first_data_row = 0;
  size_t num_columns = 0;
  if (records.empty()) return Table(Schema{});
  if (options.has_header) {
    names = records[0];
    num_columns = names.size();
    first_data_row = 1;
  } else {
    num_columns = records[0].size();
    for (size_t c = 0; c < num_columns; ++c) names.push_back("c" + std::to_string(c));
  }
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (records[r].size() != num_columns) {
      return Status::Invalid(StringPrintf(
          "CSV row %zu has %zu fields, expected %zu", r, records[r].size(),
          num_columns));
    }
  }

  // Type inference: a column is int64/float64 iff every non-empty cell
  // parses and there is at least one non-empty cell.
  std::vector<DataType> types(num_columns, DataType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < num_columns; ++c) {
      bool all_int = true;
      bool all_float = true;
      bool any_value = false;
      for (size_t r = first_data_row; r < records.size(); ++r) {
        const std::string& cell = records[r][c];
        if (cell.empty()) continue;
        any_value = true;
        int64_t iv;
        double dv;
        if (!ParsesAsInt64(cell, &iv)) all_int = false;
        if (!ParsesAsFloat64(cell, &dv)) all_float = false;
        if (!all_float) break;
      }
      if (!any_value) continue;
      if (all_int) {
        types[c] = DataType::kInt64;
      } else if (all_float) {
        types[c] = DataType::kFloat64;
      }
    }
  }

  Schema schema;
  for (size_t c = 0; c < num_columns; ++c) {
    SSJOIN_RETURN_NOT_OK(schema.AddField({names[c], types[c]}));
  }
  Table table{schema};
  table.Reserve(records.size() - first_data_row);
  for (size_t r = first_data_row; r < records.size(); ++r) {
    std::vector<Value> row;
    row.reserve(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      const std::string& cell = records[r][c];
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t v = 0;
          ParsesAsInt64(cell, &v);  // empty cells become 0
          row.emplace_back(v);
          break;
        }
        case DataType::kFloat64: {
          double v = 0.0;
          ParsesAsFloat64(cell, &v);
          row.emplace_back(v);
          break;
        }
        case DataType::kString:
          row.emplace_back(cell);
          break;
      }
    }
    SSJOIN_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Table& table, char delimiter) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(delimiter);
    AppendField(&out, table.schema().field(c).name, delimiter);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(delimiter);
      // float64 uses round-trip precision (%.17g) so ParseCsv(ToCsv(t))
      // reproduces t exactly; Value::ToString's %g is for display only.
      Value v = table.GetValue(c, r);
      std::string cell = v.is_float64() ? StringPrintf("%.17g", v.float64())
                                        : v.ToString();
      AppendField(&out, cell, delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path, char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToCsv(table, delimiter);
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

}  // namespace ssjoin::engine
