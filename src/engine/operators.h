#ifndef SSJOIN_ENGINE_OPERATORS_H_
#define SSJOIN_ENGINE_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace ssjoin::engine {

/// Row predicate evaluated against a table: fn(table, row) -> keep?
using RowPredicate = std::function<bool(const Table&, size_t)>;

/// Per-group subquery for GroupwiseApply: consumes one group's rows,
/// produces that group's output rows.
using GroupFunction = std::function<Result<Table>(const Table&)>;

/// \brief Keeps only the named columns, in the given order.
Result<Table> Project(const Table& input, const std::vector<std::string>& columns);

/// \brief Renames columns: pairs of (old_name, new_name).
Result<Table> Rename(const Table& input,
                     const std::vector<std::pair<std::string, std::string>>& renames);

/// \brief Keeps rows satisfying the predicate.
Result<Table> Filter(const Table& input, const RowPredicate& pred);

/// \brief Hash equi-join on possibly-composite keys.
///
/// Output schema is the concatenation of both inputs' schemas (right-side
/// name clashes suffixed with "_r"). Inner join semantics; each matching
/// (left,right) row pair produces one output row.
Result<Table> HashEquiJoin(const Table& left, const Table& right,
                           const std::vector<std::string>& left_keys,
                           const std::vector<std::string>& right_keys);

/// \brief Sort-merge equi-join; same contract as HashEquiJoin (row order of
/// the output differs). Used to cross-check the hash join and to mirror the
/// paper's observation that optimizers pick hash or merge joins for SSJoin.
Result<Table> SortMergeJoin(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys);

/// Aggregate function kinds for HashGroupBy.
enum class AggKind { kSum, kCount, kMin, kMax };

/// One aggregate column specification: `kind(column) AS output_name`.
/// For kCount the input column is ignored (may be empty).
struct AggSpec {
  AggKind kind;
  std::string column;
  std::string output_name;
};

/// \brief Hash aggregation: GROUP BY `group_columns`, computing `aggs`.
///
/// Output schema is the group columns followed by one column per AggSpec
/// (float64 for kSum over float/int, int64 for kCount, input type for
/// kMin/kMax). `having`, if set, filters output rows (the HAVING clause).
Result<Table> HashGroupBy(const Table& input,
                          const std::vector<std::string>& group_columns,
                          const std::vector<AggSpec>& aggs,
                          const RowPredicate& having = nullptr);

/// \brief Sorts by the given columns ascending (stable).
Result<Table> OrderBy(const Table& input, const std::vector<std::string>& columns);

/// \brief Removes duplicate rows (considering all columns).
Result<Table> Distinct(const Table& input);

/// \brief Groupwise processing operator (Chatziantoniou & Ross [2,3]).
///
/// Partitions `input` by `group_columns` and applies `fn` to each group's
/// rows (full input schema); concatenates the per-group outputs. This is the
/// operator the paper uses to implement the prefix-filter (§4.3.3): group on
/// R.A and emit each group's prefix.
Result<Table> GroupwiseApply(const Table& input,
                             const std::vector<std::string>& group_columns,
                             const GroupFunction& fn);

/// \brief Appends `b`'s rows to a copy of `a`. Schemas must match.
Result<Table> UnionAll(const Table& a, const Table& b);

}  // namespace ssjoin::engine

#endif  // SSJOIN_ENGINE_OPERATORS_H_
