#ifndef SSJOIN_APPROX_APPROX_SSJOIN_H_
#define SSJOIN_APPROX_APPROX_SSJOIN_H_

#include <vector>

#include "approx/minhash.h"
#include "approx/params.h"
#include "common/result.h"
#include "core/ssjoin.h"

namespace ssjoin::approx {

/// \brief The sixth physical SSJoin implementation: MinHash-LSH candidate
/// generation tuned to a target recall, exact verification (CPSJoin-style;
/// see DESIGN.md §13).
///
/// Guarantees:
///  - Precision 1.0: every emitted pair passes the same sorted-merge overlap
///    and predicate test the exact executors use, with bit-identical
///    overlap values — the output is always a subset of the exact result.
///  - Determinism: candidates derive from seeded signatures only; with a
///    fixed seed the output is bit-identical at any thread count (morsel
///    outputs are concatenated in morsel order).
///  - Robustness: inputs below `exact_floor_pairs`, or whose tuned band
///    budget cannot meet the target recall, run the exact inverted-index
///    candidate generator instead (recall 1.0).
class ApproxSSJoin final : public core::SSJoinExecutor {
 public:
  explicit ApproxSSJoin(ApproxParams params) : params_(params) {}

  std::string name() const override { return "approx"; }

  Result<std::vector<core::SSJoinPair>> Execute(
      const core::SetsRelation& r, const core::SetsRelation& s,
      const core::OverlapPredicate& pred, const core::SSJoinContext& ctx,
      core::SSJoinStats* stats) const override;

 private:
  ApproxParams params_;
};

/// \brief Drop-in replacement for exec::ExecuteSSJoin that additionally
/// handles kApprox and kHybrid:
///  - kHybrid resolves to kApprox or kPrefixFilterInline via
///    core::ChooseHybridTier (counted in approx.hybrid_to_* metrics);
///  - kApprox runs ApproxSSJoin with `params` (serial or parallel per
///    ctx.exec) and publishes core + approx metrics;
///  - the five exact algorithms delegate to exec::ExecuteSSJoin unchanged.
/// `resolved` (optional) receives the physical algorithm that actually ran.
Result<std::vector<core::SSJoinPair>> ExecuteSSJoin(
    core::SSJoinAlgorithm algorithm, const core::SetsRelation& r,
    const core::SetsRelation& s, const core::OverlapPredicate& pred,
    const core::SSJoinContext& ctx, const ApproxParams& params,
    core::SSJoinStats* stats = nullptr,
    core::SSJoinAlgorithm* resolved = nullptr);

/// Pre-creates the approx layer's obs::Registry entries (approx.joins,
/// approx.bands_probed, ..., approx.measured_recall_ppm) so metric exports
/// list the full name set before the first approximate join runs.
void RegisterApproxMetrics();

}  // namespace ssjoin::approx

#endif  // SSJOIN_APPROX_APPROX_SSJOIN_H_
