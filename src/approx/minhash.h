#ifndef SSJOIN_APPROX_MINHASH_H_
#define SSJOIN_APPROX_MINHASH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "approx/params.h"
#include "common/hash.h"
#include "core/predicate.h"
#include "core/sets.h"
#include "exec/exec_context.h"

namespace ssjoin::approx {

/// \brief One tuned LSH configuration: `bands` bands of `rows` MinHash rows.
///
/// A pair whose (unweighted) set resemblance is t collides in at least one
/// band with probability 1 - (1 - t^rows)^bands. TuneBands picks the
/// cheapest (rows, bands) whose collision probability at the similarity
/// floor `t_min` leaves a per-pair miss probability of at most
/// (1 - target_recall) / kMissSafety — a large safety margin, so the
/// *measured* recall of a whole join concentrates well above the target.
struct BandPlan {
  /// False: run the exact inverted-index candidate generator instead
  /// (recall 1.0). Chosen when the input is below the exact floor or when no
  /// in-budget band configuration can meet the target.
  bool use_lsh = false;
  size_t rows = 1;
  size_t bands = 0;
  /// Provable lower bound on the resemblance of any result pair, from the
  /// input statistics (see TuneBands).
  double t_min = 0.0;
  /// Frequency-derived background resemblance of a random pair, used to
  /// weigh candidate-verification cost when choosing `rows`.
  double t_background = 0.0;
  /// Human-readable routing note for EXPLAIN output and tests.
  const char* note = "";

  size_t num_hashes() const { return use_lsh ? rows * bands : 0; }
};

/// \brief Tunes the band plan for one join from `target_recall` plus the
/// inputs' statistics (the same per-element frequencies the cost model
/// uses).
///
/// Recall floor: every SSJoin result pair shares at least one element (the
/// operator's positive-threshold contract), so its resemblance is at least
/// 1 / (max|r| + max|s| - 1). When the predicate is two-sided normalized
/// (Overlap >= a*R.norm AND Overlap >= a*S.norm) and norms equal set
/// weights, the tighter bound (wmin/wmax) * a / (2 - a) applies. t_min is
/// the better of the two; band feasibility is judged against it, so the
/// miss-probability bound holds for *every* result pair, not just average
/// ones.
BandPlan TuneBands(const core::SetsRelation& r, const core::SetsRelation& s,
                   const core::OverlapPredicate& pred,
                   const core::WeightVector& weights, const ApproxParams& params);

/// \brief Flat group-major MinHash signature matrix over a SetStore.
///
/// Hash i of group g is min over the group's elements e of
/// Mix64(seed ^ HashCombine(i, e)); empty groups get all-ones sentinels.
/// Each group's row depends only on (seed, i, elements), so rows can be
/// filled by any thread in any order with bit-identical results.
struct SignatureMatrix {
  size_t num_hashes = 0;
  std::vector<uint64_t> values;  // values[g * num_hashes + i]

  std::span<const uint64_t> row(core::GroupId g) const {
    return {values.data() + static_cast<size_t>(g) * num_hashes, num_hashes};
  }
};

/// Builds the signature matrix, parallelized over groups via `ec` (null or
/// one thread = inline serial loop; output is identical either way).
SignatureMatrix BuildSignatures(const core::SetStore& store, size_t num_hashes,
                                uint64_t seed, const exec::ExecContext* ec);

/// The key of band `b` (rows [b*rows, (b+1)*rows) of `sig`): a single 64-bit
/// hash combining the band index with the band's MinHash values.
inline uint64_t BandKey(std::span<const uint64_t> sig, size_t b, size_t rows) {
  uint64_t key = HashCombine(0x9e3779b97f4a7c15ull, b + 1);
  for (size_t i = b * rows; i < (b + 1) * rows; ++i) {
    key = HashCombine(key, sig[i]);
  }
  return key;
}

/// Safety divisor of the tuner: per-pair miss probability is budgeted at
/// (1 - target_recall) / kMissSafety, so even joins with a handful of true
/// pairs measure recall >= target except with negligible probability.
inline constexpr double kMissSafety = 1024.0;

}  // namespace ssjoin::approx

#endif  // SSJOIN_APPROX_MINHASH_H_
