#ifndef SSJOIN_APPROX_PARAMS_H_
#define SSJOIN_APPROX_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace ssjoin::approx {

/// \brief Knobs of the MinHash-LSH approximate candidate tier (src/approx).
///
/// Everything is deterministic in these fields plus the inputs: the hash
/// family is seeded (no wall clock, no global RNG), so a fuzz reproducer or
/// a repeated CLI run replays the exact same candidate set at any thread
/// count.
struct ApproxParams {
  /// Fraction of the exact result the tier aims to return (0, 1]. Band
  /// tuning drives the per-pair miss probability far below (1 - target), so
  /// the measured recall concentrates at or above the target.
  double target_recall = 0.9;
  /// Hard cap on signature width (bands * rows). 0 = kDefaultMaxHashes.
  /// When no band configuration within the cap can meet the target recall,
  /// the tier degenerates to exact inverted-index candidates (recall 1.0) —
  /// CPSJoin-style robustness rather than a silently missed target.
  size_t max_hashes = 0;
  /// Seed of the MinHash family (Mix64 over (seed, hash_index, token)).
  uint64_t seed = 0x1CDE2006;
  /// Inputs with |R| * |S| at or below this run the exact candidate
  /// generator: below this scale LSH setup cost dominates and cannot pay
  /// off. 0 disables the floor (fuzzing uses that to force the LSH path).
  size_t exact_floor_pairs = 4096;
  /// Number of R-groups re-checked exactly after an LSH join to estimate the
  /// measured recall (obs gauge `approx.measured_recall_ppm`). 0 disables
  /// sampling.
  size_t recall_sample = 64;
};

inline constexpr size_t kDefaultMaxHashes = 512;

}  // namespace ssjoin::approx

#endif  // SSJOIN_APPROX_PARAMS_H_
