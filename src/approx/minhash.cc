#include "approx/minhash.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/inverted_index.h"
#include "exec/parallel_for.h"

namespace ssjoin::approx {

namespace {

constexpr size_t kMaxRows = 8;

/// Detects a two-sided normalized predicate (Overlap >= a_r * R.norm AND
/// Overlap >= a_s * S.norm) and returns min(a_r, a_s) clamped to [0, 1];
/// 0 when the predicate has no such pair of conjuncts.
double TwoSidedAlpha(const core::OverlapPredicate& pred) {
  double a_r = 0.0;
  double a_s = 0.0;
  for (const core::ThresholdExpr& e : pred.exprs()) {
    if (e.constant < 0.0) continue;
    if (e.r_norm_coeff > 0.0 && e.s_norm_coeff <= 0.0) {
      a_r = std::max(a_r, e.r_norm_coeff);
    }
    if (e.s_norm_coeff > 0.0 && e.r_norm_coeff <= 0.0) {
      a_s = std::max(a_s, e.s_norm_coeff);
    }
  }
  if (a_r <= 0.0 || a_s <= 0.0) return 0.0;
  return std::min(1.0, std::min(a_r, a_s));
}

bool NormsEqualSetWeights(const core::SetsRelation& rel) {
  for (size_t g = 0; g < rel.num_groups(); ++g) {
    if (rel.norms[g] != rel.set_weights[g]) return false;
  }
  return true;
}

size_t MaxSetSize(const core::SetsRelation& rel) {
  size_t max_len = 0;
  for (core::GroupId g = 0; g < rel.num_groups(); ++g) {
    max_len = std::max(max_len, rel.set(g).size());
  }
  return max_len;
}

}  // namespace

BandPlan TuneBands(const core::SetsRelation& r, const core::SetsRelation& s,
                   const core::OverlapPredicate& pred,
                   const core::WeightVector& weights, const ApproxParams& params) {
  BandPlan plan;
  double pairs = static_cast<double>(r.num_groups()) *
                 static_cast<double>(s.num_groups());
  if (params.exact_floor_pairs > 0 &&
      pairs <= static_cast<double>(params.exact_floor_pairs)) {
    plan.note = "below exact floor";
    return plan;
  }

  size_t max_len_r = MaxSetSize(r);
  size_t max_len_s = MaxSetSize(s);
  if (max_len_r == 0 || max_len_s == 0) {
    plan.note = "a side is all-empty";
    return plan;
  }

  // Provable floor 1: every result pair shares >= 1 element, so its
  // resemblance is at least 1 / (|r| + |s| - 1) over the largest sets.
  double t_min = 1.0 / static_cast<double>(max_len_r + max_len_s - 1);

  // Floor 2 (predicate-derived, often far tighter): for two-sided normalized
  // predicates with norms equal to set weights, Overlap >= a * max(norms)
  // implies resemblance >= (wmin/wmax) * a / (2 - a). See DESIGN.md §13.
  double alpha = TwoSidedAlpha(pred);
  if (alpha > 0.0 && NormsEqualSetWeights(r) && NormsEqualSetWeights(s)) {
    // Weight spread over elements that actually occur (unused dictionary
    // entries must not widen it).
    double wmin = std::numeric_limits<double>::infinity();
    double wmax = 0.0;
    for (const core::SetStore* store : {&r.store, &s.store}) {
      for (text::TokenId e : store->token_ids()) {
        double w = weights[e];
        wmin = std::min(wmin, w);
        wmax = std::max(wmax, w);
      }
    }
    if (wmax > 0.0 && wmin > 0.0 && std::isfinite(wmin)) {
      double spread = std::min(1.0, wmin / wmax);
      t_min = std::max(t_min, spread * alpha / (2.0 - alpha));
    }
  }
  plan.t_min = std::min(t_min, 0.95);

  // Background resemblance of a random pair from the estimator's frequency
  // statistics: E[|r ∩ s|] = sum_e fR(e) * fS(e) / (|R| * |S|).
  size_t num_elements = core::MaxElementId(r, s) + 1;
  std::vector<uint32_t> fr(num_elements, 0);
  std::vector<uint32_t> fs(num_elements, 0);
  for (text::TokenId e : r.store.token_ids()) ++fr[e];
  for (text::TokenId e : s.store.token_ids()) ++fs[e];
  double expected_overlap = 0.0;
  for (size_t e = 0; e < num_elements; ++e) {
    expected_overlap += static_cast<double>(fr[e]) * fs[e];
  }
  expected_overlap /= std::max(1.0, pairs);
  double total_elements =
      static_cast<double>(r.total_elements() + s.total_elements());
  double avg_r = static_cast<double>(r.total_elements()) /
                 std::max<size_t>(1, r.num_groups());
  double avg_s = static_cast<double>(s.total_elements()) /
                 std::max<size_t>(1, s.num_groups());
  double avg_union = std::max(1.0, avg_r + avg_s - expected_overlap);
  plan.t_background = std::min(plan.t_min, expected_overlap / avg_union);

  // Per-pair miss budget: drive P(miss) far below the allowed missed
  // fraction so the measured recall concentrates above the target.
  double target = std::clamp(params.target_recall, 0.05, 0.999999);
  double eps_pair = (1.0 - target) / kMissSafety;

  size_t cap = params.max_hashes > 0 ? params.max_hashes : kDefaultMaxHashes;
  double avg_set = total_elements /
                   std::max<size_t>(1, r.num_groups() + s.num_groups());
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t rows = 1; rows <= kMaxRows; ++rows) {
    double p = std::pow(plan.t_min, static_cast<double>(rows));
    if (p <= 0.0) break;
    p = std::min(p, 1.0 - 1e-12);
    // 1 - (1 - p)^bands >= 1 - eps_pair  <=>  bands >= ln(eps)/ln(1-p).
    double bands_needed = std::ceil(std::log(eps_pair) / std::log1p(-p));
    if (!(bands_needed >= 1.0)) bands_needed = 1.0;
    // Compare in floating point: the needed band count can exceed
    // size_t range by orders of magnitude, and casting that is UB.
    if (bands_needed * static_cast<double>(rows) > static_cast<double>(cap)) {
      continue;
    }
    auto bands = static_cast<size_t>(bands_needed);
    double p_bg = std::pow(plan.t_background, static_cast<double>(rows));
    double collide_bg =
        1.0 - std::pow(1.0 - p_bg, static_cast<double>(bands));
    // Signature hashing work + expected background-candidate verify work.
    double cost = static_cast<double>(bands * rows) * total_elements +
                  collide_bg * pairs * avg_set;
    if (cost < best_cost) {
      best_cost = cost;
      plan.use_lsh = true;
      plan.rows = rows;
      plan.bands = bands;
    }
  }
  plan.note = plan.use_lsh ? "lsh" : "band budget exhausted for target recall";
  return plan;
}

SignatureMatrix BuildSignatures(const core::SetStore& store, size_t num_hashes,
                                uint64_t seed, const exec::ExecContext* ec) {
  SignatureMatrix sig;
  sig.num_hashes = num_hashes;
  sig.values.assign(static_cast<size_t>(store.num_groups()) * num_hashes,
                    std::numeric_limits<uint64_t>::max());
  if (num_hashes == 0 || store.num_groups() == 0) return sig;

  std::vector<uint64_t> salts(num_hashes);
  for (size_t i = 0; i < num_hashes; ++i) salts[i] = HashCombine(seed, i);

  exec::ExecContext serial;
  const exec::ExecContext& ctx = ec != nullptr ? *ec : serial;
  // Each group's row is a pure function of (seed, elements): any partition
  // into morsels yields bit-identical signatures.
  exec::ParallelFor(ctx, store.num_groups(),
                    [&](size_t, size_t, size_t begin, size_t end) {
                      for (size_t g = begin; g < end; ++g) {
                        uint64_t* row = sig.values.data() + g * num_hashes;
                        for (text::TokenId e : store.elements(
                                 static_cast<core::GroupId>(g))) {
                          for (size_t i = 0; i < num_hashes; ++i) {
                            uint64_t h = HashCombine(salts[i], e);
                            if (h < row[i]) row[i] = h;
                          }
                        }
                      }
                    });
  return sig;
}

}  // namespace ssjoin::approx
