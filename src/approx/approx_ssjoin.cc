#include "approx/approx_ssjoin.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/timer.h"
#include "core/cost_model.h"
#include "core/inverted_index.h"
#include "exec/parallel_for.h"
#include "exec/parallel_ssjoin.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"

namespace ssjoin::approx {

namespace {

using core::GroupId;
using core::SSJoinPair;
using core::SSJoinStats;

/// Per-worker epoch-marked dense "seen" array: O(1) candidate dedup per
/// probe, reset in O(1) per R-group by bumping the epoch.
struct ProbeScratch {
  std::vector<uint32_t> seen;
  uint32_t epoch = 0;
  std::vector<GroupId> cands;

  void EnsureSize(size_t n) {
    if (seen.size() < n) seen.resize(n, 0);
  }
  uint32_t NextEpoch() {
    if (++epoch == 0) {  // wrapped: stale marks could alias, clear them
      std::fill(seen.begin(), seen.end(), 0);
      epoch = 1;
    }
    return epoch;
  }
};

/// Per-morsel output slot; concatenating slots in morsel order makes the
/// result independent of scheduling.
struct MorselOutput {
  std::vector<SSJoinPair> pairs;
  size_t equijoin_rows = 0;
  size_t candidate_pairs = 0;
  size_t bands_probed = 0;
};

size_t NumWorkers(const exec::ExecContext* ec) {
  return ec != nullptr ? std::max<size_t>(1, ec->resolved_threads()) : 1;
}

/// Verifies one candidate with the exact sorted-merge overlap (identical
/// accumulation order to every exact executor, so overlaps are bitwise
/// equal) and appends it on success.
inline void VerifyCandidate(const core::SetsRelation& r,
                            const core::SetsRelation& s, GroupId rg, GroupId sg,
                            const core::OverlapPredicate& pred,
                            const core::WeightVector& w,
                            std::vector<SSJoinPair>* out) {
  double overlap = kernels::IntersectWeighted(r.set(rg), s.set(sg), w.data());
  if (overlap > 0.0 && pred.Test(overlap, r.norms[rg], s.norms[sg])) {
    out->push_back({rg, sg, overlap});
  }
}

/// Exact candidate generation (recall 1.0): probe the inverted index over S
/// with every element of each R-group. The fallback tier for small inputs
/// and infeasible band budgets.
std::vector<SSJoinPair> RunExactTier(const core::SetsRelation& r,
                                     const core::SetsRelation& s,
                                     const core::OverlapPredicate& pred,
                                     const core::SSJoinContext& ctx,
                                     SSJoinStats* stats) {
  const core::WeightVector& w = *ctx.weights;
  size_t num_elements = core::MaxElementId(r, s) + 1;
  core::InvertedIndex s_index(s.store, num_elements);

  exec::ExecContext serial;
  const exec::ExecContext& ec = ctx.exec != nullptr ? *ctx.exec : serial;
  size_t morsel = std::max<size_t>(1, ec.morsel_size);
  size_t num_morsels = (r.num_groups() + morsel - 1) / morsel;
  std::vector<MorselOutput> morsels(num_morsels);
  std::vector<ProbeScratch> scratch(NumWorkers(ctx.exec));

  exec::ParallelFor(ec, r.num_groups(),
                    [&](size_t worker, size_t m, size_t begin, size_t end) {
                      ProbeScratch& sc = scratch[worker];
                      sc.EnsureSize(s.num_groups());
                      MorselOutput& out = morsels[m];
                      for (size_t g = begin; g < end; ++g) {
                        auto rg = static_cast<GroupId>(g);
                        if (r.set(rg).empty()) continue;
                        uint32_t epoch = sc.NextEpoch();
                        sc.cands.clear();
                        for (text::TokenId e : r.set(rg)) {
                          auto [p, p_end] = s_index.Lookup(e);
                          out.equijoin_rows += static_cast<size_t>(p_end - p);
                          kernels::ProbePostings({p, p_end}, epoch,
                                                 sc.seen.data(), &sc.cands);
                        }
                        out.candidate_pairs += sc.cands.size();
                        for (GroupId sg : sc.cands) {
                          VerifyCandidate(r, s, rg, sg, pred, w, &out.pairs);
                        }
                      }
                    });

  std::vector<SSJoinPair> out;
  for (MorselOutput& m : morsels) {
    stats->equijoin_rows += m.equijoin_rows;
    stats->candidate_pairs += m.candidate_pairs;
    out.insert(out.end(), m.pairs.begin(), m.pairs.end());
  }
  return out;
}

/// LSH candidate generation: bucket S-groups by band keys, probe each
/// R-group's bands, verify collisions exactly.
std::vector<SSJoinPair> RunLshTier(const core::SetsRelation& r,
                                   const core::SetsRelation& s,
                                   const core::OverlapPredicate& pred,
                                   const core::SSJoinContext& ctx,
                                   const BandPlan& plan, uint64_t seed,
                                   SSJoinStats* stats, size_t* bands_probed) {
  const core::WeightVector& w = *ctx.weights;
  size_t num_hashes = plan.num_hashes();

  obs::Registry& reg = obs::Registry::Global();
  Timer sig_timer;
  SignatureMatrix r_sig = BuildSignatures(r.store, num_hashes, seed, ctx.exec);
  // Self-joins share one store; reuse the R signatures bit-for-bit then.
  bool same_store = &r.store == &s.store;
  SignatureMatrix s_sig =
      same_store ? SignatureMatrix{} : BuildSignatures(s.store, num_hashes,
                                                       seed, ctx.exec);
  const SignatureMatrix& s_sigs = same_store ? r_sig : s_sig;
  double sig_ms = sig_timer.ElapsedMillis();
  stats->phases.Add("Signature", sig_ms);
  reg.GetCounter("approx.phase.signature.us")
      ->Add(static_cast<uint64_t>(sig_ms * 1000.0));
  reg.GetCounter("approx.phase.signature.count")->Add(1);

  // Band buckets over S, built in ascending group order so every bucket list
  // is deterministic. Cross-band key collisions only add extra verified
  // candidates — never wrong results.
  std::unordered_map<uint64_t, std::vector<GroupId>> buckets;
  buckets.reserve(static_cast<size_t>(s.num_groups()) * plan.bands / 2 + 1);
  for (GroupId sg = 0; sg < s.num_groups(); ++sg) {
    if (s.set(sg).empty()) continue;
    std::span<const uint64_t> row = s_sigs.row(sg);
    for (size_t b = 0; b < plan.bands; ++b) {
      buckets[BandKey(row, b, plan.rows)].push_back(sg);
    }
  }

  exec::ExecContext serial;
  const exec::ExecContext& ec = ctx.exec != nullptr ? *ctx.exec : serial;
  size_t morsel = std::max<size_t>(1, ec.morsel_size);
  size_t num_morsels = (r.num_groups() + morsel - 1) / morsel;
  std::vector<MorselOutput> morsels(num_morsels);
  std::vector<ProbeScratch> scratch(NumWorkers(ctx.exec));

  exec::ParallelFor(
      ec, r.num_groups(), [&](size_t worker, size_t m, size_t begin, size_t end) {
        ProbeScratch& sc = scratch[worker];
        sc.EnsureSize(s.num_groups());
        MorselOutput& out = morsels[m];
        for (size_t g = begin; g < end; ++g) {
          auto rg = static_cast<GroupId>(g);
          if (r.set(rg).empty()) continue;
          uint32_t epoch = sc.NextEpoch();
          std::span<const uint64_t> row = r_sig.row(rg);
          sc.cands.clear();
          for (size_t b = 0; b < plan.bands; ++b) {
            ++out.bands_probed;
            auto it = buckets.find(BandKey(row, b, plan.rows));
            if (it == buckets.end()) continue;
            out.equijoin_rows += it->second.size();
            kernels::ProbePostings(
                {it->second.data(), it->second.size()}, epoch,
                sc.seen.data(), &sc.cands);
          }
          out.candidate_pairs += sc.cands.size();
          for (GroupId sg : sc.cands) {
            VerifyCandidate(r, s, rg, sg, pred, w, &out.pairs);
          }
        }
      });

  std::vector<SSJoinPair> out;
  for (MorselOutput& m : morsels) {
    stats->equijoin_rows += m.equijoin_rows;
    stats->candidate_pairs += m.candidate_pairs;
    *bands_probed += m.bands_probed;
    out.insert(out.end(), m.pairs.begin(), m.pairs.end());
  }
  return out;
}

/// Samples up to `sample` R-groups (fixed stride, so the sample is a pure
/// function of the input sizes), re-derives their exact result counts via
/// full inverted-index probing, and returns the measured recall of `pairs`
/// over the sample. Precision is 1.0 by construction, so counting suffices.
double MeasureRecall(const core::SetsRelation& r, const core::SetsRelation& s,
                     const core::OverlapPredicate& pred,
                     const core::SSJoinContext& ctx,
                     const std::vector<SSJoinPair>& pairs, size_t sample) {
  const core::WeightVector& w = *ctx.weights;
  size_t num_elements = core::MaxElementId(r, s) + 1;
  core::InvertedIndex s_index(s.store, num_elements);

  // Approximate result counts per R-group, one linear pass.
  std::unordered_map<GroupId, size_t> got_counts;
  for (const SSJoinPair& p : pairs) ++got_counts[p.r];

  size_t stride = std::max<size_t>(1, r.num_groups() / std::max<size_t>(1, sample));
  ProbeScratch sc;
  sc.EnsureSize(s.num_groups());
  std::vector<SSJoinPair> exact;
  size_t exact_total = 0;
  size_t got_total = 0;
  for (size_t g = 0; g < r.num_groups(); g += stride) {
    auto rg = static_cast<GroupId>(g);
    if (r.set(rg).empty()) continue;
    uint32_t epoch = sc.NextEpoch();
    exact.clear();
    for (text::TokenId e : r.set(rg)) {
      auto [p, p_end] = s_index.Lookup(e);
      for (; p != p_end; ++p) {
        if (sc.seen[*p] == epoch) continue;
        sc.seen[*p] = epoch;
        VerifyCandidate(r, s, rg, *p, pred, w, &exact);
      }
    }
    exact_total += exact.size();
    auto it = got_counts.find(rg);
    if (it != got_counts.end()) got_total += it->second;
  }
  return exact_total > 0
             ? static_cast<double>(got_total) / static_cast<double>(exact_total)
             : 1.0;
}

}  // namespace

Result<std::vector<SSJoinPair>> ApproxSSJoin::Execute(
    const core::SetsRelation& r, const core::SetsRelation& s,
    const core::OverlapPredicate& pred, const core::SSJoinContext& ctx,
    SSJoinStats* stats) const {
  SSJOIN_RETURN_NOT_OK(
      core::ValidateSSJoinInputs(r, s, ctx, /*needs_order=*/false));
  if (!(params_.target_recall > 0.0) || params_.target_recall > 1.0) {
    return Status::Invalid("target_recall must be in (0, 1]");
  }
  SSJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("approx.joins")->Add(1);

  BandPlan plan = TuneBands(r, s, pred, *ctx.weights, params_);
  Timer join_timer;
  std::vector<SSJoinPair> out;
  size_t bands_probed = 0;
  if (plan.use_lsh) {
    reg.GetCounter("approx.lsh_joins")->Add(1);
    out = RunLshTier(r, s, pred, ctx, plan, params_.seed, stats, &bands_probed);
  } else {
    reg.GetCounter("approx.exact_fallbacks")->Add(1);
    out = RunExactTier(r, s, pred, ctx, stats);
  }
  stats->result_pairs = out.size();
  stats->phases.Add("SSJoin", join_timer.ElapsedMillis());

  reg.GetCounter("approx.bands_probed")->Add(bands_probed);
  reg.GetCounter("approx.candidates")->Add(stats->candidate_pairs);
  reg.GetGauge("approx.signature_hashes")
      ->Set(static_cast<int64_t>(plan.num_hashes()));

  // Measured-recall gauge from sampled exact re-checks. The exact tier is
  // complete by construction; report it as such without re-probing.
  double recall = 1.0;
  if (plan.use_lsh && params_.recall_sample > 0) {
    recall = MeasureRecall(r, s, pred, ctx, out, params_.recall_sample);
  }
  reg.GetGauge("approx.measured_recall_ppm")
      ->Set(static_cast<int64_t>(std::llround(recall * 1e6)));
  return out;
}

Result<std::vector<SSJoinPair>> ExecuteSSJoin(
    core::SSJoinAlgorithm algorithm, const core::SetsRelation& r,
    const core::SetsRelation& s, const core::OverlapPredicate& pred,
    const core::SSJoinContext& ctx, const ApproxParams& params,
    SSJoinStats* stats, core::SSJoinAlgorithm* resolved) {
  if (algorithm == core::SSJoinAlgorithm::kHybrid) {
    core::HybridRoutingDecision decision = core::ChooseHybridTier(r, s, pred, ctx);
    algorithm = decision.chosen;
    obs::Registry::Global()
        .GetCounter(algorithm == core::SSJoinAlgorithm::kApprox
                        ? "approx.hybrid_to_approx"
                        : "approx.hybrid_to_exact")
        ->Add(1);
  }
  if (resolved != nullptr) *resolved = algorithm;
  if (algorithm == core::SSJoinAlgorithm::kApprox) {
    SSJoinStats local_stats;
    if (stats == nullptr) stats = &local_stats;
    ApproxSSJoin executor(params);
    Result<std::vector<SSJoinPair>> result =
        executor.Execute(r, s, pred, ctx, stats);
    // Parallel and serial approx runs both publish here, exactly once per
    // join (mirrors the exec-layer publication discipline).
    if (result.ok()) core::PublishSSJoinStats(*stats);
    return result;
  }
  return exec::ExecuteSSJoin(algorithm, r, s, pred, ctx, stats);
}

void RegisterApproxMetrics() {
  obs::Registry& reg = obs::Registry::Global();
  for (const char* name :
       {"approx.joins", "approx.lsh_joins", "approx.exact_fallbacks",
        "approx.bands_probed", "approx.candidates", "approx.hybrid_to_approx",
        "approx.hybrid_to_exact", "approx.phase.signature.us",
        "approx.phase.signature.count"}) {
    reg.GetCounter(name);
  }
  reg.GetGauge("approx.signature_hashes");
  reg.GetGauge("approx.measured_recall_ppm");
}

}  // namespace ssjoin::approx
