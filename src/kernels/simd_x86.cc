#include "kernels/internal.h"

#ifdef SSJOIN_KERNELS_X86

#include <emmintrin.h>
#include <xmmintrin.h>

/// \file
/// \brief x86 entry points for the simd tier. SSE2 is part of the x86-64
/// baseline, so the 4x4 block intersection here needs no compiler flags and
/// no CPUID check; when the CPU reports AVX2 the calls forward to the 8x8
/// versions in simd_avx2.cc (a separate translation unit built with -mavx2).

namespace ssjoin::kernels::internal {

namespace {

/// 4-lane all-vs-all equality: compares the a block against the b block and
/// its three rotations (_mm_shuffle_epi32 is SSE2). Equality compares are
/// bitwise, so unsigned token ids are handled exactly.
struct SseOps {
  static constexpr size_t kWidth = 4;
  static uint32_t MatchMask(const uint32_t* pa, const uint32_t* pb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
    __m128i m = _mm_cmpeq_epi32(va, vb);
    m = _mm_or_si128(
        m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    m = _mm_or_si128(
        m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    m = _mm_or_si128(
        m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    return static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(m)));
  }
};

}  // namespace

bool SimdHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}

size_t SimdIntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb) {
  if (SimdHasAvx2()) return Avx2IntersectCount(a, na, b, nb);
  CountEmit e;
  BlockIntersect<SseOps>(a, na, b, nb, e);
  return e.count;
}

double SimdIntersectWeighted(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb, const double* w, size_t* match_count) {
  if (SimdHasAvx2()) {
    return Avx2IntersectWeighted(a, na, b, nb, w, match_count);
  }
  WeightedEmit e{w};
  BlockIntersect<SseOps>(a, na, b, nb, e);
  if (match_count != nullptr) *match_count = e.count;
  return e.sum;
}

size_t SimdIntersectTokens(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  if (SimdHasAvx2()) return Avx2IntersectTokens(a, na, b, nb, out);
  TokensEmit e{out};
  BlockIntersect<SseOps>(a, na, b, nb, e);
  return e.count;
}

double SimdIntersectWeightedCols(const uint32_t* a, const double* aw,
                                 size_t na, const uint32_t* b, size_t nb) {
  if (SimdHasAvx2()) return Avx2IntersectWeightedCols(a, aw, na, b, nb);
  ColsEmit e{aw};
  BlockIntersect<SseOps>(a, na, b, nb, e);
  return e.sum;
}

size_t SimdProbePostings(const uint32_t* postings, size_t n, uint32_t epoch,
                         uint32_t* seen_epoch, std::vector<uint32_t>* out) {
  // The vectorized probe needs AVX2 gathers; plain SSE2 machines use the
  // scalar loop (bit-identical by construction).
  if (SimdHasAvx2()) {
    return Avx2ProbePostings(postings, n, epoch, seen_epoch, out);
  }
  return ScalarProbePostings(postings, n, epoch, seen_epoch, out);
}

}  // namespace ssjoin::kernels::internal

#endif  // SSJOIN_KERNELS_X86
