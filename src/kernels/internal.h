#ifndef SSJOIN_KERNELS_INTERNAL_H_
#define SSJOIN_KERNELS_INTERNAL_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define SSJOIN_KERNELS_X86 1
#endif

/// \file
/// \brief Shared building blocks of the kernel tiers: the emitter policies
/// that turn one generic intersection into the count/weighted/tokens/cols
/// variants, the scalar merge (the oracle all tiers must reproduce), the
/// galloping merge, and the block-intersection skeleton the SSE2 and AVX2
/// translation units instantiate with their compare ops.

namespace ssjoin::kernels::internal {

/// \name Emitter policies
/// Every intersection calls `emit(ai, token)` once per match, in ascending
/// token order, where `ai` is the matched position in `a`. The policies
/// below fold that stream into each public variant's result. Keeping the
/// order identical across tiers is what makes weighted sums bit-equal.
/// @{
struct CountEmit {
  size_t count = 0;
  void operator()(size_t, uint32_t) { ++count; }
};

struct TokensEmit {
  uint32_t* out;
  size_t count = 0;
  void operator()(size_t, uint32_t t) { out[count++] = t; }
};

struct WeightedEmit {
  const double* w;
  double sum = 0.0;
  size_t count = 0;
  void operator()(size_t, uint32_t t) {
    sum += w[t];
    ++count;
  }
};

struct ColsEmit {
  const double* aw;
  double sum = 0.0;
  size_t count = 0;
  void operator()(size_t ai, uint32_t) {
    sum += aw[ai];
    ++count;
  }
};
/// @}

/// The oracle: two-pointer merge from positions (i, j). Correct for any
/// sorted inputs including duplicates (min-multiplicity intersection).
/// Exposed with explicit start positions so the SIMD tier can finish tails
/// and rescan non-strict windows with absolute `a` indices intact.
template <typename Emit>
inline void ScalarMergeFrom(const uint32_t* a, size_t na, size_t i,
                            const uint32_t* b, size_t nb, size_t j,
                            Emit& emit) {
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      emit(i, a[i]);
      ++i;
      ++j;
    }
  }
}

/// First position in [first, last) with value >= key, found by doubling
/// steps from `first` then binary search over the bracketed window — the
/// O(log d) step the gallop tier leans on when one span dwarfs the other.
inline const uint32_t* GallopLowerBound(const uint32_t* first,
                                        const uint32_t* last, uint32_t key) {
  const size_t n = static_cast<size_t>(last - first);
  size_t prev = 0;
  size_t idx = 1;
  while (idx < n && first[idx] < key) {
    prev = idx;
    idx = idx * 2 + 1;
  }
  return std::lower_bound(first + prev, first + std::min(idx + 1, n), key);
}

/// Galloping intersection driven from the shorter span. Advancing past each
/// match in the searched span replicates the scalar merge's multiset
/// min-multiplicity semantics exactly, duplicates included.
template <typename Emit>
inline void GallopIntersect(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, Emit& emit) {
  if (na <= nb) {
    size_t j = 0;
    for (size_t i = 0; i < na && j < nb; ++i) {
      j = static_cast<size_t>(GallopLowerBound(b + j, b + nb, a[i]) - b);
      if (j < nb && b[j] == a[i]) {
        emit(i, a[i]);
        ++j;
      }
    }
  } else {
    size_t i = 0;
    for (size_t j = 0; j < nb && i < na; ++j) {
      i = static_cast<size_t>(GallopLowerBound(a + i, a + na, b[j]) - a);
      if (i < na && a[i] == b[j]) {
        emit(i, b[j]);
        ++i;
      }
    }
  }
}

/// A width-W block at `p` is clean when it is strictly increasing, greater
/// than the element before it, and — crucially — less than the element
/// after it. The lookahead guarantees that when a block is consumed, no
/// later element (block or tail) can equal anything inside it, so block
/// emission and the scalar tail never double-count. Any dirty block drops
/// the whole remaining window to the scalar merge.
template <size_t W>
inline bool CleanBlock(const uint32_t* arr, size_t n, size_t p) {
  if (p > 0 && arr[p] <= arr[p - 1]) return false;
  for (size_t k = 1; k < W; ++k) {
    if (arr[p + k] <= arr[p + k - 1]) return false;
  }
  if (p + W < n && arr[p + W] <= arr[p + W - 1]) return false;
  return true;
}

template <typename Emit>
inline void EmitMaskLanes(uint32_t mask, const uint32_t* a, size_t base,
                          Emit& emit) {
  while (mask != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    emit(base + lane, a[base + lane]);
  }
}

/// Block all-vs-all intersection skeleton (Schlegel/Inoue-style). `Ops`
/// supplies kWidth and MatchMask(pa, pb) -> lane bitmask of a-elements that
/// occur in the b block. Matches for the current a block accumulate in
/// `pending` and are emitted in lane order when the block is consumed, so
/// the overall emission order is ascending — identical to the scalar merge.
/// Duplicate tokens make a block dirty (CleanBlock) and the affected window
/// is redone with the scalar merge from (i, saved_j), where saved_j marks
/// the b position the current a block first compared against; everything
/// before that point is unaffected by construction.
template <typename Ops, typename Emit>
inline void BlockIntersect(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, Emit& emit) {
  constexpr size_t W = Ops::kWidth;
  size_t i = 0;
  size_t j = 0;
  uint32_t pending = 0;
  if (na >= W && nb >= W) {
    size_t saved_j = 0;
    bool a_ok = CleanBlock<W>(a, na, 0);
    bool b_ok = CleanBlock<W>(b, nb, 0);
    while (true) {
      if (!a_ok || !b_ok) {
        ScalarMergeFrom(a, na, i, b, nb, saved_j, emit);
        return;
      }
      pending |= Ops::MatchMask(a + i, b + j);
      const uint32_t amax = a[i + W - 1];
      const uint32_t bmax = b[j + W - 1];
      const bool adv_a = amax <= bmax;
      const bool adv_b = bmax <= amax;
      if (adv_a) {
        EmitMaskLanes(pending, a, i, emit);
        pending = 0;
        i += W;
        if (na - i < W) break;
        a_ok = CleanBlock<W>(a, na, i);
        saved_j = adv_b ? j + W : j;
      }
      if (adv_b) {
        j += W;
        if (nb - j < W) break;
        b_ok = CleanBlock<W>(b, nb, j);
      }
    }
  }
  EmitMaskLanes(pending, a, i, emit);
  ScalarMergeFrom(a, na, i, b, nb, j, emit);
}

/// Scalar posting probe: the oracle for ProbePostings.
inline size_t ScalarProbePostings(const uint32_t* postings, size_t n,
                                  uint32_t epoch, uint32_t* seen_epoch,
                                  std::vector<uint32_t>* out) {
  size_t appended = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t g = postings[k];
    if (seen_epoch[g] != epoch) {
      seen_epoch[g] = epoch;
      out->push_back(g);
      ++appended;
    }
  }
  return appended;
}

#ifdef SSJOIN_KERNELS_X86
/// x86 entry points (simd_x86.cc): SSE2 baseline, upgraded to the AVX2
/// versions below when CPUID says so.
bool SimdHasAvx2();
size_t SimdIntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb);
double SimdIntersectWeighted(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb, const double* w, size_t* match_count);
size_t SimdIntersectTokens(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out);
double SimdIntersectWeightedCols(const uint32_t* a, const double* aw,
                                 size_t na, const uint32_t* b, size_t nb);
size_t SimdProbePostings(const uint32_t* postings, size_t n, uint32_t epoch,
                         uint32_t* seen_epoch, std::vector<uint32_t>* out);

/// AVX2 translation unit (simd_avx2.cc, compiled with -mavx2); call only
/// after SimdHasAvx2() returned true.
size_t Avx2IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb);
double Avx2IntersectWeighted(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb, const double* w, size_t* match_count);
size_t Avx2IntersectTokens(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out);
double Avx2IntersectWeightedCols(const uint32_t* a, const double* aw,
                                 size_t na, const uint32_t* b, size_t nb);
size_t Avx2ProbePostings(const uint32_t* postings, size_t n, uint32_t epoch,
                         uint32_t* seen_epoch, std::vector<uint32_t>* out);
#endif  // SSJOIN_KERNELS_X86

}  // namespace ssjoin::kernels::internal

#endif  // SSJOIN_KERNELS_INTERNAL_H_
