#ifndef SSJOIN_KERNELS_KERNELS_H_
#define SSJOIN_KERNELS_KERNELS_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file
/// \brief The single owner of the SSJoin hot inner loops.
///
/// The operator of Chaudhuri/Ganti/Kaushik spends nearly all of its time in
/// two loops: the sorted-span set intersection that verifies candidate pairs
/// (Overlap(s1, s2), Section 2) and the candidate equi-join that probes
/// prefix postings (Section 3.2). After the flat CSR SetStore both loops run
/// over contiguous uint32 columns, so they vectorize; this module provides
/// the one implementation of each, behind a runtime-dispatched tier:
///
///  - `scalar`  textbook two-pointer merge / linear probe. This tier is the
///              differential-fuzz oracle: every other tier must reproduce
///              its results bit-for-bit (counts, match order, and therefore
///              floating-point sums).
///  - `gallop`  exponential-search merge driven from the shorter span; wins
///              when span lengths are heavily skewed (a short probe against
///              a long posting list).
///  - `simd`    block all-vs-all compare (SSE2 4x4, AVX2 8x8 chosen by CPUID
///              at runtime) for the intersections, and an AVX2 gather-based
///              seen-epoch filter for the posting probe. Only available on
///              x86; `SetTier(kSimd)` fails loudly elsewhere.
///  - `auto`    per-call choice: gallop for skewed lengths, else simd when
///              available, else scalar.
///
/// Bit-identity contract (PR-1/PR-3 acceptance): all tiers emit matches in
/// ascending token order, so weighted sums accumulate in the same order and
/// compare equal bitwise. Inputs are sorted ascending; duplicates are
/// allowed and intersect with multiset min-multiplicity semantics (the SIMD
/// tier detects non-strict blocks and falls back to the scalar merge for the
/// affected window, preserving exact equivalence).
///
/// Dispatch is process-wide, observable (`kernels.tier.*` gauges,
/// `kernels.*` call/element counters) and overridable with the `--kernel`
/// tool flag or the `SSJOIN_KERNEL` environment variable; unknown names fail
/// loudly like `--algorithm` does.

namespace ssjoin::kernels {

/// Dispatch tier. kScalar/kGallop/kSimd name concrete implementations;
/// kAuto picks per call.
enum class Tier : uint8_t { kScalar = 0, kGallop = 1, kSimd = 2, kAuto = 3 };

/// Stable lowercase name ("scalar", "gallop", "simd", "auto").
const char* TierName(Tier t);

/// Parses a tier name; unknown names yield an invalid-argument status that
/// lists the valid spellings (mirrors ParseAlgorithm's loud failure).
Result<Tier> ParseTier(std::string_view name);

/// True when `t` can be selected on this build/CPU. kScalar, kGallop and
/// kAuto are always available; kSimd requires x86.
bool TierAvailable(Tier t);

/// The concrete tiers available on this machine, scalar first. Tests and
/// the fuzz harness iterate this to differentially check every tier.
std::vector<Tier> AvailableTiers();

/// Sets the process-wide requested tier. Fails (without changing the
/// active tier) when the tier is unavailable on this build.
Status SetTier(Tier t);

/// The currently requested tier (default kAuto, unless SSJOIN_KERNEL
/// overrode it).
Tier CurrentTier();

/// The concrete tier `CurrentTier()` resolves to for balanced inputs —
/// what the `kernels.tier.<name>` gauge reports as active.
const char* ActiveTierName();

/// Applies the SSJOIN_KERNEL environment variable, if set. Invalid values
/// are an error; tools call this before their first join so the failure is
/// a clean exit rather than the lazy-init abort.
Status InitFromEnv();

/// Pre-creates the kernels.* counters and publishes the dispatch gauges so
/// they appear in metric dumps before the first join.
void RegisterKernelMetrics();

/// \name Sorted-span intersection
/// Spans must be sorted ascending; duplicates allowed (multiset
/// min-multiplicity). TokenId and GroupId are both uint32_t, so these
/// accept either column type.
/// @{

/// |a ∩ b|.
size_t IntersectCount(std::span<const uint32_t> a, std::span<const uint32_t> b);

/// Σ weights[t] over t ∈ a ∩ b, accumulated in ascending token order (the
/// order every executor relies on for bit-equal parallel output).
double IntersectWeighted(std::span<const uint32_t> a,
                         std::span<const uint32_t> b, const double* weights);

/// As above; also reports |a ∩ b| (the prefix-filter verify loop needs the
/// "did anything intersect" bit alongside the overlap).
double IntersectWeighted(std::span<const uint32_t> a,
                         std::span<const uint32_t> b, const double* weights,
                         size_t* match_count);

/// Writes the matched tokens, in ascending order, to `out` (caller provides
/// at least min(|a|, |b|) slots). Returns the match count.
size_t IntersectTokens(std::span<const uint32_t> a, std::span<const uint32_t> b,
                       uint32_t* out);

/// Weighted overlap against a SetStore element-weight column: the weight of
/// a match is read from `a_weights` at the matched position in `a` (branch-
/// free accumulation in the scalar tier). `a_weights.size() == a.size()`.
double IntersectWeightedCols(std::span<const uint32_t> a,
                             std::span<const double> a_weights,
                             std::span<const uint32_t> b);
/// @}

/// \name Posting-list probe (candidate equi-join)
/// @{

/// Appends each group in `postings` not yet seen this `epoch` to `out` and
/// marks it seen. Returns the number appended. Append order is postings
/// order (identical across tiers).
size_t ProbePostings(std::span<const uint32_t> postings, uint32_t epoch,
                     uint32_t* seen_epoch, std::vector<uint32_t>* out);

/// Weighted accumulate probe: `acc[g] += weight` for each posting, zeroing
/// `acc[g]` and recording g in `touched` on first touch this epoch. One
/// scalar implementation serves every tier: the loop is a gather-modify-
/// scatter with no x86 scatter instruction to vectorize it, and it is
/// memory-bound, so all tiers share it (trivially bit-identical).
void AccumulatePostings(std::span<const uint32_t> postings, double weight,
                        uint32_t epoch, uint32_t* seen_epoch, double* acc,
                        std::vector<uint32_t>* touched);
/// @}

/// \name Explicit-tier entry points
/// Differential testing and the `kernel_diff` fuzz scenario call these to
/// pin a concrete tier regardless of the process-wide setting. kAuto
/// resolves per call like the public entry points.
/// @{
size_t IntersectCountTier(Tier t, std::span<const uint32_t> a,
                          std::span<const uint32_t> b);
double IntersectWeightedTier(Tier t, std::span<const uint32_t> a,
                             std::span<const uint32_t> b,
                             const double* weights, size_t* match_count);
size_t IntersectTokensTier(Tier t, std::span<const uint32_t> a,
                           std::span<const uint32_t> b, uint32_t* out);
double IntersectWeightedColsTier(Tier t, std::span<const uint32_t> a,
                                 std::span<const double> a_weights,
                                 std::span<const uint32_t> b);
size_t ProbePostingsTier(Tier t, std::span<const uint32_t> postings,
                         uint32_t epoch, uint32_t* seen_epoch,
                         std::vector<uint32_t>* out);
/// @}

}  // namespace ssjoin::kernels

#endif  // SSJOIN_KERNELS_KERNELS_H_
