#include "kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "kernels/internal.h"
#include "obs/metrics.h"

namespace ssjoin::kernels {

namespace {

using internal::ColsEmit;
using internal::CountEmit;
using internal::GallopIntersect;
using internal::ScalarMergeFrom;
using internal::TokensEmit;
using internal::WeightedEmit;

std::atomic<Tier> g_requested{Tier::kAuto};

/// Set once SetTier/InitFromEnv ran. A --kernel flag applied before the
/// first kernel call must not be clobbered by the lazy env pickup: flag
/// beats env.
std::atomic<bool> g_configured{false};

/// One span at least this many times longer than the other sends an `auto`
/// intersection to the gallop tier; balanced lengths go to simd/scalar.
constexpr size_t kGallopSkew = 32;

struct KernelCounters {
  obs::Counter* intersect_calls;
  obs::Counter* intersect_elements;
  obs::Counter* probe_calls;
  obs::Counter* probe_rows;
  obs::Counter* accumulate_calls;
  obs::Counter* accumulate_rows;
};

KernelCounters& Counters() {
  static KernelCounters c = [] {
    auto& reg = obs::Registry::Global();
    return KernelCounters{
        reg.GetCounter("kernels.intersect.calls"),
        reg.GetCounter("kernels.intersect.elements"),
        reg.GetCounter("kernels.probe.calls"),
        reg.GetCounter("kernels.probe.rows"),
        reg.GetCounter("kernels.accumulate.calls"),
        reg.GetCounter("kernels.accumulate.rows"),
    };
  }();
  return c;
}

bool SimdSupported() {
#ifdef SSJOIN_KERNELS_X86
  return true;
#else
  return false;
#endif
}

/// The concrete tier `requested` uses for balanced inputs (what the gauges
/// report; the per-call resolution below may still pick gallop for skew).
Tier PrimaryTier(Tier requested) {
  if (requested == Tier::kAuto) {
    return SimdSupported() ? Tier::kSimd : Tier::kScalar;
  }
  return requested;
}

void PublishTierGauges(Tier requested) {
  auto& reg = obs::Registry::Global();
  const Tier primary = PrimaryTier(requested);
  reg.GetGauge("kernels.tier.scalar")->Set(primary == Tier::kScalar ? 1 : 0);
  reg.GetGauge("kernels.tier.gallop")->Set(primary == Tier::kGallop ? 1 : 0);
  reg.GetGauge("kernels.tier.simd")->Set(primary == Tier::kSimd ? 1 : 0);
  reg.GetGauge("kernels.simd.available")->Set(SimdSupported() ? 1 : 0);
#ifdef SSJOIN_KERNELS_X86
  reg.GetGauge("kernels.simd.avx2")->Set(internal::SimdHasAvx2() ? 1 : 0);
#else
  reg.GetGauge("kernels.simd.avx2")->Set(0);
#endif
}

/// Lazy SSJOIN_KERNEL pickup for entry points that don't go through a tool
/// main (tests, benches under ctest). Invalid values abort loudly: a typo'd
/// override silently falling back to auto would invalidate a differential
/// run.
void EnsureInitFromEnv() {
  static const bool once = [] {
    if (g_configured.load(std::memory_order_relaxed)) return true;
    Status s = InitFromEnv();
    if (!s.ok()) {
      std::fprintf(stderr, "ssjoin: %s\n", s.ToString().c_str());
      std::abort();
    }
    return true;
  }();
  (void)once;
}

/// Per-call tier resolution. Concrete requests are honored as-is (the
/// differential contract: `--kernel gallop` means gallop everywhere); auto
/// picks gallop for skewed lengths, else the widest available path.
Tier ResolveIntersect(Tier requested, size_t na, size_t nb) {
  if (requested != Tier::kAuto) return requested;
  const size_t lo = na < nb ? na : nb;
  const size_t hi = na < nb ? nb : na;
  if (hi / kGallopSkew > lo) return Tier::kGallop;
  return SimdSupported() ? Tier::kSimd : Tier::kScalar;
}

}  // namespace

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kGallop:
      return "gallop";
    case Tier::kSimd:
      return "simd";
    case Tier::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<Tier> ParseTier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "gallop") return Tier::kGallop;
  if (name == "simd") return Tier::kSimd;
  if (name == "auto") return Tier::kAuto;
  return Status::Invalid("unknown kernel tier '" + std::string(name) +
                         "' (valid: scalar, gallop, simd, auto)");
}

bool TierAvailable(Tier t) {
  if (t == Tier::kSimd) return SimdSupported();
  return true;
}

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers = {Tier::kScalar, Tier::kGallop};
  if (SimdSupported()) tiers.push_back(Tier::kSimd);
  return tiers;
}

Status SetTier(Tier t) {
  if (!TierAvailable(t)) {
    return Status::Invalid(std::string("kernel tier '") + TierName(t) +
                           "' is not available on this build (no x86 SIMD)");
  }
  g_requested.store(t, std::memory_order_relaxed);
  g_configured.store(true, std::memory_order_relaxed);
  PublishTierGauges(t);
  return Status::OK();
}

Tier CurrentTier() {
  EnsureInitFromEnv();
  return g_requested.load(std::memory_order_relaxed);
}

const char* ActiveTierName() { return TierName(PrimaryTier(CurrentTier())); }

Status InitFromEnv() {
  const char* v = std::getenv("SSJOIN_KERNEL");
  if (v == nullptr || *v == '\0') {
    g_configured.store(true, std::memory_order_relaxed);
    PublishTierGauges(g_requested.load(std::memory_order_relaxed));
    return Status::OK();
  }
  auto parsed = ParseTier(v);
  if (!parsed.ok()) {
    return Status::Invalid("SSJOIN_KERNEL: " + parsed.status().message());
  }
  return SetTier(*parsed);
}

void RegisterKernelMetrics() {
  Counters();
  PublishTierGauges(g_requested.load(std::memory_order_relaxed));
}

size_t IntersectCount(std::span<const uint32_t> a,
                      std::span<const uint32_t> b) {
  return IntersectCountTier(CurrentTier(), a, b);
}

double IntersectWeighted(std::span<const uint32_t> a,
                         std::span<const uint32_t> b, const double* weights) {
  return IntersectWeightedTier(CurrentTier(), a, b, weights, nullptr);
}

double IntersectWeighted(std::span<const uint32_t> a,
                         std::span<const uint32_t> b, const double* weights,
                         size_t* match_count) {
  return IntersectWeightedTier(CurrentTier(), a, b, weights, match_count);
}

size_t IntersectTokens(std::span<const uint32_t> a, std::span<const uint32_t> b,
                       uint32_t* out) {
  return IntersectTokensTier(CurrentTier(), a, b, out);
}

double IntersectWeightedCols(std::span<const uint32_t> a,
                             std::span<const double> a_weights,
                             std::span<const uint32_t> b) {
  return IntersectWeightedColsTier(CurrentTier(), a, a_weights, b);
}

size_t ProbePostings(std::span<const uint32_t> postings, uint32_t epoch,
                     uint32_t* seen_epoch, std::vector<uint32_t>* out) {
  return ProbePostingsTier(CurrentTier(), postings, epoch, seen_epoch, out);
}

void AccumulatePostings(std::span<const uint32_t> postings, double weight,
                        uint32_t epoch, uint32_t* seen_epoch, double* acc,
                        std::vector<uint32_t>* touched) {
  KernelCounters& c = Counters();
  c.accumulate_calls->Add(1);
  c.accumulate_rows->Add(postings.size());
  for (const uint32_t g : postings) {
    if (seen_epoch[g] != epoch) {
      seen_epoch[g] = epoch;
      acc[g] = 0.0;
      touched->push_back(g);
    }
    acc[g] += weight;
  }
}

size_t IntersectCountTier(Tier t, std::span<const uint32_t> a,
                          std::span<const uint32_t> b) {
  KernelCounters& c = Counters();
  c.intersect_calls->Add(1);
  c.intersect_elements->Add(a.size() + b.size());
  t = ResolveIntersect(t, a.size(), b.size());
#ifdef SSJOIN_KERNELS_X86
  if (t == Tier::kSimd) {
    return internal::SimdIntersectCount(a.data(), a.size(), b.data(),
                                        b.size());
  }
#endif
  if (t == Tier::kGallop) {
    CountEmit e;
    GallopIntersect(a.data(), a.size(), b.data(), b.size(), e);
    return e.count;
  }
  CountEmit e;
  ScalarMergeFrom(a.data(), a.size(), 0, b.data(), b.size(), 0, e);
  return e.count;
}

double IntersectWeightedTier(Tier t, std::span<const uint32_t> a,
                             std::span<const uint32_t> b,
                             const double* weights, size_t* match_count) {
  KernelCounters& c = Counters();
  c.intersect_calls->Add(1);
  c.intersect_elements->Add(a.size() + b.size());
  t = ResolveIntersect(t, a.size(), b.size());
#ifdef SSJOIN_KERNELS_X86
  if (t == Tier::kSimd) {
    return internal::SimdIntersectWeighted(a.data(), a.size(), b.data(),
                                           b.size(), weights, match_count);
  }
#endif
  WeightedEmit e{weights};
  if (t == Tier::kGallop) {
    GallopIntersect(a.data(), a.size(), b.data(), b.size(), e);
  } else {
    ScalarMergeFrom(a.data(), a.size(), 0, b.data(), b.size(), 0, e);
  }
  if (match_count != nullptr) *match_count = e.count;
  return e.sum;
}

size_t IntersectTokensTier(Tier t, std::span<const uint32_t> a,
                           std::span<const uint32_t> b, uint32_t* out) {
  KernelCounters& c = Counters();
  c.intersect_calls->Add(1);
  c.intersect_elements->Add(a.size() + b.size());
  t = ResolveIntersect(t, a.size(), b.size());
#ifdef SSJOIN_KERNELS_X86
  if (t == Tier::kSimd) {
    return internal::SimdIntersectTokens(a.data(), a.size(), b.data(),
                                         b.size(), out);
  }
#endif
  TokensEmit e{out};
  if (t == Tier::kGallop) {
    GallopIntersect(a.data(), a.size(), b.data(), b.size(), e);
  } else {
    ScalarMergeFrom(a.data(), a.size(), 0, b.data(), b.size(), 0, e);
  }
  return e.count;
}

double IntersectWeightedColsTier(Tier t, std::span<const uint32_t> a,
                                 std::span<const double> a_weights,
                                 std::span<const uint32_t> b) {
  KernelCounters& c = Counters();
  c.intersect_calls->Add(1);
  c.intersect_elements->Add(a.size() + b.size());
  t = ResolveIntersect(t, a.size(), b.size());
#ifdef SSJOIN_KERNELS_X86
  if (t == Tier::kSimd) {
    return internal::SimdIntersectWeightedCols(a.data(), a_weights.data(),
                                               a.size(), b.data(), b.size());
  }
#endif
  if (t == Tier::kGallop) {
    ColsEmit e{a_weights.data()};
    GallopIntersect(a.data(), a.size(), b.data(), b.size(), e);
    return e.sum;
  }
  // The branch-free scalar accumulation the SetStore weight columns were
  // laid out for: both cursors advance by comparison outcome and the weight
  // contributes under a mask, with no unpredictable branch in the loop.
  const size_t na = a.size();
  const size_t nb = b.size();
  size_t i = 0;
  size_t j = 0;
  double sum = 0.0;
  while (i < na && j < nb) {
    const uint32_t av = a[i];
    const uint32_t bv = b[j];
    sum += (av == bv) ? a_weights[i] : 0.0;
    i += (av <= bv) ? 1 : 0;
    j += (bv <= av) ? 1 : 0;
  }
  return sum;
}

size_t ProbePostingsTier(Tier t, std::span<const uint32_t> postings,
                         uint32_t epoch, uint32_t* seen_epoch,
                         std::vector<uint32_t>* out) {
  KernelCounters& c = Counters();
  c.probe_calls->Add(1);
  c.probe_rows->Add(postings.size());
  if (t == Tier::kAuto) t = PrimaryTier(t);
#ifdef SSJOIN_KERNELS_X86
  if (t == Tier::kSimd) {
    return internal::SimdProbePostings(postings.data(), postings.size(), epoch,
                                       seen_epoch, out);
  }
#endif
  // The gallop tier has no distinct probe shape; it shares the scalar loop.
  return internal::ScalarProbePostings(postings.data(), postings.size(), epoch,
                                       seen_epoch, out);
}

}  // namespace ssjoin::kernels
