#include "kernels/internal.h"

#if defined(SSJOIN_KERNELS_X86) && defined(__AVX2__)

#include <immintrin.h>

/// \file
/// \brief AVX2 implementations of the simd tier. This translation unit is
/// the only one compiled with -mavx2 (see src/kernels/CMakeLists.txt);
/// callers must check SimdHasAvx2() first, so no instruction here executes
/// on a CPU without AVX2.

namespace ssjoin::kernels::internal {

namespace {

/// 8-lane all-vs-all equality: the a block against the b block and its
/// seven lane rotations via _mm256_permutevar8x32_epi32.
struct Avx2Ops {
  static constexpr size_t kWidth = 8;
  static uint32_t MatchMask(const uint32_t* pa, const uint32_t* pb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    __m256i m = _mm256_cmpeq_epi32(va, vb);
    m = _mm256_or_si256(
        m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(
                                      vb, _mm256_setr_epi32(1, 2, 3, 4, 5, 6,
                                                            7, 0))));
    m = _mm256_or_si256(
        m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(
                                      vb, _mm256_setr_epi32(2, 3, 4, 5, 6, 7,
                                                            0, 1))));
    m = _mm256_or_si256(
        m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(
                                      vb, _mm256_setr_epi32(3, 4, 5, 6, 7, 0,
                                                            1, 2))));
    m = _mm256_or_si256(
        m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(
                                      vb, _mm256_setr_epi32(4, 5, 6, 7, 0, 1,
                                                            2, 3))));
    m = _mm256_or_si256(
        m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(
                                      vb, _mm256_setr_epi32(5, 6, 7, 0, 1, 2,
                                                            3, 4))));
    m = _mm256_or_si256(
        m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(
                                      vb, _mm256_setr_epi32(6, 7, 0, 1, 2, 3,
                                                            4, 5))));
    m = _mm256_or_si256(
        m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(
                                      vb, _mm256_setr_epi32(7, 0, 1, 2, 3, 4,
                                                            5, 6))));
    return static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(m)));
  }
};

}  // namespace

size_t Avx2IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb) {
  CountEmit e;
  BlockIntersect<Avx2Ops>(a, na, b, nb, e);
  return e.count;
}

double Avx2IntersectWeighted(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb, const double* w, size_t* match_count) {
  WeightedEmit e{w};
  BlockIntersect<Avx2Ops>(a, na, b, nb, e);
  if (match_count != nullptr) *match_count = e.count;
  return e.sum;
}

size_t Avx2IntersectTokens(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  TokensEmit e{out};
  BlockIntersect<Avx2Ops>(a, na, b, nb, e);
  return e.count;
}

double Avx2IntersectWeightedCols(const uint32_t* a, const double* aw,
                                 size_t na, const uint32_t* b, size_t nb) {
  ColsEmit e{aw};
  BlockIntersect<Avx2Ops>(a, na, b, nb, e);
  return e.sum;
}

size_t Avx2ProbePostings(const uint32_t* postings, size_t n, uint32_t epoch,
                         uint32_t* seen_epoch, std::vector<uint32_t>* out) {
  size_t appended = 0;
  size_t i = 0;
  const __m256i vepoch = _mm256_set1_epi32(static_cast<int>(epoch));
  for (; i + 8 <= n; i += 8) {
    const __m256i g = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(postings + i));
    const __m256i seen = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(seen_epoch), g, 4);
    const uint32_t seen_mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(seen,
                                                                  vepoch))));
    uint32_t fresh = ~seen_mask & 0xFFu;
    // Scalar re-check per fresh lane keeps duplicate group ids within one
    // window correct (the gather saw the pre-update epoch for all lanes).
    while (fresh != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(fresh));
      fresh &= fresh - 1;
      const uint32_t gid = postings[i + lane];
      if (seen_epoch[gid] != epoch) {
        seen_epoch[gid] = epoch;
        out->push_back(gid);
        ++appended;
      }
    }
  }
  for (; i < n; ++i) {
    const uint32_t gid = postings[i];
    if (seen_epoch[gid] != epoch) {
      seen_epoch[gid] = epoch;
      out->push_back(gid);
      ++appended;
    }
  }
  return appended;
}

}  // namespace ssjoin::kernels::internal

#endif  // SSJOIN_KERNELS_X86 && __AVX2__
