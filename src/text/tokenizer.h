#ifndef SSJOIN_TEXT_TOKENIZER_H_
#define SSJOIN_TEXT_TOKENIZER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ssjoin::text {

/// \brief Maps a string to its token multiset (Section 2 of the paper:
/// `Set(sigma)`). Tokens are returned in occurrence order; duplicates are
/// preserved (multiset semantics — TokenDictionary turns them into
/// (token, ordinal) pairs per §4.3.1).
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Token multiset of `s`, in occurrence order.
  virtual std::vector<std::string> Tokenize(std::string_view s) const = 0;

  /// Human-readable description, e.g. "qgram(q=3)".
  virtual std::string Describe() const = 0;
};

/// \brief All contiguous q-grams of the string ("Mic", "icr", ... for q=3).
///
/// Without padding a string of length L yields L-q+1 q-grams, matching the
/// paper's norm column (the string "Microsoft Corp" has 12 3-grams).
/// Strings shorter than q yield the whole string as a single token, so no
/// string ever maps to an empty set. With `pad=true` the string is extended
/// with q-1 copies of `pad_char` on each end (the Gravano et al. convention),
/// yielding L+q-1 q-grams.
class QGramTokenizer final : public Tokenizer {
 public:
  explicit QGramTokenizer(size_t q, bool pad = false, char pad_char = '$');

  std::vector<std::string> Tokenize(std::string_view s) const override;
  std::string Describe() const override;

  size_t q() const { return q_; }
  bool pad() const { return pad_; }

  /// Number of q-grams this tokenizer produces for a string of length `len`
  /// (the "norm" of Figure 1 when using unit weights).
  size_t NumGrams(size_t len) const;

 private:
  size_t q_;
  bool pad_;
  char pad_char_;
};

/// \brief Splits on delimiter characters (default: whitespace and common
/// punctuation), dropping empty tokens. "Microsoft Corp" -> {Microsoft, Corp}.
class WordTokenizer final : public Tokenizer {
 public:
  explicit WordTokenizer(std::string delimiters = " \t\r\n,.;:!?/()[]\"'");

  std::vector<std::string> Tokenize(std::string_view s) const override;
  std::string Describe() const override;

 private:
  std::string delimiters_;
};

}  // namespace ssjoin::text

#endif  // SSJOIN_TEXT_TOKENIZER_H_
