#include "text/tokenizer.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace ssjoin::text {

QGramTokenizer::QGramTokenizer(size_t q, bool pad, char pad_char)
    : q_(q), pad_(pad), pad_char_(pad_char) {
  SSJOIN_CHECK(q >= 1);
}

std::vector<std::string> QGramTokenizer::Tokenize(std::string_view s) const {
  std::vector<std::string> grams;
  if (pad_) {
    std::string padded;
    padded.reserve(s.size() + 2 * (q_ - 1));
    padded.append(q_ - 1, pad_char_);
    padded.append(s);
    padded.append(q_ - 1, pad_char_);
    for (size_t i = 0; i + q_ <= padded.size(); ++i) {
      grams.emplace_back(padded.substr(i, q_));
    }
    return grams;
  }
  if (s.empty()) return grams;
  if (s.size() < q_) {
    grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - q_ + 1);
  for (size_t i = 0; i + q_ <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, q_));
  }
  return grams;
}

std::string QGramTokenizer::Describe() const {
  return StringPrintf("qgram(q=%zu%s)", q_, pad_ ? ", padded" : "");
}

size_t QGramTokenizer::NumGrams(size_t len) const {
  if (pad_) return len + q_ - 1;
  if (len == 0) return 0;
  if (len < q_) return 1;
  return len - q_ + 1;
}

WordTokenizer::WordTokenizer(std::string delimiters)
    : delimiters_(std::move(delimiters)) {}

std::vector<std::string> WordTokenizer::Tokenize(std::string_view s) const {
  return SplitAndDropEmpty(s, delimiters_);
}

std::string WordTokenizer::Describe() const { return "word"; }

}  // namespace ssjoin::text
