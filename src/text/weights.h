#ifndef SSJOIN_TEXT_WEIGHTS_H_
#define SSJOIN_TEXT_WEIGHTS_H_

#include <cmath>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "text/dictionary.h"

namespace ssjoin::text {

/// Floor applied to IDF weights so every weight stays positive (the paper
/// assumes positive weights).
inline constexpr double kMinIdfWeight = 1e-6;

/// \brief The IDF formula of §5, shared by the immutable build path and the
/// mutable index so both compute bit-identical doubles for the same (n, f).
/// `f == 0` — possible in a dictionary rebuilt through Restore — maps to the
/// floor: log(n/0) = +inf would otherwise poison every set weight it touches.
inline double IdfWeightFromFrequency(double n, uint64_t f) {
  double idf = f == 0 ? kMinIdfWeight : std::log(n / static_cast<double>(f));
  return idf > kMinIdfWeight ? idf : kMinIdfWeight;
}

/// \brief Snaps a weight to the nearest multiple of 2^-26.
///
/// IDF weights are bounded by log(2^64) < 45 < 2^6, so a quantized weight
/// has at most 6 + 26 = 32 significand bits. Sums of up to ~2^20 such
/// weights stay below 2^26 in magnitude and need at most 26 + 26 = 52
/// significand bits — they fit a double EXACTLY, so weighted-set sums incur
/// no rounding and are independent of summation order. This is what lets a
/// mutable index (whose token ids reflect insertion history) produce
/// bitwise-identical similarities to a from-scratch rebuild (whose ids
/// reflect corpus order).
inline double QuantizeWeight(double w) {
  return std::ldexp(std::nearbyint(std::ldexp(w, 26)), -26);
}

/// \brief Assigns a fixed positive weight to every element of the universe
/// (Section 2: "each distinct value in U is associated with a unique weight").
class WeightProvider {
 public:
  virtual ~WeightProvider() = default;

  /// Weight of element `id`. Always positive.
  virtual double Weight(TokenId id) const = 0;

  /// Sum of weights of a set's elements (`wt(s)` in the paper). Accepts any
  /// contiguous id sequence (vector, SetView, CSR slice).
  double SetWeight(std::span<const TokenId> set) const {
    double total = 0.0;
    for (TokenId id : set) total += Weight(id);
    return total;
  }
  double SetWeight(std::initializer_list<TokenId> set) const {
    return SetWeight(std::span<const TokenId>(set.begin(), set.size()));
  }
};

/// \brief All weights are 1 (the unweighted case; `wt(s)` = |s|).
class UnitWeights final : public WeightProvider {
 public:
  double Weight(TokenId) const override { return 1.0; }
};

/// \brief IDF weights exactly as in the paper's §5:
/// `w(t) = log((|R| + |S|) / f_t)` where `f_t` is the number of R[A] and
/// S[A] values containing `t`. Weights are materialized at construction, so
/// the dictionary may be discarded or keep growing afterwards without
/// affecting this provider.
class IdfWeights final : public WeightProvider {
 public:
  /// Snapshot IDF weights from a dictionary over the joined corpora.
  /// Elements with f_t = num_documents get a small positive floor weight so
  /// that every weight is positive (the paper assumes positive weights).
  /// Elements with f_t = 0 — possible in a dictionary rebuilt through
  /// TokenDictionary::Restore — get the same floor: log(n/0) = +inf would
  /// otherwise pass the `>` clamp and poison every set weight it touches.
  explicit IdfWeights(const TokenDictionary& dict) {
    const double n = static_cast<double>(dict.num_documents());
    weights_.resize(dict.num_elements());
    for (TokenId id = 0; id < weights_.size(); ++id) {
      weights_[id] = IdfWeightFromFrequency(n, dict.DocFrequency(id));
    }
  }

  double Weight(TokenId id) const override {
    SSJOIN_DCHECK(id < weights_.size());
    return weights_[id];
  }

  size_t size() const { return weights_.size(); }

 private:
  std::vector<double> weights_;
};

}  // namespace ssjoin::text

#endif  // SSJOIN_TEXT_WEIGHTS_H_
