#ifndef SSJOIN_TEXT_WEIGHTS_H_
#define SSJOIN_TEXT_WEIGHTS_H_

#include <cmath>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "text/dictionary.h"

namespace ssjoin::text {

/// \brief Assigns a fixed positive weight to every element of the universe
/// (Section 2: "each distinct value in U is associated with a unique weight").
class WeightProvider {
 public:
  virtual ~WeightProvider() = default;

  /// Weight of element `id`. Always positive.
  virtual double Weight(TokenId id) const = 0;

  /// Sum of weights of a set's elements (`wt(s)` in the paper). Accepts any
  /// contiguous id sequence (vector, SetView, CSR slice).
  double SetWeight(std::span<const TokenId> set) const {
    double total = 0.0;
    for (TokenId id : set) total += Weight(id);
    return total;
  }
  double SetWeight(std::initializer_list<TokenId> set) const {
    return SetWeight(std::span<const TokenId>(set.begin(), set.size()));
  }
};

/// \brief All weights are 1 (the unweighted case; `wt(s)` = |s|).
class UnitWeights final : public WeightProvider {
 public:
  double Weight(TokenId) const override { return 1.0; }
};

/// \brief IDF weights exactly as in the paper's §5:
/// `w(t) = log((|R| + |S|) / f_t)` where `f_t` is the number of R[A] and
/// S[A] values containing `t`. Weights are materialized at construction, so
/// the dictionary may be discarded or keep growing afterwards without
/// affecting this provider.
class IdfWeights final : public WeightProvider {
 public:
  /// Snapshot IDF weights from a dictionary over the joined corpora.
  /// Elements with f_t = num_documents get a small positive floor weight so
  /// that every weight is positive (the paper assumes positive weights).
  /// Elements with f_t = 0 — possible in a dictionary rebuilt through
  /// TokenDictionary::Restore — get the same floor: log(n/0) = +inf would
  /// otherwise pass the `>` clamp and poison every set weight it touches.
  explicit IdfWeights(const TokenDictionary& dict) {
    const double n = static_cast<double>(dict.num_documents());
    weights_.resize(dict.num_elements());
    for (TokenId id = 0; id < weights_.size(); ++id) {
      uint64_t f = dict.DocFrequency(id);
      double idf = f == 0 ? kMinWeight : std::log(n / static_cast<double>(f));
      weights_[id] = idf > kMinWeight ? idf : kMinWeight;
    }
  }

  double Weight(TokenId id) const override {
    SSJOIN_DCHECK(id < weights_.size());
    return weights_[id];
  }

  size_t size() const { return weights_.size(); }

 private:
  static constexpr double kMinWeight = 1e-6;

  std::vector<double> weights_;
};

}  // namespace ssjoin::text

#endif  // SSJOIN_TEXT_WEIGHTS_H_
