#ifndef SSJOIN_TEXT_DICTIONARY_H_
#define SSJOIN_TEXT_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/result.h"

namespace ssjoin::text {

/// Dense id of an interned (token, ordinal) element.
using TokenId = uint32_t;

/// Sentinel for "not interned".
inline constexpr TokenId kInvalidToken = UINT32_MAX;

/// \brief Interns (token, ordinal) elements and tracks document frequencies.
///
/// Implements the multiset-to-set conversion of §4.3.1: the k-th occurrence
/// of token `t` inside one document becomes the pair (t, k), so multiset
/// intersection of documents equals set intersection of their encodings.
/// Document frequency `f_t` counts the number of encoded documents containing
/// the element — the quantity the paper's IDF formula (§5) is based on.
class TokenDictionary {
 public:
  TokenDictionary() = default;
  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;
  TokenDictionary(TokenDictionary&&) = default;
  TokenDictionary& operator=(TokenDictionary&&) = default;

  /// Encodes a document's token multiset into element ids, assigning ordinals
  /// to duplicate tokens, interning new elements, and bumping each distinct
  /// element's document frequency once. Counts the document in
  /// num_documents().
  std::vector<TokenId> EncodeDocument(const std::vector<std::string>& tokens);

  /// Like EncodeDocument, but never interns or counts: unknown elements map
  /// to kInvalidToken. Use for lookups against a frozen dictionary.
  std::vector<TokenId> EncodeDocumentReadOnly(
      const std::vector<std::string>& tokens) const;

  /// Id of (token, ordinal), or kInvalidToken.
  TokenId Find(std::string_view token, uint32_t ordinal = 0) const;

  /// A dictionary entry as exposed for serialization (snapshot format).
  struct EntryData {
    std::string token;
    uint32_t ordinal;
    uint64_t doc_frequency;
  };

  /// Rebuilds a frozen dictionary from serialized entries: entry `i` becomes
  /// element id `i`, exactly reversing iteration over ids 0..num_elements().
  /// Rejects duplicate (token, ordinal) pairs.
  static Result<TokenDictionary> Restore(std::vector<EntryData> entries,
                                         uint64_t num_documents);

  /// The base token string of an element (without its ordinal).
  const std::string& TokenOf(TokenId id) const {
    SSJOIN_DCHECK(id < entries_.size());
    return entries_[id].token;
  }
  /// The ordinal of an element (0 for first occurrence).
  uint32_t OrdinalOf(TokenId id) const {
    SSJOIN_DCHECK(id < entries_.size());
    return entries_[id].ordinal;
  }
  /// Number of encoded documents containing this element.
  uint64_t DocFrequency(TokenId id) const {
    SSJOIN_DCHECK(id < entries_.size());
    return entries_[id].doc_frequency;
  }
  /// Content hash of the element: FNV-1a over its interning key (token plus
  /// ordinal suffix). A pure function of (token, ordinal) — independent of
  /// id numbering — so it serves as the id-free tie key of
  /// core::ElementOrder::ByDecreasingWeightTieKeyed.
  uint64_t KeyHash(TokenId id) const {
    SSJOIN_DCHECK(id < entries_.size());
    return entries_[id].key_hash;
  }

  size_t num_elements() const { return entries_.size(); }
  uint64_t num_documents() const { return num_documents_; }

 private:
  struct Entry {
    std::string token;
    uint32_t ordinal;
    uint64_t doc_frequency;
    uint64_t key_hash;
  };

  static std::string MakeKey(std::string_view token, uint32_t ordinal);

  std::unordered_map<std::string, TokenId> index_;
  std::vector<Entry> entries_;
  uint64_t num_documents_ = 0;
};

}  // namespace ssjoin::text

#endif  // SSJOIN_TEXT_DICTIONARY_H_
