#include "text/dictionary.h"

#include "common/hash.h"

namespace ssjoin::text {

namespace {

/// Assigns within-document ordinals: the k-th occurrence of a token gets
/// ordinal k-1.
std::vector<std::pair<std::string_view, uint32_t>> AssignOrdinals(
    const std::vector<std::string>& tokens) {
  std::unordered_map<std::string_view, uint32_t> counts;
  std::vector<std::pair<std::string_view, uint32_t>> out;
  out.reserve(tokens.size());
  for (const std::string& t : tokens) {
    uint32_t& c = counts[t];
    out.emplace_back(t, c);
    ++c;
  }
  return out;
}

}  // namespace

std::string TokenDictionary::MakeKey(std::string_view token, uint32_t ordinal) {
  std::string key(token);
  if (ordinal > 0) {
    key.push_back('\x01');  // never appears in normalized input text
    key += std::to_string(ordinal);
  }
  return key;
}

std::vector<TokenId> TokenDictionary::EncodeDocument(
    const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& [token, ordinal] : AssignOrdinals(tokens)) {
    std::string key = MakeKey(token, ordinal);
    auto [it, inserted] = index_.try_emplace(key, static_cast<TokenId>(entries_.size()));
    if (inserted) {
      entries_.push_back(Entry{std::string(token), ordinal, 0, HashString(key)});
    }
    ids.push_back(it->second);
  }
  // Each distinct element counts once toward document frequency. Ordinal
  // assignment already guarantees distinctness within a document.
  for (TokenId id : ids) ++entries_[id].doc_frequency;
  ++num_documents_;
  return ids;
}

std::vector<TokenId> TokenDictionary::EncodeDocumentReadOnly(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& [token, ordinal] : AssignOrdinals(tokens)) {
    ids.push_back(Find(token, ordinal));
  }
  return ids;
}

TokenId TokenDictionary::Find(std::string_view token, uint32_t ordinal) const {
  auto it = index_.find(MakeKey(token, ordinal));
  return it == index_.end() ? kInvalidToken : it->second;
}

Result<TokenDictionary> TokenDictionary::Restore(std::vector<EntryData> entries,
                                                 uint64_t num_documents) {
  TokenDictionary dict;
  dict.entries_.reserve(entries.size());
  dict.index_.reserve(entries.size());
  for (EntryData& e : entries) {
    std::string key = MakeKey(e.token, e.ordinal);
    uint64_t key_hash = HashString(key);
    TokenId id = static_cast<TokenId>(dict.entries_.size());
    auto [it, inserted] = dict.index_.emplace(std::move(key), id);
    (void)it;
    if (!inserted) {
      return Status::Invalid("dictionary restore: duplicate element '" + e.token +
                             "' ordinal " + std::to_string(e.ordinal));
    }
    dict.entries_.push_back(
        Entry{std::move(e.token), e.ordinal, e.doc_frequency, key_hash});
  }
  dict.num_documents_ = num_documents;
  return dict;
}

}  // namespace ssjoin::text
