#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace ssjoin::obs {

namespace {

/// JSON-safe fixed-point rendering (quantiles are always finite).
std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string JsonUint(uint64_t v) { return std::to_string(v); }

}  // namespace

double Histogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the buckets once; concurrent Records may land in between the
  // count_ read and the bucket reads, so clamp rather than assume equality.
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  double target = q * static_cast<double>(total);
  uint64_t running = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(running + counts[b]) >= target) {
      double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
      double hi = static_cast<double>(uint64_t{1} << (b + 1));
      // The recorded maximum is the distribution's true upper edge: it
      // tightens interpolation inside the maximum's own bucket and replaces
      // the overflow bucket's nominal edge entirely (that bucket absorbs
      // everything above 2^32, so its edge would understate the tail).
      double max_v = static_cast<double>(max_value());
      if (b + 1 == kBuckets || (max_v >= lo && max_v < hi)) {
        hi = std::max(lo, max_v);
      }
      double frac = (target - static_cast<double>(running)) /
                    static_cast<double>(counts[b]);
      return lo + frac * (hi - lo);
    }
    running += counts[b];
  }
  return static_cast<double>(max_value());
}

HistogramData SummarizeHistogram(const Histogram& h) {
  HistogramData d;
  d.count = h.count();
  d.sum = h.sum();
  d.max = h.max_value();
  if (d.count > 0) {
    d.mean = static_cast<double>(d.sum) / static_cast<double>(d.count);
  }
  d.p50 = h.Quantile(0.50);
  d.p95 = h.Quantile(0.95);
  d.p99 = h.Quantile(0.99);
  return d;
}

MetricPoint MetricPoint::FromCounter(std::string name, uint64_t value) {
  MetricPoint p;
  p.name = std::move(name);
  p.type = Type::kCounter;
  p.counter = value;
  return p;
}

MetricPoint MetricPoint::FromGauge(std::string name, int64_t value) {
  MetricPoint p;
  p.name = std::move(name);
  p.type = Type::kGauge;
  p.gauge = value;
  return p;
}

MetricPoint MetricPoint::FromHistogram(std::string name, const Histogram& h) {
  MetricPoint p;
  p.name = std::move(name);
  p.type = Type::kHistogram;
  p.hist = SummarizeHistogram(h);
  return p;
}

std::string MetricPoint::ToJson() const {
  // Metric names are code-chosen identifiers ([a-z0-9._] by convention), so
  // they embed in JSON without escaping.
  std::string out = "{\"metric\": \"" + name + "\", ";
  switch (type) {
    case Type::kCounter:
      out += "\"type\": \"counter\", \"value\": " + JsonUint(counter);
      break;
    case Type::kGauge:
      out += "\"type\": \"gauge\", \"value\": " + std::to_string(gauge);
      break;
    case Type::kHistogram:
      out += "\"type\": \"histogram\", \"count\": " + JsonUint(hist.count) +
             ", \"sum\": " + JsonUint(hist.sum) +
             ", \"max\": " + JsonUint(hist.max) +
             ", \"mean\": " + JsonDouble(hist.mean) +
             ", \"p50\": " + JsonDouble(hist.p50) +
             ", \"p95\": " + JsonDouble(hist.p95) +
             ", \"p99\": " + JsonDouble(hist.p99);
      break;
  }
  out += "}";
  return out;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

uint64_t Registry::RegisterProvider(Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_provider_id_++;
  providers_.emplace_back(id, std::move(provider));
  return id;
}

void Registry::UnregisterProvider(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(
      std::remove_if(providers_.begin(), providers_.end(),
                     [id](const auto& p) { return p.first == id; }),
      providers_.end());
}

std::vector<MetricPoint> Registry::Snapshot() const {
  std::vector<MetricPoint> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
      out.push_back(MetricPoint::FromCounter(name, c->value()));
    }
    for (const auto& [name, g] : gauges_) {
      out.push_back(MetricPoint::FromGauge(name, g->value()));
    }
    for (const auto& [name, h] : histograms_) {
      out.push_back(MetricPoint::FromHistogram(name, *h));
    }
    for (const auto& [id, provider] : providers_) {
      provider(&out);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MetricPoint& a, const MetricPoint& b) {
                     return a.name < b.name;
                   });
  return out;
}

std::string Registry::ToNdjson() const {
  std::string out;
  for (const MetricPoint& p : Snapshot()) {
    out += p.ToJson();
    out += '\n';
  }
  return out;
}

std::string Registry::ToFlatJson() const {
  std::string out = "{";
  bool first = true;
  auto field = [&](const std::string& key, const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + key + "\": " + value;
  };
  for (const MetricPoint& p : Snapshot()) {
    switch (p.type) {
      case MetricPoint::Type::kCounter:
        field(p.name, JsonUint(p.counter));
        break;
      case MetricPoint::Type::kGauge:
        field(p.name, std::to_string(p.gauge));
        break;
      case MetricPoint::Type::kHistogram:
        field(p.name + ".count", JsonUint(p.hist.count));
        field(p.name + ".sum", JsonUint(p.hist.sum));
        field(p.name + ".max", JsonUint(p.hist.max));
        field(p.name + ".mean", JsonDouble(p.hist.mean));
        field(p.name + ".p50", JsonDouble(p.hist.p50));
        field(p.name + ".p95", JsonDouble(p.hist.p95));
        field(p.name + ".p99", JsonDouble(p.hist.p99));
        break;
    }
  }
  out += "}";
  return out;
}

Registry& Registry::Global() {
  // Leaked on purpose: ThreadPool::Shared's workers are leaked too and may
  // record metrics during static teardown.
  static Registry* registry = new Registry();
  return *registry;
}

void SpanSet::Add(std::string_view name, uint64_t micros, uint64_t count) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.total_micros += micros;
      e.count += count;
      return;
    }
  }
  entries_.push_back(Entry{std::string(name), micros, count});
}

void SpanSet::Merge(const SpanSet& other) {
  for (const Entry& e : other.entries_) {
    Add(e.name, e.total_micros, e.count);
  }
}

void SpanSet::PublishTo(Registry* registry, const std::string& prefix) const {
  for (const Entry& e : entries_) {
    registry->GetCounter(prefix + e.name + ".us")->Add(e.total_micros);
    registry->GetCounter(prefix + e.name + ".count")->Add(e.count);
  }
}

uint64_t ObsSpan::Stop() {
  if (stopped_) return 0;
  stopped_ = true;
  uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (counter_ != nullptr) counter_->Add(micros);
  if (hist_ != nullptr) hist_->Record(micros);
  if (set_ != nullptr) set_->Add(name_, micros);
  return micros;
}

}  // namespace ssjoin::obs
