#ifndef SSJOIN_OBS_METRICS_H_
#define SSJOIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssjoin::obs {

/// \brief Unified observability primitives shared by core, exec and serve.
///
/// Three metric kinds — Counter (monotone), Gauge (last/high-water value) and
/// Histogram (log2-bucketed distribution) — live in a process-wide Registry
/// keyed by name. Components either own their metrics and mirror them into
/// the registry through a provider callback (serve does this, so per-service
/// tests keep exact per-instance counts), or update registry-owned metrics
/// directly (core and exec do this).
///
/// Determinism: work-derived counters (rows, candidates, prunes) are bridged
/// from `SSJoinStats`, which the parallel executors merge in morsel order —
/// so a join publishes identical counter deltas at 1, 2 or 8 threads.
/// Time-derived metrics (spans, busy/idle) naturally vary run to run; only
/// their *names and ordering* are deterministic, never their values.

/// Monotonically increasing counter; relaxed atomics (observability tolerates
/// torn cross-metric snapshots).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written (or high-water, via SetMax) signed value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if above the current value (high-water mark).
  void SetMax(int64_t v) {
    int64_t prev = value_.load(std::memory_order_relaxed);
    while (prev < v &&
           !value_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket log-scale histogram, safe for concurrent Record calls.
///
/// Bucket b covers [2^b, 2^(b+1)) units, with bucket 0 also absorbing
/// sub-unit samples and the last bucket absorbing everything above 2^32.
/// Quantiles interpolate linearly inside the hit bucket, which bounds the
/// relative error by the bucket width (a factor of 2) — plenty for
/// p50/p95/p99 dashboards. Generalizes the histogram that used to live in
/// src/serve as LatencyHistogram (now an alias on top of this class).
class Histogram {
 public:
  static constexpr size_t kBuckets = 33;

  void Record(uint64_t value) {
    size_t b = 0;
    while (b + 1 < kBuckets && (uint64_t{1} << (b + 1)) <= value) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  /// The value at quantile `q` in [0, 1] (clamped); 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max_value() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Plain-value histogram summary inside a snapshot.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

HistogramData SummarizeHistogram(const Histogram& h);

/// One metric's value at snapshot time.
struct MetricPoint {
  enum class Type { kCounter, kGauge, kHistogram };

  std::string name;
  Type type = Type::kCounter;
  uint64_t counter = 0;   // kCounter
  int64_t gauge = 0;      // kGauge
  HistogramData hist;     // kHistogram

  static MetricPoint FromCounter(std::string name, uint64_t value);
  static MetricPoint FromGauge(std::string name, int64_t value);
  static MetricPoint FromHistogram(std::string name, const Histogram& h);

  /// One JSON object (no trailing newline):
  ///   {"metric": "...", "type": "counter", "value": N}
  ///   {"metric": "...", "type": "histogram", "count": N, ..., "p99": X}
  std::string ToJson() const;
};

/// \brief Process-wide metric registry.
///
/// Metrics are created lazily on first Get*(name) and live for the life of
/// the registry (addresses are stable — cache the pointer, don't re-look-up
/// on hot paths). Components whose metrics are per-instance register a
/// provider callback instead; Snapshot() appends the provider's points to
/// the registry-owned ones and returns everything sorted by name.
class Registry {
 public:
  using Provider = std::function<void(std::vector<MetricPoint>*)>;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Registers a callback polled by Snapshot(); returns a handle for
  /// UnregisterProvider. After UnregisterProvider returns, the callback is
  /// guaranteed not running and never called again (both run under the
  /// registry mutex), so the provider's captures may be destroyed.
  uint64_t RegisterProvider(Provider provider);
  void UnregisterProvider(uint64_t id);

  /// All metrics (owned + provider-supplied), sorted by name.
  std::vector<MetricPoint> Snapshot() const;

  /// Snapshot rendered as NDJSON: one MetricPoint::ToJson() line per metric.
  std::string ToNdjson() const;

  /// Snapshot rendered as a single flat JSON object for embedding (bench
  /// output): counters/gauges as `"name": N`, histograms flattened to
  /// `"name.count"`, `"name.sum"`, `"name.max"`, `"name.mean"`, `"name.p50"`,
  /// `"name.p95"`, `"name.p99"`.
  std::string ToFlatJson() const;

  /// The process-wide registry. Never destroyed, so metrics stay recordable
  /// from leaked ThreadPool workers during static teardown.
  static Registry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  uint64_t next_provider_id_ = 1;
  std::vector<std::pair<uint64_t, Provider>> providers_;
};

/// \brief Ordered accumulator of named span totals (micros + hit counts),
/// with PhaseTimer's merge discipline: names keep their first-recorded order
/// and Merge folds another set in that order, so merging per-morsel sets in
/// morsel order yields a scheduling-independent *sequence* of span names.
class SpanSet {
 public:
  struct Entry {
    std::string name;
    uint64_t total_micros = 0;
    uint64_t count = 0;
  };

  void Add(std::string_view name, uint64_t micros, uint64_t count = 1);
  void Merge(const SpanSet& other);

  /// Adds every entry into the registry as a pair of counters
  /// `<prefix><name>.us` and `<prefix><name>.count`.
  void PublishTo(Registry* registry, const std::string& prefix) const;

  const std::vector<Entry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

/// \brief RAII scoped span: measures wall-clock micros from construction to
/// Stop()/destruction and records them into a Counter, Histogram or SpanSet.
/// Cheap enough for per-request use; not for per-element inner loops.
class ObsSpan {
 public:
  explicit ObsSpan(Counter* counter) : counter_(counter) { Start(); }
  explicit ObsSpan(Histogram* hist) : hist_(hist) { Start(); }
  ObsSpan(SpanSet* set, std::string name) : set_(set), name_(std::move(name)) {
    Start();
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  ~ObsSpan() { Stop(); }

  /// Records the elapsed micros into the target and disarms the span;
  /// idempotent (later calls return 0 and record nothing).
  uint64_t Stop();

 private:
  void Start() { start_ = std::chrono::steady_clock::now(); }

  Counter* counter_ = nullptr;
  Histogram* hist_ = nullptr;
  SpanSet* set_ = nullptr;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace ssjoin::obs

#endif  // SSJOIN_OBS_METRICS_H_
