#ifndef SSJOIN_FUZZ_REPRODUCER_H_
#define SSJOIN_FUZZ_REPRODUCER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace ssjoin::fuzz {

/// \brief A self-contained differential-fuzz test case: a scenario name, its
/// scalar parameters and the two string collections the scenario joins.
///
/// Everything a scenario needs is derived deterministically from these
/// fields, so a reproducer file replays the exact failing check with no
/// dependence on the RNG, the generator version or the machine. The `seed`
/// param is carried for provenance only.
struct Reproducer {
  std::string scenario;
  /// Scalar knobs (q, alpha, k, ...). String-valued for forward
  /// compatibility; typed accessors below parse on demand.
  std::map<std::string, std::string> params;
  std::vector<std::string> r;
  std::vector<std::string> s;

  /// \name Typed parameter accessors (returning `fallback` when absent).
  ///
  /// A present-but-malformed value is an error naming the offending key,
  /// never a silent fallback: reproducers are hand-edited during triage, and
  /// a typo'd alpha replaying as 0.0 would "verify" a different case than
  /// the one on disk. Values parse with the strict common/string_util
  /// grammar (no sign/whitespace slack, no trailing junk, finite only).
  /// @{
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<uint64_t> GetUint(const std::string& key, uint64_t fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback) const;
  /// @}

  void Set(const std::string& key, double value);
  void Set(const std::string& key, uint64_t value);
  void Set(const std::string& key, bool value);
};

/// \brief Serializes a reproducer to the `ssjoin-fuzz-repro v1` text format:
///
///   ssjoin-fuzz-repro v1
///   scenario: <name>
///   param <key> <value>        (one line per param, sorted by key)
///   r <count>
///   "<escaped string>"         (count lines)
///   s <count>
///   "<escaped string>"         (count lines)
///
/// Strings are double-quoted with `\"`, `\\`, and `\xNN` escapes for every
/// byte outside printable ASCII, so binary/high-byte workloads survive the
/// round trip byte-exactly.
std::string FormatReproducer(const Reproducer& repro);

/// Parses the text format back; rejects malformed files with a clear error.
Result<Reproducer> ParseReproducer(const std::string& text);

/// Reads and parses a reproducer file.
Result<Reproducer> LoadReproducerFile(const std::string& path);

/// Writes `repro` to `path` (truncating).
Status SaveReproducerFile(const Reproducer& repro, const std::string& path);

}  // namespace ssjoin::fuzz

#endif  // SSJOIN_FUZZ_REPRODUCER_H_
