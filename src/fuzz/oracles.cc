#include "fuzz/oracles.h"

#include <cmath>

#include "kernels/kernels.h"

namespace ssjoin::fuzz {

namespace {

/// Weighted overlap of two canonical sets via the pinned scalar kernel tier
/// (the differential oracle), accumulated in sorted element order — matching
/// the executors' accumulation order bit-for-bit while staying independent
/// of whatever tier the executors under test are dispatched to.
double OverlapOf(core::SetView a, core::SetView b,
                 const core::WeightVector& weights) {
  return kernels::IntersectWeightedTier(kernels::Tier::kScalar, a, b,
                                        weights.data(), nullptr);
}

bool Intersects(core::SetView a, core::SetView b) {
  return kernels::IntersectCountTier(kernels::Tier::kScalar, a, b) > 0;
}

}  // namespace

std::vector<core::SSJoinPair> SSJoinOracle(const core::SetsRelation& r,
                                           const core::SetsRelation& s,
                                           const core::WeightVector& weights,
                                           const core::OverlapPredicate& pred) {
  std::vector<core::SSJoinPair> out;
  for (core::GroupId gr = 0; gr < r.num_groups(); ++gr) {
    for (core::GroupId gs = 0; gs < s.num_groups(); ++gs) {
      core::SetView a = r.set(gr);
      core::SetView b = s.set(gs);
      if (!Intersects(a, b)) continue;
      double overlap = OverlapOf(a, b, weights);
      if (pred.Test(overlap, r.norms[gr], s.norms[gs])) {
        out.push_back({gr, gs, overlap});
      }
    }
  }
  return out;
}

std::vector<simjoin::MatchPair> CrossProductJaccardContainment(
    const simjoin::Prepared& prep, double alpha) {
  core::OverlapPredicate pred = core::OverlapPredicate::OneSidedNormalized(alpha);
  std::vector<simjoin::MatchPair> out;
  for (core::GroupId gr = 0; gr < prep.r.num_groups(); ++gr) {
    for (core::GroupId gs = 0; gs < prep.s.num_groups(); ++gs) {
      core::SetView a = prep.r.set(gr);
      core::SetView b = prep.s.set(gs);
      if (!Intersects(a, b)) continue;
      double overlap = OverlapOf(a, b, prep.weights);
      if (!pred.Test(overlap, prep.r.norms[gr], prep.s.norms[gs])) continue;
      double wt_r = prep.r.set_weights[gr];
      double jc = wt_r > 0.0 ? overlap / wt_r : 1.0;
      out.push_back({gr, gs, jc});
    }
  }
  return out;
}

std::vector<simjoin::MatchPair> CrossProductJaccardResemblance(
    const simjoin::Prepared& prep, double alpha) {
  core::OverlapPredicate pred = core::OverlapPredicate::TwoSidedNormalized(alpha);
  std::vector<simjoin::MatchPair> out;
  for (core::GroupId gr = 0; gr < prep.r.num_groups(); ++gr) {
    for (core::GroupId gs = 0; gs < prep.s.num_groups(); ++gs) {
      core::SetView a = prep.r.set(gr);
      core::SetView b = prep.s.set(gs);
      if (!Intersects(a, b)) continue;
      double overlap = OverlapOf(a, b, prep.weights);
      if (!pred.Test(overlap, prep.r.norms[gr], prep.s.norms[gs])) continue;
      double wt_union =
          prep.r.set_weights[gr] + prep.s.set_weights[gs] - overlap;
      double jr = wt_union > 0.0 ? overlap / wt_union : 1.0;
      if (jr >= alpha - 1e-12) out.push_back({gr, gs, jr});
    }
  }
  return out;
}

std::vector<simjoin::MatchPair> CrossProductCosine(const simjoin::Prepared& prep,
                                                   double alpha) {
  core::OverlapPredicate pred =
      core::OverlapPredicate::TwoSidedNormalized(alpha * alpha);
  std::vector<simjoin::MatchPair> out;
  for (core::GroupId gr = 0; gr < prep.r.num_groups(); ++gr) {
    for (core::GroupId gs = 0; gs < prep.s.num_groups(); ++gs) {
      core::SetView a = prep.r.set(gr);
      core::SetView b = prep.s.set(gs);
      if (!Intersects(a, b)) continue;
      double overlap = OverlapOf(a, b, prep.weights);
      if (!pred.Test(overlap, prep.r.norms[gr], prep.s.norms[gs])) continue;
      double denom =
          std::sqrt(prep.r.set_weights[gr] * prep.s.set_weights[gs]);
      double cos = denom > 0.0 ? overlap / denom : 1.0;
      if (cos >= alpha - 1e-12) out.push_back({gr, gs, cos});
    }
  }
  return out;
}

long long QGramCountBound(size_t len_r, size_t len_s, size_t q, size_t budget) {
  long long max_len = static_cast<long long>(len_r > len_s ? len_r : len_s);
  return max_len - static_cast<long long>(q) + 1 -
         static_cast<long long>(q) * static_cast<long long>(budget);
}

}  // namespace ssjoin::fuzz
