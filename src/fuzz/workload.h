#ifndef SSJOIN_FUZZ_WORKLOAD_H_
#define SSJOIN_FUZZ_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace ssjoin::fuzz {

/// Knobs for the random string-collection generator.
struct WorkloadOptions {
  size_t max_records = 24;
  size_t max_length = 16;
  /// Probabilities of the adversarial string classes. The remainder of the
  /// probability mass produces "normal" strings over a small alphabet (small
  /// so that collisions, shared grams and near-duplicates are frequent).
  double p_empty = 0.08;
  double p_short = 0.25;          ///< length 1..3, below typical q
  double p_repeated_char = 0.08;  ///< one character repeated
  double p_high_byte = 0.08;      ///< bytes in [0x80, 0xff] and separators
  /// Probability that a record duplicates (possibly with a small edit) an
  /// earlier record — near-duplicates are where join bugs live.
  double p_duplicate = 0.3;
};

/// \brief Draws one adversarial string: empty, short, repeated-char,
/// high-byte or normal, per the class probabilities in `opts`.
std::string GenerateString(Rng* rng, const WorkloadOptions& opts);

/// \brief Draws a collection of 1..max_records strings, with duplicates and
/// near-duplicates of earlier records mixed in per `p_duplicate`.
std::vector<std::string> GenerateStrings(Rng* rng, const WorkloadOptions& opts);

/// \brief Mutates `s` with one random small edit (insert/delete/substitute a
/// byte) — used both by the generator's near-duplicate path and by tests.
std::string MutateString(Rng* rng, const std::string& s);

}  // namespace ssjoin::fuzz

#endif  // SSJOIN_FUZZ_WORKLOAD_H_
