#ifndef SSJOIN_FUZZ_SHRINK_H_
#define SSJOIN_FUZZ_SHRINK_H_

#include <functional>

#include "fuzz/reproducer.h"

namespace ssjoin::fuzz {

/// Returns true when a candidate reproducer still exhibits the failure.
using StillFailsFn = std::function<bool(const Reproducer&)>;

/// Budget/outcome of one shrink run.
struct ShrinkStats {
  size_t checks_run = 0;
  size_t records_removed = 0;
  size_t bytes_removed = 0;
};

/// \brief Greedy delta-debugging minimizer for a failing reproducer.
///
/// Two nested ddmin passes, iterated to a fixed point (bounded by
/// `max_checks` evaluations of `still_fails`):
///  1. record level — try deleting chunks of the r and s string lists,
///     halving the chunk size from n/2 down to 1;
///  2. byte level — for each surviving string, try deleting chunks of its
///     bytes, again halving down to 1.
///
/// Every accepted deletion must keep `still_fails` true, so the result is a
/// (locally) 1-minimal workload that reproduces the original failure.
/// `still_fails(repro)` must be deterministic.
Reproducer ShrinkReproducer(Reproducer repro, const StillFailsFn& still_fails,
                            size_t max_checks = 4000,
                            ShrinkStats* stats = nullptr);

}  // namespace ssjoin::fuzz

#endif  // SSJOIN_FUZZ_SHRINK_H_
